"""Section V claim — "delay compensation … was *never* required".

Regenerates the Equation (1) evaluation for every benchmark of the
suite at the paper's nominal delay bound and asserts the claim.  As an
ablation it also reports which circuits *would* need the local delay
line under progressively looser gate-delay bounds (±20%…±50%) — the
condition the paper's bounded-delay assumption ("bounds on the delays
must be known") guards against.
"""

from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS, NONDISTRIBUTIVE_BENCHMARKS
from repro.bench.runner import sg_of
from repro.core import synthesize

ALL_NAMES = sorted(DISTRIBUTIVE_BENCHMARKS) + sorted(NONDISTRIBUTIVE_BENCHMARKS)
SMALL = [
    n
    for n in ALL_NAMES
    if (
        DISTRIBUTIVE_BENCHMARKS.get(n, NONDISTRIBUTIVE_BENCHMARKS.get(n))[1] <= 300
    )
]
SPREADS = [0.0, 0.2, 0.3, 0.4, 0.5]


def regenerate() -> tuple[str, dict]:
    lines = [
        "Equation (1) across the suite: does any signal need t_del > 0?",
        f"{'circuit':15} " + " ".join(f"±{int(s*100):>2}%" for s in SPREADS),
    ]
    needed = {s: [] for s in SPREADS}
    for name in SMALL:
        sg = sg_of(name)
        cells = []
        for s in SPREADS:
            circuit = synthesize(sg, name=name, delay_spread=s)
            req = circuit.compensation_required
            if req:
                needed[s].append(name)
            cells.append("YES " if req else " -  ")
        lines.append(f"{name:15} " + " ".join(cells))
    lines.append("")
    lines.append(
        "nominal bound (±0%): compensation required on "
        f"{len(needed[0.0])} circuits — the paper's claim is "
        + ("REPRODUCED" if not needed[0.0] else "NOT reproduced")
    )
    return "\n".join(lines) + "\n", needed


def test_delay_compensation_never_required_nominal(benchmark, save_artifact):
    text, needed = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    save_artifact("delay_compensation.txt", text)
    # the paper's universal observation at the nominal delay bound
    assert needed[0.0] == []


def test_delay_line_sized_when_bounds_loosen(benchmark):
    """Ablation: under a ±50% bound some asymmetric-plane circuit needs
    the delay line, and the architecture inserts it with t_del ≥ the
    Equation (1) bound."""
    from repro.netlist import GateType

    def run():
        for name in SMALL:
            circuit = synthesize(sg_of(name), name=name, delay_spread=0.5)
            if circuit.compensation_required:
                return circuit
        return None

    circuit = benchmark.pedantic(run, iterations=1, rounds=1)
    assert circuit is not None, "expected at least one circuit to need t_del at ±50%"
    delays = [g for g in circuit.netlist.gates if g.type == GateType.DELAY]
    assert delays
    bound = max(r.t_del for r in circuit.delay_requirements.values())
    assert max(g.delay for g in delays) >= bound - 1e-9
