"""Ablation — multi-output product-term sharing (Section IV-A).

The paper's procedure explicitly allows "the sharing of product terms
(AND-gates) between different functions" because the architecture
tolerates whatever hazards sharing introduces.  This bench quantifies
the design choice on the reconstructed suite:

* **cube count** — sharing always produces a cover with at most as
  many product terms (that is what multi-output EXPAND buys);
* **area/delay interaction** — a *shared* cube cannot be folded into
  an acknowledgement AND gate (it feeds several planes), so on circuits
  whose planes are single-cube the fold optimization can offset the
  sharing gain.  Both effects are real consequences of the
  architecture and are reported side by side.
"""

from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS, NONDISTRIBUTIVE_BENCHMARKS
from repro.bench.runner import sg_of
from repro.core import synthesize

SAMPLE = ["chu133", "chu150", "converta", "qr42", "vbe10b", "wrdatab",
          "sbuf-send-ctl", "pmcm1", "combuf1", "sing2dual-inp"]


def regenerate() -> tuple[str, list]:
    header = (
        f"{'circuit':15} {'shared cubes/lits':>18} {'separate cubes/lits':>20} "
        f"{'shared area':>12} {'separate area':>14}"
    )
    lines = ["Ablation: multi-output term sharing on vs off", header,
             "-" * len(header)]
    rows = []
    for name in SAMPLE:
        sg = sg_of(name)
        shared = synthesize(sg, name=name, share_products=True)
        separate = synthesize(sg, name=name, share_products=False)
        sc, sl = shared.cover.cost()
        pc, pl = separate.cover.cost()
        lines.append(
            f"{name:15} {f'{sc}/{sl}':>18} {f'{pc}/{pl}':>20} "
            f"{shared.stats().area:>12.0f} {separate.stats().area:>14.0f}"
        )
        rows.append((name, sc, pc, shared, separate))
    return "\n".join(lines) + "\n", rows


def test_sharing_never_more_cubes(benchmark, save_artifact):
    text, rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    save_artifact("ablation_sharing.txt", text)
    for name, shared_cubes, separate_cubes, *_ in rows:
        assert shared_cubes <= separate_cubes, name


def test_both_variants_remain_sound(benchmark):
    """Hazard tolerance means both variants must verify — sharing is a
    cost knob, never a correctness knob."""
    from repro.core import verify_hazard_freeness

    def run():
        sg = sg_of("pmcm2")
        out = []
        for share in (True, False):
            circuit = synthesize(
                sg, name="pmcm2", share_products=share, delay_spread=0.45
            )
            out.append(verify_hazard_freeness(circuit, runs=3, max_transitions=60))
        return out

    for summary in benchmark.pedantic(run, iterations=1, rounds=1):
        assert summary.ok
