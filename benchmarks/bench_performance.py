"""Measured performance — the delay column validated dynamically.

Table 2's delay numbers are static estimates.  This bench drives the
synthesized N-SHOT and SYN-style circuits in closed loop with an eager
environment and measures actual response times (enabling → firing),
asserting that

* every measured response is bounded by the static critical path
  (the static figure is a worst case), and
* the static *ordering* between the flows holds dynamically: where the
  model says N-SHOT is faster than the standard-C baseline, the
  simulated circuit responds faster too.
"""

from repro.baselines import synthesize_beerel
from repro.bench.runner import sg_of
from repro.core import synthesize
from repro.sim import measure_performance

SAMPLE = ["chu172", "full", "qr42", "hazard", "chu133"]


def regenerate() -> tuple[str, list]:
    header = (
        f"{'circuit':12} {'static N-SHOT':>14} {'measured':>9} "
        f"{'static SYN':>11} {'measured':>9}"
    )
    lines = ["Static vs measured response times (ns)", header, "-" * len(header)]
    rows = []
    for name in SAMPLE:
        sg = sg_of(name)
        ours = synthesize(sg, name=name)
        syn = synthesize_beerel(sg, name=name)
        p_ours = measure_performance(ours.netlist, sg)
        p_syn = measure_performance(syn.netlist, sg)
        lines.append(
            f"{name:12} {ours.stats().delay:>14.1f} {p_ours.mean_response():>9.2f} "
            f"{syn.stats().delay:>11.1f} {p_syn.mean_response():>9.2f}"
        )
        rows.append((name, ours, syn, p_ours, p_syn))
    return "\n".join(lines) + "\n", rows


def test_measured_vs_static(benchmark, save_artifact):
    text, rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    save_artifact("performance.txt", text)
    for name, ours, syn, p_ours, p_syn in rows:
        assert p_ours.conformant and p_syn.conformant, name
        # static critical path bounds the measured mean response
        assert p_ours.mean_response() <= ours.stats().delay + 1e-6, name
        # the model's ordering holds dynamically
        if ours.stats().delay < syn.stats().delay:
            assert p_ours.mean_response() < p_syn.mean_response() + 1e-6, name


def test_cycle_time_scales_with_environment(benchmark):
    """With a slow environment the cycle time is environment-dominated;
    with an eager one it approaches the circuit's own latency — the
    'reacts immediately, or when it likes' contract."""
    sg = sg_of("full")
    circuit = synthesize(sg, name="full")

    def run():
        eager = measure_performance(
            circuit.netlist, sg, input_delay=(0.05, 0.1), runs=2
        )
        slow = measure_performance(
            circuit.netlist, sg, input_delay=(20.0, 25.0), runs=1,
            max_transitions=40, max_time=20000.0,
        )
        sig = sg.signals[sg.non_inputs[0]]
        return eager.mean_cycle(sig), slow.mean_cycle(sig)

    eager_cycle, slow_cycle = benchmark.pedantic(run, iterations=1, rounds=1)
    assert slow_cycle > eager_cycle * 2
