"""Footnote 6 ablation — heuristic ESPRESSO vs ESPRESSO-EXACT.

The paper used the heuristic ``espresso`` command and notes that
"improved results can still be obtained by using the ESPRESSO-EXACT
minimizer instead".  This bench regenerates that comparison on the
small benchmarks: exact minimization never produces more cubes, and
occasionally fewer — at a (measured) runtime cost.
"""

from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS, NONDISTRIBUTIVE_BENCHMARKS
from repro.bench.runner import sg_of
from repro.core import synthesize

SMALL = [
    n
    for n in list(DISTRIBUTIVE_BENCHMARKS) + list(NONDISTRIBUTIVE_BENCHMARKS)
    if (DISTRIBUTIVE_BENCHMARKS.get(n) or NONDISTRIBUTIVE_BENCHMARKS[n])[1] <= 40
]


def regenerate() -> tuple[str, list]:
    lines = [
        "Footnote 6: heuristic vs exact two-level minimization",
        f"{'circuit':15} {'heur cubes/lits':>16} {'exact cubes/lits':>17} "
        f"{'heur area':>10} {'exact area':>11}",
    ]
    rows = []
    for name in SMALL:
        sg = sg_of(name)
        h = synthesize(sg, name=name, method="espresso")
        e = synthesize(sg, name=name, method="exact")
        hc, hl = h.cover.cost()
        ec, el = e.cover.cost()
        # exact minimizes each output separately (no term sharing), so
        # the apples-to-apples comparison is per-output cube counts
        per_output = []
        for o in range(h.spec.num_outputs):
            per_output.append(
                (len(h.cover.projection(o)), len(e.cover.projection(o)))
            )
        lines.append(
            f"{name:15} {f'{hc}/{hl}':>16} {f'{ec}/{el}':>17} "
            f"{h.stats().area:>10.0f} {e.stats().area:>11.0f}"
        )
        rows.append((name, per_output))
    return "\n".join(lines) + "\n", rows


def test_exact_vs_heuristic(benchmark, save_artifact):
    text, rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    save_artifact("minimizer_ablation.txt", text)
    for name, per_output in rows:
        for o, (h_cubes, e_cubes) in enumerate(per_output):
            # the exact cover of one output is a true minimum: it can
            # never use more cubes than the heuristic uses for that
            # same output
            assert e_cubes <= h_cubes, (name, o)


def test_espresso_throughput_on_benchmark_cover(benchmark):
    """Timing anchor: the minimization step alone on a mid-size SG."""
    from repro.core import derive_sop_spec
    from repro.logic import minimize

    sg = sg_of("vbe10b")
    spec = derive_sop_spec(sg)
    cover = benchmark(lambda: minimize(spec.on, spec.dc, spec.off))
    assert len(cover) > 0
