"""Theorems 1/2 in simulation — hazard-freeness and its necessity.

Two experiments:

1. **Theorem 2 (sufficiency)** — Monte-Carlo closed-loop verification
   of synthesized circuits (distributive and not): internal SOP pulse
   streams occur, observable signals never glitch, no deadlock.
2. **Theorem 1 (necessity ablation)** — deliberately fragment the
   trigger cube of the non-single-traversal Figure 7(b) circuit (two
   half-cubes split on the free-running clock) and drive the clock
   fast: the pulses exciting the flip-flop can now all be shorter than
   ω, so the flip-flop may never fire — the deadlock scenario of the
   Theorem 1 proof.  With the trigger cube restored the same
   environment always makes progress.
"""

from repro.bench.circuits import figure1_csc_sg, figure7b_sg
from repro.core import build_nshot_netlist, derive_sop_spec, synthesize, verify_hazard_freeness
from repro.logic import Cover, Cube
from repro.sim import MhsParams, SGEnvironment, SimConfig, Simulator
from repro.stg import elaborate, parse_g

CELEM = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


def regenerate_sufficiency() -> tuple[str, dict]:
    lines = ["Theorem 2 sufficiency: Monte-Carlo closed loop", ""]
    data = {}
    for name, sg in (
        ("celem", elaborate(parse_g(CELEM))),
        ("or-element", figure1_csc_sg()),
        ("fig7b", figure7b_sg()),
    ):
        circuit = synthesize(sg, name=name, delay_spread=0.45)
        summary = verify_hazard_freeness(circuit, runs=4, max_transitions=100)
        lines.append(f"{name:12} {summary.summary()}")
        data[name] = summary
    return "\n".join(lines) + "\n", data


def test_theorem2_sufficiency(benchmark, save_artifact):
    text, data = benchmark.pedantic(
        regenerate_sufficiency, iterations=1, rounds=1
    )
    save_artifact("hazard_freeness.txt", text)
    for name, summary in data.items():
        assert summary.ok, name
        assert summary.total_observable_glitches == 0
    # at least one specification visibly exercises internal hazards
    assert any(s.total_internal_glitches > 0 for s in data.values())


def _fragmented_fig7b_netlist():
    """Figure 7(b) with the set trigger cube split on the clock."""
    sg = figure7b_sg()
    spec = derive_sop_spec(sg)
    r, clk, y = (sg.signal_index(s) for s in ("r", "clk", "y"))
    so = spec.output_index(y, "set")
    ro = spec.output_index(y, "reset")
    n = sg.num_signals

    def cube(bits, out):
        c = Cube.full(n, 1 << out)
        for var, val in bits.items():
            c = c.with_literal(var, 0b10 if val else 0b01)
        return c

    fragmented = Cover(
        n,
        spec.num_outputs,
        [
            cube({r: 1, y: 0, clk: 0}, so),
            cube({r: 1, y: 0, clk: 1}, so),
            cube({r: 0, y: 1}, ro),
        ],
    )
    arch = build_nshot_netlist(spec, fragmented, name="fig7b_fragmented")
    # adversarial (but bounded) gate delays, per the Theorem 1 proof:
    # "we cannot predict the speed at which those cubes are traversed" —
    # skew the two half-cube AND gates so each clock handoff opens a gap
    # in the OR plane, resetting the flip-flop's candidate window
    half_cubes = [g for g in arch.netlist.gates if g.name.startswith("and_sy")]
    assert len(half_cubes) == 2
    half_cubes[0].delay = 0.6
    half_cubes[1].delay = 1.4
    return sg, arch.netlist


def test_theorem1_necessity_ablation(benchmark):
    """Fragmented trigger cube + fast clock ⇒ the flip-flop starves.

    With equal gate delays the OR plane dips at *every* clock handoff
    between the two half-cubes, so each pulse exciting the MHS
    flip-flop is shorter than ω and the window never matures — the
    deadlock of the Theorem 1 necessity proof.  (The circuit is
    livelocked by the free-running clock, so the failure signature is
    "zero observable transitions despite a pending request".)  The
    proper single-trigger-cube cover, driven identically, always makes
    progress.
    """
    sg7 = figure7b_sg()
    proper = synthesize(sg7, name="fig7b")

    BUDGET = 40

    def run() -> tuple[list, list, int]:
        frag_counts, proper_counts, proper_bad = [], [], 0
        # omega just under tau: only pulses >= 1.1 commit.  The clock
        # (toggling every 0.05-0.5) makes the fragmented OR plane dip at
        # the half-cube handoffs, so most candidate windows are killed
        # before maturing — the flip-flop starves for unbounded
        # stretches, exactly the "may enter a deadlock" of the proof.
        mhs = MhsParams(omega=1.1, tau=1.2)
        for seed in range(8):
            sgf, frag_nl = _fragmented_fig7b_netlist()
            sim = Simulator(frag_nl, SimConfig(jitter=0.0, seed=seed, mhs=mhs))
            env = SGEnvironment(sgf, sim, seed=seed, input_delay=(0.05, 0.5))
            rep = env.run(max_time=400.0, max_transitions=BUDGET)
            frag_counts.append(rep.transitions_observed)

            sim2 = Simulator(
                proper.netlist, SimConfig(jitter=0.0, seed=seed, mhs=mhs)
            )
            env2 = SGEnvironment(sg7, sim2, seed=seed, input_delay=(0.05, 0.5))
            rep2 = env2.run(max_time=400.0, max_transitions=BUDGET)
            proper_counts.append(rep2.transitions_observed)
            if not rep2.ok:
                proper_bad += 1
        return frag_counts, proper_counts, proper_bad

    frag_counts, proper_counts, proper_bad = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    # the proper cover always exhausts its transition budget cleanly
    assert proper_bad == 0
    assert all(c == BUDGET for c in proper_counts), proper_counts
    # the fragmented cover starves: some runs stall below the budget,
    # and aggregate throughput drops
    assert any(c < BUDGET for c in frag_counts), frag_counts
    assert sum(frag_counts) < sum(proper_counts)
