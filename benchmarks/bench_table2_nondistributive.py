"""Table 2, part 2 — the 6 non-distributive industrial circuits.

Regenerates the second half of Table 2: SIS and SYN report the
failure code ``(1)`` on every circuit; ASSASSIN/N-SHOT synthesizes all
of them.  ("For these non-distributive designs, no comparison is
currently possible.")
"""

from repro.bench import run_benchmark
from repro.bench.circuits import NONDISTRIBUTIVE_BENCHMARKS
from repro.core import synthesize, verify_hazard_freeness
from repro.bench.runner import sg_of


def regenerate() -> tuple[str, list]:
    rows = [run_benchmark(n) for n in NONDISTRIBUTIVE_BENCHMARKS]
    header = (
        f"{'Circuit':15} {'states':>6} {'SIS':>6} {'SYN':>6} {'ASSASSIN':>10}"
        f"   |  paper ASSASSIN: {'':>8}"
    )
    lines = ["Table 2 (part 2): non-distributive industrial designs", header,
             "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:15} {r.states:>6} {r.sis:>6} {r.syn:>6} {r.assassin:>10}"
            f"   |  {r.paper_assassin:>24}"
        )
    return "\n".join(lines) + "\n", rows


def test_table2_nondistributive(benchmark, save_artifact):
    text, rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    save_artifact("table2_nondistributive.txt", text)
    assert len(rows) == 6
    for r in rows:
        assert r.sis == "(1)", r.name
        assert r.syn == "(1)", r.name
        assert "/" in r.assassin, r.name
        assert not r.compensation_required, r.name


def test_table2_nondistributive_verified_in_closed_loop(benchmark):
    """The two smallest industrial circuits also pass Monte-Carlo
    closed-loop verification (the gate/transistor simulation stand-in)."""

    def run():
        results = {}
        for name in ("pmcm2", "pmcm1"):
            sg = sg_of(name)
            circuit = synthesize(sg, name=name, delay_spread=0.45)
            results[name] = verify_hazard_freeness(
                circuit, runs=3, max_transitions=60
            )
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    for name, summary in results.items():
        assert summary.ok, (name, summary.summary())
