"""Table 1 — SG regions ↔ SET/RESET values ↔ MHS operation modes.

Regenerates the table for a concrete signal (the C-element's output),
checking every row against the paper's specification:

    s ∈ ER(+a):  SET=1 RESET=0  mode +a
    s ∈ QR(+a):  SET=* RESET=0  mode a = 1
    s ∈ ER(-a):  SET=0 RESET=1  mode -a
    s ∈ QR(-a):  SET=0 RESET=*  mode a = 0
    unreachable: SET=* RESET=*  mode memory
"""

from repro.bench.circuits import figure1_csc_sg
from repro.core import format_mode_table, region_mode_table, synthesize
from repro.stg import elaborate, parse_g

CELEM = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""

PAPER_TABLE1 = {
    "ER(+": ("1", "0"),
    "QR(+": ("*", "0"),
    "ER(-": ("0", "1"),
    "QR(-": ("0", "*"),
    "unreachable": ("*", "*"),
}


def regenerate() -> tuple[str, list]:
    sg = elaborate(parse_g(CELEM))
    c = sg.signal_index("c")
    rows = region_mode_table(sg, c)
    text = "Table 1 instantiated for the C-element output c\n\n"
    text += format_mode_table(sg, rows) + "\n"
    return text, [(sg, rows)]


def test_table1_modes(benchmark, save_artifact):
    text, [(sg, rows)] = benchmark(regenerate)
    save_artifact("table1_modes.txt", text)
    assert len(rows) == sg.num_states
    for r in rows:
        key = next(k for k in PAPER_TABLE1 if r.region.startswith(k))
        assert (r.set_value, r.reset_value) == PAPER_TABLE1[key], r


def test_table1_implemented_cover_respects_modes(benchmark):
    """The synthesized cover realizes the specified (non-*) entries:
    SET reads 1 on every ER(+a) state and 0 on every ER(-a)/QR(-a)
    state, for every non-input signal of a non-distributive example."""
    sg = figure1_csc_sg()

    def check() -> int:
        circuit = synthesize(sg)
        checked = 0
        for a in sg.non_inputs:
            rows = region_mode_table(sg, a)
            so = circuit.spec.output_index(a, "set")
            ro = circuit.spec.output_index(a, "reset")
            for r in rows:
                code = sg.code(r.state)
                for value, out in ((r.set_value, so), (r.reset_value, ro)):
                    if value == "1":
                        assert circuit.cover.contains_minterm(code, out)
                        checked += 1
                    elif value == "0":
                        assert not circuit.cover.contains_minterm(code, out)
                        checked += 1
        return checked

    assert benchmark(check) > 0
