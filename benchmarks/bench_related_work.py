"""Section II — the quantitative claims against the Q-module approach.

The paper argues the locally-clocked Q-module architecture [9] "can be
significantly more expensive in terms of both area and performance"
because it needs (a) a Q-flop on *every* external input and feedback
signal ("typically much more than the number of feedback state
signals"), (b) a tree of N C-elements for the N-way rendezvous, and
(c) a delay line at least as long as the combinational worst path.

This bench regenerates the comparison across the suite and asserts
each of those structural claims, plus the complex-gate reference point
([2, 17]) that bounds what any latch-based method can hope for.
"""

from repro.baselines import synthesize_complex_gate, synthesize_qmodule
from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS, NONDISTRIBUTIVE_BENCHMARKS
from repro.bench.runner import sg_of
from repro.core import synthesize

SAMPLE = ["chu133", "chu172", "full", "qr42", "sbuf-send-ctl", "pe-send-ifc",
          "pmcm1", "combuf2"]


def regenerate() -> tuple[str, list]:
    header = (
        f"{'circuit':15} {'N-SHOT':>10} {'Q-module':>10} {'cgate':>10} "
        f"{'qflops':>7} {'latches(N-SHOT)':>16}"
    )
    lines = ["Section II: N-SHOT vs the locally-clocked Q-module approach",
             header, "-" * len(header)]
    rows = []
    for name in SAMPLE:
        sg = sg_of(name)
        ours = synthesize(sg, name=name)
        qmod = synthesize_qmodule(sg, name=name)
        cg = synthesize_complex_gate(sg, name=name)
        lines.append(
            f"{name:15} {ours.stats().row():>10} {qmod.stats().row():>10} "
            f"{cg.stats().row():>10} {qmod.num_qflops:>7} "
            f"{len(sg.non_inputs):>16}"
        )
        rows.append((name, sg, ours, qmod, cg))
    return "\n".join(lines) + "\n", rows


def test_qmodule_costs(benchmark, save_artifact):
    text, rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    save_artifact("related_work_qmodule.txt", text)
    for name, sg, ours, qmod, _ in rows:
        # (a) many more memory elements: one Q-flop per input AND
        # feedback signal vs one MHS flip-flop per non-input signal
        assert qmod.num_qflops == sg.num_signals
        assert qmod.num_qflops > len(sg.non_inputs)
        # (b) the rendezvous tree exists: N-1 extra C-elements
        assert qmod.rendezvous_cells == sg.num_signals - 1
        # (c) the clock delay line covers the combinational worst path
        assert qmod.clock_delay_line >= 1.2
        # the paper's bottom line: more area and no faster
        assert qmod.stats().area > ours.stats().area, name
        assert qmod.stats().delay >= ours.stats().delay, name


def test_qmodule_handles_nondistributive_but_expensively(benchmark):
    """[9] has no distributivity restriction — its problem is cost."""

    def run():
        out = []
        for name in NONDISTRIBUTIVE_BENCHMARKS:
            sg = sg_of(name)
            qmod = synthesize_qmodule(sg, name=name)
            ours = synthesize(sg, name=name)
            out.append((name, qmod.stats().area, ours.stats().area))
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    for name, q_area, our_area in rows:
        assert q_area > our_area, name


def test_complex_gate_is_the_idealized_floor(benchmark):
    """[2, 17]'s single-complex-gate assumption under-counts what basic
    gates can do — it lower-bounds every realizable flow here."""

    def run():
        out = []
        for name in ("chu133", "full", "pmcm1"):
            sg = sg_of(name)
            cg = synthesize_complex_gate(sg, name=name)
            ours = synthesize(sg, name=name)
            out.append((name, cg.stats(), ours.stats()))
        return out

    for name, cg_stats, our_stats in benchmark.pedantic(run, iterations=1, rounds=1):
        assert cg_stats.area < our_stats.area, name
        assert cg_stats.delay <= our_stats.delay, name
