"""Figure 4 — MHS flip-flop response to input pulses.

Regenerates the figure's series: for a sweep of set-input pulse widths
``v`` around the threshold ω, the flip-flop output — nothing for
``v < ω``, a single transition translated forward by τ for ``v ≥ ω``.
"""

from repro.sim import MhsParams, mhs_response

OMEGA, TAU = 0.4, 1.2
PARAMS = MhsParams(OMEGA, TAU)
WIDTHS = [0.05, 0.1, 0.2, 0.3, 0.39, 0.4, 0.41, 0.6, 0.8, 1.2, 2.0, 4.0]


def regenerate() -> tuple[str, list]:
    rows = []
    lines = [
        f"Figure 4: MHS response (omega={OMEGA}, tau={TAU})",
        f"{'pulse width v':>14} {'fires':>6} {'output time':>12} {'t - edge':>9}",
    ]
    for v in WIDTHS:
        events = mhs_response([(10.0, 10.0 + v)], PARAMS)
        fires = bool(events)
        t = events[0][0] if events else float("nan")
        lines.append(
            f"{v:>14.2f} {str(fires):>6} "
            + (f"{t:>12.2f} {t - 10.0:>9.2f}" if fires else f"{'—':>12} {'—':>9}")
        )
        rows.append((v, fires, t))
    return "\n".join(lines) + "\n", rows


def test_fig4_pulse_sweep(benchmark, save_artifact):
    text, rows = benchmark(regenerate)
    save_artifact("fig4_mhs_response.txt", text)
    for v, fires, t in rows:
        if v < OMEGA:
            assert not fires, f"pulse {v} below omega must be absorbed"
        else:
            assert fires, f"pulse {v} at/above omega must fire"
            # "the output transition is simply translated forward by tau"
            assert abs(t - (10.0 + TAU)) < 1e-9


def test_fig4_monotone_threshold(benchmark):
    """The response is a sharp threshold in pulse width."""

    def firing_profile():
        return [
            bool(mhs_response([(0.0, w)], PARAMS))
            for w in [k * 0.02 for k in range(1, 60)]
        ]

    profile = benchmark(firing_profile)
    # once firing starts it never stops again as width grows
    first_fire = profile.index(True)
    assert all(profile[first_fire:])
    assert not any(profile[:first_fire])
