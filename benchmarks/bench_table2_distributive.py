"""Table 2, part 1 — the 19 distributive benchmarks, three flows.

Regenerates the comparison SIS/Lavagno vs SYN/Beerel vs
ASSASSIN/N-SHOT on the reconstructed suite, prints the paper's numbers
alongside, and asserts the qualitative shape of Section V:

* ASSASSIN is never larger or slower than SYN;
* SIS is slower than ASSASSIN wherever it inserted delay lines;
* delay compensation is never required for ASSASSIN.

Absolute values differ from the paper (reconstructed circuits,
synthetic library) — see EXPERIMENTS.md.
"""

import pytest

from repro.bench import run_benchmark
from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS

SMALL = [n for n, (_, st, _) in DISTRIBUTIVE_BENCHMARKS.items() if st <= 300]
LARGE = [n for n, (_, st, _) in DISTRIBUTIVE_BENCHMARKS.items() if st > 300]


def _table(names) -> tuple[str, list]:
    rows = [run_benchmark(n) for n in names]
    header = (
        f"{'Circuit':15} {'states':>6} {'SIS':>10} {'SYN':>10} {'ASSASSIN':>10}"
        f"   |   paper: {'SIS':>9} {'SYN':>9} {'ASSASSIN':>9}"
    )
    lines = ["Table 2 (part 1): distributive benchmarks", header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:15} {r.states:>6} {r.sis:>10} {r.syn:>10} {r.assassin:>10}"
            f"   |          {r.paper_sis:>9} {r.paper_syn:>9} {r.paper_assassin:>9}"
        )
    return "\n".join(lines) + "\n", rows


def _area(cell: str) -> float:
    return float(cell.split("/")[0])


def _delay(cell: str) -> float:
    return float(cell.split("/")[1])


def test_table2_distributive_small(benchmark, save_artifact):
    text, rows = benchmark.pedantic(
        lambda: _table(SMALL), iterations=1, rounds=1
    )
    save_artifact("table2_distributive_small.txt", text)
    for r in rows:
        assert "/" in r.assassin, r.name
        assert not r.compensation_required, r.name
        if "/" in r.syn:
            assert _area(r.assassin) <= _area(r.syn), r.name
            assert _delay(r.assassin) <= _delay(r.syn), r.name


def test_table2_distributive_large(benchmark, save_artifact):
    text, rows = benchmark.pedantic(
        lambda: _table(LARGE), iterations=1, rounds=1
    )
    save_artifact("table2_distributive_large.txt", text)
    for r in rows:
        assert "/" in r.assassin, r.name
        assert not r.compensation_required, r.name
        if "/" in r.syn:
            assert _area(r.assassin) <= _area(r.syn), r.name


@pytest.mark.parametrize("name", ["pe-send-ifc", "pr-rcv-ifc", "wrdatab"])
def test_table2_sis_pays_delay_for_hazard_freedom(benchmark, name):
    """The concurrent interface controllers force SIS delay padding."""
    row = benchmark.pedantic(lambda: run_benchmark(name), iterations=1, rounds=1)
    assert row.extras.get("sis_delay_lines", 0) > 0
    assert _delay(row.sis) > _delay(row.assassin)


def test_table2_synthesis_throughput(benchmark):
    """Timing anchor: one mid-size circuit through the ASSASSIN flow."""
    from repro.bench.runner import sg_of
    from repro.core import synthesize

    sg = sg_of("vbe10b")
    circuit = benchmark(lambda: synthesize(sg, name="vbe10b"))
    assert circuit.stats().area > 0
