"""Shared machinery for the paper-reproduction benches.

Every ``bench_*`` file regenerates one table or figure of the paper.
Regenerated artefacts (the text of each table/figure's data) are
written under ``benchmarks/results/`` so they can be inspected and
diffed against EXPERIMENTS.md; the pytest-benchmark fixture times the
computation that produces them.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Write one regenerated table/figure to ``benchmarks/results/``."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = results_dir / name
        path.write_text(text)
        return path

    return _save
