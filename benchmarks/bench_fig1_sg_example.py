"""Figure 1 — the example SG, its regions and detonant states.

Regenerates: the SG of Figure 1 (OR-causality on both edges of ``c``),
its excitation/quiescent regions for ``c``, and the two detonant
states the paper points out (``0*0*0`` and ``1*1*1``).
"""

from repro.bench.circuits import figure1_sg
from repro.sg import detonant_states, excitation_regions, signal_regions


def regenerate() -> str:
    sg = figure1_sg()
    c = sg.signal_index("c")
    lines = [
        "Figure 1: example SG (inputs a, b; output c)",
        f"states: {sg.num_states}",
    ]
    sr = signal_regions(sg, c)
    for er, qr in zip(sr.excitation, sr.quiescent):
        lines.append(
            f"{er.label(sg)}: "
            + ", ".join(sorted(sg.state_label(s) for s in er.states))
        )
        lines.append(
            f"{qr.label(sg)}: "
            + ", ".join(sorted(sg.state_label(s) for s in qr.states))
        )
    dets = sorted({sg.state_label(d.state) for d in detonant_states(sg, c)})
    lines.append(f"detonant states w.r.t. c: {', '.join(dets)}")
    return "\n".join(lines) + "\n"


def test_fig1_regions(benchmark, save_artifact):
    text = benchmark(regenerate)
    save_artifact("fig1_sg_example.txt", text)
    # paper: both the all-zero and all-one states are detonant
    assert "0*0*0" in text and "1*1*1" in text
    assert "ER(+c)" in text and "ER(-c)" in text


def test_fig1_region_structure(benchmark):
    sg = figure1_sg()
    c = sg.signal_index("c")
    ers = benchmark(lambda: excitation_regions(sg, c))
    # OR-causality on both edges: one connected ER per direction,
    # each containing three states ({100,010,110} and its dual)
    assert sorted(len(r.states) for r in ers) == [3, 3]
