"""Figure 7 — single-traversal vs non-single-traversal SGs.

Regenerates: the classification of both example SGs, the trigger
regions of the free-running-clock example (two states each, matching
the paper's remark that 7(b) "however satisfies the trigger
requirement"), and the synthesized circuits for both.
"""

from repro.bench.circuits import figure7a_sg, figure7b_sg
from repro.core import check_trigger_cubes, synthesize
from repro.sg import excitation_regions, is_single_traversal, trigger_regions


def regenerate() -> tuple[str, dict]:
    lines = ["Figure 7: traversal classification", ""]
    data = {}
    for label, sg in (("(a)", figure7a_sg()), ("(b)", figure7b_sg())):
        single = is_single_traversal(sg)
        data[label] = single
        lines.append(f"{label}: {sg.num_states} states, single traversal: {single}")
        y = sg.signal_index("y")
        for er in excitation_regions(sg, y):
            for tr in trigger_regions(sg, er):
                lines.append(
                    f"  {er.label(sg)} trigger region: "
                    + ", ".join(sorted(sg.state_label(s) for s in tr.states))
                )
        circuit = synthesize(sg, name=f"fig7{label}")
        audits = check_trigger_cubes(circuit.spec, circuit.cover)
        ok = all(a.ok for a in audits)
        s = circuit.stats()
        lines.append(
            f"  synthesized: area {s.area:.0f}, delay {s.delay:.1f}; "
            f"trigger requirement satisfied: {ok}"
        )
        data[label + "_trigger_ok"] = ok
    return "\n".join(lines) + "\n", data


def test_fig7_traversal(benchmark, save_artifact):
    text, data = benchmark(regenerate)
    save_artifact("fig7_traversal.txt", text)
    assert data["(a)"] is True
    assert data["(b)"] is False
    # both satisfy the trigger requirement (7b via a clk-independent cube)
    assert data["(a)_trigger_ok"] and data["(b)_trigger_ok"]


def test_fig7b_trigger_regions_two_states(benchmark):
    sg = figure7b_sg()
    y = sg.signal_index("y")

    def sizes():
        return [
            len(tr.states)
            for er in excitation_regions(sg, y)
            for tr in trigger_regions(sg, er)
        ]

    assert benchmark(sizes) == [2, 2]
