"""Figure 6 — response of the MHS flip-flop to hazardous inputs.

Regenerates the experiment behind the figure: a hazardous pulse train
drives the set input (then the reset input); the MHS flip-flop
produces exactly one clean up-transition per excitation phase, while a
plain C-element/RS latch in the same position fires on runt pulses.
The bench also reproduces the figure's point about the filter stage by
simulating a full N-SHOT circuit and comparing glitch counts on the
plane outputs vs the flip-flop output.
"""

from repro.bench.circuits import figure1_csc_sg
from repro.core import synthesize
from repro.sim import (
    MhsParams,
    SGEnvironment,
    SimConfig,
    Simulator,
    analyze_hazards,
    celement_response,
    mhs_response,
)

OMEGA, TAU = 0.4, 1.2
PARAMS = MhsParams(OMEGA, TAU)
# the hazardous stream: runts at 1.0/1.4/2.0, a real pulse at 2.6
TRAIN = [(1.0, 1.1), (1.4, 1.55), (2.0, 2.3), (2.6, 3.4), (3.8, 3.9)]


def regenerate() -> tuple[str, dict]:
    mhs_events = mhs_response(TRAIN, PARAMS)
    cel_events = celement_response(TRAIN, TAU)
    lines = [
        "Figure 6: response to hazardous inputs",
        "set-input pulse train: " + ", ".join(f"[{a}, {b}]" for a, b in TRAIN),
        f"MHS flip-flop output transitions: {mhs_events}",
        f"plain C-element output transitions: {cel_events}",
    ]
    data = {"mhs": mhs_events, "cel": cel_events}

    # in-circuit version: glitchy planes, clean output
    sg = figure1_csc_sg()
    circuit = synthesize(sg, name="fig6", delay_spread=0.45)
    sim = Simulator(circuit.netlist, SimConfig(jitter=0.45, seed=6))
    env = SGEnvironment(sg, sim, seed=66)
    report = env.run(max_time=1500.0, max_transitions=120)
    hz = analyze_hazards(
        sim.traces,
        observable_nets=[sg.signals[a] for a in sg.non_inputs],
        internal_nets=circuit.architecture.sop_nets,
    )
    lines.append("")
    lines.append("closed loop: " + report.summary())
    lines.append("hazard census: " + hz.summary())
    data["closed_loop_ok"] = report.ok
    data["internal"] = hz.internal_total
    data["observable"] = hz.observable_total
    return "\n".join(lines) + "\n", data


def test_fig6_hazardous_inputs(benchmark, save_artifact):
    text, data = benchmark(regenerate)
    save_artifact("fig6_hazardous_inputs.txt", text)
    # MHS: exactly one transition, caused by the only pulse >= omega
    assert len(data["mhs"]) == 1
    assert abs(data["mhs"][0][0] - (2.6 + TAU)) < 1e-9
    # C-element: fires early, on the first runt
    assert len(data["cel"]) == 1
    assert data["cel"][0][0] < data["mhs"][0][0]
    # the full circuit stays externally clean despite internal pulses
    assert data["closed_loop_ok"]
    assert data["observable"] == 0


def test_fig6_filter_blocks_every_runt_train(benchmark):
    """Randomized runt trains never commit the flip-flop."""
    import random

    def run():
        rng = random.Random(42)
        bad = 0
        for _ in range(200):
            t, train = 0.0, []
            for _ in range(rng.randint(1, 8)):
                t += rng.uniform(0.5, 2.0)
                train.append((t, t + rng.uniform(0.01, OMEGA - 0.02)))
                t = train[-1][1]
            if mhs_response(train, PARAMS):
                bad += 1
        return bad

    assert benchmark(run) == 0
