"""Figure 5 — the MHS flip-flop's internal structure.

Regenerates: the gate-level anatomy of the cell (master RS latch →
hazard filter → slave RS latch), its port list, the per-stage
breakdown, and the area accounting that puts it in the same class as a
C-element (footnote 4 of the paper).
"""

from repro.netlist import DEFAULT_LIBRARY, Gate, GateType, build_mhs_cell, MHS_STAGE_NAMES


def regenerate() -> tuple[str, object]:
    cell = build_mhs_cell()
    lines = ["Figure 5: MHS flip-flop structure", ""]
    lines.append(cell.describe())
    lines.append("")
    for stage in MHS_STAGE_NAMES:
        gates = [g for g in cell.gates if g.attrs.get("stage") == stage]
        lines.append(
            f"stage {stage}: "
            + ", ".join(f"{g.name}({g.type.value})" for g in gates)
        )
    mhs_area = DEFAULT_LIBRARY.gate_area(Gate("m", GateType.MHSFF, [], "q"))
    cel_area = DEFAULT_LIBRARY.gate_area(Gate("c", GateType.CEL, [], "q"))
    lines.append("")
    lines.append(
        f"area model: MHSFF={mhs_area:.0f}, C-element={cel_area:.0f} "
        f"(ratio {mhs_area / cel_area:.2f} — 'comparable in physical size')"
    )
    return "\n".join(lines) + "\n", cell


def test_fig5_structure(benchmark, save_artifact):
    text, cell = benchmark(regenerate)
    save_artifact("fig5_mhs_structure.txt", text)
    assert cell.validate() == []
    stages = [g.attrs.get("stage") for g in cell.gates]
    # two filtering stages around the master: master, 2 filters, slave
    assert stages.count("master") == 1
    assert stages.count("filter") == 2
    assert stages.count("slave") == 1
    # dual-rail output and the slave_set/slave_reset nets of Figure 6
    assert {"q", "qn"} <= set(cell.primary_outputs)
    assert {"slave_set", "slave_reset"} <= cell.nets()


def test_fig5_area_class(benchmark):
    ratio = benchmark(
        lambda: DEFAULT_LIBRARY.gate_area(Gate("m", GateType.MHSFF, [], "q"))
        / DEFAULT_LIBRARY.gate_area(Gate("c", GateType.CEL, [], "q"))
    )
    assert 0.5 <= ratio <= 1.5
