"""Tool scalability — synthesis cost vs specification size.

Not a paper table, but the property that made ASSASSIN usable on
``tsbmsiBRK`` (4729 states): the flow's cost is dominated by state
enumeration and stays tractable as the state count grows
exponentially.  This bench sweeps Muller pipelines (the state count
doubles per stage) through the full flow and records wall-clock and
result sizes; the assertion is qualitative (completes within budget,
cover size grows linearly in the number of signals, not states).
"""

import time

from repro.bench.circuits.handshakes import muller_pipeline
from repro.core import synthesize
from repro.stg import elaborate

STAGES = [2, 4, 6, 8]


def regenerate() -> tuple[str, list]:
    header = (
        f"{'stages':>6} {'signals':>8} {'states':>8} {'cover cubes':>12} "
        f"{'area':>8} {'delay':>6} {'seconds':>8}"
    )
    lines = ["Scalability: Muller pipelines through the full flow", header,
             "-" * len(header)]
    rows = []
    for n in STAGES:
        t0 = time.time()
        sg = elaborate(muller_pipeline(n, name=f"pipe{n}"))
        circuit = synthesize(sg, name=f"pipe{n}")
        dt = time.time() - t0
        s = circuit.stats()
        lines.append(
            f"{n:>6} {sg.num_signals:>8} {sg.num_states:>8} "
            f"{len(circuit.cover):>12} {s.area:>8.0f} {s.delay:>6.1f} {dt:>8.2f}"
        )
        rows.append((n, sg, circuit, dt))
    return "\n".join(lines) + "\n", rows


def test_scalability_sweep(benchmark, save_artifact):
    text, rows = benchmark.pedantic(regenerate, iterations=1, rounds=1)
    save_artifact("scalability.txt", text)
    for n, sg, circuit, dt in rows:
        # state counts double per stage; the cover grows with signals
        assert sg.num_states == 2 ** (n + 2)
        assert len(circuit.cover) <= 4 * sg.num_signals
        assert not circuit.compensation_required
    # largest instance stays tractable
    assert rows[-1][3] < 60.0


def test_critical_path_is_the_four_level_story(benchmark):
    """The worst path of a pipeline is AND → OR → ack-AND → MHS —
    the 4 × 1.2 ns = 4.8 ns cell of Table 2."""
    sg = elaborate(muller_pipeline(6, name="pipe6"))

    def trace():
        circuit = synthesize(sg, name="pipe6")
        return circuit, circuit.netlist.critical_path_trace()

    circuit, path = benchmark.pedantic(trace, iterations=1, rounds=1)
    assert circuit.stats().delay == 4.8
    kinds = [circuit.netlist.driver(n) for n in []]  # keep linters quiet
    names = [name for name, _ in path]
    assert names[-1].startswith("mhs_")
    assert any(name.startswith("ack_") for name in names)
    assert len(path) == 4
