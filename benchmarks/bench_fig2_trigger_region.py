"""Figure 2 — a trigger region strictly inside its excitation region.

Regenerates: the ER(+x) of the Figure 2 style SG, its internal
branching, and the trigger region (the sub-region that, once entered,
can only be left by firing ``+x``).
"""

from repro.bench.circuits import figure2_sg
from repro.sg import excitation_regions, trigger_region_reachable_from_all, trigger_regions


def regenerate() -> str:
    sg = figure2_sg()
    x = sg.signal_index("x")
    lines = ["Figure 2: trigger region illustration"]
    for er in excitation_regions(sg, x):
        if not er.rising:
            continue
        lines.append(
            f"{er.label(sg)} = "
            + ", ".join(sorted(sg.state_label(s) for s in er.states))
        )
        for tr in trigger_regions(sg, er):
            lines.append(
                "TR(+x) = "
                + ", ".join(sorted(sg.state_label(s) for s in tr.states))
            )
        lines.append(
            f"trigger region reachable from every ER state: "
            f"{trigger_region_reachable_from_all(sg, er)}"
        )
    return "\n".join(lines) + "\n"


def test_fig2_trigger_region(benchmark, save_artifact):
    text = benchmark(regenerate)
    save_artifact("fig2_trigger_region.txt", text)
    assert "TR(+x)" in text
    assert "True" in text  # Property 2


def test_fig2_tr_strictly_smaller(benchmark):
    sg = figure2_sg()
    x = sg.signal_index("x")

    def compute():
        er = next(r for r in excitation_regions(sg, x) if r.rising)
        return er, trigger_regions(sg, er)

    er, trs = benchmark(compute)
    assert len(trs) == 1
    assert len(trs[0].states) < len(er.states)
