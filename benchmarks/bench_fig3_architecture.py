"""Figure 3 — the N-SHOT architecture instantiated for a specification.

Regenerates: the block structure of Figure 3 for the non-distributive
OR element — set/reset SOP planes, the two acknowledgement AND gates
gated by the flip-flop's dual rails, the (here unnecessary) local
delay compensation, and the MHS flip-flop — plus its structural
Verilog.
"""

from repro.bench.circuits import figure1_csc_sg
from repro.core import synthesize
from repro.netlist import GateType, write_verilog


def regenerate() -> tuple[str, object]:
    sg = figure1_csc_sg()
    circuit = synthesize(sg, name="fig3_orelement")
    lines = ["Figure 3: N-SHOT architecture for the OR element", ""]
    lines.append(circuit.netlist.describe())
    lines.append("")
    for req in circuit.delay_requirements.values():
        lines.append("Equation (1): " + req.describe())
    lines.append("")
    lines.append(write_verilog(circuit.netlist))
    return "\n".join(lines) + "\n", circuit


def test_fig3_architecture(benchmark, save_artifact):
    text, circuit = benchmark(regenerate)
    save_artifact("fig3_architecture.txt", text)
    nl = circuit.netlist
    # one MHS flip-flop per non-input signal, dual-rail
    mhs = [g for g in nl.gates if g.type == GateType.MHSFF]
    assert len(mhs) == 1
    assert mhs[0].output_n is not None
    # acknowledgement gates reading the flip-flop rails
    acks = [g for g in nl.gates if g.name.startswith("ack_")]
    assert len(acks) == 2
    rails = {mhs[0].output, mhs[0].output_n}
    for g in acks:
        assert rails & {p.net for p in g.inputs}
    # no delay line needed (the paper's universal observation)
    assert not circuit.compensation_required
    assert not [g for g in nl.gates if g.type == GateType.DELAY]


def test_fig3_synthesis_speed(benchmark):
    sg = figure1_csc_sg()
    circuit = benchmark(lambda: synthesize(sg, name="fig3"))
    assert circuit.netlist.validate() == []
