#!/usr/bin/env python3
"""Non-distributive industrial interface circuits (Table 2, part 2).

Walks through the six reconstructed IMEC interface circuits
(``pmcm1/2``, ``combuf1/2``, ``sing2dual-inp/out``): shows why each is
non-distributive (the detonant states), demonstrates that both
baseline flows reject them, synthesizes each with the N-SHOT flow, and
verifies the smaller ones hazard-free in closed loop.

Run:  python examples/nondistributive_interface.py
"""

from repro import (
    NotDistributiveError,
    synthesize,
    synthesize_beerel,
    synthesize_lavagno,
    verify_hazard_freeness,
)
from repro.bench.circuits import NONDISTRIBUTIVE_BENCHMARKS
from repro.sg import detonant_states, non_distributive_signals


def main() -> None:
    for name, (builder, paper_states, paper_row) in NONDISTRIBUTIVE_BENCHMARKS.items():
        sg = builder()
        print("=" * 70)
        print(f"{name}: {sg.num_states} states (paper: {paper_states}), "
              f"signals {sg.signals}")

        nd = non_distributive_signals(sg)
        for a in nd:
            dets = detonant_states(sg, a)
            labels = sorted({sg.state_label(d.state) for d in dets})[:4]
            print(f"  non-distributive w.r.t. {sg.signals[a]}: "
                  f"detonant states {labels}"
                  + ("…" if len(dets) > 4 else ""))

        for flow, label in ((synthesize_lavagno, "SIS"), (synthesize_beerel, "SYN")):
            try:
                flow(sg)
                print(f"  {label}: unexpectedly succeeded!")
            except NotDistributiveError:
                print(f"  {label}: rejected — failure code (1), as in Table 2")

        circuit = synthesize(sg, name=name, delay_spread=0.4)
        s = circuit.stats()
        print(f"  N-SHOT: area {s.area:.0f}, delay {s.delay:.1f} ns "
              f"(paper ASSASSIN row: {paper_row}); "
              f"delay compensation required: {circuit.compensation_required}")

        if sg.num_states <= 64:
            summary = verify_hazard_freeness(circuit, runs=3, max_transitions=120)
            print(f"  verification: {summary.summary()}")
        print()


if __name__ == "__main__":
    main()
