#!/usr/bin/env python3
"""Full front-to-back flow on a user-supplied STG file.

Parses an astg ``.g`` file (or a built-in VME-style example), runs
every stage of the ASSASSIN pipeline with intermediate artefacts
printed: STG → state graph → property report → regions → set/reset
(F, D, R) → minimized cover → trigger audit → Equation (1) →
netlist → Verilog → Monte-Carlo verification.

Run:  python examples/stg_to_circuit.py [file.g]
"""

import sys

from repro import elaborate, parse_g, synthesize, verify_hazard_freeness, write_verilog
from repro.core import check_trigger_cubes, derive_sop_spec
from repro.logic import write_pla
from repro.sg import is_distributive, is_single_traversal, signal_regions, validate_for_synthesis

VME_READ_G = """
# A small VME-bus style read controller (reconstruction)
.model vme-read
.inputs dsr ldtack
.outputs lds dtack d
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack- lds-
lds- ldtack-
ldtack- dsr+
dtack- dsr+
.marking { <ldtack-,dsr+> <dtack-,dsr+> }
.end
"""


def main() -> None:
    if len(sys.argv) > 1:
        text = open(sys.argv[1]).read()
        print(f"# parsing {sys.argv[1]}")
    else:
        text = VME_READ_G
        print("# no file given: using the built-in VME read controller")

    stg = parse_g(text)
    print(stg.describe())

    print("\n--- token-flow elaboration -------------------------------")
    sg = elaborate(stg)
    print(f"{sg.num_states} states; initial {sg.state_label(sg.initial)}")
    report = validate_for_synthesis(sg)
    print(report.summary())
    if not report.ok:
        sys.exit("specification not synthesizable — fix the STG first")
    print(f"distributive: {is_distributive(sg)}; "
          f"single traversal: {is_single_traversal(sg)}")

    print("\n--- regions per non-input signal -------------------------")
    for a in sg.non_inputs:
        sr = signal_regions(sg, a)
        ers = ", ".join(
            f"{er.label(sg)}:{len(er.states)}st" for er in sr.excitation
        )
        print(f"  {sg.signals[a]}: {ers}")

    print("\n--- multi-output (F, D, R) and minimized cover -----------")
    spec = derive_sop_spec(sg)
    circuit = synthesize(sg, name=stg.name, delay_spread=0.4)
    names = [spec.output_name(o) for o in range(spec.num_outputs)]
    print(write_pla(circuit.cover, input_names=sg.signals, output_names=names))

    print("--- trigger audit (Theorem 1) ----------------------------")
    for chk in check_trigger_cubes(spec, circuit.cover):
        status = "ok" if chk.ok else f"{len(chk.uncovered)} UNCOVERED"
        print(f"  {chk.kind}({sg.signals[chk.signal]}): "
              f"{chk.regions_checked} trigger regions, {status}")

    print("\n--- Equation (1) delay requirement -----------------------")
    for req in circuit.delay_requirements.values():
        print(" ", req.describe())

    print("\n--- netlist ----------------------------------------------")
    s = circuit.stats()
    print(f"area {s.area:.0f}, delay {s.delay:.1f} ns, {s.num_gates} gates "
          f"({s.num_sequential} MHS flip-flops)")

    print("\n--- Monte-Carlo closed-loop verification ------------------")
    print(" ", verify_hazard_freeness(circuit, runs=5).summary())

    print("\n--- structural Verilog ------------------------------------")
    print(write_verilog(circuit.netlist))


if __name__ == "__main__":
    main()
