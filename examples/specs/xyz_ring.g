# Three-signal ring oscillator stage with one input and two outputs.
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
