# Two-phase handshake follower: the smallest single-traversal spec.
.model seq
.inputs r
.outputs y
.graph
r+ y+
y+ r-
r- y-
y- r+
.marking { <y-,r+> }
.end
