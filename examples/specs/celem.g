# Muller C-element (Figure 2 of the paper): 8 states, distributive.
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
