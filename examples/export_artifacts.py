#!/usr/bin/env python3
"""Export every interchange artefact for one design.

Synthesizes the non-distributive OR element and writes, under
``artifacts/``:

* ``orelement.g``      — the specification as an STG would print (here
                         the SG serialization, since OR-causality has
                         no safe-net STG form),
* ``orelement.sg``     — the state graph in ``.sg`` format,
* ``orelement.pla``    — the minimized multi-output cover,
* ``orelement.v``      — structural Verilog of the N-SHOT netlist,
* ``orelement_sg.dot`` — the SG with region colouring (Graphviz),
* ``orelement_nl.dot`` — the netlist diagram (Figure 3 style),
* ``orelement.vcd``    — a closed-loop simulation trace for GTKWave.

Run:  python examples/export_artifacts.py [outdir]
"""

import pathlib
import sys

from repro import synthesize, write_verilog
from repro.bench.circuits import figure1_csc_sg
from repro.logic import write_pla
from repro.sg import netlist_to_dot, sg_to_dot, signal_regions, write_sg
from repro.sim import SGEnvironment, SimConfig, Simulator, write_vcd


def main(outdir: str = "artifacts") -> None:
    out = pathlib.Path(outdir)
    out.mkdir(exist_ok=True)

    sg = figure1_csc_sg()
    circuit = synthesize(sg, name="orelement", delay_spread=0.45)

    # specification formats
    (out / "orelement.sg").write_text(write_sg(sg, "orelement"))

    # the minimized cover as PLA
    spec = circuit.spec
    names = [spec.output_name(o) for o in range(spec.num_outputs)]
    (out / "orelement.pla").write_text(
        write_pla(circuit.cover, input_names=sg.signals, output_names=names)
    )

    # the netlist as Verilog
    (out / "orelement.v").write_text(write_verilog(circuit.netlist))

    # Graphviz views
    c = sg.signal_index("c")
    regions = signal_regions(sg, c)
    (out / "orelement_sg.dot").write_text(
        sg_to_dot(sg, regions.excitation + regions.quiescent,
                  title="OR element — regions of c")
    )
    (out / "orelement_nl.dot").write_text(
        netlist_to_dot(circuit.netlist, title="N-SHOT architecture")
    )

    # a closed-loop trace as VCD
    sim = Simulator(circuit.netlist, SimConfig(jitter=0.45, seed=11))
    env = SGEnvironment(sg, sim, seed=11)
    report = env.run(max_time=600.0, max_transitions=60)
    interesting = (
        list(circuit.netlist.primary_inputs)
        + circuit.architecture.sop_nets
        + [s for s in circuit.netlist.primary_outputs]
    )
    (out / "orelement.vcd").write_text(write_vcd(sim.traces, nets=interesting))

    print(f"simulation: {report.summary()}")
    for p in sorted(out.iterdir()):
        print(f"wrote {p} ({p.stat().st_size} bytes)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "artifacts")
