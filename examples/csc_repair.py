#!/usr/bin/env python3
"""CSC diagnosis and repair by state-signal insertion.

The paper *requires* Complete State Coding and defers establishing it
to transformation frameworks [6].  This example exercises the
extension shipped with the reproduction: it takes the paper's actual
Figure 1 SG (which, with OR-causality on both edges of ``c``, does
*not* satisfy CSC), prints the conflicting state pairs, inserts one
internal state signal to separate the rising and falling phases, and
synthesizes the repaired specification.

Run:  python examples/csc_repair.py
"""

from repro import synthesize, validate_for_synthesis, verify_hazard_freeness
from repro.bench.circuits import figure1_sg
from repro.sg import csc_report, insert_state_signal, satisfies_csc


def main() -> None:
    sg = figure1_sg()
    print(f"Figure 1 SG: {sg.num_states} states over {sg.signals}")
    print(f"CSC satisfied: {satisfies_csc(sg)}")
    print()
    print("conflicts:")
    for conflict in csc_report(sg):
        print("  " + conflict.describe(sg))

    # separate the phases: the new signal rises when the rising phase
    # completes (state 111) and stays high through the falling phase —
    # exactly the history information the shared codes were missing
    high = {s for s in sg.states() if isinstance(s, str) and s.endswith("/f")}
    high |= {"111/r"}
    repaired = insert_state_signal(sg, high, name="phase")
    print()
    print(f"after inserting 'phase': {repaired.num_states} states over "
          f"{repaired.signals}")
    report = validate_for_synthesis(repaired)
    print(report.summary())
    if not report.ok:
        raise SystemExit("repair failed")

    circuit = synthesize(repaired, name="figure1_repaired", delay_spread=0.4)
    print()
    print(circuit.describe())
    print()
    print(verify_hazard_freeness(circuit, runs=4).summary())


if __name__ == "__main__":
    main()
