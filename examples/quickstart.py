#!/usr/bin/env python3
"""Quickstart: specify, synthesize, inspect, verify.

Synthesizes two specifications end-to-end through the N-SHOT flow:

1. a Muller C-element given as a Signal Transition Graph (`.g` text),
2. the paper's Figure-1-style **non-distributive** OR-causality element
   — the class of circuit the existing flows in Table 2 cannot handle
   at all — and shows that its SOP planes glitch internally while the
   observable output stays hazard-free.

Run:  python examples/quickstart.py
"""

from repro import (
    elaborate,
    parse_g,
    synthesize,
    validate_for_synthesis,
    verify_hazard_freeness,
    write_verilog,
)
from repro.bench.circuits import figure1_csc_sg
from repro.sg import detonant_states, is_distributive

C_ELEMENT_G = """
.model celement
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


def main() -> None:
    # ------------------------------------------------------------------
    print("=" * 70)
    print("1. C-element from an STG specification")
    print("=" * 70)
    sg = elaborate(parse_g(C_ELEMENT_G))
    print(f"state graph: {sg.num_states} states over signals {sg.signals}")
    print(validate_for_synthesis(sg).summary())

    circuit = synthesize(sg, name="celement", delay_spread=0.4)
    print()
    print(circuit.describe())
    print()
    print(circuit.netlist.describe())

    print()
    print("closed-loop Monte-Carlo verification (random gate delays):")
    print(" ", verify_hazard_freeness(circuit, runs=5).summary())

    # ------------------------------------------------------------------
    print()
    print("=" * 70)
    print("2. Non-distributive OR-causality element (Figure 1 style)")
    print("=" * 70)
    nd = figure1_csc_sg()
    c = nd.signal_index("c")
    det = sorted({nd.state_label(d.state) for d in detonant_states(nd, c)})
    print(f"distributive: {is_distributive(nd)} — detonant states w.r.t. c: {det}")
    print("(SIS/Lavagno and SYN/Beerel reject this specification outright)")

    circuit2 = synthesize(nd, name="or_element", delay_spread=0.4)
    print()
    print(circuit2.describe())
    summary = verify_hazard_freeness(circuit2, runs=5)
    print()
    print("verification:", summary.summary())
    print(
        f"  → the SOP planes glitched {summary.total_internal_glitches} times "
        "internally; the MHS flip-flop filtered every pulse: 0 observable hazards"
    )

    # ------------------------------------------------------------------
    print()
    print("=" * 70)
    print("3. Structural Verilog of the C-element N-SHOT implementation")
    print("=" * 70)
    print(write_verilog(circuit.netlist))


if __name__ == "__main__":
    main()
