#!/usr/bin/env python3
"""Anatomy of a filtered hazard: watch the MHS flip-flop work.

Three experiments on the paper's core mechanism:

1. **Figure 4** — the flip-flop's pulse response: a sweep of set-input
   pulse widths around the threshold ω shows sub-ω pulses absorbed and
   wider pulses producing exactly one transition τ after the edge.
2. **Figure 6** — a hazardous pulse train at the set input: the MHS
   flip-flop emits one clean transition; a plain C-element in the same
   position fires on the first runt pulse.
3. **Closed loop** — the non-distributive OR element's internal SOP
   nets glitch during operation; the waveform dump shows pulse trains
   on the plane outputs and clean edges on the observable output.

Run:  python examples/hazard_anatomy.py
"""

from repro import synthesize
from repro.bench.circuits import figure1_csc_sg
from repro.sim import (
    MhsParams,
    SGEnvironment,
    SimConfig,
    Simulator,
    analyze_hazards,
    celement_response,
    mhs_response,
)

OMEGA, TAU = 0.4, 1.2


def experiment_pulse_response() -> None:
    print("=" * 70)
    print(f"1. Figure 4 — pulse-width sweep (ω = {OMEGA}, τ = {TAU})")
    print("=" * 70)
    print(f"{'pulse width':>12} {'output transitions':>24}")
    for width in (0.05, 0.1, 0.2, 0.39, 0.41, 0.6, 1.0, 2.0):
        events = mhs_response([(1.0, 1.0 + width)], MhsParams(OMEGA, TAU))
        shown = ", ".join(f"+q@{t:.2f}" for t, v in events) or "none (absorbed)"
        print(f"{width:>12.2f} {shown:>24}")


def experiment_pulse_train() -> None:
    print()
    print("=" * 70)
    print("2. Figure 6 — hazardous pulse train: MHS vs plain C-element")
    print("=" * 70)
    train = [(1.0, 1.1), (1.4, 1.55), (2.0, 2.1), (2.6, 3.4), (3.8, 3.9)]
    print("set-input pulse train:", ", ".join(f"[{a}-{b}]" for a, b in train))
    mhs = mhs_response(train, MhsParams(OMEGA, TAU))
    cel = celement_response(train, TAU)
    print(f"MHS flip-flop : {len(mhs)} transition(s) at " +
          ", ".join(f"{t:.2f}" for t, _ in mhs))
    print(f"C-element     : {len(cel)} transition(s) at " +
          ", ".join(f"{t:.2f}" for t, _ in cel))
    print("→ the C-element committed on a runt pulse the MHS absorbed;")
    print("  only the 0.8-wide pulse at t=2.6 is a legitimate trigger.")


def experiment_closed_loop() -> None:
    print()
    print("=" * 70)
    print("3. Internal pulse streams vs clean outputs (closed loop)")
    print("=" * 70)
    sg = figure1_csc_sg()
    circuit = synthesize(sg, name="or_element", delay_spread=0.45)
    sim = Simulator(circuit.netlist, SimConfig(jitter=0.45, seed=7))
    env = SGEnvironment(sg, sim, seed=99)
    report = env.run(max_time=400.0, max_transitions=40)
    print("conformance:", report.summary())
    hz = analyze_hazards(
        sim.traces,
        observable_nets=[sg.signals[a] for a in sg.non_inputs],
        internal_nets=circuit.architecture.sop_nets,
    )
    print("hazard census:", hz.summary())
    print()
    print("waveforms (▁ low / ▔ high):")
    for net in ["a", "b"] + circuit.architecture.sop_nets[:3] + ["c"]:
        wave = sim.traces.get(net)
        if wave is not None:
            print(wave.render(width=68))


if __name__ == "__main__":
    experiment_pulse_response()
    experiment_pulse_train()
    experiment_closed_loop()
