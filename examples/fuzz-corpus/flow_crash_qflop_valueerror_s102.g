# repro-fuzz reproducer (minimized counterexample; do not edit)
# signature: flow-crash:qflop:ValueError
# kind: flow-crash
# flow: qflop
# seed: 102
# knobs: {"csc": true, "distributive": true, "signals": 2, "single_traversal": true}
# labels: {"consistent": true, "csc": true, "detonant_count": 0, "distributive": true, "inputs": 1, "semimodular": true, "signals": 2, "single_traversal": true, "states": 4, "usc": true}
# detail: ValueError: empty pin list
# states: 2
.model min_flow_crash
.inputs a
.outputs b
.state graph
s0 b+ s1
.coding s0 00
.marking {s0}
.end
