#!/usr/bin/env python3
"""Section-by-section walkthrough of the paper, executed live.

Follows the paper's structure, demonstrating each definition, theorem
and experiment on the library as it goes:

* III   — the state graph model on the Figure 1 example: consistency,
          CSC, semi-modularity, detonance, ER/QR/trigger regions;
* IV-A  — the synthesis procedure's five steps and Table 1;
* IV-B  — the trigger requirement and the MHS flip-flop's ω/τ response;
* IV-C  — the quiescent mode and Equation (1);
* IV-E  — Theorem 2 / Corollary 1 in action;
* IV-F  — initialization analysis;
* V     — a slice of the experimental comparison.

Run:  python examples/paper_walkthrough.py
"""

from repro import synthesize, verify_hazard_freeness
from repro.baselines import NotDistributiveError, synthesize_beerel, synthesize_lavagno
from repro.bench.circuits import figure1_csc_sg, figure1_sg, figure7a_sg, figure7b_sg
from repro.core import (
    check_trigger_cubes,
    derive_sop_spec,
    format_mode_table,
    region_mode_table,
)
from repro.logic import minimize, write_pla
from repro.sg import (
    csc_report,
    detonant_states,
    excitation_regions,
    is_single_traversal,
    satisfies_csc,
    semimodularity_violations,
    signal_regions,
    trigger_regions,
)
from repro.sim import MhsParams, mhs_response


def section(n: str, title: str) -> None:
    print()
    print("=" * 72)
    print(f"Section {n}: {title}")
    print("=" * 72)


def main() -> None:
    # ------------------------------------------------------------------
    section("III", "the state graph model (Figure 1)")
    sg = figure1_sg()
    c = sg.signal_index("c")
    print(f"signals {sg.signals}, inputs {sg.input_names}; {sg.num_states} states")
    print(f"semi-modular with input choices: {not semimodularity_violations(sg)}")
    dets = sorted({sg.state_label(d.state) for d in detonant_states(sg, c)})
    print(f"detonant states w.r.t. c (Definition 3): {dets} -> non-distributive")
    print(f"CSC (Definition 1): {satisfies_csc(sg)}")
    for conflict in csc_report(sg)[:2]:
        print("  e.g.", conflict.describe(sg))
    print("(the printed Figure 1 illustrates regions; synthesis uses the")
    print(" CSC-satisfying variant with OR-rise / AND-fall causality)")

    sg = figure1_csc_sg()
    sr = signal_regions(sg, c)
    for er, qr in zip(sr.excitation, sr.quiescent):
        print(f"  {er.label(sg)} = {sorted(sg.state_label(s) for s in er.states)}")
        print(f"  {qr.label(sg)} = {sorted(sg.state_label(s) for s in qr.states)}")
        for tr in trigger_regions(sg, er):
            print(f"    trigger region: {sorted(sg.state_label(s) for s in tr.states)}")

    # ------------------------------------------------------------------
    section("IV-A", "deriving the set/reset SOPs and Table 1")
    spec = derive_sop_spec(sg)
    print(format_mode_table(sg, region_mode_table(sg, c)))
    cover = minimize(spec.on, spec.dc, spec.off)
    names = [spec.output_name(o) for o in range(spec.num_outputs)]
    print()
    print("minimized multi-output cover (any conventional minimizer is legal):")
    print(write_pla(cover, input_names=sg.signals, output_names=names))

    # ------------------------------------------------------------------
    section("IV-B", "the trigger requirement and the MHS flip-flop")
    circuit = synthesize(sg, name="orelement", delay_spread=0.4)
    for chk in check_trigger_cubes(spec, circuit.cover):
        print(
            f"  {chk.kind}({sg.signals[chk.signal]}): {chk.regions_checked} "
            f"trigger region(s), {'ok' if chk.ok else 'UNCOVERED'}"
        )
    p = MhsParams(omega=0.4, tau=1.2)
    print("  MHS response (Figure 4):")
    for width in (0.2, 0.39, 0.41, 1.0):
        ev = mhs_response([(0.0, width)], p)
        print(
            f"    pulse {width:4.2f}: "
            + (f"fires at {ev[0][0]:.2f} (= edge + tau)" if ev else "absorbed")
        )

    # ------------------------------------------------------------------
    section("IV-C", "the quiescent mode and Equation (1)")
    for req in circuit.delay_requirements.values():
        print(" ", req.describe())
    print(f"  delay compensation required: {circuit.compensation_required}")

    # ------------------------------------------------------------------
    section("IV-E", "Theorem 2 / Corollary 1")
    print(f"  single traversal (Definition 9): {is_single_traversal(sg)}")
    print(f"  Figure 7(a) single-traversal: {is_single_traversal(figure7a_sg())}")
    print(f"  Figure 7(b) (free-running clock): {is_single_traversal(figure7b_sg())}")
    f7b = synthesize(figure7b_sg(), name="fig7b")
    y = f7b.sg.signal_index("y")
    ers = excitation_regions(f7b.sg, y)
    sizes = [len(tr.states) for er in ers for tr in trigger_regions(f7b.sg, er)]
    print(f"  7(b) trigger region sizes: {sizes} — still satisfies the requirement")

    # ------------------------------------------------------------------
    section("IV-F", "initialization of the MHS flip-flop")
    for d in circuit.initialization.values():
        print(" ", d.describe())

    # ------------------------------------------------------------------
    section("V", "experimental slice")
    summary = verify_hazard_freeness(circuit, runs=4, max_transitions=100)
    print(" ", summary.summary())
    for label, flow in (("SIS/Lavagno", synthesize_lavagno), ("SYN/Beerel", synthesize_beerel)):
        try:
            flow(sg)
            print(f"  {label}: accepted (unexpected)")
        except NotDistributiveError:
            print(f"  {label}: (1) non-distributive — as in Table 2")
    s = circuit.stats()
    print(f"  N-SHOT: area {s.area:.0f} / delay {s.delay:.1f} ns "
          f"({s.num_gates} gates, {s.num_sequential} MHS flip-flops)")


if __name__ == "__main__":
    main()
