#!/usr/bin/env python3
"""Three-flow comparison on selected Table 2 benchmarks.

Runs the SIS/Lavagno bounded-delay flow, the SYN/Beerel
speed-independent flow and the ASSASSIN/N-SHOT flow on a selection of
reconstructed benchmarks, printing the paper's Table 2 side by side
with the reproduction.

Run:  python examples/compare_methods.py [benchmark ...]
"""

import sys

from repro.bench import run_benchmark
from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS, NONDISTRIBUTIVE_BENCHMARKS

DEFAULT = [
    "chu133",
    "chu172",
    "converta",
    "full",
    "sbuf-send-ctl",
    "pe-send-ifc",
    "pmcm1",
    "sing2dual-out",
]


def main(names: list[str]) -> None:
    header = (
        f"{'circuit':15} {'states':>6} | {'SIS':>10} {'SYN':>10} {'N-SHOT':>10}"
        f" | paper: {'SIS':>9} {'SYN':>9} {'ASSASSIN':>9}"
    )
    print(header)
    print("-" * len(header))
    for name in names:
        if name not in DISTRIBUTIVE_BENCHMARKS and name not in NONDISTRIBUTIVE_BENCHMARKS:
            print(f"{name:15} (unknown benchmark — see repro.bench.circuits)")
            continue
        row = run_benchmark(name)
        print(
            f"{row.name:15} {row.states:>6} | {row.sis:>10} {row.syn:>10} "
            f"{row.assassin:>10} |        {row.paper_sis:>9} {row.paper_syn:>9} "
            f"{row.paper_assassin:>9}"
        )
    print()
    print("failure codes, as in the paper: (1) non-distributive specification,")
    print("(2) state signals required. Absolute numbers differ (reconstructed")
    print("benchmarks, synthetic library) — the comparison *shape* is the result.")


if __name__ == "__main__":
    main(sys.argv[1:] or DEFAULT)
