"""Legacy setup shim: this environment has no `wheel` package and no
network, so PEP 517 editable installs are unavailable; a setup.py-based
install (`pip install -e .`) works offline."""
from setuptools import setup

setup()
