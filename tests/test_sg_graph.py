"""Unit tests for the state graph automaton and builders."""

import pytest

from repro.sg import SGBuilder, SGError, StateGraph, Transition, sg_from_trace_spec


class TestTransition:
    def test_directions(self):
        t = Transition(0, 1)
        assert t.rising
        assert t.opposite() == Transition(0, -1)

    def test_bad_direction(self):
        with pytest.raises(SGError):
            Transition(0, 2)

    def test_label(self):
        assert Transition(1, -1).label(["a", "b"]) == "-b"


class TestStateGraph:
    def make(self):
        sg = StateGraph(["a", "b"], ["a"])
        sg.add_state("00", 0b00)
        sg.add_state("10", 0b01)  # a=1 (bit 0)
        sg.add_state("11", 0b11)
        sg.add_state("01", 0b10)
        sg.add_arc("00", Transition(0, 1), "10")
        sg.add_arc("10", Transition(1, 1), "11")
        sg.add_arc("11", Transition(0, -1), "01")
        sg.add_arc("01", Transition(1, -1), "00")
        return sg

    def test_duplicate_signal_names_rejected(self):
        with pytest.raises(SGError):
            StateGraph(["a", "a"], ["a"])

    def test_code_from_sequence(self):
        sg = StateGraph(["a", "b"], ["a"])
        sg.add_state("s", [1, 0])
        assert sg.code("s") == 0b01

    def test_code_width_enforced(self):
        sg = StateGraph(["a"], ["a"])
        with pytest.raises(SGError):
            sg.add_state("s", 0b10)

    def test_readding_state_same_code_ok(self):
        sg = StateGraph(["a"], ["a"])
        sg.add_state("s", 0)
        sg.add_state("s", 0)
        with pytest.raises(SGError):
            sg.add_state("s", 1)

    def test_arc_must_flip_exactly_its_signal(self):
        sg = StateGraph(["a", "b"], ["a"])
        sg.add_state("00", 0b00)
        sg.add_state("11", 0b11)
        with pytest.raises(SGError):
            sg.add_arc("00", Transition(0, 1), "11")

    def test_arc_polarity_enforced(self):
        sg = StateGraph(["a"], ["a"])
        sg.add_state("0", 0)
        sg.add_state("1", 1)
        with pytest.raises(SGError):
            sg.add_arc("1", Transition(0, 1), "0")  # +a from a=1

    def test_determinism_enforced(self):
        sg = StateGraph(["a", "b"], ["a"])
        sg.add_state("s", 0b00)
        sg.add_state("d1", 0b01)
        sg.add_state("d2", 0b01)
        sg.add_arc("s", Transition(0, 1), "d1")
        with pytest.raises(SGError):
            sg.add_arc("s", Transition(0, 1), "d2")

    def test_enabled_and_succ(self):
        sg = self.make()
        assert sg.enabled("00") == [Transition(0, 1)]
        assert sg.succ("00", Transition(0, 1)) == "10"
        assert sg.succ("00", Transition(1, 1)) is None

    def test_excitation_queries(self):
        sg = self.make()
        assert sg.is_excited("10", 1)
        assert sg.excitation("10", 1) == Transition(1, 1)
        assert sg.excited_non_inputs("10") == frozenset({1})
        assert sg.excited_non_inputs("00") == frozenset()

    def test_predecessors(self):
        sg = self.make()
        assert sg.predecessors("10") == [("00", Transition(0, 1))]

    def test_reachability(self):
        sg = self.make()
        sg.add_state("orphan", 0b00)
        assert "orphan" not in sg.reachable()
        trimmed = sg.restrict_to_reachable()
        assert trimmed.num_states == 4

    def test_state_label_marks_excited(self):
        sg = self.make()
        assert sg.state_label("00") == "0*0"
        assert sg.state_label("10") == "10*"

    def test_value_and_vector(self):
        sg = self.make()
        assert sg.value("11", 0) == 1
        assert sg.code_vector("11") == (1, 1)

    def test_describe_smoke(self):
        assert "signals" in self.make().describe()


class TestSGBuilder:
    def test_inferred_destination(self):
        b = SGBuilder(["a", "b"], ["a"])
        dst = b.arc("00", "+a")
        assert dst == "10"

    def test_chain(self):
        b = SGBuilder(["a", "b"], ["a"])
        end = b.chain("00", "+a", "+b", "-a", "-b")
        assert end == "00"

    def test_tagged_states_share_codes(self):
        b = SGBuilder(["a"], ["a"])
        b.state("0/x")
        b.state("0/y")
        assert b.sg.code("0/x") == b.sg.code("0/y")

    def test_bad_transition_string(self):
        b = SGBuilder(["a"], ["a"])
        with pytest.raises(SGError):
            b.arc("0", "a+")

    def test_wrong_code_width(self):
        b = SGBuilder(["a", "b"], ["a"])
        with pytest.raises(SGError):
            b.state("0")

    def test_build_restricts_to_reachable(self):
        b = SGBuilder(["a"], ["a"])
        b.arc("0", "+a")
        b.arc("1", "-a")
        b.initial("0")
        assert b.build().num_states == 2


class TestTraceSpec:
    def test_basic(self):
        sg = sg_from_trace_spec(
            ["r", "y"],
            ["r"],
            ["00 +r", "10 +y", "11 -r", "01 -y"],
        )
        assert sg.num_states == 4
        assert sg.initial == "00"

    def test_explicit_destination(self):
        sg = sg_from_trace_spec(["a"], ["a"], ["0 +a 1", "1 -a 0"])
        assert sg.num_states == 2

    def test_empty_rejected(self):
        with pytest.raises(SGError):
            sg_from_trace_spec(["a"], ["a"], [])
