"""SG state-space coverage maps and their verify/campaign wiring.

The headline acceptance property: under the verification oracle the
paper-suite circuits reach ≥95% excitation-region traversal coverage,
and whatever stays uncovered is *listed*, never silently dropped.
"""

import pytest

from repro.core import synthesize, verify_hazard_freeness
from repro.obs.coverage import (
    COVERAGE_SCHEMA,
    CoverageMap,
    CoverageReport,
    RegionCoverage,
    coverage_delta,
    _pct,
)


@pytest.fixture(scope="module")
def celem_circuit():
    from repro.stg import elaborate, parse_g
    from tests.conftest import C_ELEMENT_G

    sg = elaborate(parse_g(C_ELEMENT_G))
    return synthesize(sg, name="celem", delay_spread=0.0)


# ----------------------------------------------------------------------
# the static universe
# ----------------------------------------------------------------------
class TestUniverse:
    def test_pct_conventions(self):
        assert _pct(0, 0) == 100.0  # an empty universe is fully covered
        assert _pct(1, 3) == pytest.approx(33.33)

    def test_universe_matches_synthesis(self, celem_circuit):
        cov = CoverageMap.for_circuit(celem_circuit)
        sg = celem_circuit.sg
        assert cov.universe == frozenset(sg.reachable())
        # the C-element has one rising + one falling excitation region
        labels = [r.label for r in cov.region_cov]
        assert len(labels) == 2
        assert any("+c" in x for x in labels)
        assert any("-c" in x for x in labels)
        # every cube of the cover's set/reset columns is in the universe
        assert cov.totals()["cubes_total"] == len(
            celem_circuit.cover.cubes
        )

    def test_unattached_map_reports_zero(self, celem_circuit):
        report = CoverageMap.for_circuit(celem_circuit).report()
        assert report.runs == 0
        assert report.states_visited == 0
        assert report.states_pct == 0.0
        # the gaps are the point: the full listings must be present
        assert len(report.uncovered_states) == report.states_total
        assert report.uncovered_regions == [
            r.label for r in report.regions
        ]
        assert len(report.uncovered_cubes) == report.cubes_total


# ----------------------------------------------------------------------
# accumulation through the oracle
# ----------------------------------------------------------------------
class TestOracleAccumulation:
    def test_verify_reaches_full_region_coverage(self, celem_circuit):
        cov = CoverageMap.for_circuit(celem_circuit)
        summary = verify_hazard_freeness(celem_circuit, runs=3, coverage=cov)
        assert summary.ok
        report = cov.report()
        assert report.runs == 3
        # acceptance criterion: ≥95% excitation-region traversal
        assert report.regions_pct >= 95.0
        assert report.states_pct == 100.0
        for r in report.regions:
            assert r.entries > 0 and r.exits > 0 and r.traversals > 0

    def test_summary_carries_schema_document(self, celem_circuit):
        cov = CoverageMap.for_circuit(celem_circuit)
        summary = verify_hazard_freeness(celem_circuit, runs=1, coverage=cov)
        doc = summary.coverage
        assert doc["schema"] == COVERAGE_SCHEMA
        assert doc["circuit"] == "celem"
        assert set(doc) >= {"states", "regions", "trigger_cubes"}
        for block in (doc["states"], doc["regions"], doc["trigger_cubes"]):
            assert isinstance(block["uncovered"], list)
            assert 0.0 <= block["pct"] <= 100.0

    def test_coverage_none_without_map(self, celem_circuit):
        summary = verify_hazard_freeness(celem_circuit, runs=1)
        assert summary.coverage is None

    def test_accumulates_across_sweeps(self, celem_circuit):
        """One map over two separate sweeps keeps aggregating."""
        cov = CoverageMap.for_circuit(celem_circuit)
        verify_hazard_freeness(celem_circuit, runs=1, coverage=cov)
        first = cov.report().states_visited
        verify_hazard_freeness(celem_circuit, runs=1, coverage=cov)
        assert cov.report().runs == 2
        assert cov.report().states_visited >= first


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
class TestReport:
    def _report(self):
        return CoverageReport(
            circuit="x",
            runs=1,
            states_total=4,
            states_visited=3,
            uncovered_states=["1000"],
            regions=[
                RegionCoverage("ER(+y)", states=2, entries=1, exits=1,
                               traversals=1),
                RegionCoverage("ER(-y)", states=2),
            ],
            cubes_total=2,
            cubes_fired=1,
            uncovered_cubes=["set_y/a b'"],
        )

    def test_percentages(self):
        r = self._report()
        assert r.states_pct == 75.0
        assert r.regions_pct == 50.0
        assert r.cubes_pct == 50.0
        assert r.uncovered_regions == ["ER(-y)"]

    def test_totals_block(self):
        t = self._report().totals()
        assert t == {
            "states_pct": 75.0, "regions_pct": 50.0, "cubes_pct": 50.0,
            "states_visited": 3, "states_total": 4,
            "regions_traversed": 1, "regions_total": 2,
            "cubes_fired": 1, "cubes_total": 2,
        }

    def test_text_lists_uncovered(self):
        text = self._report().render_text()
        assert "ER(-y)" in text
        assert "set_y/a b'" in text
        assert "3/4" in text

    def test_text_caps_long_listings_explicitly(self):
        r = self._report()
        r.uncovered_states = [f"s{i}" for i in range(20)]
        text = r.render_text(list_cap=4)
        assert "(+16 more)" in text  # capped loudly, never silently
        # ...but the JSON document keeps every item
        assert len(r.to_json()["states"]["uncovered"]) == 20

    def test_delta(self):
        cur = {"states_pct": 40.0, "regions_pct": 100.0, "cubes_pct": 75.0}
        base = {"states_pct": 100.0, "regions_pct": 100.0, "cubes_pct": 80.0}
        assert coverage_delta(cur, base) == {
            "states_pct": -60.0, "regions_pct": 0.0, "cubes_pct": -5.0,
        }
        assert coverage_delta({}, base) == {}  # tolerant of missing keys


# ----------------------------------------------------------------------
# the paper-suite acceptance sweep
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestPaperSuiteCoverage:
    def test_region_traversal_at_least_95pct(self):
        from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS
        from repro.bench.runner import sg_of

        for name in DISTRIBUTIVE_BENCHMARKS:
            circuit = synthesize(sg_of(name), name=name, delay_spread=0.0)
            cov = CoverageMap.for_circuit(circuit)
            verify_hazard_freeness(circuit, runs=5, coverage=cov)
            report = cov.report()
            assert report.regions_pct >= 95.0, (
                f"{name}: {report.regions_pct}% "
                f"uncovered={report.uncovered_regions}"
            )
