"""Tests for `repro lint` and the synth/compare `--lint` gate."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.circuits import figure1_sg
from repro.cli import main
from repro.sg.sgformat import write_sg

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


@pytest.fixture()
def gfile(tmp_path) -> pathlib.Path:
    p = tmp_path / "celem.g"
    p.write_text(CELEM_G)
    return p


@pytest.fixture()
def badfile(tmp_path) -> pathlib.Path:
    """The Figure 1 CSC-conflicted graph as a .sg file."""
    p = tmp_path / "figure1.sg"
    p.write_text(write_sg(figure1_sg(), name="figure1"))
    return p


class TestLint:
    def test_clean_spec_exits_zero(self, gfile, capsys):
        assert main(["lint", str(gfile)]) == 0
        assert "celem: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, badfile, capsys):
        assert main(["lint", str(badfile)]) == 1
        out = capsys.readouterr().out
        assert "SG002" in out
        assert "share code" in out

    def test_no_targets_exit_two(self, capsys):
        assert main(["lint"]) == 2
        assert "no lint targets" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["lint", "/nonexistent.g"]) == 1

    def test_malformed_file_exit_two(self, tmp_path, capsys):
        p = tmp_path / "garbage.sg"
        p.write_text("not a specification")
        assert main(["lint", str(p)]) == 2
        assert "failed to load" in capsys.readouterr().err

    def test_unknown_rule_id_exit_two(self, gfile, capsys):
        assert main(["lint", str(gfile), "--select", "NOPE"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_select_isolates_rules(self, badfile, capsys):
        assert main(["lint", str(badfile), "--select", "SG002"]) == 1
        # the CSC pairs are SG002's, not SG003's
        assert main(["lint", str(badfile), "--select", "SG003"]) == 0

    def test_ignoring_a_gate_rule_contains_the_crash(self, badfile, capsys):
        """Suppressing SG002 lets the cover scope run on an ill-posed
        spec; the resulting minimizer crash is contained as an ENGINE
        internal error (exit 2), not a traceback."""
        assert main(["lint", str(badfile), "--ignore", "SG002"]) == 2
        assert "ENGINE" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SG001" in out
        assert "[preflight]" in out
        assert "NL001" in out

    def test_json_format(self, gfile, capsys):
        assert main(["lint", str(gfile), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-lint/1"
        assert doc["targets"][0]["name"] == "celem"

    def test_sarif_format_and_output_file(self, badfile, tmp_path, capsys):
        out_path = tmp_path / "report.sarif"
        assert (
            main(
                [
                    "lint",
                    str(badfile),
                    "--format",
                    "sarif",
                    "-o",
                    str(out_path),
                ]
            )
            == 1
        )
        doc = json.loads(out_path.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "SG002"
        # SARIF documents carry the source file as a physical location
        uri = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert uri == str(badfile)

    def test_baseline_round_trip(self, badfile, tmp_path, capsys):
        base = tmp_path / "baseline.json"
        assert main(["lint", str(badfile), "--write-baseline", str(base)]) == 0
        doc = json.loads(base.read_text())
        assert doc["schema"] == "repro-lint-baseline/1"
        assert len(doc["entries"]) == 4

        assert main(["lint", str(badfile), "--baseline", str(base)]) == 0
        assert "4 suppressed" in capsys.readouterr().out

    def test_suite_smoke(self, capsys):
        """One real suite circuit keeps the --suite path honest without
        linting the whole benchmark set in the unit tests."""
        assert main(["lint", "--suite", "--select", "SG002"]) == 0


class TestSynthGate:
    def test_gate_aborts_with_diagnostics(self, badfile, capsys):
        assert main(["synth", str(badfile)]) == 1
        err = capsys.readouterr().err
        assert "Theorem 2 preconditions" in err
        assert "SG002" in err
        assert "--no-lint" in err

    def test_clean_spec_synthesizes(self, gfile, capsys):
        assert main(["synth", str(gfile)]) == 0
        assert "N-SHOT circuit" in capsys.readouterr().out

    def test_no_lint_skips_the_gate(self, gfile, capsys):
        assert main(["synth", str(gfile), "--no-lint"]) == 0

    def test_compare_gate(self, badfile, capsys):
        assert main(["compare", str(badfile)]) == 1
        assert "Theorem 2 preconditions" in capsys.readouterr().err
