"""Property-based invariants of the individual ESPRESSO steps.

Each pass of the loop must preserve the function being covered:

* EXPAND — every output cube is prime w.r.t. the OFF-set, the result
  still covers the input cover, and never intersects the OFF-set;
* IRREDUNDANT — the result is a subset of the input, still covers the
  ON-set, and no remaining cube is redundant;
* REDUCE — every output cube is contained in its input cube, and the
  reduced cover (with DC) still covers the ON-set;
* make_offset — complement semantics per output.

These are checked on randomized multi-output (F, D, R) partitions.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.logic import (
    Cover,
    Cube,
    cover_covers_cube_multi,
    covers_cover,
    expand,
    irredundant,
    make_offset,
    reduce_cover,
)

SETTINGS = settings(max_examples=60, deadline=None)


def random_multi_fdr(seed: int, max_inputs: int = 4, max_outputs: int = 3):
    rng = random.Random(seed)
    n = rng.randint(1, max_inputs)
    m = rng.randint(1, max_outputs)
    on, dc, off = Cover.empty(n, m), Cover.empty(n, m), Cover.empty(n, m)
    truth = []
    for o in range(m):
        col = [rng.choice([0, 1, 2]) for _ in range(1 << n)]
        truth.append(col)
        for mt, v in enumerate(col):
            {1: on, 2: dc, 0: off}[v].add(Cube.from_minterm(mt, n, 1 << o))
    return truth, on, dc, off


class TestExpand:
    @given(st.integers(0, 10**9))
    @SETTINGS
    def test_expand_covers_and_avoids_off(self, seed):
        truth, on, dc, off = random_multi_fdr(seed)
        result = expand(on, off)
        assert covers_cover(result, on)
        for c in result.cubes:
            for r in off.cubes:
                assert not c.intersects(r)

    @given(st.integers(0, 10**9))
    @SETTINGS
    def test_expand_produces_primes(self, seed):
        truth, on, dc, off = random_multi_fdr(seed)
        result = expand(on, off)
        for c in result.cubes:
            # no single literal can be raised without hitting the OFF-set
            for var in c.fixed_vars():
                raised = c.raise_var(var)
                assert any(raised.intersects(r) for r in off.cubes), (
                    c.input_string(),
                    var,
                )

    @given(st.integers(0, 10**9))
    @SETTINGS
    def test_expand_no_single_cube_containment(self, seed):
        truth, on, dc, off = random_multi_fdr(seed)
        result = expand(on, off)
        for i, a in enumerate(result.cubes):
            for j, b in enumerate(result.cubes):
                if i != j:
                    assert not a.contains(b)


class TestIrredundant:
    @given(st.integers(0, 10**9))
    @SETTINGS
    def test_subset_and_still_covers(self, seed):
        truth, on, dc, off = random_multi_fdr(seed)
        grown = expand(on, off)
        result = irredundant(grown, dc)
        masks = {(c.inputs, c.outputs) for c in grown.cubes}
        for c in result.cubes:
            assert (c.inputs, c.outputs) in masks
        assert covers_cover(result, on)

    @given(st.integers(0, 10**9))
    @SETTINGS
    def test_result_is_minimal(self, seed):
        """No cube of the irredundant cover can be dropped."""
        truth, on, dc, off = random_multi_fdr(seed)
        grown = expand(on, off)
        result = irredundant(grown, dc)
        for i, c in enumerate(result.cubes):
            rest = Cover(
                result.num_inputs,
                result.num_outputs,
                [x for j, x in enumerate(result.cubes) if j != i]
                + dc.cubes,
            )
            assert not cover_covers_cube_multi(rest, c), i


class TestReduce:
    @given(st.integers(0, 10**9))
    @SETTINGS
    def test_cubes_shrink_and_cover_holds(self, seed):
        truth, on, dc, off = random_multi_fdr(seed)
        grown = irredundant(expand(on, off), dc)
        reduced = reduce_cover(grown, dc)
        # cover maintained with the DC set
        assert covers_cover(
            Cover(on.num_inputs, on.num_outputs, reduced.cubes + dc.cubes), on
        )
        # the reduced cover stays within F ∪ D
        fd = Cover(on.num_inputs, on.num_outputs, on.cubes + dc.cubes)
        for c in reduced.cubes:
            assert cover_covers_cube_multi(fd, c)


class TestMakeOffset:
    @given(st.integers(0, 10**9))
    @SETTINGS
    def test_offset_is_complement_of_on_dc(self, seed):
        truth, on, dc, off = random_multi_fdr(seed)
        computed = make_offset(on, dc)
        n, m = on.num_inputs, on.num_outputs
        for o in range(m):
            for mt in range(1 << n):
                in_f_or_d = on.contains_minterm(mt, o) or dc.contains_minterm(mt, o)
                assert computed.contains_minterm(mt, o) == (not in_f_or_d)

    def test_merges_identical_input_parts(self):
        on = Cover.empty(2, 2)
        on.add(Cube.from_minterm(0, 2, 0b01))
        on.add(Cube.from_minterm(0, 2, 0b10))
        off = make_offset(on)
        # the three complementary minterms appear once each with both
        # output bits, not twice
        seen = {}
        for c in off.cubes:
            for mt in c.minterms():
                seen.setdefault(mt, 0)
                seen[mt] += 1
        # compact cover: no input point enumerated per output
        assert all(v <= 2 for v in seen.values())
