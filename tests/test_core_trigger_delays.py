"""Tests for the trigger requirement (Theorem 1) and Equation (1)."""

import pytest

from repro.core import (
    PlaneTiming,
    TriggerRequirementError,
    check_trigger_cubes,
    compute_delay_requirement,
    derive_sop_spec,
    enforce_trigger_cubes,
    synthesize,
)
from repro.logic import Cover, Cube, minimize
from repro.bench.circuits import figure7b_sg
from repro.sg import SGBuilder


class TestTriggerAudit:
    def test_single_traversal_always_ok(self, celem_sg):
        spec = derive_sop_spec(celem_sg)
        cover = minimize(spec.on, spec.dc, spec.off)
        for chk in check_trigger_cubes(spec, cover):
            assert chk.ok
            assert chk.regions_checked >= 1

    def test_figure7b_natural_cover_ok(self):
        sg = figure7b_sg()
        spec = derive_sop_spec(sg)
        cover = minimize(spec.on, spec.dc, spec.off)
        assert all(c.ok for c in check_trigger_cubes(spec, cover))

    def test_fragmented_cover_detected(self):
        """Split the trigger cube on the clock literal: Theorem 1 fails."""
        sg = figure7b_sg()
        spec = derive_sop_spec(sg)
        r = sg.signal_index("r")
        clk = sg.signal_index("clk")
        y = sg.signal_index("y")
        so = spec.output_index(y, "set")
        ro = spec.output_index(y, "reset")
        n = sg.num_signals

        def cube(bits: dict, out: int) -> Cube:
            c = Cube.full(n, 1 << out)
            for var, val in bits.items():
                c = c.with_literal(var, 0b10 if val else 0b01)
            return c

        fragmented = Cover(
            n,
            spec.num_outputs,
            [
                cube({r: 1, y: 0, clk: 0}, so),
                cube({r: 1, y: 0, clk: 1}, so),
                cube({r: 0, y: 1, clk: 0}, ro),
                cube({r: 0, y: 1, clk: 1}, ro),
            ],
        )
        audits = check_trigger_cubes(spec, fragmented)
        assert any(not a.ok for a in audits)

        repaired, added = enforce_trigger_cubes(spec, fragmented)
        assert added >= 1
        assert all(a.ok for a in check_trigger_cubes(spec, repaired))

    def test_unsatisfiable_trigger_requirement(self):
        """A two-state trigger region whose supercube hits the OFF-set.

        Free-running input clk toggles inside ER(+y); the states of the
        trigger region are (r=1, clk=0) and (r=1, clk=1), but here we
        also give `clk` a *coded companion* `d` so that the supercube
        over the trigger region covers an OFF point.
        """
        # y rises while (clk, d) cycles 00 -> 10 -> 11 -> 01 -> 00; the
        # trigger region spans codes with (clk,d) in {00,10,11,01}; its
        # supercube therefore covers everything — including OFF states
        # where r=1,y=1 … construct so that OFF intersects.
        b = SGBuilder(["r", "clk", "d", "y"], ["r", "clk", "d"])
        # quiescent cycle at r=0,y=0
        gray = ["00", "10", "11", "01"]

        def st(r, cd, y):
            return f"{r}{cd}{y}"

        for i, cd in enumerate(gray):
            nxt = gray[(i + 1) % 4]
            var = "clk" if cd[0] != nxt[0] else "d"
            sign = "+" if (cd + nxt).count("1") % 2 else "-"
            # determine polarity by bit change
            if cd[0] != nxt[0]:
                sign = "+" if nxt[0] == "1" else "-"
                tr = sign + "clk"
            else:
                sign = "+" if nxt[1] == "1" else "-"
                tr = sign + "d"
            b.arc(st(0, cd, 0), tr, st(0, nxt, 0))
            b.arc(st(1, cd, 0), tr, st(1, nxt, 0))
            b.arc(st(0, cd, 0), "+r", st(1, cd, 0))
            b.arc(st(1, cd, 0), "+y", st(1, cd, 1))
            b.arc(st(1, cd, 1), "-r", st(0, cd, 1))
            b.arc(st(0, cd, 1), "-y", st(0, cd, 0))
        b.initial(st(0, "00", 0))
        sg = b.build()
        # sanity: this SG is unusual — y's trigger region spans all four
        # (clk,d) phases, but ER(-y) uses the same (clk,d) space with
        # r=0: supercube(TR(+y)) = (r=1, y=0, clk/d free) stays clear of
        # the OFF set, so enforcement succeeds here.  Force the failure
        # by shrinking the allowed space: drop y's DC by making one
        # (r=1, y=0) code an OFF point of set_y via a *reset* arc there.
        spec = derive_sop_spec(sg)
        y = sg.signal_index("y")
        so = spec.output_index(y, "set")
        # empty cover: every trigger region is uncovered
        empty = Cover(sg.num_signals, spec.num_outputs, [])
        # inject an artificial OFF cube overlapping the TR supercube
        bad_off = Cube.full(sg.num_signals, 1 << so).with_literal(
            sg.signal_index("r"), 0b10
        ).with_literal(y, 0b01).with_literal(sg.signal_index("clk"), 0b01)
        spec.off.add(bad_off)
        with pytest.raises(TriggerRequirementError):
            enforce_trigger_cubes(spec, empty)


class TestDelayRequirement:
    def test_balanced_planes_no_compensation(self):
        req = compute_delay_requirement(
            "x", PlaneTiming(2, 1), PlaneTiming(2, 1), mhs_tau=1.2
        )
        assert not req.compensation_required
        assert req.t_del == 0.0

    def test_skewed_planes_need_delay(self):
        req = compute_delay_requirement(
            "x", PlaneTiming(5, 1), PlaneTiming(1, 1), mhs_tau=1.2
        )
        # t_set0_w=6.0, t_res1_f=1.2, t_mhs=1.2 -> 3.6 > 0
        assert req.compensation_required
        assert req.t_del == pytest.approx(3.6)

    def test_margin_increases_requirement(self):
        base = compute_delay_requirement(
            "x", PlaneTiming(3, 1), PlaneTiming(1, 1), mhs_tau=1.2
        )
        wide = compute_delay_requirement(
            "x", PlaneTiming(3, 1), PlaneTiming(1, 1), mhs_tau=1.2, spread=0.5
        )
        assert wide.t_del > base.t_del

    def test_describe(self):
        req = compute_delay_requirement(
            "sig", PlaneTiming(2, 2), PlaneTiming(2, 2)
        )
        assert "sig" in req.describe()
        assert "no compensation" in req.describe()

    def test_paper_claim_no_compensation_on_suite(self, celem_sg, or_element_sg):
        """'delay compensation … was never required' (Section V)."""
        for sg in (celem_sg, or_element_sg, figure7b_sg()):
            circuit = synthesize(sg)
            assert not circuit.compensation_required

    def test_forced_compensation_inserts_delay_line(self, celem_sg):
        """With a huge delay uncertainty Equation (1) goes positive and
        the architecture inserts the parallel delay line."""
        circuit = synthesize(celem_sg, delay_spread=0.9)
        if circuit.compensation_required:
            from repro.netlist import GateType

            delays = [g for g in circuit.netlist.gates if g.type == GateType.DELAY]
            assert delays
