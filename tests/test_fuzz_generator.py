"""Knob-contract tests for the property-controlled spec generator.

The contract: for every knob combination, every generated sample's
ground-truth labels (computed by the *real* classifiers in
``repro.sg``) match what the knobs requested — the generator validates
this itself and raises :class:`GenerationError` otherwise, so these
tests both exercise the validation and pin determinism.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import (
    GenerationError,
    SpecKnobs,
    classify,
    derive_seed,
    generate_spec,
    knob_combinations,
)
from repro.sg.sgformat import write_sg

ALL_COMBOS = [
    SpecKnobs(signals=8, csc=csc, distributive=dist, single_traversal=st)
    for csc in (True, False)
    for dist in (True, False)
    for st in (True, False)
]


@pytest.mark.parametrize(
    "knobs", ALL_COMBOS, ids=[k.short() for k in ALL_COMBOS]
)
@pytest.mark.parametrize("seed", [0, 1, 17])
def test_labels_match_knobs(knobs, seed):
    spec = generate_spec(seed, knobs)
    labels = spec.labels
    # the generator's own validation ran; assert the contract explicitly
    assert labels.consistent
    assert labels.semimodular
    assert labels.csc == knobs.csc
    assert labels.distributive == knobs.distributive
    assert labels.single_traversal == knobs.single_traversal
    # labels are honest: recomputing from the SG gives the same answer
    again = classify(spec.sg)
    assert again == labels


@pytest.mark.parametrize("knobs", ALL_COMBOS, ids=[k.short() for k in ALL_COMBOS])
def test_deterministic(knobs):
    a = generate_spec(42, knobs)
    b = generate_spec(42, knobs)
    assert write_sg(a.sg, a.name) == write_sg(b.sg, b.name)
    assert a.labels == b.labels


def test_different_seeds_differ():
    knobs = SpecKnobs(signals=8)
    texts = {
        write_sg(generate_spec(s, knobs).sg, "x") for s in range(6)
    }
    assert len(texts) > 1


def test_signal_budget_respected():
    for signals in (4, 6, 10):
        spec = generate_spec(3, SpecKnobs(signals=signals))
        assert spec.labels.signals <= signals


def test_nondistributive_has_detonant_states():
    spec = generate_spec(9, SpecKnobs(signals=8, distributive=False))
    assert spec.labels.detonant_count > 0


def test_multi_traversal_adds_clock():
    spec = generate_spec(4, SpecKnobs(signals=8, single_traversal=False))
    assert "clk" in spec.sg.signals
    assert not spec.labels.single_traversal


def test_derive_seed_is_stable_and_spread():
    assert derive_seed(0, 5) == derive_seed(0, 5)
    assert len({derive_seed(0, i) for i in range(100)}) == 100


class TestKnobCombinations:
    def test_both_everywhere_gives_eight(self):
        combos = knob_combinations(8)
        assert len(combos) == 8
        assert len({k.short() for k in combos}) == 8

    def test_single_sided(self):
        combos = knob_combinations(8, csc="on", distributive="off", traversal="single")
        assert len(combos) == 1
        k = combos[0]
        assert k.csc and not k.distributive and k.single_traversal

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            knob_combinations(8, csc="maybe")
        with pytest.raises(ValueError):
            knob_combinations(8, traversal="on")


def test_generation_error_on_label_mismatch(monkeypatch):
    """The generator re-validates its own labels and refuses to emit a
    sample whose classifiers disagree with the requested knobs."""
    import dataclasses

    import repro.fuzz.generator as gen

    real = gen.classify

    def lying_classify(sg):
        labels = real(sg)
        return dataclasses.replace(labels, csc=not labels.csc)

    monkeypatch.setattr(gen, "classify", lying_classify)
    with pytest.raises(GenerationError, match="label mismatch"):
        gen.generate_spec(0, SpecKnobs(signals=6))


def test_tiny_signal_count_clamps_to_viable_budget():
    # 1 requested signal is below every motif's floor: the generator
    # clamps the budget up instead of emitting an unlabelable spec
    spec = generate_spec(0, SpecKnobs(signals=1, csc=False, distributive=False))
    assert not spec.labels.csc and not spec.labels.distributive
