"""Tests for the benchmark reconstructions and the Table 2 runner."""

import pytest

from repro.bench import (
    DISTRIBUTIVE_BENCHMARKS,
    NONDISTRIBUTIVE_BENCHMARKS,
    run_benchmark,
    sg_of,
)
from repro.sg import is_distributive, validate_for_synthesis
from repro.stg import elaborate

SMALL_DISTRIBUTIVE = [
    n for n, (_, states, _) in DISTRIBUTIVE_BENCHMARKS.items() if states <= 120
]


class TestBenchmarkValidity:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIVE_BENCHMARKS))
    def test_distributive_benchmarks_valid(self, name):
        builder, paper_states, _ = DISTRIBUTIVE_BENCHMARKS[name]
        if paper_states > 600:
            pytest.skip("large benchmark covered by the bench harness")
        sg = elaborate(builder())
        rep = validate_for_synthesis(sg)
        assert rep.ok, rep.summary()
        assert is_distributive(sg)
        # reconstructed size within the paper's order of magnitude
        assert paper_states / 4 <= sg.num_states <= paper_states * 4

    @pytest.mark.parametrize("name", sorted(NONDISTRIBUTIVE_BENCHMARKS))
    def test_nondistributive_benchmarks_valid(self, name):
        builder, paper_states, _ = NONDISTRIBUTIVE_BENCHMARKS[name]
        sg = builder()
        rep = validate_for_synthesis(sg)
        assert rep.ok, rep.summary()
        assert not is_distributive(sg)
        assert paper_states / 4 <= sg.num_states <= paper_states * 4

    def test_sg_of_both_registries(self):
        assert sg_of("chu172").num_states > 0
        assert sg_of("pmcm2").num_states > 0


class TestRunner:
    def test_distributive_row_all_flows(self):
        row = run_benchmark("chu172")
        for cell in (row.sis, row.syn, row.assassin):
            assert "/" in cell  # area/delay, no failure code
        assert row.paper_assassin == "120/2.4"
        assert not row.compensation_required

    def test_nondistributive_row_failure_codes(self):
        row = run_benchmark("pmcm2")
        assert row.sis == "(1)"
        assert row.syn == "(1)"
        assert "/" in row.assassin

    def test_skip_baselines(self):
        row = run_benchmark("full", run_baselines=False)
        assert row.sis == "-" and row.syn == "-"
        assert "/" in row.assassin

    def test_cells_shape(self):
        row = run_benchmark("hazard")
        name, states, *cells = row.cells()
        assert name == "hazard"
        assert isinstance(states, int)
        assert len(cells) == 3


class TestTable2Shape:
    """The qualitative claims of Section V on the reconstructed suite."""

    @pytest.mark.parametrize("name", ["chu133", "full", "sbuf-send-ctl", "qr42"])
    def test_assassin_never_bigger_than_syn(self, name):
        row = run_benchmark(name)
        a_area = float(row.assassin.split("/")[0])
        s_area = float(row.syn.split("/")[0])
        assert a_area <= s_area

    @pytest.mark.parametrize("name", ["chu133", "hazard", "sbuf-send-ctl"])
    def test_assassin_no_slower_than_sis_on_concurrent(self, name):
        row = run_benchmark(name)
        a_delay = float(row.assassin.split("/")[1])
        s_delay = float(row.sis.split("/")[1])
        assert a_delay <= s_delay

    def test_delay_compensation_never_required(self):
        """Section V: 'delay compensation … was never required'."""
        for name in SMALL_DISTRIBUTIVE + list(NONDISTRIBUTIVE_BENCHMARKS):
            row = run_benchmark(name, run_baselines=False)
            assert not row.compensation_required, name

    def test_only_assassin_handles_nondistributive(self):
        for name in NONDISTRIBUTIVE_BENCHMARKS:
            row = run_benchmark(name)
            assert row.sis == "(1)" and row.syn == "(1)"
            assert "/" in row.assassin
