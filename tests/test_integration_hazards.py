"""Integration: closed-loop hazard-freeness (Theorem 2 in action).

These tests are the reproduction's heart: synthesized circuits run
against their specifications under randomized delays; internal SOP
nets may glitch, observable non-input signals must not.
"""

import pytest

from repro.bench.circuits import (
    build_nondistributive,
    figure1_csc_sg,
    figure2_sg,
    figure7a_sg,
    figure7b_sg,
)
from repro.core import synthesize, verify_hazard_freeness
from repro.netlist import Gate, GateType, Netlist, Pin
from repro.sim import SGEnvironment, SimConfig, Simulator
from repro.stg import elaborate, parse_g
from tests.conftest import C_ELEMENT_G, XYZ_RING_G


FAST = dict(runs=3, max_transitions=80, max_time=2500.0)


class TestHazardFreeness:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: elaborate(parse_g(C_ELEMENT_G)),
            lambda: elaborate(parse_g(XYZ_RING_G)),
            figure1_csc_sg,
            figure2_sg,
            figure7a_sg,
            figure7b_sg,
        ],
        ids=["celem", "xyz", "orelem", "fig2", "fig7a", "fig7b"],
    )
    def test_externally_hazard_free(self, maker):
        sg = maker()
        circuit = synthesize(sg, delay_spread=0.45)
        summary = verify_hazard_freeness(circuit, **FAST)
        assert summary.ok, summary.runs[0].errors[:3]
        assert summary.total_observable_glitches == 0
        assert summary.total_transitions > 0

    def test_nondistributive_benchmark_closed_loop(self):
        sg = build_nondistributive("pmcm2")
        circuit = synthesize(sg, name="pmcm2", delay_spread=0.45)
        summary = verify_hazard_freeness(circuit, **FAST)
        assert summary.ok

    def test_internal_glitches_do_occur(self):
        """The point of the architecture: the planes DO glitch (the OR
        element's set plane is a+b with staggered input arrivals), yet
        nothing escapes."""
        circuit = synthesize(figure1_csc_sg(), delay_spread=0.45)
        summary = verify_hazard_freeness(
            circuit, runs=6, max_transitions=120, jitter=0.45
        )
        assert summary.ok
        assert summary.total_internal_glitches > 0
        assert summary.total_observable_glitches == 0

    def test_extreme_environment_speed(self):
        """The environment may react (almost) immediately — no
        fundamental-mode assumption."""
        circuit = synthesize(figure1_csc_sg(), delay_spread=0.45)
        summary = verify_hazard_freeness(
            circuit, runs=3, max_transitions=80, input_delay=(0.01, 0.4)
        )
        assert summary.ok

    def test_slow_environment(self):
        circuit = synthesize(figure1_csc_sg(), delay_spread=0.45)
        summary = verify_hazard_freeness(
            circuit, runs=2, max_transitions=40, input_delay=(10.0, 30.0),
            max_time=8000.0,
        )
        assert summary.ok


class TestAblationCElement:
    """Replace the MHS flip-flop with a plain RS latch: runt pulses from
    the hazardous planes can now fire the latch — the misbehaviour the
    MHS flip-flop exists to prevent (Section IV-B)."""

    def _with_rs_latch(self, circuit) -> Netlist:
        nl = Netlist(circuit.netlist.name + "_rs")
        for n in circuit.netlist.primary_inputs:
            nl.add_input(n)
        for n in circuit.netlist.primary_outputs:
            nl.add_output(n)
        for g in circuit.netlist.gates:
            if g.type == GateType.MHSFF:
                nl.add(
                    Gate(
                        g.name,
                        GateType.RSLATCH,
                        list(g.inputs),
                        g.output,
                        output_n=g.output_n,
                        attrs=dict(g.attrs),
                    )
                )
            else:
                nl.add(
                    Gate(g.name, g.type, list(g.inputs), g.output,
                         output_n=g.output_n, delay=g.delay, attrs=dict(g.attrs))
                )
        return nl

    def test_rs_latch_version_eventually_misbehaves(self):
        sg = figure1_csc_sg()
        circuit = synthesize(sg, delay_spread=0.45)
        failures = 0
        for seed in range(12):
            nl = self._with_rs_latch(circuit)
            sim = Simulator(nl, SimConfig(jitter=0.45, seed=seed))
            env = SGEnvironment(sg, sim, seed=seed ^ 0xAB, input_delay=(0.05, 2.0))
            report = env.run(max_time=1500.0, max_transitions=120)
            if not report.ok:
                failures += 1
        # the RS latch fires on glitch pulses the MHS would absorb; with
        # aggressive jitter at least one run must trip
        assert failures > 0

    def test_mhs_version_never_misbehaves_same_seeds(self):
        sg = figure1_csc_sg()
        circuit = synthesize(sg, delay_spread=0.45)
        for seed in range(12):
            sim = Simulator(circuit.netlist, SimConfig(jitter=0.45, seed=seed))
            env = SGEnvironment(sg, sim, seed=seed ^ 0xAB, input_delay=(0.05, 2.0))
            report = env.run(max_time=1500.0, max_transitions=120)
            assert report.ok, (seed, report.conformance_errors[:2])
