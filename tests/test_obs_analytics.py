"""The cross-run analytics engine and the auto-ratchet.

Acceptance properties:

* a mixed-kind ledger (interleaved bench / profile / regress, torn
  index lines, duplicate rows) loads onto one timeline with every
  integrity problem **counted**, never silent;
* a synthetic step-slowdown ledger makes the changepoint detector flag
  exactly the injected commit range — no phantom neighbours;
* ``propose_ratchet`` only ever emits thresholds at or above the
  clamps, and ``apply_ratchet`` never loosens without ``allow_loosen``.
"""

import json
import os

import pytest

from repro.obs import analytics
from repro.obs.analytics import (
    ANALYTICS_SCHEMA,
    RATCHET_SCHEMA,
    RatchetError,
    SeriesPoint,
    analyze,
    apply_ratchet,
    detect_changepoints,
    load_ledger,
    mad,
    median,
    phase_series,
    propose_ratchet,
)
from repro.obs.registry import RunHistory
from repro.obs.regress import ThresholdPolicy, Thresholds

ENV = {
    "python": "3.12.0",
    "implementation": "CPython",
    "platform": "Linux-x86_64",
    "machine": "x86_64",
    "cpu_count": 8,
}


def _stamp(i: int) -> str:
    return f"2026-08-{1 + i // 24:02d}T{i % 24:02d}:00:00Z"


def _bench_doc(i: int, sha: str, total_s: float, phases: dict | None = None):
    phases = phases or {"minimize": total_s * 0.5}
    return {
        "schema": "repro-bench/1",
        "created_utc": _stamp(i),
        "env": {**ENV, "git_sha": sha},
        "circuits": [
            {
                "name": "converta",
                "phases": {
                    p: {"median_s": v, "p90_s": v, "calls": 1}
                    for p, v in phases.items()
                },
                "total": {"median_s": total_s, "p90_s": total_s},
            }
        ],
    }


def _profile_doc(i: int, sha: str, self_s: float):
    return {
        "schema": "repro-profile/1",
        "created_utc": _stamp(i),
        "env": {**ENV, "git_sha": sha},
        "functions": [
            {"func": "cover.py:<setcomp>", "self_s": self_s, "pct": 60.0},
            {"func": "graph.py:enabled", "self_s": self_s / 2, "pct": 30.0},
        ],
    }


def _regress_doc(i: int, sha: str, ok: bool = True):
    return {
        "schema": "repro-regress/1",
        "created_utc": _stamp(i),
        "env": {**ENV, "git_sha": sha},
        "ok": ok,
        "regressions": 0 if ok else 2,
        "cleared": 1,
        "baseline": {"created_utc": _stamp(0), "git_sha": "b" * 40},
    }


def _fill(history, n=8, total_s=0.010, start=0, sha=None):
    for i in range(n):
        history.append(
            "bench",
            _bench_doc(start + i, sha or f"{start + i:02d}" + "a" * 38, total_s),
        )


class TestLedgerLoading:
    def test_mixed_kinds_share_one_timeline(self, tmp_path):
        """Interleaved kinds come back chronologically, not per-kind."""
        history = RunHistory(str(tmp_path / "h"))
        history.append("bench", _bench_doc(0, "a" * 40, 0.01))
        history.append("profile", _profile_doc(1, "a" * 40, 0.1))
        history.append("regress", _regress_doc(2, "a" * 40))
        history.append("bench", _bench_doc(3, "c" * 40, 0.01))
        ledger = load_ledger(history)
        assert [r.kind for r in ledger.runs] == [
            "bench",
            "profile",
            "regress",
            "bench",
        ]
        assert ledger.counts() == {"bench": 2, "profile": 1, "regress": 1}
        assert ledger.torn_lines == 0
        assert ledger.duplicates == 0
        assert ledger.unreadable == 0

    def test_torn_lines_counted_never_silent(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        history.append("bench", _bench_doc(0, "a" * 40, 0.01))
        with open(history.index_path, "a") as f:
            f.write('{"file": "half-writ')  # crashed writer
        history.append("bench", _bench_doc(1, "b" * 40, 0.01))
        entries, torn = history.scan()
        assert len(entries) == 2 and torn == 1
        ledger = load_ledger(history)
        assert ledger.torn_lines == 1
        assert len(ledger.runs) == 2  # the torn line isolates cleanly

    def test_duplicate_rows_collapse(self, tmp_path):
        """Identical (kind, created, sha, env) index rows collapse to
        one run, and the collapse is counted."""
        history = RunHistory(str(tmp_path / "h"))
        history.append("bench", _bench_doc(0, "a" * 40, 0.01))
        with open(history.index_path) as f:
            first = f.readline()
        with open(history.index_path, "a") as f:
            f.write(first)  # byte-identical duplicate row
        ledger = load_ledger(history)
        assert len(ledger.runs) == 1
        assert ledger.duplicates == 1

    def test_unreadable_files_counted_with_names(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        entry = history.append("bench", _bench_doc(0, "a" * 40, 0.01))
        history.append("bench", _bench_doc(1, "b" * 40, 0.01))
        os.remove(os.path.join(history.root, entry.file))
        ledger = load_ledger(history)
        assert ledger.unreadable == 1
        assert ledger.unreadable_files == [entry.file]
        assert len(ledger.runs) == 1

    def test_strata_and_current(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        history.append("bench", _bench_doc(0, "a" * 40, 0.01))
        doc = _bench_doc(1, "b" * 40, 0.01)
        doc["env"]["cpu_count"] = 64  # a different machine
        history.append("bench", doc)
        ledger = load_ledger(history)
        assert len(ledger.strata()) == 2
        assert ledger.current_stratum() == ledger.runs[-1].env_digest


class TestSeriesExtraction:
    def test_phase_series_includes_total(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        _fill(history, n=3)
        series = phase_series(load_ledger(history))
        assert ("converta", "minimize") in series
        assert ("converta", "total") in series
        assert len(series[("converta", "total")]) == 3

    def test_robust_stats(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        # one outlier barely moves the MAD (the whole point)
        quiet = [10.0, 10.1, 9.9, 10.0, 50.0]
        assert mad(quiet) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            median([])


def _series(values, shas=None, env="e" * 12):
    shas = shas or [f"{i:02d}" + "f" * 38 for i in range(len(values))]
    return [
        SeriesPoint(
            created_utc=_stamp(i),
            git_sha=shas[i],
            env_digest=env,
            value=v,
            file=f"run{i}.json",
        )
        for i, v in enumerate(values)
    ]


class TestChangepoints:
    def test_flags_exactly_the_injected_commit_range(self):
        """Six quiet runs, then six at 2x: one changepoint, attributed
        to the boundary pair (run5 -> run6) and nothing else."""
        pts = _series([0.010] * 6 + [0.020] * 6)
        cps = detect_changepoints(pts, window=3)
        assert len(cps) == 1
        cp = cps[0]
        assert cp.index == 6
        assert cp.from_sha == pts[5].git_sha
        assert cp.to_sha == pts[6].git_sha
        assert cp.direction == "slower"
        assert cp.ratio == pytest.approx(2.0)

    def test_quiet_series_is_quiet(self):
        pts = _series([0.010, 0.0101, 0.0099, 0.010, 0.0102, 0.0098, 0.010])
        assert detect_changepoints(pts, window=3) == []

    def test_speedup_detected_as_faster(self):
        pts = _series([0.020] * 5 + [0.010] * 5)
        cps = detect_changepoints(pts, window=3)
        assert len(cps) == 1
        assert cps[0].direction == "faster"

    def test_machine_swap_is_not_a_changepoint(self):
        """The same step, but the level shift coincides with an env
        change — per-stratum partitioning must stay silent."""
        slow = _series([0.010] * 6, env="a" * 12)
        fast = _series([0.020] * 6, env="b" * 12)
        assert detect_changepoints(slow + fast, window=3) == []

    def test_short_series_never_flags(self):
        assert detect_changepoints(_series([0.01, 0.09, 0.01]), window=3) == []

    def test_end_to_end_through_analyze(self, tmp_path):
        """The full pipeline: ledger -> analyze -> flagged commit range."""
        history = RunHistory(str(tmp_path / "h"))
        old = "0d" + "a" * 38
        new = "1e" + "b" * 38
        for i in range(6):
            history.append("bench", _bench_doc(i, old, 0.010))
        for i in range(6, 12):
            history.append("bench", _bench_doc(i, new, 0.025))
        doc = analyze(history)
        assert doc["schema"] == ANALYTICS_SCHEMA
        totals = [c for c in doc["changepoints"] if c["phase"] == "total"]
        assert len(totals) == 1
        assert totals[0]["from_sha"] == old
        assert totals[0]["to_sha"] == new
        assert totals[0]["direction"] == "slower"
        row = next(
            p
            for p in doc["phases"]
            if (p["circuit"], p["phase"]) == ("converta", "total")
        )
        assert len(row["changepoints"]) == 1
        assert row["values"][-1] == pytest.approx(0.025)


class TestAnalyzeDocument:
    def test_panels_and_regress_summary(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        for i in range(3):
            doc = _bench_doc(i, f"{i:02d}" + "c" * 38, 0.01)
            doc["circuits"][0]["telemetry"] = {
                "min_omega_margin": 2.0 + i,
                "min_delay_slack": 1.0,
            }
            doc["circuits"][0]["coverage"] = {"states_pct": 80.0}
            doc["circuits"][0]["static"] = {
                "mc_skipped": True,
                "fully_proved": True,
            }
            history.append("bench", doc)
        history.append("profile", _profile_doc(3, "0a" + "c" * 38, 0.2))
        history.append("regress", _regress_doc(4, "0b" + "c" * 38, ok=False))
        doc = analyze(history)
        assert doc["panels"]["min_omega_margin"]["latest"] == pytest.approx(4.0)
        assert doc["panels"]["coverage_pct"]["latest"] == pytest.approx(80.0)
        assert doc["panels"]["certified"]["latest"] == 1
        assert doc["regress"]["ok"] is False
        assert doc["regress"]["regressions"] == 2
        hot = {h["func"] for h in doc["hotspots"]}
        assert "cover.py:<setcomp>" in hot

    def test_empty_ledger(self, tmp_path):
        doc = analyze(str(tmp_path / "empty"))
        assert doc["ledger"]["runs"] == 0
        assert doc["phases"] == []
        assert doc["changepoints"] == []


class TestProposeRatchet:
    def test_quiet_ledger_proposes_tighter_bands(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        _fill(history, n=8, total_s=0.010)
        proposal = propose_ratchet(history, ThresholdPolicy())
        assert proposal["schema"] == RATCHET_SCHEMA
        by_phase = {r["phase"]: r for r in proposal["phases"]}
        assert by_phase["total"]["action"] == "tighten"
        assert proposal["tightened"] >= 1
        # a dead-quiet series still never ratchets below the clamps
        assert by_phase["total"]["proposed"]["rel"] >= 0.05
        assert by_phase["total"]["proposed"]["abs_s"] >= 0.0005
        # evidence rides along
        ev = by_phase["total"]["circuits"][0]
        assert ev["circuit"] == "converta" and ev["n"] >= 3

    def test_stale_thresholds_flagged(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        _fill(history, n=8, total_s=0.010)
        proposal = propose_ratchet(
            history, ThresholdPolicy(default=Thresholds(rel=0.5))
        )
        assert "total" in proposal["stale_phases"]

    def test_noisy_phase_proposes_loosen(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        # ±30-40% jitter run to run: the floor is far above a 0.05 band
        noisy = [0.010, 0.013, 0.007, 0.011, 0.009, 0.014, 0.008, 0.012]
        for i, v in enumerate(noisy):
            history.append("bench", _bench_doc(i, f"{i:02d}" + "d" * 38, v))
        proposal = propose_ratchet(
            history, ThresholdPolicy(default=Thresholds(rel=0.05, abs_s=0.0005))
        )
        by_phase = {r["phase"]: r for r in proposal["phases"]}
        assert by_phase["total"]["action"] == "loosen"

    def test_too_few_runs_no_evidence(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        _fill(history, n=2)
        proposal = propose_ratchet(history, ThresholdPolicy())
        assert proposal["phases"] == []

    def test_clean_tail_excludes_the_old_level(self, tmp_path):
        """A freshly-landed perf win must not widen the floor: the
        median evidence comes from after the changepoint only."""
        history = RunHistory(str(tmp_path / "h"))
        _fill(history, n=6, total_s=0.040, start=0)
        _fill(history, n=6, total_s=0.010, start=6)
        proposal = propose_ratchet(history, ThresholdPolicy())
        by_phase = {r["phase"]: r for r in proposal["phases"]}
        ev = by_phase["total"]["circuits"][0]
        assert ev["median_s"] == pytest.approx(0.010)
        assert ev["n"] <= 6


class TestApplyRatchet:
    def _proposal(self, tmp_path, policy):
        history = RunHistory(str(tmp_path / "h"))
        _fill(history, n=8, total_s=0.010)
        return propose_ratchet(history, policy)

    def test_tighten_applies_componentwise(self, tmp_path):
        policy = ThresholdPolicy()
        proposal = self._proposal(tmp_path, policy)
        new = apply_ratchet(proposal, policy)
        for phase, t in new.phases.items():
            old = policy.for_phase(phase)
            assert t.rel <= old.rel and t.abs_s <= old.abs_s
        assert new.phases  # something actually ratcheted

    def test_refuses_to_loosen_loudly(self, tmp_path):
        tight = ThresholdPolicy(
            default=Thresholds(rel=0.001, abs_s=0.000001)
        )
        proposal = self._proposal(tmp_path, tight)
        assert any(r["action"] == "loosen" for r in proposal["phases"])
        with pytest.raises(RatchetError, match="loosen"):
            apply_ratchet(proposal, tight)
        # and the policy is untouched on refusal
        assert tight.phases == {}

    def test_allow_loosen_applies_verbatim(self, tmp_path):
        tight = ThresholdPolicy(
            default=Thresholds(rel=0.001, abs_s=0.000001)
        )
        proposal = self._proposal(tmp_path, tight)
        new = apply_ratchet(proposal, tight, allow_loosen=True)
        by_phase = {r["phase"]: r for r in proposal["phases"]}
        for phase, t in new.phases.items():
            assert t.rel == pytest.approx(by_phase[phase]["proposed"]["rel"])

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="repro-ratchet/1"):
            apply_ratchet({"schema": "nope/9"}, ThresholdPolicy())

    def test_never_looser_even_on_mixed_rows(self):
        """A hand-built tighten row that sneaks in a looser abs_s must
        tighten rel and keep the committed abs_s."""
        policy = ThresholdPolicy()
        proposal = {
            "schema": RATCHET_SCHEMA,
            "phases": [
                {
                    "phase": "minimize",
                    "action": "tighten",
                    "proposed": {"rel": 0.10, "abs_s": 9.0},
                }
            ],
        }
        new = apply_ratchet(proposal, policy)
        t = new.phases["minimize"]
        assert t.rel == pytest.approx(0.10)
        assert t.abs_s == pytest.approx(policy.default.abs_s)


class TestRoundTrip:
    def test_analytics_doc_is_json(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        _fill(history, n=4)
        doc = analyze(history)
        again = json.loads(json.dumps(doc))
        assert again["schema"] == ANALYTICS_SCHEMA

    def test_module_exports(self):
        for name in ("analyze", "propose_ratchet", "apply_ratchet"):
            assert name in analytics.__all__
