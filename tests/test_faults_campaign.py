"""The fault-injection campaign subsystem, end to end.

Covers the fault-model transforms, the simulator watchdogs (an injected
livelock must surface as a structured :class:`SimulationLimitError`,
never a hang), graceful degradation in the campaign runner, the
multiprocessing fan-out, the JSON report schema, and — the headline
robustness claim — ≥90% fault coverage over the paper benchmark suite.
"""

import json
import pickle
from dataclasses import dataclass

import pytest

from repro.core import run_oracle, synthesize
from repro.faults import (
    DeletedAckGateFault,
    DelayViolationFault,
    FaultCampaign,
    FaultModel,
    InvertedLiteralFault,
    OmegaMarginFault,
    StuckAtFault,
    SwappedSetResetFault,
    TransientPulseFault,
    WatchdogLimits,
    enumerate_faults,
    rebuild_netlist,
    run_campaign,
)
from repro.netlist import Gate, GateType, Netlist, Pin
from repro.sim import (
    SimConfig,
    SimulationError,
    SimulationLimitError,
    Simulator,
)
from repro.stg import elaborate, parse_g
from tests.conftest import C_ELEMENT_G


@pytest.fixture(scope="module")
def golden():
    sg = elaborate(parse_g(C_ELEMENT_G))
    circuit = synthesize(sg, name="celem", delay_spread=0.3)
    return sg, circuit


# ----------------------------------------------------------------------
# fault models
# ----------------------------------------------------------------------
class TestFaultModels:
    def test_enumerate_covers_catalogue(self, golden):
        _, circuit = golden
        faults = enumerate_faults(circuit.netlist)
        kinds = {f.kind for f in faults}
        assert {"stuck", "inverted-literal", "swapped-set-reset",
                "seu", "omega-margin"} <= kinds
        # dedupe: no fault listed twice
        assert len(faults) == len(set(faults))

    def test_models_pickle(self, golden):
        """Frozen dataclasses must survive the multiprocessing pipe."""
        _, circuit = golden
        for f in enumerate_faults(circuit.netlist):
            assert pickle.loads(pickle.dumps(f)) == f

    def test_stuck_at_replaces_both_rails(self, golden):
        _, circuit = golden
        ff = next(g for g in circuit.netlist.gates if g.type == GateType.MHSFF)
        faulty = StuckAtFault(ff.output, 1).apply_netlist(circuit.netlist)
        consts = {
            g.output: g.attrs["value"]
            for g in faulty.gates
            if g.type == GateType.CONST and g.output.startswith(ff.output)
        }
        assert consts[ff.output] == 1
        if ff.output_n:
            assert faulty.driver(ff.output_n).attrs["value"] == 0

    def test_stuck_at_rejects_primary_input(self, golden):
        _, circuit = golden
        pi = circuit.netlist.primary_inputs[0]
        with pytest.raises(ValueError, match="primary input"):
            StuckAtFault(pi, 0).apply_netlist(circuit.netlist)

    def test_unknown_gate_raises(self, golden):
        _, circuit = golden
        for fault in (
            InvertedLiteralFault("nope"),
            SwappedSetResetFault("nope"),
            DelayViolationFault("nope"),
        ):
            with pytest.raises(ValueError):
                fault.apply_netlist(circuit.netlist)

    def test_delay_fault_hits_every_delay_line(self):
        from repro.bench.circuits import build_nondistributive

        sg = build_nondistributive("pmcm2")
        circuit = synthesize(sg, name="pmcm2", delay_spread=0.4)
        lines = [g for g in circuit.netlist.gates if g.type == GateType.DELAY]
        assert lines, "pmcm2 at ±40% must require compensation"
        faulty = DelayViolationFault(None, 0.0).apply_netlist(circuit.netlist)
        for g in faulty.gates:
            if g.type == GateType.DELAY:
                assert g.delay == 0.0

    def test_omega_margin_shrinks_config(self):
        cfg = OmegaMarginFault(omega=0.05).apply_config(SimConfig())
        assert cfg.mhs.omega == 0.05
        # tau untouched
        assert cfg.mhs.tau == SimConfig().mhs.tau

    def test_rebuild_is_deep(self, golden):
        _, circuit = golden
        copy = rebuild_netlist(circuit.netlist, lambda g: g)
        g0 = copy.gates[0]
        g0.inputs.append(Pin("bogus"))
        assert len(circuit.netlist.gates[0].inputs) != len(g0.inputs) or not (
            circuit.netlist.gates[0].inputs is g0.inputs
        )

    def test_seu_described(self):
        f = TransientPulseFault("n1", at=17.0, width=3.0)
        assert f.describe() == "seu@n1@t17w3"
        assert TransientPulseFault("n1").describe() == "seu@n1@rnd2w3"


# ----------------------------------------------------------------------
# simulator watchdogs + structured errors (the livelock guard)
# ----------------------------------------------------------------------
def gated_oscillator() -> Netlist:
    """Stable at ``en=0``; oscillates forever once ``en`` rises.

    A single fast AND gate fed back through its own inverted output:
    the canonical event-flood livelock the ``max_events`` watchdog
    exists for.
    """
    nl = Netlist("osc")
    nl.add_input("en")
    nl.add_output("osc_out")
    nl.add(
        Gate(
            "osc_and",
            GateType.AND,
            [Pin("en"), Pin("osc_out", inverted=True)],
            "osc_out",
            delay=0.05,
        )
    )
    return nl


class TestWatchdogs:
    def test_livelock_hits_event_budget(self):
        sim = Simulator(gated_oscillator(), SimConfig(max_events=5_000))
        sim.initialize({"en": 0})
        sim.drive("en", 1, 1.0)
        with pytest.raises(SimulationLimitError) as exc:
            sim.run(1e9)
        assert exc.value.limit == "events"
        assert exc.value.events >= 5_000
        assert sim.events_processed >= 5_000

    def test_livelock_hits_time_budget(self):
        sim = Simulator(
            gated_oscillator(),
            SimConfig(max_events=10_000_000, max_sim_time=50.0),
        )
        sim.initialize({"en": 0})
        sim.drive("en", 1, 1.0)
        with pytest.raises(SimulationLimitError) as exc:
            sim.run(1e9)
        assert exc.value.limit == "time"
        assert exc.value.time > 50.0

    def test_limit_error_is_simulation_error(self):
        assert issubclass(SimulationLimitError, SimulationError)
        e = SimulationError("boom", gate="g1", net="n1", time=2.5)
        assert (e.gate, e.net, e.time) == ("g1", "n1", 2.5)
        assert "g1" in e.describe() and "t=2.5" in e.describe()

    def test_unbudgeted_run_unaffected(self):
        sim = Simulator(gated_oscillator(), SimConfig())
        sim.initialize({"en": 0})
        sim.run(100.0)  # stable: no budget, no events, no error
        assert sim.value("osc_out") == 0

    def test_inject_validates_net(self):
        sim = Simulator(gated_oscillator(), SimConfig())
        sim.initialize({"en": 0})
        with pytest.raises(ValueError, match="is not a net"):
            sim.inject("no_such_net", 1, 1.0)

    def test_schedule_callback_fires_once(self):
        sim = Simulator(gated_oscillator(), SimConfig())
        sim.initialize({"en": 0})
        seen = []
        sim.schedule_callback(5.0, lambda s, t: seen.append(t))
        sim.run(100.0)
        assert seen == [5.0]


# ----------------------------------------------------------------------
# a fault that livelocks the circuit (for campaign-level tests)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LivelockFault(FaultModel):
    """Grafts a self-latching ring oscillator armed by the output.

    ``osc_en`` latches high the first time ``signal`` rises (a
    self-looped OR), after which a fast feedback AND oscillates
    forever — the circuit itself still conforms, but the event stream
    never quiesces.  Only the ``max_events`` watchdog turns this into
    a recorded outcome instead of a stuck campaign.
    """

    signal: str = "c"

    kind = "livelock"

    def apply_netlist(self, netlist):
        nl = rebuild_netlist(netlist, lambda g: g)
        nl.add(
            Gate(
                "osc_latch",
                GateType.OR,
                [Pin(self.signal), Pin("osc_en")],
                "osc_en",
            )
        )
        nl.add(
            Gate(
                "osc_and",
                GateType.AND,
                [Pin("osc_en"), Pin("osc_out", inverted=True)],
                "osc_out",
                delay=0.05,
            )
        )
        return nl


class TestGracefulDegradation:
    def test_oracle_reports_timeout_not_hang(self, golden):
        sg, circuit = golden
        fault = LivelockFault("c")
        faulty = fault.apply_netlist(circuit.netlist)
        verdict = run_oracle(
            faulty, sg, SimConfig(jitter=0.3, seed=0, max_events=20_000)
        )
        assert verdict.status == "timeout"
        assert verdict.events >= 20_000
        assert verdict.errors and "event" in verdict.errors[0]

    def test_campaign_records_livelock_as_timeout(self):
        res = FaultCampaign(
            circuits=["c_element"],
            seeds=2,
            limits=WatchdogLimits(max_events=5_000),
            faults={"c_element": [LivelockFault("c")]},
        ).run()
        (fo,) = res.fault_outcomes()
        assert fo.outcome == "timeout"
        assert fo.covered  # a livelock is a detection, not an escape

    def test_inapplicable_fault_is_error_record(self):
        res = FaultCampaign(
            circuits=["c_element"],
            seeds=2,
            faults={"c_element": [InvertedLiteralFault("no_such_gate")]},
        ).run()
        (fo,) = res.fault_outcomes()
        assert fo.outcome == "error"
        assert "fault application failed" in fo.detail


# ----------------------------------------------------------------------
# campaign runner + report
# ----------------------------------------------------------------------
class TestCampaign:
    def test_smoke_serial(self):
        res = run_campaign(["c_element"], seeds=3)
        assert res.baseline_ok
        assert res.num_faults > 5
        assert res.coverage >= 0.8
        assert not any(r.outcome == "error" for r in res.records)

    def test_smoke_parallel_matches_serial(self):
        serial = run_campaign(["c_element"], seeds=3, jobs=1)
        fanned = run_campaign(["c_element"], seeds=3, jobs=2)
        as_map = lambda r: {
            (f.circuit, f.fault): f.outcome for f in r.fault_outcomes()
        }
        assert as_map(serial) == as_map(fanned)

    def test_json_report_schema(self):
        res = run_campaign(["c_element"], seeds=2)
        doc = json.loads(res.render_json())
        assert doc["schema"] == "repro-fault-campaign/2"
        assert doc["circuits"] == ["c_element"]
        assert set(doc["outcomes"]) == {
            "detected", "undetected", "timeout", "error",
        }
        assert doc["num_faults"] == len(doc["faults"])
        assert 0.0 <= doc["coverage"] <= 1.0
        assert doc["baseline_ok"] is True
        for point in doc["points"]:
            assert point["outcome"] in (
                "detected", "undetected", "timeout", "error",
            )
            assert point["runtime"] >= 0.0

    def test_runtime_accounting(self):
        """/2 additions: per-fault runtime sums its points, and the
        per-outcome totals account for every second the sweep spent."""
        res = run_campaign(["c_element"], seeds=2)
        doc = res.to_json()
        by_outcome = doc["runtime_by_outcome"]
        assert set(by_outcome) == {
            "detected", "undetected", "timeout", "error", "golden",
        }
        assert all(v >= 0.0 for v in by_outcome.values())
        # every executed point took measurable time
        assert all(r.runtime > 0.0 for r in res.records if r.seed >= 0)
        assert all(r.runtime > 0.0 for r in res.baselines)
        # per-fault runtime is the sum over that fault's seeds
        for fo in res.fault_outcomes():
            expected = sum(
                r.runtime for r in res.records if r.fault == fo.fault
            )
            assert fo.runtime == pytest.approx(expected, abs=1e-5)
        # outcome totals tie back to the raw points
        total_points = sum(r.runtime for r in res.records)
        total_outcomes = sum(
            v for k, v in by_outcome.items() if k != "golden"
        )
        assert total_outcomes == pytest.approx(total_points, abs=1e-3)
        assert "runtime per outcome:" in res.render_text()

    def test_parse_campaign_json_roundtrip(self):
        from repro.faults import parse_campaign_json

        res = run_campaign(["c_element"], seeds=2)
        back = parse_campaign_json(res.render_json())
        assert back.to_json() == res.to_json()

    def test_parse_campaign_json_reads_v1(self):
        """A /1 document (no runtime keys) still parses: the /2
        aggregates are recomputed from its point records."""
        from repro.faults import parse_campaign_json

        res = run_campaign(["c_element"], seeds=2)
        doc = res.to_json()
        doc["schema"] = "repro-fault-campaign/1"
        del doc["runtime_by_outcome"]
        for rows in (doc["faults"], doc["points"], doc["baselines"]):
            for row in rows:
                row.pop("runtime", None)
        back = parse_campaign_json(json.dumps(doc))
        assert back.circuits == ["c_element"]
        assert len(back.records) == len(res.records)
        assert back.baseline_ok == res.baseline_ok
        # runtimes were absent in /1 → zeros, but structure is intact
        assert back.to_json()["schema"] == "repro-fault-campaign/2"
        assert all(v == 0.0 for v in back.runtime_by_outcome().values())

    def test_parse_campaign_json_rejects_unknown_schema(self):
        from repro.faults import parse_campaign_json

        with pytest.raises(ValueError, match="unknown campaign schema"):
            parse_campaign_json({"schema": "repro-fault-campaign/99"})

    def test_text_report_lists_escapes(self):
        res = FaultCampaign(
            circuits=["c_element"],
            seeds=1,
            faults={"c_element": []},
        ).run()
        text = res.render_text()
        assert "fault campaign" in text
        assert "baseline (golden) runs clean: True" in text

    def test_unknown_circuit_raises_at_enumeration(self):
        with pytest.raises(KeyError, match="unknown fault-suite circuit"):
            FaultCampaign(circuits=["nonexistent"]).units()


# ----------------------------------------------------------------------
# the headline robustness claim
# ----------------------------------------------------------------------
class TestBenchmarkCoverage:
    def test_paper_suite_coverage(self):
        """≥90% of injected faults are detected across the paper suite,
        the golden baselines stay clean, and nothing crashes the sweep."""
        res = run_campaign(
            ["c_element", "xyz_ring", "handshake", "fork_join", "chu150"],
            seeds=8,
            jobs=2,
        )
        assert res.baseline_ok, "golden circuits must verify clean"
        assert res.coverage >= 0.90, (
            f"fault coverage {res.coverage:.1%} below the 90% bar; "
            f"escapes: {[(f.circuit, f.fault) for f in res.undetected()]}"
        )
        assert not any(r.outcome == "error" for r in res.records), (
            "campaign-level crashes: "
            f"{[r.detail for r in res.records if r.outcome == 'error']}"
        )

    @pytest.mark.slow
    def test_full_suite_coverage_deep(self):
        """The full six-circuit sweep at higher seed count (opt-in)."""
        res = run_campaign(
            ["c_element", "xyz_ring", "handshake", "fork_join",
             "chu150", "pmcm2"],
            seeds=16,
            jobs=2,
        )
        assert res.baseline_ok
        assert res.coverage >= 0.90
        assert not any(r.outcome == "error" for r in res.records)


class TestPointTelemetry:
    def test_campaign_points_carry_telemetry(self):
        res = FaultCampaign(
            circuits=["c_element"],
            seeds=2,
            include_seu=False,
            include_omega=False,
            collect_telemetry=True,
        ).run()
        assert res.records, "expected stuck-at points"
        for rec in res.records:
            assert isinstance(rec.telemetry, dict)
            assert rec.telemetry["pulses"] >= 0
        # golden baselines run healthy traversals: positive margins
        golden = [r for r in res.baselines if r.telemetry]
        assert golden
        assert golden[0].telemetry["min_omega_margin"] > 0
        assert golden[0].telemetry["min_delay_slack"] > 0
        # the blocks survive the JSON round trip
        doc = json.loads(res.render_json())
        assert doc["points"][0]["telemetry"] is not None

    def test_telemetry_off_by_default(self):
        res = FaultCampaign(
            circuits=["c_element"],
            seeds=1,
            include_seu=False,
            include_omega=False,
        ).run()
        assert all(r.telemetry is None for r in res.records + res.baselines)


class TestPointCoverage:
    def test_campaign_points_carry_coverage_deltas(self):
        res = FaultCampaign(
            circuits=["c_element"],
            seeds=2,
            include_seu=False,
            include_omega=False,
            collect_coverage=True,
        ).run()
        assert res.records, "expected stuck-at points"
        for rec in res.records:
            assert isinstance(rec.coverage, dict)
            assert set(rec.coverage) >= {
                "states_pct", "regions_pct", "cubes_pct",
            }
            # faulty points diff against the golden exploration ceiling
            assert isinstance(rec.coverage_delta, dict)
            assert all(v <= 0.0 for v in rec.coverage_delta.values()), (
                "a faulty run cannot out-explore the fault-free ceiling"
            )
        golden = [r for r in res.baselines if r.coverage]
        assert golden
        assert golden[0].coverage["regions_pct"] >= 95.0
        # a stuck rail visibly collapses state exploration somewhere
        assert any(
            rec.coverage_delta.get("states_pct", 0.0) < 0.0
            for rec in res.records
        )
        # the blocks survive the JSON round trip
        doc = json.loads(res.render_json())
        assert doc["points"][0]["coverage"] is not None

    def test_coverage_off_by_default(self):
        res = FaultCampaign(
            circuits=["c_element"],
            seeds=1,
            include_seu=False,
            include_omega=False,
        ).run()
        assert all(
            r.coverage is None and r.coverage_delta is None
            for r in res.records + res.baselines
        )
