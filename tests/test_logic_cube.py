"""Unit tests for the positional-cube representation."""

import pytest
from hypothesis import given, strategies as st

from repro.logic import Cube
from repro.logic.cube import LIT_DC, LIT_ONE, LIT_ZERO, full_input_mask, supercube_of


def cubes(num_inputs=st.integers(1, 6)):
    """Hypothesis strategy producing random non-empty cubes."""

    @st.composite
    def _build(draw):
        n = draw(num_inputs)
        fields = [draw(st.sampled_from([LIT_ZERO, LIT_ONE, LIT_DC])) for _ in range(n)]
        mask = 0
        for i, f in enumerate(fields):
            mask |= f << (2 * i)
        return Cube(n, mask)

    return _build()


class TestConstruction:
    def test_from_string(self):
        c = Cube.from_string("1-0")
        assert c.num_inputs == 3
        assert c.literal(0) == LIT_ONE
        assert c.literal(1) == LIT_DC
        assert c.literal(2) == LIT_ZERO

    def test_from_string_alternate_dc_chars(self):
        assert Cube.from_string("2x-").is_full_inputs()

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.from_string("1q0")

    def test_from_assignment(self):
        c = Cube.from_assignment([1, 0, None])
        assert c.input_string() == "10-"

    def test_from_minterm(self):
        c = Cube.from_minterm(0b101, 3)
        assert c.input_string() == "101"
        assert c.contains_minterm(0b101)
        assert not c.contains_minterm(0b100)

    def test_full(self):
        c = Cube.full(4)
        assert c.is_full_inputs()
        assert c.inputs == full_input_mask(4)
        assert c.num_literals() == 0

    def test_roundtrip_string(self):
        for s in ["0", "1", "-", "01-", "1-0-1"]:
            assert Cube.from_string(s).input_string() == s


class TestPredicates:
    def test_empty_cube(self):
        c = Cube(2, 0b0100)  # var0 field = 00
        assert c.is_empty()

    def test_zero_outputs_is_empty(self):
        assert Cube.from_string("1-", outputs=0).is_empty()

    def test_fixed_and_free_vars(self):
        c = Cube.from_string("1-0")
        assert c.fixed_vars() == [0, 2]
        assert c.free_vars() == [1]

    def test_size(self):
        assert Cube.from_string("1-0").size() == 2
        assert Cube.full(3).size() == 8

    def test_output_list(self):
        c = Cube.from_string("1", outputs=0b101)
        assert c.output_list() == [0, 2]


class TestRelations:
    def test_containment(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains(small)
        assert not small.contains(big)

    def test_containment_includes_outputs(self):
        a = Cube.from_string("1-", outputs=0b11)
        b = Cube.from_string("1-", outputs=0b01)
        assert a.contains(b)
        assert not b.contains(a)

    def test_intersection(self):
        a = Cube.from_string("1-")
        b = Cube.from_string("-0")
        i = a.intersect(b)
        assert i is not None and i.input_string() == "10"

    def test_disjoint_intersection(self):
        a = Cube.from_string("1-")
        b = Cube.from_string("0-")
        assert a.intersect(b) is None
        assert not a.intersects(b)

    def test_output_disjoint(self):
        a = Cube.from_string("--", outputs=0b01)
        b = Cube.from_string("--", outputs=0b10)
        assert not a.intersects(b)

    def test_distance(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("01-")
        assert a.distance(b) == 2
        assert a.distance(a) == 0

    def test_supercube(self):
        a = Cube.from_string("10")
        b = Cube.from_string("11")
        assert a.supercube(b).input_string() == "1-"


class TestOperators:
    def test_raise_var(self):
        c = Cube.from_string("10")
        assert c.raise_var(1).input_string() == "1-"

    def test_with_literal(self):
        c = Cube.full(2)
        assert c.with_literal(0, LIT_ZERO).input_string() == "0-"

    def test_cofactor_basic(self):
        c = Cube.from_string("1-0")
        p = Cube.from_string("1--")
        cf = c.cofactor(p)
        assert cf is not None and cf.input_string() == "--0"

    def test_cofactor_disjoint(self):
        assert Cube.from_string("1").cofactor(Cube.from_string("0")) is None

    def test_consensus_distance1(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("00-")  # differ in var0 only
        c = a.consensus(b)
        assert c is not None and c.input_string() == "-0-"

    def test_consensus_distance2_undefined(self):
        a = Cube.from_string("10")
        b = Cube.from_string("01")
        assert a.consensus(b) is None

    def test_minterms(self):
        assert sorted(Cube.from_string("1-").minterms()) == [0b01, 0b11]

    def test_to_expression(self):
        c = Cube.from_string("10-")
        assert c.to_expression(["a", "b", "c"]) == "a b'"
        assert Cube.full(2).to_expression() == "1"

    def test_supercube_of(self):
        cubes_ = [Cube.from_minterm(m, 2) for m in range(4)]
        assert supercube_of(cubes_).is_full_inputs()
        assert supercube_of([]) is None


class TestProperties:
    @given(cubes())
    def test_minterm_membership_matches_enumeration(self, c):
        listed = set(c.minterms())
        for m in range(1 << c.num_inputs):
            assert (m in listed) == c.contains_minterm(m)

    @given(cubes())
    def test_self_containment(self, c):
        assert c.contains(c)
        assert c.distance(c) == 0

    @given(st.data())
    def test_intersection_is_conjunction(self, data):
        n = data.draw(st.integers(1, 5))
        a = data.draw(cubes(st.just(n)))
        b = data.draw(cubes(st.just(n)))
        i = a.intersect(b)
        got = set(i.minterms()) if i is not None else set()
        expect = set(a.minterms()) & set(b.minterms())
        assert got == expect

    @given(st.data())
    def test_supercube_contains_both(self, data):
        n = data.draw(st.integers(1, 5))
        a = data.draw(cubes(st.just(n)))
        b = data.draw(cubes(st.just(n)))
        s = a.supercube(b)
        assert s.contains(a) and s.contains(b)

    @given(st.data())
    def test_consensus_is_implied(self, data):
        """The consensus of two cubes lies inside their union's closure:
        every consensus minterm is covered by a ∪ b on at least one side
        of the resolved variable."""
        n = data.draw(st.integers(1, 5))
        a = data.draw(cubes(st.just(n)))
        b = data.draw(cubes(st.just(n)))
        c = a.consensus(b)
        if c is None or a.distance(b) != 1:
            return
        # classic consensus soundness: a + b = a + b + c
        union = set(a.minterms()) | set(b.minterms())
        assert set(c.minterms()) <= union or all(
            m in union for m in c.minterms()
        )
