"""Tests for PLA text I/O."""

import pytest

from repro.logic import Cover, Cube, parse_pla, write_pla


SAMPLE = """
# a 2-input, 2-output example
.i 2
.o 2
.ilb a b
.ob f g
.type fr
.p 3
11 10
0- 01
10 0~
.e
"""


class TestParse:
    def test_header(self):
        pla = parse_pla(SAMPLE)
        assert pla.num_inputs == 2 and pla.num_outputs == 2
        assert pla.input_names == ["a", "b"]
        assert pla.output_names == ["f", "g"]

    def test_on_set(self):
        pla = parse_pla(SAMPLE)
        assert pla.on.contains_minterm(0b11, output=0)
        assert pla.on.contains_minterm(0b00, output=1)
        assert pla.on.contains_minterm(0b10, output=1)

    def test_fr_off_semantics(self):
        pla = parse_pla(SAMPLE)
        # row "11 10": g gets an explicit OFF point at 11
        assert pla.off.contains_minterm(0b11, output=1)
        # row "10 0~": '~' leaves f unspecified, '0' puts it in OFF
        assert pla.off.contains_minterm(0b01, output=0)

    def test_missing_declarations(self):
        with pytest.raises(ValueError):
            parse_pla("11 1\n")

    def test_fd_type_zero_not_off(self):
        text = ".i 1\n.o 1\n.type fd\n1 1\n0 0\n.e\n"
        pla = parse_pla(text)
        assert len(pla.off) == 0

    def test_concatenated_row(self):
        text = ".i 2\n.o 1\n111\n.e\n"
        pla = parse_pla(text)
        assert pla.on.contains_minterm(0b11)


class TestWrite:
    def test_roundtrip(self):
        on = Cover.empty(3, 2)
        on.add(Cube.from_string("1-0", 0b01))
        on.add(Cube.from_string("01-", 0b10))
        dc = Cover.empty(3, 2)
        dc.add(Cube.from_string("111", 0b11))
        text = write_pla(on, dc, input_names=list("xyz"), output_names=["p", "q"])
        back = parse_pla(text)
        assert back.on.contains_minterm(0b001, 0)
        assert back.dc.contains_minterm(0b111, 0)
        assert back.dc.contains_minterm(0b111, 1)
        assert back.input_names == ["x", "y", "z"]

    def test_row_count_matches(self):
        on = Cover.from_strings(["1-", "01"])
        text = write_pla(on)
        assert ".p 2" in text
