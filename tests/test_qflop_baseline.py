"""Tests for the Q-module baseline ([9]) and its Section II cost claims."""

import pytest

from repro.baselines import synthesize_qmodule
from repro.bench.circuits import figure1_csc_sg
from repro.core import synthesize
from repro.netlist import GateType


class TestStructure:
    def test_qflop_per_input_and_feedback(self, celem_sg):
        res = synthesize_qmodule(celem_sg)
        qflops = [g for g in res.netlist.gates if g.type == GateType.QFLOP]
        assert len(qflops) == celem_sg.num_signals
        assert res.num_qflops == celem_sg.num_signals

    def test_rendezvous_tree_size(self, celem_sg, xyz_sg):
        for sg in (celem_sg, xyz_sg):
            res = synthesize_qmodule(sg)
            cels = [g for g in res.netlist.gates if g.type == GateType.CEL]
            assert len(cels) == sg.num_signals - 1
            assert res.rendezvous_cells == sg.num_signals - 1

    def test_clock_delay_line_present(self, celem_sg):
        res = synthesize_qmodule(celem_sg)
        clk = [g for g in res.netlist.gates if g.attrs.get("clock")]
        assert len(clk) == 1
        assert clk[0].type == GateType.DELAY
        assert clk[0].delay == res.clock_delay_line
        assert res.clock_delay_line >= 1.2

    def test_netlist_structurally_valid(self, celem_sg):
        res = synthesize_qmodule(celem_sg)
        assert res.netlist.validate() == []

    def test_handles_nondistributive(self):
        # no distributivity restriction, unlike SIS/SYN
        res = synthesize_qmodule(figure1_csc_sg())
        assert res.netlist.gates


class TestSectionIIClaims:
    def test_more_memory_elements_than_nshot(self, celem_sg):
        q = synthesize_qmodule(celem_sg)
        ours = synthesize(celem_sg)
        assert q.num_qflops > len(ours.netlist.sequential_gates())

    @pytest.mark.parametrize("maker", ["celem", "orelem"])
    def test_bigger_and_slower(self, maker, celem_sg):
        sg = celem_sg if maker == "celem" else figure1_csc_sg()
        q = synthesize_qmodule(sg)
        ours = synthesize(sg)
        assert q.stats().area > ours.stats().area
        assert q.stats().delay >= ours.stats().delay

    def test_clock_period_grows_with_logic_depth(self):
        from repro.bench.runner import sg_of

        small = synthesize_qmodule(sg_of("chu172"))
        big = synthesize_qmodule(sg_of("pe-send-ifc"))
        assert big.clock_delay_line >= small.clock_delay_line
