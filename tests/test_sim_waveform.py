"""TraceSet / Waveform edge cases and the ω-margin helper."""

import pytest

from repro.sim.hazards import omega_margins
from repro.sim.waveform import TraceSet, Waveform


class TestEmptyWaveform:
    """A net that never changed must degrade gracefully everywhere."""

    def test_defaults(self):
        w = Waveform("idle")
        assert w.initial == 0
        assert w.final == 0
        assert w.num_transitions() == 0
        assert w.transitions() == []

    def test_pulses_empty(self):
        w = Waveform("idle")
        assert w.pulses() == []
        assert w.pulses(end_time=10.0) == []
        assert w.glitch_pulses(1.0) == []

    def test_value_at(self):
        assert Waveform("idle").value_at(5.0) == 0

    def test_render(self):
        assert "(no data)" in Waveform("idle").render()


class TestOutOfOrderEvents:
    def test_record_rejects_time_travel(self):
        w = Waveform("n")
        w.record(0.0, 0)
        w.record(2.0, 1)
        with pytest.raises(ValueError, match="non-monotonic"):
            w.record(1.0, 0)

    def test_traceset_record_rejects_time_travel(self):
        ts = TraceSet()
        ts.record("n", 3.0, 1)
        with pytest.raises(ValueError, match="non-monotonic"):
            ts.record("n", 2.0, 0)

    def test_equal_time_is_fine(self):
        """Zero-delay glitches land at the same timestamp legally."""
        w = Waveform("n")
        w.record(1.0, 0)
        w.record(1.0, 1)
        assert w.num_transitions() == 1

    def test_redundant_value_ignored(self):
        w = Waveform("n")
        w.record(0.0, 1)
        w.record(5.0, 1)
        assert w.changes == [(0.0, 1)]


class TestUnknownNet:
    def test_get_returns_none(self):
        assert TraceSet().get("ghost") is None

    def test_getitem_raises(self):
        with pytest.raises(KeyError):
            TraceSet()["ghost"]

    def test_contains(self):
        ts = TraceSet()
        ts.record("real", 0.0, 0)
        assert "real" in ts
        assert "ghost" not in ts

    def test_total_transitions_skips_unknown(self):
        ts = TraceSet()
        ts.record("a", 0.0, 0)
        ts.record("a", 1.0, 1)
        assert ts.total_transitions(["a", "ghost"]) == 1

    def test_nets_iterates(self):
        ts = TraceSet()
        ts.record("a", 0.0, 0)
        ts.record("b", 0.0, 1)
        assert sorted(ts.nets()) == ["a", "b"]


class TestOmegaMargins:
    """The two distances to the Theorem 2 threshold."""

    def test_both_populations(self):
        m = omega_margins([0.1, 0.3], [0.9, 0.6], omega=0.4)
        assert m["filtered"] == pytest.approx(0.1)   # 0.4 - 0.3
        assert m["surviving"] == pytest.approx(0.2)  # 0.6 - 0.4
        assert m["min"] == pytest.approx(0.1)

    def test_only_surviving(self):
        m = omega_margins([], [1.0], omega=0.4)
        assert m["filtered"] is None
        assert m["surviving"] == pytest.approx(0.6)
        assert m["min"] == pytest.approx(0.6)

    def test_only_filtered(self):
        m = omega_margins([0.35], [], omega=0.4)
        assert m["surviving"] is None
        assert m["min"] == pytest.approx(0.05)

    def test_empty(self):
        m = omega_margins([], [], omega=0.4)
        assert m == {"surviving": None, "filtered": None, "min": None}
