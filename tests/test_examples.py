"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    path = pathlib.Path(__file__).parent.parent / "examples" / script
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # scripts that write artefacts do so in a sandbox
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES
