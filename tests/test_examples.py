"""Smoke tests: every example script runs to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    path = REPO_ROOT / "examples" / script
    # the examples import `repro` from src/, which the child process
    # does not inherit from pytest's own sys.path
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # scripts that write artefacts do so in a sandbox
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES
