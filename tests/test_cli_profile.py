"""CLI surface of the hotspot profiler: ``repro profile``,
``--profile-out`` trace persistence, and ``repro bench --profile-doc``.
"""

import json
import pathlib

import pytest

from repro.cli import main

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


@pytest.fixture()
def gfile(tmp_path) -> pathlib.Path:
    p = tmp_path / "celem.g"
    p.write_text(CELEM_G)
    return p


def _profile_doc(wall=1.0, folded=None, stages=None) -> dict:
    return {
        "schema": "repro-profile/1",
        "created_utc": "2026-08-07T00:00:00Z",
        "engine": "sampler",
        "wall_s": wall,
        "sampled_s": wall,
        "samples": 10,
        "attributed_s": wall,
        "attributed_pct": 100.0,
        "env": {"git_sha": "abc1234"},
        "stages": stages or {},
        "functions": [],
        "folded": folded or {},
    }


class TestProfileCommand:
    def test_quick_run_writes_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        folded = tmp_path / "p.folded.txt"
        ss = tmp_path / "p.speedscope.json"
        rc = main(
            [
                "profile",
                "--quick",
                "--runs",
                "2",
                "--interval",
                "0.001",
                "--no-history",
                "-o",
                str(out),
                "--folded",
                str(folded),
                "--speedscope",
                str(ss),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert f"wrote {out} (repro-profile/1)" in printed
        assert "engine=sampler" in printed
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-profile/1"
        assert doc["quick"] is True
        assert doc["attributed_pct"] >= 80.0
        # folded lines are `stage;frames… <int µs>`
        lines = folded.read_text().strip().splitlines()
        assert lines and all(int(ln.rsplit(" ", 1)[1]) >= 1 for ln in lines)
        scope = json.loads(ss.read_text())
        assert scope["$schema"].endswith("file-format-schema.json")
        assert scope["profiles"][0]["samples"]

    def test_single_circuit_positional(self, capsys):
        rc = main(
            ["profile", "converta", "--interval", "0.001", "--no-history"]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "engine=sampler" in printed
        assert "top" in printed  # the function table rendered

    def test_cprofile_engine(self, capsys):
        rc = main(
            ["profile", "converta", "--engine", "cprofile", "--no-history"]
        )
        assert rc == 0
        assert "engine=cprofile" in capsys.readouterr().out

    def test_unknown_circuit(self, capsys):
        rc = main(["profile", "no-such-circuit", "--no-history"])
        assert rc == 1
        assert "unknown benchmark circuit" in capsys.readouterr().err

    def test_history_registration(self, tmp_path, capsys):
        rc = main(
            [
                "profile",
                "converta",
                "--interval",
                "0.001",
                "--history",
                "--history-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        assert "history:" in capsys.readouterr().out
        index = (tmp_path / "index.jsonl").read_text().strip().splitlines()
        assert any(json.loads(ln)["kind"] == "profile" for ln in index)


class TestProfileDiffCommand:
    def test_text_diff(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_profile_doc(folded={"s;f.py:hot": 0.1})))
        b.write_text(
            json.dumps(_profile_doc(wall=1.4, folded={"s;f.py:hot": 0.4}))
        )
        rc = main(["profile", "--diff", str(a), str(b), "--no-history"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "profile diff:" in printed
        assert "wall delta: +0.400s" in printed
        assert "f.py:hot" in printed

    def test_json_diff_to_file(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_profile_doc(folded={"s;f.py:hot": 0.1})))
        b.write_text(json.dumps(_profile_doc(folded={"s;g.py:fresh": 0.2})))
        out = tmp_path / "diff.json"
        rc = main(
            [
                "profile",
                "--diff",
                str(a),
                str(b),
                "--format",
                "json",
                "-o",
                str(out),
                "--no-history",
            ]
        )
        assert rc == 0
        assert "repro-profile-diff/1" in capsys.readouterr().out
        diff = json.loads(out.read_text())
        assert diff["schema"] == "repro-profile-diff/1"
        assert diff["new"] == ["g.py:fresh"]
        assert diff["vanished"] == ["f.py:hot"]

    def test_diff_by_history_entry_name(self, tmp_path, capsys):
        (tmp_path / "run1.json").write_text(
            json.dumps(_profile_doc(folded={"s;f.py:hot": 0.1}))
        )
        full = tmp_path / "other.json"
        full.write_text(json.dumps(_profile_doc(folded={"s;f.py:hot": 0.1})))
        rc = main(
            [
                "profile",
                "--diff",
                "run1.json",
                str(full),
                "--history-dir",
                str(tmp_path),
                "--no-history",
            ]
        )
        assert rc == 0
        assert "profiles identical" in capsys.readouterr().out

    def test_missing_operand(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(_profile_doc()))
        rc = main(
            ["profile", "--diff", str(a), str(tmp_path / "nope.json"),
             "--no-history"]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestProfileOutFlag:
    def test_synth_persists_trace_document(self, gfile, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(["synth", str(gfile), "--profile-out", str(trace)])
        assert rc == 0
        assert f"wrote {trace} (repro-trace/1)" in capsys.readouterr().err
        doc = json.loads(trace.read_text())
        assert doc["schema"] == "repro-trace/1"
        names = {s["name"] for s in doc["spans"]}
        assert "synthesize" in names and "minimize" in names

    def test_compare_persists_trace_document(self, gfile, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(["compare", str(gfile), "--profile-out", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["schema"] == "repro-trace/1"
        assert doc["spans"]

    def test_profile_out_composes_with_profile(self, gfile, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(
            ["synth", str(gfile), "--profile", "--profile-out", str(trace)]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "── profile" in err  # stderr table still renders
        assert trace.exists()


class TestBenchProfileDoc:
    def test_embedded_hotspot_blocks(self, tmp_path, capsys):
        from repro.obs.harness import validate_bench

        pdoc = tmp_path / "profile.json"
        bdoc = tmp_path / "bench.json"
        rc = main(
            [
                "bench",
                "converta",
                "--quick",
                "--no-history",
                "--profile-doc",
                str(pdoc),
                "-o",
                str(bdoc),
            ]
        )
        assert rc == 0
        assert f"profile: wrote {pdoc}" in capsys.readouterr().out
        doc = json.loads(bdoc.read_text())
        assert validate_bench(doc) == []
        summary = doc["profile"]
        assert summary["schema"] == "repro-profile/1"
        assert summary["path"] == "profile.json"
        entry = doc["circuits"][0]
        assert entry["name"] == "converta"
        assert "stages" in entry["profile"]
        side = json.loads(pdoc.read_text())
        assert side["schema"] == "repro-profile/1"

    def test_history_registers_profile_kind(self, tmp_path, capsys):
        pdoc = tmp_path / "profile.json"
        rc = main(
            [
                "bench",
                "converta",
                "--quick",
                "--history",
                "--history-dir",
                str(tmp_path / "hist"),
                "--profile-doc",
                str(pdoc),
                "-o",  # keep the default BENCH_<date>.json out of cwd
                str(tmp_path / "bench.json"),
            ]
        )
        assert rc == 0
        index = (
            (tmp_path / "hist" / "index.jsonl").read_text().strip().splitlines()
        )
        kinds = {json.loads(ln)["kind"] for ln in index}
        assert kinds == {"bench", "profile"}
