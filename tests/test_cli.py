"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import main

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""

ORELEM_LIKE_G = """
.model seq
.inputs r
.outputs y
.graph
r+ y+
y+ r-
r- y-
y- r+
.marking { <y-,r+> }
.end
"""


@pytest.fixture()
def gfile(tmp_path) -> pathlib.Path:
    p = tmp_path / "celem.g"
    p.write_text(CELEM_G)
    return p


class TestInfo:
    def test_valid_file(self, gfile, capsys):
        assert main(["info", str(gfile)]) == 0
        out = capsys.readouterr().out
        assert "8 states" in out
        assert "distributive: True" in out
        assert "ER(+c)" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent.g"]) == 1


class TestSynth:
    def test_basic(self, gfile, capsys):
        assert main(["synth", str(gfile)]) == 0
        out = capsys.readouterr().out
        assert "N-SHOT circuit" in out
        assert "no compensation required" in out

    def test_outputs_written(self, gfile, tmp_path, capsys):
        v = tmp_path / "out.v"
        pla = tmp_path / "out.pla"
        assert main(["synth", str(gfile), "-o", str(v), "--pla", str(pla)]) == 0
        assert "module" in v.read_text()
        assert ".i 3" in pla.read_text()

    def test_verify_flag(self, gfile, capsys):
        assert main(["synth", str(gfile), "--verify", "--runs", "2"]) == 0
        assert "HAZARD-FREE" in capsys.readouterr().out

    def test_exact_method(self, gfile, capsys):
        assert main(["synth", str(gfile), "--method", "exact"]) == 0
        assert "method: exact" in capsys.readouterr().out

    def test_spread_changes_eq1(self, gfile, capsys):
        assert main(["synth", str(gfile), "--spread", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "delay req" in out


class TestCompare:
    def test_all_flows_listed(self, gfile, capsys):
        assert main(["compare", str(gfile)]) == 0
        out = capsys.readouterr().out
        for label in ("SIS/Lavagno", "SYN/Beerel", "Q-module", "N-SHOT"):
            assert label in out

    def test_nondistributive_failure_codes(self, tmp_path, capsys):
        # build a non-distributive .g is impossible (safe nets); use the
        # sequential file and check it synthesizes everywhere instead
        p = tmp_path / "seq.g"
        p.write_text(ORELEM_LIKE_G)
        assert main(["compare", str(p)]) == 0
        out = capsys.readouterr().out
        assert out.count("/") >= 4  # four area/delay cells


class TestTable2:
    def test_subset(self, capsys):
        assert main(["table2", "chu172", "pmcm2"]) == 0
        out = capsys.readouterr().out
        assert "chu172" in out and "pmcm2" in out
        assert "(1)" in out           # pmcm2 rejected by the baselines
        assert "never" in out         # compensation claim
