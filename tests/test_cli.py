"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import main

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""

ORELEM_LIKE_G = """
.model seq
.inputs r
.outputs y
.graph
r+ y+
y+ r-
r- y-
y- r+
.marking { <y-,r+> }
.end
"""


@pytest.fixture()
def gfile(tmp_path) -> pathlib.Path:
    p = tmp_path / "celem.g"
    p.write_text(CELEM_G)
    return p


class TestInfo:
    def test_valid_file(self, gfile, capsys):
        assert main(["info", str(gfile)]) == 0
        out = capsys.readouterr().out
        assert "8 states" in out
        assert "distributive: True" in out
        assert "ER(+c)" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent.g"]) == 1


class TestSynth:
    def test_basic(self, gfile, capsys):
        assert main(["synth", str(gfile)]) == 0
        out = capsys.readouterr().out
        assert "N-SHOT circuit" in out
        assert "no compensation required" in out

    def test_outputs_written(self, gfile, tmp_path, capsys):
        v = tmp_path / "out.v"
        pla = tmp_path / "out.pla"
        assert main(["synth", str(gfile), "-o", str(v), "--pla", str(pla)]) == 0
        assert "module" in v.read_text()
        assert ".i 3" in pla.read_text()

    def test_verify_flag(self, gfile, capsys):
        assert main(["synth", str(gfile), "--verify", "--runs", "2"]) == 0
        assert "HAZARD-FREE" in capsys.readouterr().out

    def test_exact_method(self, gfile, capsys):
        assert main(["synth", str(gfile), "--method", "exact"]) == 0
        assert "method: exact" in capsys.readouterr().out

    def test_spread_changes_eq1(self, gfile, capsys):
        assert main(["synth", str(gfile), "--spread", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "delay req" in out


class TestCompare:
    def test_all_flows_listed(self, gfile, capsys):
        assert main(["compare", str(gfile)]) == 0
        out = capsys.readouterr().out
        for label in ("SIS/Lavagno", "SYN/Beerel", "Q-module", "N-SHOT"):
            assert label in out

    def test_nondistributive_failure_codes(self, tmp_path, capsys):
        # build a non-distributive .g is impossible (safe nets); use the
        # sequential file and check it synthesizes everywhere instead
        p = tmp_path / "seq.g"
        p.write_text(ORELEM_LIKE_G)
        assert main(["compare", str(p)]) == 0
        out = capsys.readouterr().out
        assert out.count("/") >= 4  # four area/delay cells


class TestTable2:
    def test_subset(self, capsys):
        assert main(["table2", "chu172", "pmcm2"]) == 0
        out = capsys.readouterr().out
        assert "chu172" in out and "pmcm2" in out
        assert "(1)" in out           # pmcm2 rejected by the baselines
        assert "never" in out         # compensation claim


class TestVcd:
    def test_synth_verify_vcd_and_telemetry(self, gfile, tmp_path, capsys):
        vcd = tmp_path / "celem.vcd"
        assert main(
            ["synth", str(gfile), "--verify", "--runs", "1", "--vcd", str(vcd)]
        ) == 0
        out = capsys.readouterr().out
        # satellite: the verify summary reports the physics counters
        assert "mhs_pulses_filtered" in out
        assert "ω-margin" in out
        assert "delay slack" in out
        text = vcd.read_text()
        assert "$enddefinitions" in text
        assert "set_c_g1" in text  # internal SOP nets are dumped too

    def test_synth_vcd_without_verify(self, gfile, tmp_path, capsys):
        vcd = tmp_path / "celem.vcd"
        assert main(["synth", str(gfile), "--vcd", str(vcd)]) == 0
        out = capsys.readouterr().out
        assert "HAZARD-FREE" not in out  # no verify summary was requested
        assert vcd.exists()

    def test_compare_vcd(self, gfile, tmp_path, capsys):
        vcd = tmp_path / "cmp.vcd"
        assert main(["compare", str(gfile), "--vcd", str(vcd)]) == 0
        assert "N-SHOT" in capsys.readouterr().out
        assert "$var wire" in vcd.read_text()


class TestExplain:
    def test_suite_circuit_text(self, capsys):
        assert main(["explain", "converta"]) == 0
        out = capsys.readouterr().out
        assert "ω-filtered pulse via" in out
        assert "causal chain" in out
        assert "environment input transition" in out

    def test_json_document(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "chain.json"
        assert main(
            ["explain", "converta", "--format", "json", "-o", str(out_file)]
        ) == 0
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro-causality/1"
        assert doc["circuit"] == "converta"
        assert doc["environment_rooted"] is True
        assert doc["target"]["kind"] == "mhs-filtered"
        assert doc["sweep"]["mode"] in ("organic", "probe")

    def test_probe_fallback_from_file(self, tmp_path, capsys):
        """A planes-equal-cubes spec still explains via the probe."""
        p = tmp_path / "seq.g"
        p.write_text(ORELEM_LIKE_G)
        assert main(["explain", str(p)]) == 0
        out = capsys.readouterr().out
        assert "ω-filtered pulse via" in out

    def test_unknown_target_is_error(self, capsys):
        assert main(["explain", "no-such-circuit"]) == 1


class TestCoverageFlags:
    def test_synth_verify_coverage(self, gfile, tmp_path, capsys):
        import json

        out_file = tmp_path / "cov.json"
        assert main(
            [
                "synth", str(gfile), "--verify", "--runs", "3",
                "--coverage", "--coverage-out", str(out_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "HAZARD-FREE" in out
        assert "coverage (celem" in out
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro-coverage/1"
        assert doc["regions"]["pct"] >= 95.0
        assert isinstance(doc["trigger_cubes"]["uncovered"], list)

    def test_synth_coverage_without_verify(self, gfile, capsys):
        """--coverage alone runs the oracle but skips the verdict."""
        assert main(["synth", str(gfile), "--coverage"]) == 0
        out = capsys.readouterr().out
        assert "coverage (celem" in out
        assert "HAZARD-FREE" not in out

    def test_compare_coverage(self, gfile, capsys):
        assert main(["compare", str(gfile), "--coverage"]) == 0
        out = capsys.readouterr().out
        assert "N-SHOT" in out
        assert "coverage (celem" in out


class TestRegressCli:
    @pytest.fixture()
    def baseline_file(self, tmp_path) -> pathlib.Path:
        from repro.obs.harness import run_bench, write_bench

        doc = run_bench(circuits=["converta"], runs=1, verify_runs=1)
        return pathlib.Path(write_bench(doc, str(tmp_path / "BASE.json")))

    def test_clean_run_exit_zero(self, baseline_file, tmp_path, capsys):
        md = tmp_path / "regress.md"
        code = main(
            [
                "regress",
                "--baseline", str(baseline_file),
                "--markdown", str(md),
                "--history-dir", str(tmp_path / "hist"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK:" in out
        assert "history:" in out
        assert "Hazard telemetry" in md.read_text()
        assert (tmp_path / "hist" / "index.jsonl").exists()

    def test_json_format(self, baseline_file, capsys):
        code = main(
            [
                "regress",
                "--baseline", str(baseline_file),
                "--format", "json",
                "--no-history",
                "--no-remeasure",
            ]
        )
        assert code == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-regress/1"
        assert doc["ok"] is True

    def test_missing_baseline_is_internal_error(self, capsys):
        assert main(["regress", "--baseline", "/nonexistent.json"]) == 2

    def test_invalid_baseline_is_internal_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/9"}')
        assert main(["regress", "--baseline", str(bad)]) == 2


class TestBenchHistory:
    def test_bench_appends_history(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "bench", "converta",
                "--runs", "1",
                "-o", str(tmp_path / "B.json"),
                "--history-dir", str(tmp_path / "hist"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "history:" in out
        from repro.obs.registry import RunHistory

        entries = RunHistory(str(tmp_path / "hist")).entries("bench")
        assert len(entries) == 1
