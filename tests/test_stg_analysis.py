"""Tests for STG structural analysis (liveness, safety, choice)."""

import pytest

from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS
from repro.bench.circuits.handshakes import choice_server, muller_pipeline, ring
from repro.stg import Stg, classify, free_choice_conflicts, is_live, is_safe, parse_g
from tests.conftest import C_ELEMENT_G


class TestLiveness:
    def test_celem_live(self):
        assert is_live(parse_g(C_ELEMENT_G))

    def test_benchmarks_live(self):
        for name in ("chu133", "full", "sbuf-send-ctl"):
            assert is_live(DISTRIBUTIVE_BENCHMARKS[name][0]()), name

    def test_dead_end_not_live(self):
        stg = Stg(["a"], ["b"])
        stg.connect("a+", "b+")     # fires once, then dead
        p = stg.connect("b+", "a-")
        stg.connect("a-", "b-")
        # no arc back to a+: acyclic
        stg.mark_between("b-", "a+") if False else None
        stg.mark(stg.connect("b-", "a+")) if False else None
        # mark the initial place of the chain
        stg.add_place("p0"); stg.arc_pt("p0", "a+"); stg.mark("p0")
        assert not is_live(stg)


class TestSafety:
    def test_celem_safe(self):
        assert is_safe(parse_g(C_ELEMENT_G))

    def test_double_marking_unsafe(self):
        stg = Stg(["a"], ["b"])
        p1 = stg.connect("a+", "b+")
        stg.connect("b+", "a-")
        stg.connect("a-", "b-")
        p2 = stg.connect("b-", "a+")
        stg.mark(p2)
        stg.mark(p1)  # b+ marked ahead of time: firing a+ double-marks p1
        assert not is_safe(stg)


class TestChoice:
    def test_input_choice_is_fine(self):
        stg = choice_server(["r1", "r2"], ["g1", "g2"])
        assert free_choice_conflicts(stg) == []

    def test_output_conflict_flagged(self):
        # a place feeding two *output* transitions
        stg = Stg(["a"], ["x", "y"])
        stg.add_place("p")
        stg.arc_pt("p", "x+")
        stg.arc_pt("p", "y+")
        stg.arc_tp("a+", "p")
        problems = free_choice_conflicts(stg)
        assert any("non-input" in p for p in problems)

    def test_non_free_choice_flagged(self):
        stg = Stg(["a", "b"], ["x"])
        stg.add_place("p")
        stg.add_place("q")
        stg.arc_pt("p", "a+")
        stg.arc_pt("p", "b+")
        stg.arc_pt("q", "b+")   # b+ has a bigger preset: not free choice
        problems = free_choice_conflicts(stg)
        assert any("not free choice" in p for p in problems)


class TestClassify:
    def test_good_stg(self):
        report = classify(parse_g(C_ELEMENT_G))
        assert report.ok
        assert "well-formed" in report.summary()

    def test_pipelines_and_rings_wellformed(self):
        for stg in (muller_pipeline(3), ring(["a", "b", "c"], ["a"])):
            assert classify(stg).ok

    def test_bad_stg_summary(self):
        stg = Stg(["a"], ["b"])
        stg.connect("a+", "b+")
        stg.add_place("p0"); stg.arc_pt("p0", "a+"); stg.mark("p0")
        stg.connect("b+", "a-")
        stg.connect("a-", "b-")
        report = classify(stg)
        assert not report.ok
        assert "not live" in report.summary()
