"""The content-addressed DAG: key derivation, demand-driven
resolution, and — the property the whole design exists for —
invalidation of *exactly* the downstream cone.

``PipelineRun.executed`` records the stages actually computed (cache
misses) in order; the invalidation tests spy on it to prove what re-ran
and, just as important, what did not.
"""

import pytest

from repro.core.synthesizer import SynthesisError, synthesize
from repro.pipeline import (
    STAGES,
    STAGE_VERSIONS,
    ArtifactStore,
    PipelineRun,
    cache_bypass,
    resolve_store,
)
from repro.sg.sgformat import parse_sg, write_sg

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""

#: every stage a cold synthesize()+verify() computes, in order
FULL_CONE = [
    "parse", "sg-build", "classify", "regions", "sop-derivation",
    "covers", "netlist", "delays", "verify",
]


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(str(tmp_path / "cache"))


def run_all(store, text=CELEM_G, **kw) -> PipelineRun:
    """One full cold-or-warm pass: synthesize then verify."""
    run = PipelineRun.from_text(text, name="celem", store=store, **kw)
    run.synthesize()
    run.verify(runs=2)
    return run


class TestKeys:
    def test_key_is_deterministic(self, store):
        a = PipelineRun.from_text(CELEM_G, name="celem")
        b = PipelineRun.from_text(CELEM_G, name="celem")
        for stage in STAGES:
            assert a.key_of(stage) == b.key_of(stage)

    def test_all_stage_keys_distinct(self):
        run = PipelineRun.from_text(CELEM_G, name="celem")
        keys = [run.key_of(s) for s in STAGES]
        assert len(set(keys)) == len(keys)

    def test_param_scoping(self):
        """A parameter reaches only the stages that declare it: the
        minimizer method feeds ``covers`` but not ``sop-derivation``."""
        esp = PipelineRun.from_text(CELEM_G, name="celem", method="espresso")
        qm = PipelineRun.from_text(CELEM_G, name="celem", method="qm")
        assert esp.key_of("sop-derivation") == qm.key_of("sop-derivation")
        assert esp.key_of("covers") != qm.key_of("covers")
        # and the change propagates through the downstream cone
        assert esp.key_of("delays") != qm.key_of("delays")

    def test_cosmetic_edit_preserves_keys(self):
        cosmetic = CELEM_G.replace(".graph", "# a comment\n.graph")
        a = PipelineRun.from_text(CELEM_G, name="celem")
        b = PipelineRun.from_text(cosmetic, name="celem")
        assert a.key_of("delays") == b.key_of("delays")

    def test_from_sg_matches_serialized_text(self):
        sg = parse_sg(write_sg(parse_sg(write_sg(
            _celem_sg(), "celem")), "celem"))
        by_sg = PipelineRun.from_sg(sg, name="celem")
        by_text = PipelineRun.from_text(write_sg(sg, "celem"), name="celem")
        assert by_sg.root_digest == by_text.root_digest


def _celem_sg():
    from repro.stg import elaborate, parse_g

    return elaborate(parse_g(CELEM_G))


class TestResolution:
    def test_cold_run_computes_full_cone_in_order(self, store):
        run = run_all(store)
        assert run.executed == FULL_CONE
        rep = run.report()
        assert rep["misses"] == len(FULL_CONE) and rep["hits"] == 0

    def test_warm_run_computes_nothing(self, store):
        run_all(store)
        warm = run_all(store)
        assert warm.executed == []
        rep = warm.report()
        assert rep["misses"] == 0 and rep["hits"] > 0
        # demand-driven: a hit on a downstream stage never even asks
        # for its upstream inputs
        assert set(rep["stages"]) == {"classify", "delays", "verify"}

    def test_warm_circuit_is_equivalent(self, store):
        cold = run_all(store).circuit()
        warm = run_all(store).circuit()
        assert warm.describe() == cold.describe()
        from repro.netlist import write_verilog

        assert write_verilog(warm.netlist) == write_verilog(cold.netlist)
        assert (warm.stats().area, warm.stats().delay) == (
            cold.stats().area, cold.stats().delay
        )

    def test_storeless_run_matches_direct_synthesis(self):
        run = PipelineRun.from_text(CELEM_G, name="celem")
        direct = synthesize(_celem_sg(), name="celem")
        assert run.synthesize().describe() == direct.describe()

    def test_memoized_single_resolution(self, store):
        run = PipelineRun.from_text(CELEM_G, name="celem", store=store)
        assert run.sg() is run.sg()
        assert run.executed.count("sg-build") == 1

    def test_classification_gate(self, store):
        from repro.bench.circuits import figure1_sg

        bad = write_sg(figure1_sg(), name="figure1")  # CSC conflict
        run = PipelineRun.from_text(bad, name="figure1", store=store)
        with pytest.raises(SynthesisError) as exc:
            run.synthesize()
        assert "Theorem 2" in str(exc.value)
        # the verdict itself is cached: a warm run raises from a hit
        warm = PipelineRun.from_text(bad, name="figure1", store=store)
        with pytest.raises(SynthesisError):
            warm.synthesize()
        assert warm.executed == []


class TestInvalidation:
    """Version bumps, env changes and spec edits re-run exactly the
    downstream cone — never anything upstream."""

    def test_version_bump_reruns_exactly_downstream_cone(
        self, store, monkeypatch
    ):
        run_all(store)
        monkeypatch.setitem(STAGE_VERSIONS, "covers", 2)
        warm = run_all(store)
        assert warm.executed == ["covers", "netlist", "delays", "verify"]
        # upstream stages were served from cache, not recomputed
        for stage in ("parse", "sg-build", "classify", "regions",
                      "sop-derivation"):
            assert stage not in warm.executed

    def test_leaf_stage_bump_reruns_only_itself(self, store, monkeypatch):
        run_all(store)
        monkeypatch.setitem(STAGE_VERSIONS, "verify", 2)
        warm = run_all(store)
        assert warm.executed == ["verify"]

    def test_root_stage_bump_reruns_everything(self, store, monkeypatch):
        run_all(store)
        monkeypatch.setitem(STAGE_VERSIONS, "sg-build", 2)
        warm = run_all(store)
        assert warm.executed == FULL_CONE[1:]  # parse's key is unchanged

    def test_env_change_invalidates_everything(self, store):
        run_all(store, env_digest="machine-a")
        warm = run_all(store, env_digest="machine-b")
        assert warm.executed == FULL_CONE
        # and machine-a's artifacts are still there untouched
        back = run_all(store, env_digest="machine-a")
        assert back.executed == []

    def test_semantic_spec_edit_invalidates_everything(self, store):
        run_all(store)
        edited = CELEM_G.replace(".model celem", ".model renamed")
        warm = run_all(store, text=edited)
        assert warm.executed == FULL_CONE

    def test_cosmetic_spec_edit_invalidates_nothing(self, store):
        run_all(store)
        cosmetic = CELEM_G.replace(
            "a+ c+\nb+ c+", "  b+   c+\n# noise\na+ c+"
        )
        warm = run_all(store, text=cosmetic)
        assert warm.executed == []

    def test_verify_params_are_part_of_the_key(self, store):
        run_all(store)  # cached verify used runs=2
        warm = PipelineRun.from_text(CELEM_G, name="celem", store=store)
        warm.synthesize()
        warm.verify(runs=3)
        assert warm.executed == ["verify"]


class TestBypass:
    def test_bypass_neither_reads_nor_writes(self, store):
        run_all(store)  # populate
        hits, misses = store.hits, store.misses
        with cache_bypass():
            run = run_all(store)
        assert run.executed == FULL_CONE  # read side suspended
        assert (store.hits, store.misses) == (hits, misses)  # not consulted
        # write side too: nothing new appeared
        assert ArtifactStore(store.root).stats()["entries"] == len(FULL_CONE)

    def test_bypass_restores_on_exit(self, store):
        run_all(store)
        with cache_bypass():
            pass
        warm = run_all(store)
        assert warm.executed == []

    def test_probe_laden_verify_bypasses_cache(self, store):
        run = run_all(store)
        before = ArtifactStore(store.root).stats()["by_stage"]
        summary = run.verify(runs=2, keep_traces=True)
        assert summary.traces  # the probe produced run-local data
        after = ArtifactStore(store.root).stats()["by_stage"]
        assert after == before  # no new verify artifacts cached


class TestResolveStore:
    def test_no_cache_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_store(str(tmp_path / "cli"), no_cache=True) is None

    def test_explicit_dir_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        st = resolve_store(str(tmp_path / "cli"))
        assert st is not None and st.root == str(tmp_path / "cli")

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        st = resolve_store(None)
        assert st is not None and st.root == str(tmp_path / "env")

    def test_default_is_hermetic(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_store(None) is None
