"""Tests for tautology, complement, ESPRESSO loop and exact minimization.

The oracle everywhere is brute-force truth-table evaluation on small
variable counts; hypothesis drives randomized (F, D, R) partitions.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import (
    Cover,
    Cube,
    MinimizationError,
    complement,
    complement_cube,
    covers_cover,
    covers_cube,
    cube_sharp,
    espresso,
    exact_minimize,
    expand,
    generate_primes,
    irredundant,
    is_tautology,
    make_offset,
    minimize,
    reduce_cover,
    unate_cover,
    verify_cover,
)


def random_fdr(rng, n):
    """A random (F, D, R) minterm partition over n variables."""
    truth = [rng.choice([0, 1, 2]) for _ in range(1 << n)]
    on = Cover.from_minterms([m for m, v in enumerate(truth) if v == 1], n)
    dc = Cover.from_minterms([m for m, v in enumerate(truth) if v == 2], n)
    off = Cover.from_minterms([m for m, v in enumerate(truth) if v == 0], n)
    return truth, on, dc, off


class TestTautology:
    def test_universe_is_tautology(self):
        assert is_tautology(Cover.universe(4))

    def test_empty_is_not(self):
        assert not is_tautology(Cover.empty(3))

    def test_split_pair(self):
        assert is_tautology(Cover.from_strings(["1-", "0-"]))
        assert not is_tautology(Cover.from_strings(["1-", "00"]))

    def test_classic_three_cube_tautology(self):
        # x + x'y + x'y' = 1
        assert is_tautology(Cover.from_strings(["1--", "01-", "00-"]))

    @given(st.integers(1, 6), st.integers(0, 10**9))
    @settings(max_examples=60)
    def test_against_bruteforce(self, n, seed):
        rng = random.Random(seed)
        ms = [m for m in range(1 << n) if rng.random() < 0.7]
        # lift some minterms to cubes for structural variety
        cubes = []
        for m in ms:
            c = Cube.from_minterm(m, n)
            if rng.random() < 0.3:
                c = c.raise_var(rng.randrange(n))
            cubes.append(c)
        cover = Cover(n, 1, cubes)
        expect = {mm for c in cubes for mm in c.minterms()} == set(range(1 << n))
        assert is_tautology(cover) == expect

    def test_covers_cube(self):
        cover = Cover.from_strings(["1-", "01"])
        assert covers_cube(cover, Cube.from_string("1-"))
        assert not covers_cube(cover, Cube.from_string("--"))


class TestComplement:
    def test_complement_cube_demorgan(self):
        comp = complement_cube(Cube.from_string("10-"))
        got = {m for c in comp.cubes for m in c.minterms()}
        expect = set(range(8)) - set(Cube.from_string("10-").minterms())
        assert got == expect

    @given(st.integers(1, 6), st.integers(0, 10**9))
    @settings(max_examples=60)
    def test_complement_bruteforce(self, n, seed):
        rng = random.Random(seed)
        _, on, _, _ = random_fdr(rng, n)
        comp = complement(on)
        for m in range(1 << n):
            assert comp.contains_minterm(m) == (not on.contains_minterm(m))

    def test_complement_of_universe(self):
        assert complement(Cover.universe(3)).is_empty()

    def test_cube_sharp(self):
        cube = Cube.full(2)
        cover = Cover.from_strings(["1-"])
        rest = cube_sharp(cube, cover)
        assert {m for c in rest.cubes for m in c.minterms()} == {0b00, 0b10}


class TestEspressoLoop:
    def test_expand_produces_primes(self):
        on = Cover.from_minterms([0b00, 0b01], 2)  # f = x0'... wait codes
        off = Cover.from_minterms([0b10, 0b11], 2)
        result = expand(on, off)
        # both minterms merge into a single prime
        assert len(result) == 1
        assert result.cubes[0].num_literals() == 1

    def test_irredundant_removes_consensus_cube(self):
        # x y' + x' z + (redundant) y' z  over (x,y,z)
        on = Cover.from_strings(["10-", "0-1", "-01"])
        r = irredundant(on)
        assert len(r) == 2

    def test_reduce_shrinks_overlap(self):
        on = Cover.from_strings(["1-", "-1"])
        r = reduce_cover(on)
        total = {m for c in r.cubes for m in c.minterms()}
        assert total == {0b01, 0b10, 0b11}

    def test_make_offset(self):
        on = Cover.from_minterms([0], 2, outputs=1, num_outputs=2)
        on.add(Cube.from_minterm(3, 2, 0b10))
        off = make_offset(on)
        assert off.contains_minterm(3, output=0)
        assert not off.contains_minterm(0, output=0)
        assert off.contains_minterm(0, output=1)

    @given(st.integers(1, 5), st.integers(0, 10**9))
    @settings(max_examples=80, deadline=None)
    def test_espresso_sound_and_complete(self, n, seed):
        rng = random.Random(seed)
        truth, on, dc, off = random_fdr(rng, n)
        result = espresso(on, dc, off)
        check = verify_cover(result, on, dc, off)
        assert check.ok
        for m, v in enumerate(truth):
            got = result.contains_minterm(m)
            if v == 1:
                assert got
            elif v == 0:
                assert not got

    @given(st.integers(1, 4), st.integers(2, 3), st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_espresso_multi_output(self, n, m, seed):
        rng = random.Random(seed)
        on, dc, off = Cover.empty(n, m), Cover.empty(n, m), Cover.empty(n, m)
        truth = [[rng.choice([0, 1, 2]) for _ in range(1 << n)] for _ in range(m)]
        for o in range(m):
            for mt, v in enumerate(truth[o]):
                target = {1: on, 2: dc, 0: off}[v]
                target.add(Cube.from_minterm(mt, n, 1 << o))
        result = espresso(on, dc, off)
        assert verify_cover(result, on, dc, off).ok
        for o in range(m):
            for mt, v in enumerate(truth[o]):
                if v == 1:
                    assert result.contains_minterm(mt, o)
                elif v == 0:
                    assert not result.contains_minterm(mt, o)

    def test_espresso_achieves_known_minimum(self):
        # f = majority(x, y, z): minimum SOP is 3 cubes
        on = Cover.from_minterms([0b011, 0b101, 0b110, 0b111], 3)
        result = espresso(on)
        assert len(result) == 3
        assert result.num_literals() == 6


class TestExact:
    def test_generate_primes_xor_like(self):
        # f = x ⊕ y has exactly its two minterm primes
        on = Cover.from_minterms([0b01, 0b10], 2)
        primes = generate_primes(on)
        assert {p.input_string() for p in primes} == {"10", "01"}

    def test_generate_primes_with_dc(self):
        on = Cover.from_minterms([0b00], 2)
        dc = Cover.from_minterms([0b01], 2)
        primes = generate_primes(on, dc)
        assert any(p.input_string() == "-0" for p in primes)

    def test_unate_cover_essential(self):
        rows = [{0}, {0, 1}, {1, 2}]
        sel = unate_cover(rows, [1, 1, 1], 3)
        assert 0 in sel
        assert all(any(c in r for c in sel) for r in rows)

    def test_unate_cover_infeasible(self):
        with pytest.raises(ValueError):
            unate_cover([set()], [1], 1)

    def test_unate_cover_optimal_small(self):
        # two columns each covering half; a third covering everything
        rows = [{0, 2}, {1, 2}]
        sel = unate_cover(rows, [1, 1, 1], 3)
        assert sel == [2]

    @given(st.integers(1, 4), st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_exact_never_worse_than_heuristic(self, n, seed):
        rng = random.Random(seed)
        truth, on, dc, off = random_fdr(rng, n)
        h = espresso(on, dc, off)
        e = exact_minimize(on, dc)
        assert verify_cover(e, on, dc, off).ok
        assert len(e) <= len(h)

    def test_exact_majority_minimum(self):
        on = Cover.from_minterms([0b011, 0b101, 0b110, 0b111], 3)
        assert len(exact_minimize(on)) == 3


class TestMinimizeApi:
    def test_rejects_overlapping_on_off(self):
        on = Cover.from_minterms([0], 1)
        off = Cover.from_minterms([0], 1)
        with pytest.raises(MinimizationError):
            minimize(on, off=off)

    def test_exact_dispatch_multi_output(self):
        on = Cover.empty(2, 2)
        on.add(Cube.from_minterm(0, 2, 0b01))
        on.add(Cube.from_minterm(3, 2, 0b10))
        result = minimize(on, method="exact")
        assert result.contains_minterm(0, 0)
        assert result.contains_minterm(3, 1)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            minimize(Cover.empty(1), method="zap")

    def test_covers_cover(self):
        big = Cover.from_strings(["--"])
        small = Cover.from_strings(["10", "01"])
        assert covers_cover(big, small)
        assert not covers_cover(small, big)


class TestExactOptimality:
    def test_unate_cover_matches_bruteforce_minimum(self):
        """Branch-and-bound finds a true minimum on small instances."""
        import itertools
        import random

        rng = random.Random(7)
        from repro.logic import unate_cover

        for _ in range(25):
            n_rows = rng.randint(1, 6)
            n_cols = rng.randint(1, 6)
            rows = []
            for _ in range(n_rows):
                cols = {c for c in range(n_cols) if rng.random() < 0.5}
                if not cols:
                    cols = {rng.randrange(n_cols)}
                rows.append(cols)
            costs = [1] * n_cols
            sel = unate_cover(rows, costs, n_cols)
            assert all(set(sel) & r for r in rows)
            # brute-force minimum cardinality
            best = n_cols
            for k in range(0, n_cols + 1):
                if any(
                    all(set(combo) & r for r in rows)
                    for combo in itertools.combinations(range(n_cols), k)
                ):
                    best = k
                    break
            assert len(sel) == best

    def test_exact_minimize_true_minimum_bruteforce(self):
        """On tiny functions, exact_minimize matches exhaustive search
        over all prime subsets."""
        import itertools
        import random

        from repro.logic import Cover, exact_minimize, generate_primes

        rng = random.Random(11)
        for _ in range(15):
            n = rng.randint(2, 3)
            ms = [m for m in range(1 << n) if rng.random() < 0.5]
            if not ms:
                continue
            on = Cover.from_minterms(ms, n)
            primes = generate_primes(on)
            best = None
            for k in range(1, len(primes) + 1):
                for combo in itertools.combinations(primes, k):
                    covered = set()
                    for c in combo:
                        covered.update(c.minterms())
                    if set(ms) <= covered:
                        best = k
                        break
                if best is not None:
                    break
            result = exact_minimize(on)
            assert len(result) == best
