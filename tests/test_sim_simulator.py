"""Tests for waveforms, the pure-delay simulator and the environment."""

import pytest

from repro.netlist import Gate, GateType, Netlist, Pin, and_gate, or_gate
from repro.sim import (
    Pulse,
    SGEnvironment,
    SimConfig,
    Simulator,
    TraceSet,
    Waveform,
    analyze_hazards,
)


class TestWaveform:
    def test_record_and_query(self):
        w = Waveform("n")
        w.record(0.0, 0)
        w.record(1.0, 1)
        w.record(2.5, 0)
        assert w.value_at(0.5) == 0
        assert w.value_at(1.0) == 1
        assert w.value_at(3.0) == 0
        assert w.num_transitions() == 2

    def test_idempotent_record(self):
        w = Waveform("n")
        w.record(0.0, 1)
        w.record(1.0, 1)
        assert w.num_transitions() == 0

    def test_non_monotonic_rejected(self):
        w = Waveform("n")
        w.record(5.0, 1)
        with pytest.raises(ValueError):
            w.record(1.0, 0)

    def test_pulses(self):
        w = Waveform("n")
        for t, v in [(0.0, 0), (1.0, 1), (1.2, 0), (5.0, 1)]:
            w.record(t, v)
        ps = w.pulses(end_time=6.0)
        assert ps[1] == Pulse(1.0, 1.2, 1)

    def test_glitch_pulses_exclude_endpoints(self):
        w = Waveform("n")
        for t, v in [(0.0, 0), (1.0, 1), (1.1, 0), (2.0, 1)]:
            w.record(t, v)
        glitches = w.glitch_pulses(0.5)
        assert len(glitches) == 1 and glitches[0].width == pytest.approx(0.1)

    def test_render_smoke(self):
        w = Waveform("sig")
        w.record(0.0, 0)
        w.record(1.0, 1)
        assert "sig" in w.render()

    def test_trace_set(self):
        ts = TraceSet()
        ts.record("a", 0.0, 0)
        ts.record("a", 1.0, 1)
        assert "a" in ts
        assert ts.total_transitions(["a"]) == 1
        assert ts.get("zzz") is None


def inverter_chain(n: int) -> Netlist:
    nl = Netlist("chain")
    nl.add_input("in")
    prev = "in"
    for k in range(n):
        out = f"w{k}"
        nl.add(Gate(f"inv{k}", GateType.INV, [Pin(prev)], out))
        prev = out
    nl.add_output(prev)
    return nl


class TestSimulator:
    def test_initial_settle(self):
        nl = inverter_chain(3)
        sim = Simulator(nl)
        sim.initialize({"in": 0})
        assert sim.value("w0") == 1
        assert sim.value("w2") == 1 - sim.value("w1")

    def test_propagation_delay(self):
        nl = inverter_chain(2)
        sim = Simulator(nl)
        sim.initialize({"in": 0})
        sim.drive("in", 1, at=1.0)
        sim.run(10.0)
        w = sim.traces["w1"]
        # two inverter delays after the edge; w1 follows `in` (double inversion)
        [(t, v)] = w.transitions()
        assert t == pytest.approx(1.0 + 2.4)
        assert v == 1

    def test_pure_delay_pulse_propagates(self):
        """A pulse narrower than the gate delay still reaches the output."""
        nl = inverter_chain(1)
        sim = Simulator(nl)
        sim.initialize({"in": 0})
        sim.drive("in", 1, at=1.0)
        sim.drive("in", 0, at=1.1)   # 0.1 pulse < 1.2 gate delay
        sim.run(10.0)
        assert sim.traces["w0"].num_transitions() == 2

    def test_and_or_evaluation(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_input("b")
        nl.add_output("y")
        nl.add(and_gate("g1", [Pin("a"), Pin("b", inverted=True)], "x"))
        nl.add(or_gate("g2", [Pin("x"), Pin("b")], "y"))
        sim = Simulator(nl)
        sim.initialize({"a": 1, "b": 0})
        assert sim.value("y") == 1     # a·b' = 1
        sim.drive("b", 1, at=1.0)
        sim.run(20.0)
        assert sim.value("y") == 1     # now through the b term

    def test_drive_non_input_rejected(self):
        sim = Simulator(inverter_chain(1))
        sim.initialize({"in": 0})
        with pytest.raises(ValueError):
            sim.drive("w0", 1, at=0.0)

    def test_jitter_reproducible(self):
        nl = inverter_chain(4)
        s1 = Simulator(nl, SimConfig(jitter=0.4, seed=5))
        s2 = Simulator(nl, SimConfig(jitter=0.4, seed=5))
        assert s1._delay == s2._delay
        s3 = Simulator(nl, SimConfig(jitter=0.4, seed=6))
        assert s1._delay != s3._delay

    def test_mhsff_in_circuit_filters_runt(self):
        nl = Netlist()
        nl.add_input("s")
        nl.add_input("r")
        nl.add_output("q")
        nl.add(Gate("ff", GateType.MHSFF, [Pin("s"), Pin("r")], "q", output_n="qn"))
        sim = Simulator(nl)
        sim.initialize({"s": 0, "r": 0})
        sim.drive("s", 1, at=1.0)
        sim.drive("s", 0, at=1.1)    # runt: below omega (0.4)
        sim.run(20.0)
        assert sim.value("q") == 0
        sim.drive("s", 1, at=30.0)
        sim.run(60.0)
        assert sim.value("q") == 1
        assert sim.traces["q"].transitions() == [(30.0 + 1.2, 1)]

    def test_mhsff_dual_rail(self):
        nl = Netlist()
        nl.add_input("s")
        nl.add_input("r")
        nl.add_output("q")
        nl.add(Gate("ff", GateType.MHSFF, [Pin("s"), Pin("r")], "q", output_n="qn"))
        sim = Simulator(nl)
        sim.initialize({"s": 0, "r": 0})
        assert sim.value("qn") == 1
        sim.drive("s", 1, at=1.0)
        sim.run(10.0)
        assert (sim.value("q"), sim.value("qn")) == (1, 0)

    def test_rslatch_behaviour(self):
        nl = Netlist()
        nl.add_input("s")
        nl.add_input("r")
        nl.add_output("q")
        nl.add(Gate("rs", GateType.RSLATCH, [Pin("s"), Pin("r")], "q"))
        sim = Simulator(nl)
        sim.initialize({"s": 0, "r": 0})
        sim.drive("s", 1, at=1.0)
        sim.run(5.0)
        assert sim.value("q") == 1
        sim.drive("s", 0, at=6.0)
        sim.drive("r", 1, at=7.0)
        sim.run(12.0)
        assert sim.value("q") == 0

    def test_rslatch_both_high_flagged(self):
        nl = Netlist()
        nl.add_input("s")
        nl.add_input("r")
        nl.add_output("q")
        nl.add(Gate("rs", GateType.RSLATCH, [Pin("s"), Pin("r")], "q"))
        sim = Simulator(nl)
        sim.initialize({"s": 0, "r": 0})
        sim.drive("s", 1, at=1.0)
        sim.drive("r", 1, at=1.0)
        sim.run(5.0)
        assert sim.violations


class TestEnvironmentConformance:
    def test_correct_circuit_conforms(self, handshake_sg):
        from repro.core import synthesize

        circuit = synthesize(handshake_sg, name="hs")
        sim = Simulator(circuit.netlist, SimConfig(jitter=0.3, seed=1))
        env = SGEnvironment(handshake_sg, sim, seed=2)
        report = env.run(max_time=500.0, max_transitions=40)
        assert report.ok, report.summary()
        assert report.transitions_observed == 40

    def test_wrong_circuit_flagged(self, handshake_sg):
        """An inverter driving y violates the SG the moment r rises...
        actually it fires -y/+y out of spec — conformance must catch it."""
        nl = Netlist("bogus")
        nl.add_input("r")
        nl.add_output("y")
        nl.add(Gate("g", GateType.INV, [Pin("r")], "y"))
        sim = Simulator(nl)
        env = SGEnvironment(handshake_sg, sim, seed=3)
        report = env.run(max_time=100.0, max_transitions=10)
        assert not report.ok
        assert report.conformance_errors

    def test_dead_circuit_deadlocks(self, handshake_sg):
        nl = Netlist("dead")
        nl.add_input("r")
        nl.add_output("y")
        nl.add(Gate("c0", GateType.CONST, [], "y", attrs={"value": 0}))
        sim = Simulator(nl)
        env = SGEnvironment(handshake_sg, sim, seed=4)
        report = env.run(max_time=100.0, max_transitions=10)
        assert report.progress_errors


class TestHazardAnalysis:
    def test_split_internal_observable(self):
        ts = TraceSet()
        for t, v in [(0.0, 0), (1.0, 1), (1.1, 0), (9.0, 1)]:
            ts.record("plane", t, v)
        for t, v in [(0.0, 0), (5.0, 1)]:
            ts.record("q", t, v)
        report = analyze_hazards(ts, observable_nets=["q"], internal_nets=["plane"])
        assert report.internal_total == 1
        assert report.observable_total == 0
        assert report.externally_hazard_free

    def test_observable_glitch_detected(self):
        ts = TraceSet()
        for t, v in [(0.0, 0), (1.0, 1), (1.05, 0), (3.0, 1)]:
            ts.record("q", t, v)
        report = analyze_hazards(ts, observable_nets=["q"], internal_nets=[])
        assert not report.externally_hazard_free
        assert "observable" in report.summary()
