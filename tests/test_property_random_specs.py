"""Property-based testing over randomized specifications.

Hypothesis generates random (but structurally valid) STG patterns —
phased cycles, fork/joins, rings, pipelines — and the properties
asserted are the paper's theorems and the flow's invariants:

* elaborated SGs are consistent, CSC and semi-modular;
* the region-derived (F, D, R) partitions the code space per function;
* the minimized cover is sound (F ⊆ C ⊆ F∪D) and realizes Table 1 on
  every reachable state;
* single-traversal SGs pass the trigger audit without repair
  (Corollary 1);
* Equation (1) is non-positive at the nominal bound for the
  architecture's plane shapes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.circuits.handshakes import fork_join, muller_pipeline, phased_cycle, ring
from repro.core import check_trigger_cubes, derive_sop_spec, synthesize
from repro.sg import code_partition_check, is_single_traversal, validate_for_synthesis
from repro.stg import elaborate

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_NAMES = [f"s{i}" for i in range(8)]


@st.composite
def phased_cycle_stgs(draw):
    """Random fork/join phase cycles over up to 6 signals.

    A dedicated phase-marker output separates the rising and falling
    halves, so state codes never repeat (CSC by construction) — the
    same structural device the real benchmark controllers use (a
    master/acknowledge signal between the handshake halves).
    """
    n_sigs = draw(st.integers(2, 6))
    sigs = _NAMES[:n_sigs]
    n_phases = draw(st.integers(2, 4))
    # partition the signals into rising phases (each signal appears in
    # exactly one rising and one falling phase, preserving order)
    assignment = [draw(st.integers(0, n_phases - 1)) for _ in sigs]
    rising = [[] for _ in range(n_phases)]
    for s, ph in zip(sigs, assignment):
        rising[ph].append((s, True))
    rising = [ph for ph in rising if ph]
    falling = [[(s, False) for s, _ in ph] for ph in rising]
    phases = (
        rising
        + [[("ph", True)]]
        + falling
        + [[("ph", False)]]
    )
    n_inputs = draw(st.integers(1, max(1, n_sigs - 1)))
    inputs = sigs[:n_inputs]
    return phased_cycle(phases, inputs=inputs, name="prop")


@st.composite
def pattern_stgs(draw):
    kind = draw(st.sampled_from(["phased", "ring", "fork", "pipe"]))
    if kind == "phased":
        return draw(phased_cycle_stgs())
    if kind == "ring":
        n = draw(st.integers(2, 5))
        sigs = _NAMES[:n]
        return ring(sigs, [sigs[0]], name="prop")
    if kind == "fork":
        n = draw(st.integers(1, 4))
        return fork_join("m", _NAMES[:n], name="prop")
    n = draw(st.integers(1, 4))
    return muller_pipeline(n, name="prop")


class TestRandomSpecs:
    @given(pattern_stgs())
    @SETTINGS
    def test_elaboration_valid(self, stg):
        sg = elaborate(stg)
        report = validate_for_synthesis(sg)
        assert report.ok, report.summary()

    @given(pattern_stgs())
    @SETTINGS
    def test_fdr_partitions_code_space(self, stg):
        sg = elaborate(stg)
        spec = derive_sop_spec(sg)
        assert code_partition_check(spec.on, spec.dc, spec.off, sg.num_signals)

    @given(pattern_stgs())
    @SETTINGS
    def test_synthesis_realizes_table1(self, stg):
        sg = elaborate(stg)
        circuit = synthesize(sg, name="prop")
        spec = circuit.spec
        for a in sg.non_inputs:
            sr = spec.regions[a]
            for kind, direction in (("set", 1), ("reset", -1)):
                o = spec.output_index(a, kind)
                for s in sr.union_states("ER", direction):
                    assert circuit.cover.contains_minterm(sg.code(s), o)
                for s in sr.union_states("ER", -direction) | sr.union_states(
                    "QR", -direction
                ):
                    assert not circuit.cover.contains_minterm(sg.code(s), o)

    @given(pattern_stgs())
    @SETTINGS
    def test_corollary1_trigger_audit(self, stg):
        sg = elaborate(stg)
        circuit = synthesize(sg, name="prop")
        if is_single_traversal(sg):
            audits = check_trigger_cubes(spec=circuit.spec, cover=circuit.cover)
            assert all(a.ok for a in audits)
            assert circuit.trigger_cubes_added == 0

    @given(pattern_stgs())
    @SETTINGS
    def test_nominal_delay_requirement_nonpositive(self, stg):
        sg = elaborate(stg)
        circuit = synthesize(sg, name="prop")
        assert not circuit.compensation_required

    @given(pattern_stgs())
    @SETTINGS
    def test_netlist_structure_invariants(self, stg):
        from repro.netlist import GateType

        sg = elaborate(stg)
        circuit = synthesize(sg, name="prop")
        nl = circuit.netlist
        assert nl.validate() == []
        mhs = [g for g in nl.gates if g.type == GateType.MHSFF]
        assert len(mhs) == len(sg.non_inputs)
        # delay is a whole number of 1.2 ns levels
        d = nl.stats().delay
        assert abs(d / 1.2 - round(d / 1.2)) < 1e-9
