"""The observatory dashboard renderers.

The acceptance property for the HTML artifact: **self-contained**.
Inline CSS, inline SVG, zero references that would make a browser
touch the network — the CI-published dashboard must open offline and
never leak timing data to a third party.
"""

import pytest

from repro.obs.analytics import analyze
from repro.obs.registry import RunHistory
from repro.obs.report import render_analytics_text, render_html

from .test_obs_analytics import _bench_doc, _profile_doc, _regress_doc

#: anything that could trigger an external fetch in a browser
_FETCH_MARKERS = (
    "http://",
    "https://",
    "src=",
    "url(",
    "@import",
    "<link",
    "<script",
    "<img",
    "<iframe",
    "fetch(",
    "XMLHttpRequest",
)


@pytest.fixture()
def doc(tmp_path):
    history = RunHistory(str(tmp_path / "h"))
    for i in range(6):
        d = _bench_doc(i, f"{i:02d}" + "a" * 38, 0.010)
        d["circuits"][0]["telemetry"] = {
            "min_omega_margin": 2.0,
            "min_delay_slack": 1.5,
        }
        d["circuits"][0]["coverage"] = {"states_pct": 90.0}
        history.append("bench", d)
    for i in range(6, 12):
        history.append("bench", _bench_doc(i, "9f" + "b" * 38, 0.025))
    history.append("profile", _profile_doc(12, "9f" + "b" * 38, 0.2))
    history.append("regress", _regress_doc(13, "9f" + "b" * 38, ok=True))
    return analyze(history)


class TestHtmlDashboard:
    def test_self_contained(self, doc):
        html = render_html(doc)
        lowered = html.lower()
        for marker in _FETCH_MARKERS:
            assert marker.lower() not in lowered, marker

    def test_has_sparklines_and_panels(self, doc):
        html = render_html(doc)
        assert html.count("<svg") >= 3
        assert 'class="line"' in html  # the trend polylines
        assert "min_omega_margin" not in html  # labels, not raw keys
        assert "ω-margin" in html
        assert "SG state coverage" in html
        assert "Hotspot self-time trends" in html

    def test_changepoint_markers_and_commit_range(self, doc):
        assert doc["changepoints"], "fixture must contain a changepoint"
        html = render_html(doc)
        assert 'class="cp-slower"' in html  # marker on the sparkline
        # the commit range is named in the changepoint table
        frm = doc["changepoints"][0]["from_sha"][:7]
        to = doc["changepoints"][0]["to_sha"][:7]
        assert f"{frm}..{to}" in html

    def test_regress_status_rendered(self, doc):
        html = render_html(doc)
        assert ">OK<" in html

    def test_function_names_escaped(self, doc):
        """Profiled frames like ``cover.py:<setcomp>`` must not inject
        markup into the document."""
        html = render_html(doc)
        assert "<setcomp>" not in html
        assert "&lt;setcomp&gt;" in html

    def test_dark_mode_and_no_series_colored_text(self, doc):
        html = render_html(doc)
        assert "prefers-color-scheme: dark" in html
        assert "--series-1" in html

    def test_integrity_problems_surface(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        for i in range(2):
            history.append("bench", _bench_doc(i, "a" * 40, 0.01))
        with open(history.index_path, "a") as f:
            f.write("{torn")
        html = render_html(analyze(history))
        assert "ledger integrity" in html
        assert "1 torn index line(s)" in html


class TestTextReport:
    def test_summary_lines(self, doc):
        text = render_analytics_text(doc)
        assert "16 run(s)" not in text  # sanity: fixture is 14 runs
        assert "bench=12" in text
        assert "changepoints (" in text
        assert "slower x" in text
        assert "last regress: OK" in text

    def test_quiet_ledger(self, tmp_path):
        history = RunHistory(str(tmp_path / "h"))
        for i in range(3):
            history.append("bench", _bench_doc(i, "a" * 40, 0.01))
        text = render_analytics_text(analyze(history))
        assert "changepoints: none detected" in text
