"""The persistent artifact store: atomic writes, defect quarantine,
concurrent writers, and garbage collection.

These tests deliberately corrupt on-disk state — the store's contract
is that *no* defect on disk ever surfaces as an exception, only as a
cache miss (plus a quarantined file kept as evidence).
"""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.obs import get_metrics
from repro.pipeline import ArtifactStore, GcReport, parse_age, parse_size

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(str(tmp_path / "cache"))


class TestPutGet:
    def test_roundtrip(self, store):
        store.put(KEY_A, {"x": [1, 2, 3]}, meta={"stage": "parse"})
        found, value = store.get(KEY_A)
        assert found and value == {"x": [1, 2, 3]}
        assert store.hits == 1 and store.misses == 0

    def test_missing_key_is_a_miss(self, store):
        found, value = store.get(KEY_A)
        assert not found and value is None
        assert store.misses == 1

    def test_contains(self, store):
        assert KEY_A not in store
        store.put(KEY_A, 1)
        assert KEY_A in store

    def test_overwrite_same_key(self, store):
        store.put(KEY_A, "first")
        store.put(KEY_A, "second")
        assert store.get(KEY_A) == (True, "second")

    def test_counters_mirrored_to_metrics(self, store):
        before = get_metrics().snapshot()["counters"]
        store.get(KEY_A)  # miss
        store.put(KEY_A, 1)
        store.get(KEY_A)  # hit
        after = get_metrics().snapshot()["counters"]
        assert after.get("cache.miss", 0) == before.get("cache.miss", 0) + 1
        assert after.get("cache.hit", 0) == before.get("cache.hit", 0) + 1

    def test_no_stale_tmp_left_behind(self, store):
        store.put(KEY_A, list(range(100)))
        tmp_dir = os.path.join(store.root, "tmp")
        assert os.listdir(tmp_dir) == []


class TestQuarantine:
    """One bad byte costs a recompute, never a traceback."""

    def _quarantine_count(self, store) -> int:
        qdir = os.path.join(store.root, "quarantine")
        return len(os.listdir(qdir)) if os.path.isdir(qdir) else 0

    def test_torn_metadata_json(self, store):
        store.put(KEY_A, "payload")
        meta = store._meta_path(KEY_A)
        with open(meta, "w") as f:
            f.write('{"schema": "repro-artifact/1", "key')  # truncated
        found, _ = store.get(KEY_A)
        assert not found
        assert self._quarantine_count(store) >= 1
        assert store.quarantined == 1
        # the defective entry is gone from the object tree
        assert not os.path.exists(meta)

    def test_truncated_payload(self, store):
        store.put(KEY_A, list(range(1000)))
        payload = store._payload_path(KEY_A)
        blob = open(payload, "rb").read()
        with open(payload, "wb") as f:
            f.write(blob[: len(blob) // 2])
        found, _ = store.get(KEY_A)
        assert not found
        assert self._quarantine_count(store) >= 1

    def test_bitflipped_payload_fails_checksum(self, store):
        store.put(KEY_A, list(range(1000)))
        payload = store._payload_path(KEY_A)
        blob = bytearray(open(payload, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(payload, "wb") as f:
            f.write(bytes(blob))
        found, _ = store.get(KEY_A)
        assert not found

    def test_missing_payload_with_metadata(self, store):
        store.put(KEY_A, "payload")
        os.remove(store._payload_path(KEY_A))
        found, _ = store.get(KEY_A)
        assert not found

    def test_wrong_schema_version(self, store):
        store.put(KEY_A, "payload")
        meta_path = store._meta_path(KEY_A)
        meta = json.load(open(meta_path))
        meta["schema"] = "repro-artifact/999"
        json.dump(meta, open(meta_path, "w"))
        found, _ = store.get(KEY_A)
        assert not found

    def test_key_mismatch_in_envelope(self, store):
        store.put(KEY_A, "payload")
        meta_path = store._meta_path(KEY_A)
        meta = json.load(open(meta_path))
        meta["key"] = KEY_B
        json.dump(meta, open(meta_path, "w"))
        found, _ = store.get(KEY_A)
        assert not found

    def test_recovery_after_quarantine(self, store):
        """The canonical crash-recovery loop: corrupt → miss →
        recompute → put → hit."""
        store.put(KEY_A, "good")
        with open(store._meta_path(KEY_A), "w") as f:
            f.write("not json at all")
        assert store.get(KEY_A) == (False, None)
        store.put(KEY_A, "recomputed")
        assert store.get(KEY_A) == (True, "recomputed")

    def test_unpicklable_payload_bytes(self, store):
        store.put(KEY_A, "payload")
        blob = b"\x80\x05garbage-not-a-pickle"
        with open(store._payload_path(KEY_A), "wb") as f:
            f.write(blob)
        # fix the checksum so only unpickling fails
        meta_path = store._meta_path(KEY_A)
        meta = json.load(open(meta_path))
        from hashlib import sha256

        meta["payload_sha256"] = sha256(blob).hexdigest()
        json.dump(meta, open(meta_path, "w"))
        found, _ = store.get(KEY_A)
        assert not found


def _hammer(root: str, n: int, worker: int) -> None:
    st = ArtifactStore(root)
    for i in range(n):
        key = f"{i % 7:02d}" + f"{i % 7:062d}"
        st.put(key, {"i": i % 7, "payload": list(range(200))},
               meta={"stage": "parse"})
        st.get(key)


class TestConcurrentWriters:
    def test_parallel_same_key_writers_never_tear(self, tmp_path):
        """Several processes hammering the same small key set: every
        surviving entry must read back sound (same-key writers race on
        the two-file rename, which the payload-first ordering and the
        checksum make benign)."""
        root = str(tmp_path / "cache")
        procs = [
            multiprocessing.Process(target=_hammer, args=(root, 40, w))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        st = ArtifactStore(root)
        entries = list(st.entries())
        assert len(entries) == 7
        for e in entries:
            found, value = st.get(e.key)
            assert found and value["i"] == int(e.key[:2])
        assert st.quarantined == 0


class TestGc:
    def _fill(self, store, n=6):
        for i in range(n):
            key = f"{i:02d}" + "e" * 62
            store.put(key, "x" * 1000, meta={"stage": "parse", "name": f"c{i}"})
            # deterministic, well-separated ages (i=0 oldest)
            t = 1_000_000.0 + i * 100
            os.utime(store._payload_path(key), (t, t))
            os.utime(store._meta_path(key), (t, t))
        return 1_000_000.0 + (n - 1) * 100

    def test_size_bound_evicts_oldest_first(self, store):
        self._fill(store, 6)
        sizes = [e.size for e in store.entries()]
        keep = sum(sizes[:2]) + 1  # room for two entries
        report = store.gc(max_bytes=keep)
        assert report.scanned == 6
        assert report.evicted == 4
        assert report.kept == 2
        assert report.by_reason == {"size": 4}
        survivors = sorted(e.key[:2] for e in store.entries())
        assert survivors == ["04", "05"]  # the two newest

    def test_age_bound(self, store):
        newest = self._fill(store, 6)
        report = store.gc(max_age_s=250.0, now=newest)
        # entries older than 250s relative to the newest: i=0..2
        assert report.by_reason == {"expired": 3}
        assert report.kept == 3

    def test_combined_bounds(self, store):
        newest = self._fill(store, 6)
        report = store.gc(max_bytes=1, max_age_s=250.0, now=newest)
        assert report.evicted == 6
        assert report.kept == 0
        assert sorted(report.by_reason) == ["expired", "size"]

    def test_gc_report_json(self, store):
        self._fill(store, 2)
        doc = store.gc(max_bytes=0).to_json()
        assert doc["evicted"] == 2 and doc["kept"] == 0
        assert doc["evicted_bytes"] > 0
        json.dumps(doc)  # must be serializable as-is

    def test_no_bounds_evicts_nothing(self, store):
        self._fill(store, 3)
        report = store.gc()
        assert report.evicted == 0 and report.kept == 3

    def test_hit_refreshes_lru_age(self, store):
        self._fill(store, 3)
        oldest_key = "00" + "e" * 62
        store.get(oldest_key)  # refresh: now the newest
        one_entry = max(e.size for e in store.entries())
        report = store.gc(max_bytes=one_entry)  # keep exactly one
        assert report.kept == 1
        (survivor,) = store.entries()
        assert survivor.key == oldest_key

    def test_clear_removes_everything(self, store):
        self._fill(store, 4)
        store.put(KEY_A, "x")
        with open(store._meta_path(KEY_A), "w") as f:
            f.write("junk")
        store.get(KEY_A)  # quarantines
        removed = store.clear()
        assert removed == 4
        stats = store.stats()
        assert stats["entries"] == 0
        assert stats["quarantine_files"] == 0

    def test_gc_lock_released(self, store):
        self._fill(store, 1)
        store.gc(max_bytes=0)
        assert not os.path.exists(os.path.join(store.root, "gc.lock"))

    def test_stale_lock_takeover(self, store):
        self._fill(store, 1)
        lock = os.path.join(store.root, "gc.lock")
        with open(lock, "w") as f:
            f.write("99999 0\n")
        os.utime(lock, (1.0, 1.0))  # ancient: presumed-dead owner
        report = store.gc(max_bytes=0)  # must not dead-lock
        assert report.evicted == 1


class TestStats:
    def test_stats_shape(self, store):
        store.put(KEY_A, "x", meta={"stage": "parse"})
        store.put(KEY_B, "y", meta={"stage": "covers"})
        store.get(KEY_A)
        s = store.stats()
        assert s["entries"] == 2
        assert s["bytes"] > 0
        assert set(s["by_stage"]) == {"covers", "parse"}
        assert s["by_stage"]["parse"]["count"] == 1
        assert s["session"]["hits"] == 1
        assert s["session"]["misses"] == 0
        json.dumps(s)

    def test_empty_store_stats(self, store):
        s = store.stats()
        assert s["entries"] == 0 and s["bytes"] == 0
        assert s["age_span_s"] == 0.0


class TestParsers:
    @pytest.mark.parametrize(
        "text,expect",
        [("512", 512), ("2k", 2048), ("2K", 2048), ("3M", 3 << 20),
         ("1g", 1 << 30), ("1.5k", 1536), ("500MB", 500 << 20), (42, 42)],
    )
    def test_parse_size(self, text, expect):
        assert parse_size(text) == expect

    @pytest.mark.parametrize(
        "text,expect",
        [("45", 45.0), ("45s", 45.0), ("30m", 1800.0), ("12h", 43200.0),
         ("7d", 604800.0), (9.5, 9.5)],
    )
    def test_parse_age(self, text, expect):
        assert parse_age(text) == expect
