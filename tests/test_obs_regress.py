"""The noise-aware regression gate.

The two acceptance properties:

* **no false positives** — regressing a fresh run against a baseline
  taken moments earlier at the same SHA must exit 0;
* **real slowdowns convict** — an artificial delay inserted into the
  minimizer must come back as a regression naming the phase.
"""

import importlib
import time

import pytest

# repro.logic re-exports the minimize *function*, shadowing the
# submodule attribute; resolve the module itself for monkeypatching
minimize_mod = importlib.import_module("repro.logic.minimize")
from repro.obs.harness import run_bench
from repro.obs.regress import (
    REGRESS_SCHEMA,
    PhaseDelta,
    Thresholds,
    load_baseline,
    run_regress,
)

CIRCUIT = "converta"  # small: keeps the double-bench runtime low


@pytest.fixture(scope="module")
def baseline():
    return run_bench(circuits=[CIRCUIT], runs=1, verify_runs=1, telemetry=True)


class TestThresholds:
    def test_allowed_band(self):
        th = Thresholds(rel=0.30, abs_s=0.005)
        assert th.allowed(0.100) == pytest.approx(0.135)
        # tiny phases are dominated by the absolute floor
        assert th.allowed(0.001) == pytest.approx(0.0063)

    def test_delta_ratio(self):
        d = PhaseDelta("c", "p", base_s=0.1, cur_s=0.2, allowed_s=0.135, best_s=0.2)
        assert d.ratio == pytest.approx(2.0)


class TestSameShaStability:
    """Back-to-back runs at the same SHA must not page (twice, per the
    acceptance criterion)."""

    def test_no_false_positives_twice(self, baseline):
        for _ in range(2):
            report = run_regress(baseline, telemetry=False)
            assert report.ok, [d.render() for d in report.regressions]
            assert report.exit_code() == 0
            assert report.env_match

    def test_json_document(self, baseline):
        report = run_regress(baseline, telemetry=False, remeasure=False)
        doc = report.to_json_doc()
        assert doc["schema"] == REGRESS_SCHEMA
        assert doc["current"]["schema"] == "repro-bench/1"
        assert any(d["phase"] == "total" for d in doc["deltas"])


class TestSlowdownConviction:
    def test_slow_minimizer_flagged_with_phase_name(self, baseline, monkeypatch):
        real = minimize_mod.espresso

        def slow_espresso(*args, **kwargs):
            time.sleep(0.03)
            return real(*args, **kwargs)

        monkeypatch.setattr(minimize_mod, "espresso", slow_espresso)
        report = run_regress(
            baseline,
            thresholds=Thresholds(rel=0.30, abs_s=0.005, confirm_runs=1),
            telemetry=False,
        )
        assert not report.ok
        assert report.exit_code() == 1
        flagged = {d.phase for d in report.regressions}
        assert "minimize" in flagged  # the gate names the guilty phase
        assert report.regressions[0].circuit == CIRCUIT
        assert "REGRESSION" in report.render_text()

    def test_remeasure_clears_one_off_noise(self, baseline, monkeypatch):
        """A spike on the first reading only must be cleared by min-of-N."""
        real = minimize_mod.espresso
        calls = {"n": 0}

        def flaky_espresso(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:  # only the very first call is slow
                time.sleep(0.03)
            return real(*args, **kwargs)

        monkeypatch.setattr(minimize_mod, "espresso", flaky_espresso)
        report = run_regress(
            baseline,
            thresholds=Thresholds(rel=0.30, abs_s=0.005, confirm_runs=2),
            telemetry=False,
        )
        assert report.ok
        assert all(d.status in ("ok", "cleared") for d in report.deltas)


class TestReporting:
    def test_markdown_tables(self, baseline):
        report = run_regress(baseline, remeasure=False)
        md = report.render_markdown()
        assert "# repro regress report" in md
        assert "Hazard telemetry" in md
        assert "ω-margin" in md
        assert f"| {CIRCUIT} |" in md

    def test_unknown_circuit_skipped(self, baseline):
        report = run_regress(
            baseline, circuits=[CIRCUIT, "no-such"], telemetry=False,
            remeasure=False,
        )
        assert report.skipped == ["no-such"]
        assert report.ok

    def test_all_unknown_raises(self, baseline):
        with pytest.raises(ValueError):
            run_regress(baseline, circuits=["no-such"])

    def test_baseline_circuit_unknown_to_suite_skipped(self, baseline):
        """A baseline from before a circuit rename must not crash the
        fresh run — the stale name is skipped structurally."""
        import copy

        doc = copy.deepcopy(baseline)
        ghost = copy.deepcopy(doc["circuits"][0])
        ghost["name"] = "ghost-renamed-away"
        doc["circuits"].append(ghost)
        report = run_regress(doc, telemetry=False, remeasure=False)
        assert report.skipped_unknown == ["ghost-renamed-away"]
        assert report.ok and report.exit_code() == 0
        assert "ghost-renamed-away" in report.render_text()
        assert report.to_json_doc()["skipped_unknown"] == [
            "ghost-renamed-away"
        ]
        md = report.render_markdown()
        assert "## Skipped" in md and "unknown to the current" in md

    def test_baseline_with_only_unknown_circuits_raises(self, baseline):
        import copy

        doc = copy.deepcopy(baseline)
        for entry in doc["circuits"]:
            entry["name"] = "ghost-renamed-away"
        with pytest.raises(ValueError, match="known to the current"):
            run_regress(doc, telemetry=False, remeasure=False)

    def test_load_baseline_rejects_invalid(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(str(p))


class TestThresholdPolicy:
    def test_phase_override_wins(self):
        from repro.obs.regress import ThresholdPolicy

        policy = ThresholdPolicy(
            default=Thresholds(rel=0.25, abs_s=0.005),
            phases={"minimize": Thresholds(rel=0.10, abs_s=0.001)},
        )
        assert policy.for_phase("minimize").rel == 0.10
        assert policy.for_phase("oracle").rel == 0.25
        assert policy.allowed("minimize", 0.100) == pytest.approx(0.111)
        assert policy.allowed("oracle", 0.100) == pytest.approx(0.130)

    def test_json_round_trip(self):
        from repro.obs.regress import ThresholdPolicy

        policy = ThresholdPolicy(
            default=Thresholds(rel=0.3, abs_s=0.01, confirm_runs=5),
            phases={"espresso": Thresholds(rel=0.12, abs_s=0.002)},
        )
        again = ThresholdPolicy.from_json(policy.to_json())
        assert again.default == policy.default
        assert again.for_phase("espresso").rel == pytest.approx(0.12)
        assert again.for_phase("espresso").abs_s == pytest.approx(0.002)
        # overrides carry only the band; confirm_runs follows the default
        assert again.for_phase("espresso").confirm_runs == 5
        assert again.confirm_runs == 5

    def test_config_file_round_trip(self, tmp_path):
        from repro.obs.regress import (
            THRESHOLDS_SCHEMA,
            ThresholdPolicy,
            load_threshold_config,
            save_threshold_config,
        )

        path = str(tmp_path / "thr.json")
        policy = ThresholdPolicy(
            phases={"minimize": Thresholds(rel=0.08, abs_s=0.001)}
        )
        save_threshold_config(policy, path, provenance={"why": "test"})
        import json as json_mod

        doc = json_mod.load(open(path))
        assert doc["schema"] == THRESHOLDS_SCHEMA
        assert doc["provenance"] == {"why": "test"}
        loaded = load_threshold_config(path)
        assert loaded.for_phase("minimize").rel == pytest.approx(0.08)

    def test_load_rejects_wrong_schema(self, tmp_path):
        from repro.obs.regress import load_threshold_config

        p = tmp_path / "bad.json"
        p.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError, match="repro-thresholds/1"):
            load_threshold_config(str(p))

    def test_run_regress_accepts_policy(self, baseline):
        """A ratcheted per-phase override flows into the gate's allowed
        band (and the report names the override count)."""
        from repro.obs.regress import ThresholdPolicy

        policy = ThresholdPolicy(
            default=Thresholds(rel=5.0, abs_s=1.0, confirm_runs=1),
            phases={"minimize": Thresholds(rel=4.0, abs_s=0.9)},
        )
        report = run_regress(
            baseline, thresholds=policy, telemetry=False, remeasure=False
        )
        assert report.ok
        doc = report.to_json_doc()
        assert doc["thresholds"]["phases"]["minimize"]["rel"] == 4.0
        mins = [d for d in doc["deltas"] if d["phase"] == "minimize"]
        others = [d for d in doc["deltas"] if d["phase"] == "total"]
        # override band is tighter than the default band
        assert mins[0]["allowed_s"] < others[0]["allowed_s"] + 0.1  # sanity
        assert "ratcheted phase override" in report.render_markdown()
