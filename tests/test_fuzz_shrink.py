"""Tests for the delta-debugging disagreement minimizer."""

from __future__ import annotations

import pytest

from repro.fuzz import (
    Disagreement,
    SpecKnobs,
    classify,
    generate_spec,
    shrink_disagreement,
    shrink_sg,
)
from repro.fuzz.shrink import disagreement_predicate
from repro.sg.sgformat import parse_sg, write_sg


def _refusal_disagreement(seed=5, signals=8) -> Disagreement:
    """A reproducible disagreement: frame nshot's (correct) refusal of a
    non-CSC spec as 'unexpected' so the shrinker has a live predicate."""
    spec = generate_spec(seed, SpecKnobs(signals=signals, csc=False))
    return Disagreement(
        kind="unexpected-refusal",
        flow="nshot",
        seed=seed,
        knobs=spec.knobs,
        detail="SynthesisError: preflight",
        spec_text=write_sg(spec.sg, spec.name),
        labels=spec.labels.to_json(),
        original_states=spec.labels.states,
    )


class TestShrinkSg:
    def test_respects_eval_budget(self):
        sg = generate_spec(3, SpecKnobs(signals=8)).sg
        calls = []

        def keep(candidate):
            calls.append(1)
            return True

        _, evals = shrink_sg(sg, keep, max_evals=7)
        assert evals <= 7
        assert len(calls) <= 7

    def test_never_grows(self):
        sg = generate_spec(3, SpecKnobs(signals=8)).sg
        minimized, _ = shrink_sg(sg, lambda c: True, max_evals=100)
        assert minimized.num_states <= sg.num_states
        assert minimized.initial is not None

    def test_keeps_predicate_true_on_result(self):
        sg = generate_spec(7, SpecKnobs(signals=8, csc=False)).sg
        base = classify(sg)

        def keep(candidate):
            return not classify(candidate).csc

        minimized, _ = shrink_sg(sg, keep, max_evals=150)
        assert not classify(minimized).csc
        assert minimized.num_states < sg.num_states
        assert not base.csc


class TestShrinkDisagreement:
    def test_minimizes_and_still_disagrees(self):
        d = _refusal_disagreement()
        shrink_disagreement(d, max_evals=200)
        assert d.minimized_text is not None
        assert 1 <= d.minimized_states <= d.original_states
        # the minimized spec still triggers the recorded predicate
        pred = disagreement_predicate(d)
        assert pred(parse_sg(d.minimized_text))
        # and the judged labels were preserved (still a non-CSC spec)
        assert not classify(parse_sg(d.minimized_text)).csc

    def test_deterministic(self):
        a = _refusal_disagreement()
        b = _refusal_disagreement()
        shrink_disagreement(a, max_evals=200)
        shrink_disagreement(b, max_evals=200)
        assert a.minimized_text == b.minimized_text
        assert a.shrink_evals == b.shrink_evals

    def test_unshrinkable_kinds_left_alone(self):
        d = _refusal_disagreement()
        d.kind = "flow-timeout"
        shrink_disagreement(d)
        assert d.minimized_text is None

    def test_non_reproducing_left_alone(self):
        # a 'crash' that never happens: predicate fails on the original
        d = _refusal_disagreement()
        d.kind = "flow-crash"
        d.detail = "KeyError: nope"
        shrink_disagreement(d, max_evals=50)
        assert d.minimized_text is None

    def test_unparsable_spec_left_alone(self):
        d = _refusal_disagreement()
        d.spec_text = "garbage"
        shrink_disagreement(d)
        assert d.minimized_text is None
