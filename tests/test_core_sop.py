"""Tests for region→SOP derivation (Section IV-A) and Table 1."""

import pytest

from repro.core import derive_sop_spec, region_mode_table
from repro.logic import minimize, verify_cover
from repro.sg import code_partition_check
from repro.bench.circuits import figure7a_sg


class TestDeriveSopSpec:
    def test_output_indexing(self, celem_sg):
        spec = derive_sop_spec(celem_sg)
        c = celem_sg.signal_index("c")
        assert spec.num_outputs == 2
        assert spec.output_index(c, "set") == 0
        assert spec.output_index(c, "reset") == 1
        assert spec.output_name(0) == "set_c"
        assert spec.output_name(1) == "reset_c"

    def test_celem_set_function(self, celem_sg):
        spec = derive_sop_spec(celem_sg)
        # ER(+c) = {110}: the only ON minterm of set_c
        assert spec.on.contains_minterm(0b011, output=0)  # a=1,b=1,c=0
        assert not spec.on.contains_minterm(0b111, output=0)
        # ER(-c) = {001}: ON of reset_c
        assert spec.on.contains_minterm(0b100, output=1)

    def test_fdr_partitions_code_space(self, celem_sg, or_element_sg, xyz_sg):
        for sg in (celem_sg, or_element_sg, xyz_sg):
            spec = derive_sop_spec(sg)
            assert code_partition_check(spec.on, spec.dc, spec.off, sg.num_signals)

    def test_functions_parallel_structure(self, xyz_sg):
        spec = derive_sop_spec(xyz_sg)
        assert len(spec.functions) == 2 * len(xyz_sg.non_inputs)
        kinds = [f.kind for f in spec.functions]
        assert kinds == ["set", "reset"] * len(xyz_sg.non_inputs)

    def test_unreachable_codes_are_dc(self, handshake_sg):
        spec = derive_sop_spec(handshake_sg)
        # the handshake never reaches r=0,y=1... it does (state 01); use
        # a code that is truly unreachable in the 4-state cycle: none —
        # all 4 codes reachable, so DC = QR only.
        for o in range(spec.num_outputs):
            for cube in spec.dc.projection(o).cubes:
                for m in cube.minterms():
                    assert not spec.on.contains_minterm(m, o)
                    assert not spec.off.contains_minterm(m, o)

    def test_minimized_cover_is_sound(self, celem_sg, or_element_sg):
        for sg in (celem_sg, or_element_sg):
            spec = derive_sop_spec(sg)
            cover = minimize(spec.on, spec.dc, spec.off)
            assert verify_cover(cover, spec.on, spec.dc, spec.off).ok

    def test_set_reset_mutually_exclusive_on_reachable(self, celem_sg):
        """Table 1: no reachable state asserts both set=1 and reset=1."""
        spec = derive_sop_spec(celem_sg)
        cover = minimize(spec.on, spec.dc, spec.off)
        c = celem_sg.signal_index("c")
        so = spec.output_index(c, "set")
        ro = spec.output_index(c, "reset")
        for s in celem_sg.states():
            m = celem_sg.code(s)
            assert not (
                cover.contains_minterm(m, so) and cover.contains_minterm(m, ro)
            )


class TestRegionModeTable:
    def test_celem_modes(self, celem_sg):
        c = celem_sg.signal_index("c")
        rows = region_mode_table(celem_sg, c)
        assert len(rows) == celem_sg.num_states
        by_mode = {}
        for r in rows:
            by_mode.setdefault(r.mode, []).append(r)
        assert len(by_mode["+c"]) == 1
        assert len(by_mode["-c"]) == 1
        assert len(by_mode["c = 1"]) == 3
        assert len(by_mode["c = 0"]) == 3

    def test_table1_values(self, celem_sg):
        """The SET/RESET columns match the paper's Table 1 exactly."""
        c = celem_sg.signal_index("c")
        expected = {
            "+c": ("1", "0"),
            "c = 1": ("*", "0"),
            "-c": ("0", "1"),
            "c = 0": ("0", "*"),
        }
        for r in region_mode_table(celem_sg, c):
            assert (r.set_value, r.reset_value) == expected[r.mode]

    def test_modes_cover_all_states(self):
        sg = figure7a_sg()
        y = sg.signal_index("y")
        rows = region_mode_table(sg, y)
        assert all(r.region != "unreachable" for r in rows)
