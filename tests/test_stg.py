"""Tests for the STG front-end: net semantics, parser, elaboration."""

import pytest

from repro.stg import (
    ElaborationError,
    Stg,
    StgError,
    StgTransition,
    elaborate,
    infer_initial_values,
    parse_g,
    write_g,
)
from tests.conftest import C_ELEMENT_G, XYZ_RING_G


class TestStgTransition:
    def test_parse(self):
        t = StgTransition.parse("a+")
        assert t.signal == "a" and t.rising and t.instance == 0

    def test_parse_instance(self):
        t = StgTransition.parse("req-/2")
        assert t.signal == "req" and not t.rising and t.instance == 2

    def test_parse_bad(self):
        with pytest.raises(StgError):
            StgTransition.parse("a")

    def test_str_roundtrip(self):
        for s in ("a+", "b-", "c+/3"):
            assert str(StgTransition.parse(s)) == s


class TestStgNet:
    def make_ring(self):
        stg = Stg(["a"], ["b"])
        stg.connect("a+", "b+")
        stg.connect("b+", "a-")
        stg.connect("a-", "b-")
        stg.connect("b-", "a+")
        stg.mark_between("b-", "a+")
        return stg

    def test_signal_classes_disjoint(self):
        with pytest.raises(StgError):
            Stg(["a"], ["a"])

    def test_undeclared_signal_rejected(self):
        stg = Stg(["a"], ["b"])
        with pytest.raises(StgError):
            stg.add_transition("z+")

    def test_enabled_and_fire(self):
        stg = self.make_ring()
        m0 = frozenset(stg.initial_marking)
        enabled = stg.enabled(m0)
        assert [str(t) for t in enabled] == ["a+"]
        m1 = stg.fire(m0, enabled[0])
        assert [str(t) for t in stg.enabled(m1)] == ["b+"]

    def test_fire_disabled_rejected(self):
        stg = self.make_ring()
        with pytest.raises(StgError):
            stg.fire(frozenset(), StgTransition("a", 1))

    def test_safety_enforced(self):
        stg = Stg(["a"], ["b"])
        p = stg.connect("a+", "b+")
        stg.mark(p)
        # firing a+ would double-mark p
        m = frozenset(stg.initial_marking)
        stg.add_transition("a+")
        with pytest.raises(StgError):
            stg.fire(m, StgTransition("a", 1))

    def test_mark_unknown_place(self):
        stg = Stg(["a"], ["b"])
        with pytest.raises(StgError):
            stg.mark("nowhere")

    def test_describe_smoke(self):
        assert "STG" in self.make_ring().describe()


class TestParser:
    def test_celem(self):
        stg = parse_g(C_ELEMENT_G)
        assert stg.input_signals == ["a", "b"]
        assert stg.output_signals == ["c"]
        assert len(stg.transitions) == 6
        assert len(stg.initial_marking) == 2

    def test_roundtrip(self):
        stg = parse_g(C_ELEMENT_G)
        again = parse_g(write_g(stg))
        assert sorted(map(str, again.transitions)) == sorted(map(str, stg.transitions))
        sg1, sg2 = elaborate(stg), elaborate(again)
        assert sg1.num_states == sg2.num_states

    def test_explicit_places(self):
        text = """
        .model t
        .inputs a
        .outputs b
        .graph
        a+ p0
        p0 b+
        b+ a-
        a- b-
        b- a+
        .marking { <b-,a+> }
        .end
        """
        stg = parse_g(text)
        assert "p0" in set(stg.places())
        assert elaborate(stg).num_states == 4

    def test_comments_ignored(self):
        stg = parse_g("# hi\n" + C_ELEMENT_G + "# bye\n")
        assert len(stg.transitions) == 6

    def test_dummy_rejected(self):
        with pytest.raises(StgError):
            parse_g(".model x\n.dummy d\n.end\n")

    def test_unknown_directive(self):
        with pytest.raises(StgError):
            parse_g(".bogus\n")

    def test_initial_directive(self):
        text = C_ELEMENT_G.replace(".end", ".initial a=0 b=0\n.end")
        stg = parse_g(text)
        assert stg.initial_values == {"a": 0, "b": 0}


class TestInference:
    def test_celem_inference(self):
        values = infer_initial_values(parse_g(C_ELEMENT_G))
        assert values == {"a": 0, "b": 0, "c": 0}

    def test_falling_first(self):
        text = """
        .model t
        .inputs a
        .outputs b
        .graph
        a- b-
        b- a+
        a+ b+
        b+ a-
        .marking { <b+,a-> }
        .end
        """
        values = infer_initial_values(parse_g(text))
        assert values == {"a": 1, "b": 1}

    def test_explicit_override(self):
        stg = parse_g(C_ELEMENT_G)
        stg.set_initial_value("a", 0)
        assert infer_initial_values(stg)["a"] == 0


class TestElaboration:
    def test_celem_states(self):
        assert elaborate(parse_g(C_ELEMENT_G)).num_states == 8

    def test_xyz_states(self):
        assert elaborate(parse_g(XYZ_RING_G)).num_states == 6

    def test_signals_order_inputs_first(self):
        sg = elaborate(parse_g(C_ELEMENT_G))
        assert sg.signals == ["a", "b", "c"]
        assert sg.input_names == ["a", "b"]

    def test_initial_state_code(self):
        sg = elaborate(parse_g(C_ELEMENT_G))
        assert sg.code(sg.initial) == 0

    def test_state_budget(self):
        with pytest.raises(ElaborationError):
            elaborate(parse_g(C_ELEMENT_G), max_states=3)

    def test_inconsistent_stg_detected(self):
        text = """
        .model bad
        .inputs a
        .outputs b
        .graph
        a+ b+
        b+ a+
        a+ b-
        .marking { <b+,a+> }
        .end
        """
        # a+ enabled again while a=1 somewhere along the flow
        with pytest.raises((ElaborationError, StgError)):
            elaborate(parse_g(text))

    def test_arc_labels_match_net(self):
        stg = parse_g(C_ELEMENT_G)
        sg = elaborate(stg)
        seen = set()
        for s in sg.states():
            for t, _ in sg.successors(s):
                seen.add((sg.signals[t.signal], t.direction))
        assert ("c", 1) in seen and ("c", -1) in seen
