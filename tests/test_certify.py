"""Tests for the symbolic hazard certifier (HZ001–HZ005).

Satellite of the certifier PR: per obligation family, one proving case
on a paper circuit and one seeded refuting mutation, mirroring the
seeded-violation pattern of ``test_analysis_rules``.  Plus the
certificate document schema, the lint-rule surfacing, the differential
soundness harness, and the CLI exit contract.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import LintContext, Severity, run_rules
from repro.analysis.certify import (
    CERT_SCHEMA,
    PROVED,
    REFUTED,
    UNKNOWN,
    Certificate,
    DifferentialOutcome,
    Obligation,
    archive_soundness_failure,
    certify_circuit,
    certify_cover,
    coverage_obligations,
    cross_check,
    delay_obligations,
    disjointness_obligations,
    omega_obligations,
    trigger_obligations,
)
from repro.analysis.certify.engine import _guarded
from repro.bench.circuits import figure7b_sg
from repro.cli import main
from repro.core import synthesize
from repro.core.sop_derivation import derive_sop_spec
from repro.logic import Cover, Cube
from repro.netlist.gates import GateType

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


@pytest.fixture()
def gfile(tmp_path) -> pathlib.Path:
    p = tmp_path / "celem.g"
    p.write_text(CELEM_G)
    return p


@pytest.fixture()
def celem_circuit(celem_sg):
    return synthesize(celem_sg, name="celem")


def _fragmented_figure7b():
    """The TR003 fixture: a cover whose products fragment the trigger
    regions (each ON minterm covered, but never by a single cube)."""
    sg = figure7b_sg()
    spec = derive_sop_spec(sg)
    r = sg.signal_index("r")
    clk = sg.signal_index("clk")
    y = sg.signal_index("y")
    so = spec.output_index(y, "set")
    ro = spec.output_index(y, "reset")
    n = sg.num_signals

    def cube(bits, out):
        c = Cube.full(n, 1 << out)
        for var, val in bits.items():
            c = c.with_literal(var, 0b10 if val else 0b01)
        return c

    fragmented = Cover(
        n,
        spec.num_outputs,
        [
            cube({r: 1, y: 0, clk: 0}, so),
            cube({r: 1, y: 0, clk: 1}, so),
            cube({r: 0, y: 1, clk: 0}, ro),
            cube({r: 0, y: 1, clk: 1}, ro),
        ],
    )
    return sg, spec, fragmented


# ----------------------------------------------------------------------
# certificate records
# ----------------------------------------------------------------------
class TestCertificateDocument:
    def test_empty_certificate_is_not_proved(self):
        cert = Certificate(name="empty")
        assert not cert.fully_proved  # vacuous truth licenses nothing
        assert cert.counts == {PROVED: 0, REFUTED: 0, UNKNOWN: 0}

    def test_schema_round_trip(self, celem_circuit):
        cert = certify_circuit(celem_circuit)
        doc = cert.to_json()
        assert doc["schema"] == CERT_SCHEMA
        assert doc["name"] == "celem"
        assert doc["fully_proved"] is True
        assert doc["counts"]["proved"] == len(cert)
        assert {ob["rule"] for ob in doc["obligations"]} == {
            "HZ001",
            "HZ002",
            "HZ003",
            "HZ004",
            "HZ005",
        }
        # the document must be plain JSON (witnesses included)
        json.dumps(doc)

    def test_summary_states_verdict(self, celem_circuit):
        cert = certify_circuit(celem_circuit)
        assert "CERTIFIED" in cert.summary()
        cert.obligations.append(
            Obligation("HZ001", "c", "set", "x", REFUTED)
        )
        assert "REFUTED" in cert.summary()
        assert len(cert.refuted()) == 1

    def test_guarded_crash_becomes_unknown(self):
        def boom():
            raise RuntimeError("engine failure")

        (ob,) = _guarded(boom, "HZ002", "c", "set")
        assert ob.unknown and not ob.proved
        assert "RuntimeError" in ob.witness["error"]


# ----------------------------------------------------------------------
# obligation families: one prove + one seeded refutation each
# ----------------------------------------------------------------------
class TestTriggerContainment:  # HZ001
    def test_proved_on_celem(self, celem_circuit):
        obs = trigger_obligations(celem_circuit.spec, celem_circuit.cover)
        assert obs and all(ob.proved for ob in obs)

    def test_refuted_on_fragmented_cover(self):
        sg, spec, fragmented = _fragmented_figure7b()
        obs = trigger_obligations(spec, fragmented)
        bad = [ob for ob in obs if ob.refuted]
        assert bad, "fragmented trigger region must refute HZ001"
        assert all("uncovered_states" in ob.witness for ob in bad)


class TestStatic1Coverage:  # HZ002
    def test_proved_on_celem(self, celem_circuit):
        obs = coverage_obligations(celem_circuit.spec, celem_circuit.cover)
        assert obs and all(ob.proved for ob in obs)

    def test_refuted_on_emptied_column(self, celem_circuit):
        spec = celem_circuit.spec
        empty = Cover(spec.sg.num_signals, spec.num_outputs, [])
        obs = coverage_obligations(spec, empty)
        assert obs and all(ob.refuted for ob in obs)
        # the uncovered residue is the whole ON cube
        assert all(ob.witness["uncovered_count"] >= 1 for ob in obs)


class TestStatic0Disjointness:  # HZ003
    def test_proved_on_celem(self, celem_circuit):
        obs = disjointness_obligations(
            celem_circuit.spec, celem_circuit.cover
        )
        assert obs and all(ob.proved for ob in obs)

    def test_refuted_on_off_set_trespass(self, celem_circuit):
        spec = celem_circuit.spec
        f = spec.functions[0]
        o = spec.output_index(f.signal, f.kind)
        # seed a product that *is* an OFF cube of the same function
        trespass = Cube.from_string(f.off.cubes[0].input_string(), 1 << o)
        mutated = Cover(
            spec.sg.num_signals,
            spec.num_outputs,
            list(celem_circuit.cover.cubes) + [trespass],
        )
        obs = disjointness_obligations(spec, mutated)
        bad = [ob for ob in obs if ob.refuted]
        assert bad
        assert any(
            ob.witness["off_cube"] == f.off.cubes[0].input_string()
            for ob in bad
        )


class TestDelayInequalities:  # HZ004
    def test_proved_without_compensation(self, celem_circuit):
        obs = delay_obligations(celem_circuit)
        assert obs and all(ob.proved for ob in obs)
        assert all(
            ob.witness["compensation_required"] is False for ob in obs
        )

    def test_proved_with_inserted_delay_lines(self):
        # converta at spread 0.3 needs compensation; the synthesizer
        # inserts del_{set,reset} lines, so the inequality still proves
        from repro.bench import sg_of

        circuit = synthesize(
            sg_of("converta"), name="converta", delay_spread=0.3
        )
        assert any(
            r.compensation_required
            for r in circuit.delay_requirements.values()
        )
        obs = delay_obligations(circuit)
        assert obs and all(ob.proved for ob in obs)
        assert any(
            ob.witness.get("compensation_required") is True for ob in obs
        )

    def test_refuted_when_delay_lines_stripped(self):
        from repro.bench import sg_of

        circuit = synthesize(
            sg_of("converta"), name="converta", delay_spread=0.3
        )
        circuit.netlist.gates[:] = [
            g for g in circuit.netlist.gates if g.type is not GateType.DELAY
        ]
        obs = delay_obligations(circuit)
        bad = [ob for ob in obs if ob.refuted]
        assert bad, "stripping the delay lines must refute Equation (1)"
        assert all(ob.witness["missing"] for ob in bad)


class TestOmegaMargin:  # HZ005
    def test_proved_at_design_point(self, celem_circuit):
        obs = omega_obligations(celem_circuit)
        assert obs and all(ob.proved for ob in obs)
        assert all(ob.witness["margin"] > 0 for ob in obs)

    def test_refuted_when_omega_reaches_tau(self, celem_circuit):
        obs = omega_obligations(celem_circuit, omega=1.5, tau=1.2)
        assert obs and all(ob.refuted for ob in obs)

    def test_unknown_when_derating_exhausts_margin(self, celem_sg):
        circuit = synthesize(celem_sg, name="celem", delay_spread=0.5)
        # ω < τ but ω ≥ τ·(1−spread): statically undecidable
        obs = omega_obligations(circuit, omega=0.7, tau=1.2)
        assert obs and all(ob.unknown for ob in obs)


# ----------------------------------------------------------------------
# full-circuit drivers
# ----------------------------------------------------------------------
class TestCertifyCircuit:
    def test_celem_fully_proved(self, celem_circuit):
        cert = certify_circuit(celem_circuit)
        assert cert.fully_proved
        assert set(cert.by_rule()) == {
            "HZ001",
            "HZ002",
            "HZ003",
            "HZ004",
            "HZ005",
        }

    def test_certify_cover_families_only(self, celem_circuit):
        obs = certify_cover(celem_circuit.spec, celem_circuit.cover)
        assert {ob.rule for ob in obs} == {"HZ001", "HZ002", "HZ003"}


# ----------------------------------------------------------------------
# lint-rule surfacing (ERROR on refuted, WARNING on unknown)
# ----------------------------------------------------------------------
class TestHazardRules:
    def test_hz001_errors_on_fragmented_cover(self):
        sg, _spec, fragmented = _fragmented_figure7b()
        ctx = LintContext(sg, name="fragmented", cover=fragmented)
        result = run_rules(ctx, select={"HZ001"})
        diags = result.by_rule()["HZ001"]
        assert diags and all(d.severity is Severity.ERROR for d in diags)
        assert result.exit_code() == 1

    def test_hz002_errors_on_emptied_column(self, celem_sg):
        spec = derive_sop_spec(celem_sg)
        empty = Cover(celem_sg.num_signals, spec.num_outputs, [])
        ctx = LintContext(celem_sg, name="empty", cover=empty)
        result = run_rules(ctx, select={"HZ002"})
        diags = result.by_rule()["HZ002"]
        assert diags and all(d.severity is Severity.ERROR for d in diags)
        assert "static-1" in diags[0].message

    def test_hz003_errors_on_trespassing_product(self, celem_sg):
        spec = derive_sop_spec(celem_sg)
        f = spec.functions[0]
        o = spec.output_index(f.signal, f.kind)
        trespass = Cube.from_string(f.off.cubes[0].input_string(), 1 << o)
        cover = Cover(celem_sg.num_signals, spec.num_outputs, [trespass])
        ctx = LintContext(celem_sg, name="trespass", cover=cover)
        result = run_rules(ctx, select={"HZ003"})
        assert result.by_rule()["HZ003"]
        assert result.exit_code() == 1

    def test_hz_rules_silent_on_clean_circuit(self, celem_sg):
        ctx = LintContext(celem_sg, name="celem")
        result = run_rules(
            ctx, select={"HZ001", "HZ002", "HZ003", "HZ004", "HZ005"}
        )
        assert result.diagnostics == []
        assert result.exit_code() == 0


# ----------------------------------------------------------------------
# differential soundness harness
# ----------------------------------------------------------------------
class TestDifferential:
    def test_cross_check_sound_on_celem(self, celem_circuit):
        outcome = cross_check(
            celem_circuit, name="celem", runs=1, max_transitions=20
        )
        assert outcome.status == "ok"
        assert outcome.sound
        assert outcome.fully_proved
        assert outcome.oracle_ok is True
        assert "certifier proved, oracle clean" in outcome.describe()

    def test_unsound_is_exactly_proved_and_violated(self):
        assert not DifferentialOutcome(
            "x", "unsound", fully_proved=True, oracle_ok=False
        ).sound
        # every other cell of the matrix is sound
        assert DifferentialOutcome(
            "x", "ok", fully_proved=False, oracle_ok=False
        ).sound
        assert DifferentialOutcome(
            "x", "ok", fully_proved=True, oracle_ok=True
        ).sound
        assert DifferentialOutcome("x", "synthesis-error").sound

    def test_archive_soundness_failure(self, tmp_path):
        outcome = DifferentialOutcome(
            "bad", "unsound", fully_proved=True, oracle_ok=False
        )
        path = archive_soundness_failure(outcome, ".dummy spec\n", tmp_path)
        assert path is not None and path.exists()
        text = path.read_text()
        assert "# signature: certify-unsound:bad" in text
        assert text.endswith(".dummy spec\n")
        # dedupe: the same signature archives once
        assert archive_soundness_failure(outcome, ".x\n", tmp_path) is None


# ----------------------------------------------------------------------
# pipeline + bench integration (static-first verification)
# ----------------------------------------------------------------------
class TestStaticFirst:
    def test_pipeline_skips_monte_carlo_when_proved(self, celem_sg, tmp_path):
        from repro.pipeline import ArtifactStore, PipelineRun

        store = ArtifactStore(str(tmp_path / "cache"))
        run = PipelineRun.from_sg(celem_sg, name="celem", store=store)
        summary = run.verify(runs=1, static_first=True)
        assert summary.static_skip and summary.ok
        assert summary.certificate["fully_proved"] is True
        assert "statically certified" in summary.summary()
        # the certificate is a cached stage artifact, labeled in `cache ls`
        assert "certify" in store.stats()["by_stage"]
        assert any(
            e.describe().split()[1:3] == ["certify", "v1"]
            for e in store.entries()
        )
        # verify itself was never pulled: no verify-stage artifact
        assert "verify" not in store.stats()["by_stage"]

    def test_warm_static_first_is_one_cache_hit(self, celem_sg, tmp_path):
        from repro.pipeline import ArtifactStore, PipelineRun

        store = ArtifactStore(str(tmp_path / "cache"))
        PipelineRun.from_sg(celem_sg, name="celem", store=store).verify(
            runs=1, static_first=True
        )
        warm = PipelineRun.from_sg(celem_sg, name="celem", store=store)
        summary = warm.verify(runs=1, static_first=True)
        assert summary.static_skip
        assert warm.report()["misses"] == 0
        assert warm.report()["stages"]["certify"] == "hit"

    def test_verify_static_first_helper(self, celem_circuit):
        from repro.core.verify import verify_static_first

        summary = verify_static_first(celem_circuit, runs=1)
        assert summary.static_skip and summary.ok

    def test_bench_entry_records_skip(self):
        from repro.obs.harness import bench_circuit, validate_bench

        entry, _tracer = bench_circuit(
            "chu150", runs=1, verify_runs=1, static_first=True
        )
        assert entry["static"]["mc_skipped"] is True
        assert entry["static"]["counts"]["refuted"] == 0
        assert "certify" in entry["phases"]
        assert "oracle" not in entry["phases"]
        # the static block passes document validation
        doc = {
            "schema": "repro-bench/1",
            "env": {"python": "x", "platform": "y", "cpu_count": 1},
            "circuits": [entry],
        }
        assert validate_bench(doc) == []
        doc["circuits"][0] = dict(entry, static={"mc_skipped": "yes"})
        assert any("static.mc_skipped" in p for p in validate_bench(doc))


# ----------------------------------------------------------------------
# CLI exit contract (mirrors `repro lint`)
# ----------------------------------------------------------------------
class TestCertifyCli:
    def test_clean_file_exits_zero(self, gfile, capsys):
        assert main(["certify", str(gfile)]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out
        assert "1/1 target(s) fully certified" in out

    def test_json_document(self, gfile, capsys):
        assert main(["certify", str(gfile), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == CERT_SCHEMA
        assert doc["certificates"][0]["fully_proved"] is True

    def test_sarif_carries_hz_rules(self, gfile, capsys):
        assert main(["certify", str(gfile), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rules = {
            r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"HZ001", "HZ002", "HZ003", "HZ004", "HZ005"} <= rules

    def test_no_targets_exits_two(self, capsys):
        assert main(["certify"]) == 2
        assert "no certify targets" in capsys.readouterr().err

    def test_lint_select_accepts_hz_ids(self, gfile, capsys):
        assert main(["lint", str(gfile), "--select", "HZ001,HZ005"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_synth_static_first_skips_monte_carlo(self, gfile, capsys):
        assert (
            main(["synth", str(gfile), "--verify", "--static-first"]) == 0
        )
        out = capsys.readouterr().out
        assert "statically certified" in out
        assert "Monte-Carlo skipped" in out
