"""Edge cases of the hazard census (:mod:`repro.sim.hazards`).

The glitch classification feeds both the verification oracle and the
fault campaign's detected/undetected split, so its boundary behaviour
matters: empty traces must not crash, a pulse exactly at the width
threshold is *not* a glitch (strict ``<``, matching the MHS ω
comparison), and multiple violations on one observable net must all be
counted.
"""

from repro.sim.hazards import analyze_hazards
from repro.sim.waveform import TraceSet, Waveform


def wave_from(net: str, changes) -> Waveform:
    w = Waveform(net)
    for t, v in changes:
        w.record(t, v)
    return w


def traces_from(**nets) -> TraceSet:
    ts = TraceSet()
    for net, changes in nets.items():
        for t, v in changes:
            ts.record(net, t, v)
    return ts


class TestZeroLengthTraces:
    def test_empty_trace_set(self):
        report = analyze_hazards(TraceSet(), observable_nets=["q"])
        assert report.internal_total == 0
        assert report.observable_total == 0
        assert report.externally_hazard_free
        # a net that never recorded anything has no entry at all
        assert "q" not in report.observable_glitches

    def test_single_sample_wave(self):
        """Only the initial value recorded: no pulses, no glitches."""
        ts = traces_from(q=[(0.0, 0)])
        report = analyze_hazards(ts, observable_nets=["q"])
        assert report.observable_glitches == {"q": 0}
        assert report.externally_hazard_free

    def test_empty_waveform_object(self):
        w = Waveform("n")
        assert w.glitch_pulses(1.0) == []
        assert w.pulses() == []
        assert w.num_transitions() == 0
        assert (w.initial, w.final) == (0, 0)


class TestOmegaBoundary:
    def test_pulse_exactly_at_width_is_not_a_glitch(self):
        """Strict ``<``: a pulse of exactly the threshold width passes,
        mirroring the MHS rule that ω-wide pulses are *not* filtered."""
        ts = traces_from(
            q=[(0.0, 0), (5.0, 1), (6.0, 0), (20.0, 1)]
        )  # the 1-level is held exactly 1.0
        report = analyze_hazards(ts, observable_nets=["q"], glitch_width=1.0)
        assert report.observable_glitches["q"] == 0
        assert report.externally_hazard_free

    def test_pulse_just_under_width_is_a_glitch(self):
        ts = traces_from(
            q=[(0.0, 0), (5.0, 1), (5.999, 0), (20.0, 1)]
        )
        report = analyze_hazards(ts, observable_nets=["q"], glitch_width=1.0)
        assert report.observable_glitches["q"] == 1
        assert not report.externally_hazard_free

    def test_initial_and_final_levels_never_glitch(self):
        """A short-lived initial level and the (unbounded) final level
        are excluded — only interior runt pulses count."""
        ts = traces_from(q=[(0.0, 0), (0.1, 1), (50.0, 0)])
        report = analyze_hazards(ts, observable_nets=["q"], glitch_width=1.0)
        assert report.observable_glitches["q"] == 0


class TestObservablePartition:
    def test_multiple_violations_all_counted(self):
        ts = traces_from(
            q=[(0.0, 0), (5.0, 1), (5.2, 0), (9.0, 1), (9.3, 0),
               (12.0, 1), (12.4, 0), (30.0, 1)]
        )
        report = analyze_hazards(ts, observable_nets=["q"], glitch_width=1.0)
        assert report.observable_glitches["q"] == 3
        assert report.observable_total == 3
        assert not report.externally_hazard_free

    def test_internal_glitches_are_tolerated(self):
        """The same pulse stream is a violation on an observable net but
        mere bookkeeping on an internal (SOP plane) net."""
        stream = [(0.0, 0), (5.0, 1), (5.2, 0), (9.0, 1), (9.3, 0), (30.0, 1)]
        ts = traces_from(set_plane=stream, q=[(0.0, 0), (10.0, 1)])
        report = analyze_hazards(
            ts, observable_nets=["q"], internal_nets=["set_plane"],
        )
        assert report.internal_glitches == {"set_plane": 2}
        assert report.internal_total == 2
        assert report.observable_glitches == {"q": 0}
        assert report.externally_hazard_free  # internal noise is fine

    def test_observable_wins_over_internal(self):
        """A net listed in both partitions is judged as observable."""
        stream = [(0.0, 0), (5.0, 1), (5.2, 0), (30.0, 1)]
        ts = traces_from(q=stream)
        report = analyze_hazards(
            ts, observable_nets=["q"], internal_nets=["q"],
        )
        assert report.observable_glitches == {"q": 1}
        assert "q" not in report.internal_glitches
        assert not report.externally_hazard_free

    def test_default_internal_universe_is_all_traced_nets(self):
        stream = [(0.0, 0), (5.0, 1), (5.2, 0), (30.0, 1)]
        ts = traces_from(noisy=stream, q=[(0.0, 0), (10.0, 1)])
        report = analyze_hazards(ts, observable_nets=["q"])
        assert report.internal_glitches == {"noisy": 1}
        assert report.observable_glitches == {"q": 0}
