"""End-to-end tests of the N-SHOT synthesis flow."""

import pytest

from repro.bench.circuits import figure1_sg, figure7a_sg, figure7b_sg
from repro.core import SynthesisError, analyze_initialization, synthesize
from repro.netlist import GateType
from repro.sg import SGBuilder


class TestSynthesize:
    def test_celem_structure(self, celem_sg):
        circuit = synthesize(celem_sg, name="celem")
        nl = circuit.netlist
        assert nl.validate() == []
        mhs = [g for g in nl.gates if g.type == GateType.MHSFF]
        assert len(mhs) == 1
        # dual rail present
        assert mhs[0].output == "c" and mhs[0].output_n == "c_n"
        assert nl.primary_inputs == ["a", "b"]
        assert nl.primary_outputs == ["c"]

    def test_one_flipflop_per_non_input(self, xyz_sg, or_element_sg):
        for sg in (xyz_sg, or_element_sg):
            circuit = synthesize(sg)
            mhs = [g for g in circuit.netlist.gates if g.type == GateType.MHSFF]
            assert len(mhs) == len(sg.non_inputs)

    def test_cover_semantics_on_reachable_states(self, celem_sg, xyz_sg, or_element_sg):
        """The minimized cover realizes Table 1 on every reachable state:
        SET=1 exactly on ER(+a) (ON) and never on ER(-a)/QR(-a) (OFF)."""
        for sg in (celem_sg, xyz_sg, or_element_sg):
            circuit = synthesize(sg)
            spec = circuit.spec
            for a in sg.non_inputs:
                sr = spec.regions[a]
                for kind, direction in (("set", 1), ("reset", -1)):
                    o = spec.output_index(a, kind)
                    for s in sr.union_states("ER", direction):
                        assert circuit.cover.contains_minterm(sg.code(s), o)
                    for s in sr.union_states("ER", -direction):
                        assert not circuit.cover.contains_minterm(sg.code(s), o)
                    for s in sr.union_states("QR", -direction):
                        assert not circuit.cover.contains_minterm(sg.code(s), o)

    def test_rejects_invalid_sg(self):
        with pytest.raises(SynthesisError):
            synthesize(figure1_sg())  # CSC violation

    def test_validation_skip_surfaces_downstream_error(self):
        # figure1 violates CSC: its ON and OFF region sets overlap on
        # shared codes, which the minimizer rejects — skipping SG
        # validation just moves the failure downstream
        from repro.logic import MinimizationError

        with pytest.raises(MinimizationError):
            synthesize(figure1_sg(), validate=False)

    def test_single_traversal_flag(self, celem_sg):
        assert synthesize(celem_sg).single_traversal
        assert not synthesize(figure7b_sg()).single_traversal

    def test_exact_method(self, handshake_sg):
        circuit = synthesize(handshake_sg, method="exact")
        assert circuit.method == "exact"
        assert circuit.netlist.validate() == []

    def test_exact_no_worse_cube_count(self, celem_sg):
        h = synthesize(celem_sg, method="espresso")
        e = synthesize(celem_sg, method="exact")
        assert len(e.cover) <= len(h.cover)

    def test_describe_smoke(self, celem_sg):
        text = synthesize(celem_sg).describe()
        assert "single traversal" in text
        assert "delay req" in text

    def test_stats_delay_granularity(self, celem_sg, or_element_sg):
        """Delays are whole numbers of 1.2 ns levels, as in Table 2."""
        for sg in (celem_sg, or_element_sg):
            d = synthesize(sg).stats().delay
            assert abs(d / 1.2 - round(d / 1.2)) < 1e-9


class TestHandshake:
    def test_minimal_circuit(self, handshake_sg):
        """+r → +y → -r → -y: set_y = r (after gating), reset_y = r'."""
        circuit = synthesize(handshake_sg, name="hs")
        # folded planes: exactly 2 ack gates + 1 MHS
        kinds = sorted(g.type.value for g in circuit.netlist.gates)
        assert kinds == ["and", "and", "mhsff"]
        s = circuit.stats()
        assert s.delay == pytest.approx(2.4)


class TestInitialization:
    def test_celem_auto(self, celem_sg):
        circuit = synthesize(celem_sg)
        c = celem_sg.signal_index("c")
        decision = circuit.initialization[c]
        assert decision.initial_value == 0
        assert not decision.explicit_reset_required

    def test_initial_inside_er_auto(self):
        # start inside ER(+y): r already 1 at s0
        b = SGBuilder(["r", "y"], ["r"])
        b.arc("10", "+y", "11")
        b.arc("11", "-r", "01")
        b.arc("01", "-y", "00")
        b.arc("00", "+r", "10")
        b.initial("10")
        sg = b.build()
        circuit = synthesize(sg)
        d = circuit.initialization[sg.signal_index("y")]
        assert d.region == "ER(+a)"
        assert not d.explicit_reset_required

    def test_explicit_reset_needed_when_dc_resolved_low(self, celem_sg):
        """Force the don't care at s0 to 0: the flip-flop then needs an
        explicit initialization term (Section IV-F case 2)."""
        from repro.core import derive_sop_spec
        from repro.logic import Cover, Cube

        spec = derive_sop_spec(celem_sg)
        c = celem_sg.signal_index("c")
        ro = spec.output_index(c, "reset")
        so = spec.output_index(c, "set")
        n = celem_sg.num_signals
        # hand-built cover: set = a b c', reset = a' b' c (minterms only:
        # reset(s0 = 000) = 0)
        cover = Cover(n, spec.num_outputs, [
            Cube.from_string("110", 1 << so),
            Cube.from_string("001", 1 << ro),
        ])
        decisions = analyze_initialization(spec, cover)
        assert decisions[c].explicit_reset_required

    def test_mhs_init_attr_matches_initial_code(self, or_element_sg):
        circuit = synthesize(or_element_sg)
        for g in circuit.netlist.gates:
            if g.type == GateType.MHSFF:
                sig = or_element_sg.signal_index(g.output)
                want = or_element_sg.value(or_element_sg.initial, sig)
                assert g.attrs["init"] == want
