"""Unit tests for covers and the compact minterm-cover constructor."""

import random

from hypothesis import given, strategies as st

from repro.logic import Cover, Cube
from repro.logic.cover import compact_minterm_cover


class TestConstruction:
    def test_empty_and_universe(self):
        assert Cover.empty(3).is_empty()
        u = Cover.universe(3, 2)
        assert u.evaluate(0b101) == 0b11

    def test_from_strings_single_output(self):
        c = Cover.from_strings(["1-", "01"])
        assert len(c) == 2
        assert c.contains_minterm(0b01)   # var0=1 matches "1-"
        assert c.contains_minterm(0b10)   # var0=0,var1=1 matches "01"
        assert not c.contains_minterm(0b00)

    def test_from_strings_with_outputs(self):
        c = Cover.from_strings(["1- 10", "-1 01"], num_outputs=2)
        assert c.contains_minterm(0b01, output=0)
        assert not c.contains_minterm(0b01, output=1)

    def test_from_minterms(self):
        c = Cover.from_minterms([0, 3], 2)
        assert c.contains_minterm(0) and c.contains_minterm(3)
        assert not c.contains_minterm(1)


class TestQueries:
    def test_evaluate_multi_output(self):
        c = Cover.empty(2, 2)
        c.add(Cube.from_string("1-", 0b01))
        c.add(Cube.from_string("-1", 0b10))
        assert c.evaluate(0b11) == 0b11
        assert c.evaluate(0b01) == 0b01
        assert c.evaluate(0b00) == 0

    def test_projection(self):
        c = Cover.empty(2, 2)
        c.add(Cube.from_string("1-", 0b11))
        c.add(Cube.from_string("01", 0b10))
        p0, p1 = c.projection(0), c.projection(1)
        assert len(p0) == 1 and len(p1) == 2

    def test_restrict_outputs(self):
        c = Cover.empty(1, 2)
        c.add(Cube.from_string("1", 0b11))
        c.add(Cube.from_string("0", 0b10))
        r = c.restrict_outputs(0b01)
        assert len(r) == 1

    def test_minterms(self):
        c = Cover.from_strings(["1-", "-1"])
        assert c.minterms() == {0b01, 0b10, 0b11}

    def test_supercube(self):
        c = Cover.from_strings(["10", "11"])
        assert c.supercube().input_string() == "1-"

    def test_cost(self):
        c = Cover.from_strings(["10", "1-"])
        assert c.cost() == (2, 3)


class TestRewrites:
    def test_single_cube_containment(self):
        c = Cover.from_strings(["1-", "10", "11"])
        r = c.single_cube_containment()
        assert len(r) == 1
        assert r.cubes[0].input_string() == "1-"

    def test_sccc_respects_outputs(self):
        c = Cover.empty(1, 2)
        c.add(Cube.from_string("1", 0b01))
        c.add(Cube.from_string("1", 0b11))
        r = c.single_cube_containment()
        assert len(r) == 1 and r.cubes[0].outputs == 0b11

    def test_drop_empty(self):
        c = Cover(2, 1, [Cube(2, 0), Cube.from_string("1-")])
        assert len(c.drop_empty()) == 1

    def test_cofactor(self):
        c = Cover.from_strings(["1-", "00"])
        cf = c.cofactor(Cube.from_string("1-"))
        assert len(cf) == 1  # "00" dropped (disjoint)


class TestUnateness:
    def test_unate_cover(self):
        c = Cover.from_strings(["1-", "11"])
        assert c.is_unate()

    def test_binate_cover(self):
        c = Cover.from_strings(["1-", "0-"])
        assert not c.is_unate()
        assert c.most_binate_var() == 0

    def test_most_binate_prefers_balanced(self):
        c = Cover.from_strings(["10", "01", "0-"])
        # var0: neg 2 / pos 1 ; var1: neg 1 / pos 1
        assert c.most_binate_var() in (0, 1)

    def test_var_usage(self):
        c = Cover.from_strings(["10", "0-"])
        assert c.var_usage(0) == (1, 1)
        assert c.var_usage(1) == (1, 0)


class TestCompactMintermCover:
    def test_empty(self):
        assert len(compact_minterm_cover(set(), 3)) == 0

    def test_full_space(self):
        c = compact_minterm_cover(set(range(8)), 3)
        assert len(c) == 1 and c.cubes[0].is_full_inputs()

    def test_half_space(self):
        c = compact_minterm_cover({m for m in range(8) if m & 1}, 3)
        assert len(c) == 1
        assert c.cubes[0].input_string() == "1--"

    @given(st.integers(1, 8), st.integers(0, 2**32 - 1))
    def test_exactness(self, n, seed):
        rng = random.Random(seed)
        ms = {m for m in range(1 << n) if rng.random() < 0.45}
        c = compact_minterm_cover(ms, n)
        got = {m for m in range(1 << n) if c.contains_minterm(m)}
        assert got == ms

    def test_compression_beats_minterm_list(self):
        ms = set(range(200))  # dense prefix of an 8-var space
        c = compact_minterm_cover(ms, 8)
        assert len(c) < len(ms) / 4
