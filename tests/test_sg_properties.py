"""Tests for CSC, semi-modularity, distributivity and validation."""

from repro.bench.circuits import figure1_csc_sg, figure1_sg
from repro.sg import (
    SGBuilder,
    check_consistency,
    csc_report,
    csc_violations,
    detonant_states,
    insert_state_signal,
    is_distributive,
    is_distributive_for,
    is_semimodular_with_input_choices,
    non_distributive_signals,
    satisfies_csc,
    semimodularity_violations,
    usc_violations,
    validate_for_synthesis,
)


class TestConsistency:
    def test_valid_graph_clean(self, celem_sg):
        assert check_consistency(celem_sg) == []

    def test_checker_detects_corruption(self, celem_sg):
        # sabotage a state's code behind the builder's back
        s = next(iter(celem_sg.states()))
        celem_sg._code[s] ^= 0b111
        assert check_consistency(celem_sg)


class TestCsc:
    def test_celem_satisfies(self, celem_sg):
        assert satisfies_csc(celem_sg)
        assert csc_violations(celem_sg) == []

    def test_figure1_violates(self):
        sg = figure1_sg()
        assert not satisfies_csc(sg)
        report = csc_report(sg)
        assert len(report) == 4
        # conflicting pairs differ exactly in the excitation of c
        c = sg.signal_index("c")
        for conflict in report:
            assert (c in conflict.excited_a) != (c in conflict.excited_b)
            assert "share code" in conflict.describe(sg)

    def test_usc_strictly_stronger_than_csc(self):
        # figure1_csc shares codes between rising and falling phases
        # (101 and 011) with identical non-input excitation: CSC holds
        # while USC does not — exactly the gap between the properties.
        sg = figure1_csc_sg()
        assert satisfies_csc(sg)
        assert len(usc_violations(sg)) == 2

    def test_usc_detects_duplicate_codes(self):
        b = SGBuilder(["a", "b"], ["a", "b"])
        # two behaviourally identical-code states via tags
        b.arc("00/x", "+a", "10/x")
        b.arc("10/x", "-a", "00/y")
        b.arc("00/y", "+b", "01/y")
        b.arc("01/y", "-b", "00/x")
        b.initial("00/x")
        sg = b.build()
        assert len(usc_violations(sg)) == 1
        # same excited-non-input sets (none): CSC still fine
        assert satisfies_csc(sg)


class TestSemimodularity:
    def test_celem_semimodular(self, celem_sg):
        assert is_semimodular_with_input_choices(celem_sg)

    def test_input_choice_allowed(self):
        # two inputs in free choice: allowed to disable each other
        b = SGBuilder(["r1", "r2", "g"], ["r1", "r2"])
        b.arc("000", "+r1", "100")
        b.arc("000", "+r2", "010")
        b.arc("100", "+g", "101")
        b.arc("010", "+g", "011")
        b.arc("101", "-r1", "001")
        b.arc("011", "-r2", "001")
        b.arc("001", "-g", "000")
        b.initial("000")
        sg = b.build()
        assert is_semimodular_with_input_choices(sg)

    def test_output_disabling_detected(self):
        # +g enabled, then +r2 disables it: a semi-modularity violation
        b = SGBuilder(["r1", "r2", "g"], ["r1", "r2"])
        b.arc("100", "+g", "101")       # g excited at 100
        b.arc("100", "+r2", "110")      # ...but +r2 leads to a state
        b.arc("110", "-r1", "010")      # where +g is no longer enabled
        b.arc("010", "-r2", "000")
        b.arc("000", "+r1", "100")
        b.arc("101", "-g", "100")
        b.initial("100")
        sg = b.build()
        violations = semimodularity_violations(sg)
        assert violations
        assert any(v.kind == "disabled" for v in violations)

    def test_no_diamond_detected(self):
        # both orders exist but do not commute to the same state
        b = SGBuilder(["a", "b", "x"], ["a", "b"])
        b.arc("000", "+a", "100")
        b.arc("000", "+x", "001")
        b.arc("100", "+x", "101/alt")
        b.arc("001", "+a", "101/main")
        b.arc("101/alt", "-a", "001/2")
        b.arc("101/main", "-a", "001/2")
        b.arc("001/2", "-x", "000/2")
        b.arc("000/2", "+b", "010")
        b.arc("010", "-b", "000")
        b.initial("000")
        sg = b.build()
        violations = semimodularity_violations(sg)
        assert any(v.kind == "no-diamond" for v in violations)


class TestDistributivity:
    def test_celem_distributive(self, celem_sg):
        assert is_distributive(celem_sg)
        assert non_distributive_signals(celem_sg) == []

    def test_or_element_not_distributive(self, or_element_sg):
        c = or_element_sg.signal_index("c")
        assert not is_distributive_for(or_element_sg, c)
        dets = detonant_states(or_element_sg, c)
        labels = {or_element_sg.state_label(d.state) for d in dets}
        assert "0*0*0" in labels

    def test_figure1_detonant_both_phases(self):
        sg = figure1_sg()
        c = sg.signal_index("c")
        labels = {sg.state_label(d.state) for d in detonant_states(sg, c)}
        assert labels == {"0*0*0", "1*1*1"}


class TestValidateForSynthesis:
    def test_good(self, celem_sg):
        rep = validate_for_synthesis(celem_sg)
        assert rep.ok
        assert "valid" in rep.summary()

    def test_bad(self):
        rep = validate_for_synthesis(figure1_sg())
        assert not rep.ok
        assert "CSC" in rep.summary()


class TestInsertStateSignal:
    def test_repair_restores_csc(self):
        sg = figure1_sg()
        high = {s for s in sg.states() if isinstance(s, str) and s.endswith("/f")}
        high |= {"111/r"}
        repaired = insert_state_signal(sg, high, name="z")
        assert satisfies_csc(repaired)
        assert is_semimodular_with_input_choices(repaired)
        assert check_consistency(repaired) == []

    def test_projection_preserved(self):
        sg = figure1_sg()
        high = {s for s in sg.states() if isinstance(s, str) and s.endswith("/f")}
        high |= {"111/r"}
        repaired = insert_state_signal(sg, high, name="z")
        # the old signals' codes still change one at a time except for z
        z = repaired.signal_index("z")
        for s in repaired.states():
            for t, d in repaired.successors(s):
                if t.signal != z:
                    old_bits = (1 << z) - 1
                    assert bin((repaired.code(s) ^ repaired.code(d)) & old_bits).count("1") == 1

    def test_name_collision_rejected(self):
        sg = figure1_sg()
        import pytest
        from repro.sg import SGError

        with pytest.raises(SGError):
            insert_state_signal(sg, set(), name="c")

    def test_auto_name(self):
        sg = figure1_sg()
        out = insert_state_signal(sg, {"111/r"})
        assert "csc0" in out.signals
