"""Fault injection: the verification oracle is not vacuous.

Hazard-freeness verification passing on every synthesized circuit is
only meaningful if the checker *fails* on broken ones.  These tests
mutate correct N-SHOT netlists — stuck-at nets, swapped set/reset,
inverted literals, deleted acknowledgement gating — and assert the
closed-loop oracle reports violations (conformance, progress, or MHS
drive conflicts) on at least one seed.
"""

import pytest

from repro.core import synthesize
from repro.netlist import Gate, GateType, Netlist, Pin
from repro.sim import SGEnvironment, SimConfig, Simulator
from repro.stg import elaborate, parse_g
from tests.conftest import C_ELEMENT_G


def rebuild(netlist: Netlist, mutate) -> Netlist:
    """Copy a netlist, applying ``mutate(gate) -> Gate|None`` per gate."""
    nl = Netlist(netlist.name + "_faulty")
    for n in netlist.primary_inputs:
        nl.add_input(n)
    for n in netlist.primary_outputs:
        nl.add_output(n)
    for g in netlist.gates:
        g2 = Gate(
            g.name,
            g.type,
            [Pin(p.net, p.inverted) for p in g.inputs],
            g.output,
            output_n=g.output_n,
            delay=g.delay,
            attrs=dict(g.attrs),
        )
        g2 = mutate(g2)
        if g2 is not None:
            nl.add(g2)
    return nl


def runs_clean(nl: Netlist, sg, seeds=range(8)) -> bool:
    """True when every seed's closed-loop run is fully conformant."""
    for seed in seeds:
        sim = Simulator(nl, SimConfig(jitter=0.3, seed=seed))
        env = SGEnvironment(sg, sim, seed=seed ^ 0x77)
        report = env.run(max_time=1200.0, max_transitions=80)
        if not report.ok:
            return False
        if report.transitions_observed == 0:
            return False  # livelock / dead circuit
    return True


@pytest.fixture()
def golden():
    sg = elaborate(parse_g(C_ELEMENT_G))
    circuit = synthesize(sg, name="celem", delay_spread=0.3)
    return sg, circuit


class TestOracleSensitivity:
    def test_golden_is_clean(self, golden):
        sg, circuit = golden
        assert runs_clean(circuit.netlist, sg)

    def test_swapped_set_reset_detected(self, golden):
        sg, circuit = golden

        def swap(g):
            if g.type == GateType.MHSFF:
                g.inputs = [g.inputs[1], g.inputs[0]]
            return g

        assert not runs_clean(rebuild(circuit.netlist, swap), sg)

    def test_inverted_literal_detected(self, golden):
        sg, circuit = golden

        def flip(g):
            if g.type == GateType.AND and g.inputs:
                p = g.inputs[0]
                g.inputs[0] = Pin(p.net, not p.inverted)
            return g

        assert not runs_clean(rebuild(circuit.netlist, flip), sg)

    def test_stuck_at_zero_set_plane_detected(self, golden):
        """Replace the set plane with a constant 0: the output can never
        rise — a progress failure."""
        sg, circuit = golden

        def kill_set(g):
            if g.name.startswith("ack_set"):
                return Gate(g.name, GateType.CONST, [], g.output, attrs={"value": 0})
            return g

        assert not runs_clean(rebuild(circuit.netlist, kill_set), sg)

    def test_stuck_at_one_reset_detected(self, golden):
        sg, circuit = golden

        def stuck_reset(g):
            if g.name.startswith("ack_reset"):
                return Gate(g.name, GateType.CONST, [], g.output, attrs={"value": 1})
            return g

        assert not runs_clean(rebuild(circuit.netlist, stuck_reset), sg)

    def test_missing_delay_compensation_detected(self):
        """The Section IV-C trespassing-pulse failure, reproduced.

        ``pmcm2`` has an asymmetric plane structure (2-level set vs
        1-level reset): under ±40% delay bounds Equation (1) requires a
        local delay line.  A circuit designed for the *nominal* bound
        (no delay line) and operated under ±40% jitter lets a stale
        set-plane pulse cross the acknowledgement window and misfire the
        output — which the oracle must catch.  The properly compensated
        circuit passes under identical seeds.
        """
        from repro.bench.circuits import build_nondistributive

        sg = build_nondistributive("pmcm2")
        nominal = synthesize(sg, name="pmcm2", delay_spread=0.0)
        compensated = synthesize(sg, name="pmcm2", delay_spread=0.4)
        assert not nominal.compensation_required
        assert compensated.compensation_required

        def verdicts(nl):
            out = []
            for seed in range(10):
                sim = Simulator(nl, SimConfig(jitter=0.4, seed=seed))
                env = SGEnvironment(sg, sim, seed=seed ^ 0x5EED)
                report = env.run(max_time=2500.0, max_transitions=80)
                out.append(report.ok)
            return out

        assert not all(verdicts(nominal.netlist)), (
            "operating a nominally-designed circuit beyond its delay "
            "bounds must eventually misfire"
        )
        assert all(verdicts(compensated.netlist))
