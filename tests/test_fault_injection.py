"""Fault injection: the verification oracle is not vacuous.

Hazard-freeness verification passing on every synthesized circuit is
only meaningful if the checker *fails* on broken ones.  These tests
drive the fault models of :mod:`repro.faults` — stuck-at nets, swapped
set/reset, inverted literals, deleted acknowledgement gating, missing
Equation (1) compensation — through the closed-loop oracle and assert
it reports violations on at least one seed, while the golden circuit
stays clean under identical seeds.
"""

import pytest

from repro.core import run_oracle, synthesize
from repro.faults import (
    DelayViolationFault,
    FaultModel,
    InvertedLiteralFault,
    StuckAtFault,
    SwappedSetResetFault,
)
from repro.netlist import GateType
from repro.sim import SimConfig
from repro.stg import elaborate, parse_g
from tests.conftest import C_ELEMENT_G


def verdicts(fault: FaultModel, sg, netlist, *, seeds=range(8), jitter=0.3,
             max_time=1200.0):
    """Per-seed oracle verdicts for a fault applied to a golden netlist."""
    faulty = fault.apply_netlist(netlist)
    out = []
    for seed in seeds:
        config = fault.apply_config(SimConfig(jitter=jitter, seed=seed))
        out.append(
            run_oracle(
                faulty, sg, config, max_time=max_time,
                max_transitions=80, arm=fault.arm,
            )
        )
    return out


def runs_clean(fault: FaultModel, sg, netlist, **kw) -> bool:
    """True when every seed's closed-loop run is fully conformant."""
    return all(
        v.status == "clean" and v.transitions > 0
        for v in verdicts(fault, sg, netlist, **kw)
    )


@pytest.fixture()
def golden():
    sg = elaborate(parse_g(C_ELEMENT_G))
    circuit = synthesize(sg, name="celem", delay_spread=0.3)
    return sg, circuit


class TestOracleSensitivity:
    def test_golden_is_clean(self, golden):
        sg, circuit = golden
        assert runs_clean(FaultModel(), sg, circuit.netlist)

    def test_swapped_set_reset_detected(self, golden):
        sg, circuit = golden
        ff = next(
            g for g in circuit.netlist.gates if g.type == GateType.MHSFF
        )
        fault = SwappedSetResetFault(ff.name)
        assert not runs_clean(fault, sg, circuit.netlist)

    def test_inverted_literal_detected(self, golden):
        sg, circuit = golden
        gate = next(
            g
            for g in circuit.netlist.gates
            if g.type == GateType.AND and g.inputs
        )
        fault = InvertedLiteralFault(gate.name, 0)
        assert not runs_clean(fault, sg, circuit.netlist)

    def test_stuck_at_zero_set_plane_detected(self, golden):
        """Set plane tied to constant 0: the output can never rise — a
        progress failure."""
        sg, circuit = golden
        gate = next(
            g for g in circuit.netlist.gates if g.name.startswith("ack_set")
        )
        fault = StuckAtFault(gate.output, 0)
        assert not runs_clean(fault, sg, circuit.netlist)

    def test_stuck_at_one_reset_detected(self, golden):
        sg, circuit = golden
        gate = next(
            g for g in circuit.netlist.gates if g.name.startswith("ack_reset")
        )
        fault = StuckAtFault(gate.output, 1)
        assert not runs_clean(fault, sg, circuit.netlist)

    def test_missing_delay_compensation_detected(self):
        """The Section IV-C trespassing-pulse failure, reproduced.

        ``pmcm2`` has an asymmetric plane structure (2-level set vs
        1-level reset): under ±40% delay bounds Equation (1) requires a
        local delay line.  ``DelayViolationFault(None, 0.0)`` strips the
        compensation wholesale; operated under ±40% jitter a stale
        set-plane pulse crosses the acknowledgement window and misfires
        the output — which the oracle must catch.  The properly
        compensated circuit passes under identical seeds.
        """
        from repro.bench.circuits import build_nondistributive

        sg = build_nondistributive("pmcm2")
        compensated = synthesize(sg, name="pmcm2", delay_spread=0.4)
        assert compensated.compensation_required

        kw = dict(seeds=range(10), jitter=0.4, max_time=2500.0)
        fault = DelayViolationFault(None, 0.0)
        assert not runs_clean(fault, sg, compensated.netlist, **kw), (
            "operating a circuit with its Equation (1) compensation "
            "stripped must eventually misfire"
        )
        assert runs_clean(FaultModel(), sg, compensated.netlist, **kw)

    def test_fault_transforms_are_pure(self, golden):
        """Applying a fault never mutates the golden netlist."""
        sg, circuit = golden
        before = [
            (g.name, [(p.net, p.inverted) for p in g.inputs], g.delay)
            for g in circuit.netlist.gates
        ]
        ff = next(
            g for g in circuit.netlist.gates if g.type == GateType.MHSFF
        )
        SwappedSetResetFault(ff.name).apply_netlist(circuit.netlist)
        gate = next(
            g
            for g in circuit.netlist.gates
            if g.type == GateType.AND and g.inputs
        )
        InvertedLiteralFault(gate.name, 0).apply_netlist(circuit.netlist)
        StuckAtFault(gate.output, 0).apply_netlist(circuit.netlist)
        after = [
            (g.name, [(p.net, p.inverted) for p in g.inputs], g.delay)
            for g in circuit.netlist.gates
        ]
        assert before == after
