"""Cross-cutting tests for smaller surfaces: writers, reports, repr."""

import pytest

from repro.baselines import synthesize_beerel, synthesize_complex_gate
from repro.core import format_results_table, synthesize
from repro.netlist import (
    DEFAULT_LIBRARY,
    Gate,
    GateType,
    Netlist,
    Pin,
    write_verilog,
)
from repro.sg import sg_from_trace_spec
from repro.stg import parse_g, write_g
from tests.conftest import C_ELEMENT_G


class TestVerilogCells:
    def test_cel_and_rslatch_instantiation(self):
        nl = Netlist("cells")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_output("q1")
        nl.add_output("q2")
        nl.add(Gate("c1", GateType.CEL, [Pin("a"), Pin("b")], "q1"))
        nl.add(Gate("r1", GateType.RSLATCH, [Pin("a"), Pin("b")], "q2", output_n="q2n"))
        text = write_verilog(nl)
        assert "CEL c1(" in text
        assert "RSLATCH r1(" in text
        assert "module CEL" in text and "module RSLATCH" in text

    def test_delay_emits_hash_delay(self):
        nl = Netlist("d")
        nl.add_input("a")
        nl.add_output("y")
        nl.add(Gate("dl", GateType.DELAY, [Pin("a")], "y", delay=2.4))
        assert "#2.4" in write_verilog(nl)

    def test_const_driver(self):
        nl = Netlist("k")
        nl.add_output("y")
        nl.add(Gate("k0", GateType.CONST, [], "y", attrs={"value": 1}))
        assert "1'b1" in write_verilog(nl)

    def test_baseline_netlists_serialize(self, celem_sg):
        for res in (synthesize_beerel(celem_sg), synthesize_complex_gate(celem_sg)):
            text = write_verilog(res.netlist)
            assert "module" in text


class TestReportFormatting:
    def test_results_table(self):
        rows = [("chu133", 22, "488/6.0", "560/4.8", "464/3.6")]
        text = format_results_table(rows)
        assert "chu133" in text
        assert "ASSASSIN" in text

    def test_circuit_repr_smoke(self, celem_sg):
        circuit = synthesize(celem_sg)
        assert "N-SHOT" in circuit.describe()
        assert repr(circuit.netlist)
        assert repr(celem_sg)


class TestStgWriter:
    def test_write_g_with_initial_values(self):
        stg = parse_g(C_ELEMENT_G)
        stg.set_initial_value("a", 0)
        text = write_g(stg)
        assert ".initial a=0" in text
        again = parse_g(text)
        assert again.initial_values["a"] == 0

    def test_write_g_explicit_places(self):
        text = """
        .model t
        .inputs a
        .outputs b
        .graph
        a+ p0
        p0 b+
        b+ a-
        a- b-
        b- a+
        .marking { <b-,a+> }
        .end
        """
        stg = parse_g(text)
        out = write_g(stg)
        assert "p0" in out
        assert parse_g(out).place_pre.keys() >= {"p0"}


class TestTraceSpecBuilder:
    def test_multi_signal_cycle(self):
        sg = sg_from_trace_spec(
            ["a", "b", "c"],
            ["a"],
            [
                "000 +a", "100 +b", "110 +c", "111 -a",
                "011 -b", "001 -c",
            ],
        )
        assert sg.num_states == 6
        from repro.sg import validate_for_synthesis

        assert validate_for_synthesis(sg).ok

    def test_explicit_initial(self):
        sg = sg_from_trace_spec(
            ["a"], ["a"], ["0 +a", "1 -a"], initial="1"
        )
        assert sg.initial == "1"


class TestLibraryEdgeCases:
    def test_degenerate_single_input_gate(self):
        g = Gate("g", GateType.AND, [Pin("a")], "o")
        assert DEFAULT_LIBRARY.gate_area(g) == 16.0

    def test_unknown_type_rejected(self):
        class Fake:
            type = "nope"
            inputs = []

        with pytest.raises(Exception):
            DEFAULT_LIBRARY.gate_area(Fake())  # type: ignore[arg-type]

    def test_input_and_const_are_free(self):
        for t in (GateType.INPUT, GateType.CONST):
            g = Gate("g", t, [], "o")
            assert DEFAULT_LIBRARY.gate_area(g) == 0.0
            assert DEFAULT_LIBRARY.gate_delay(g) == 0.0


class TestBeerelCovers:
    def test_monotonous_cubes_stay_inside_on_dc(self, celem_sg):
        """SYN cubes never touch foreign regions: each is inside its
        ER ∪ QR ∪ unreachable."""
        from repro.sg import signal_regions

        res = synthesize_beerel(celem_sg)
        c = celem_sg.signal_index("c")
        sr = signal_regions(celem_sg, c)
        reachable = {celem_sg.code(s) for s in celem_sg.states()}
        for kind, direction in (("set", 1), ("reset", -1)):
            allowed = {
                celem_sg.code(s)
                for s in sr.union_states("ER", direction)
                | sr.union_states("QR", direction)
            }
            for cube in res.covers[(c, kind)].cubes:
                for m in cube.minterms():
                    if m in reachable:
                        assert m in allowed
