"""Hazard telemetry: pulse classification, ω-margin, delay slack.

The seeded-pulse tests are the Theorem 2 threshold measured from the
outside: a pulse injected on an MHS master input below ω must be
recorded as *filtered* with the right margin, one above ω as
*surviving* — and the model's own absorption counter must agree.
"""

import pytest

from repro.core import synthesize, verify_hazard_freeness
from repro.obs.telemetry import TELEMETRY_SCHEMA, HazardTelemetry
from repro.sim import SimConfig, Simulator

OMEGA = SimConfig().mhs.omega  # 0.4


@pytest.fixture()
def celem_circuit(celem_sg):
    return synthesize(celem_sg, name="celem")


def _armed_sim(circuit, tele):
    sim = Simulator(circuit.netlist, SimConfig(seed=0))
    tele.attach(sim)
    sim.initialize({"a": 0, "b": 0})
    return sim


class TestSeededPulses:
    def test_narrow_pulse_filtered_with_margin(self, celem_circuit):
        tele = HazardTelemetry.for_circuit(celem_circuit)
        sim = _armed_sim(celem_circuit, tele)
        width = 0.2
        assert width < OMEGA
        sim.inject("set_c_g1", 1, at=5.0)
        sim.inject("set_c_g1", 0, at=5.0 + width)
        sim.run(until=20.0)
        st = tele.signals["c"]
        assert st.filtered_widths == [pytest.approx(width)]
        assert st.surviving_widths == []
        assert st.omega_margin["filtered"] == pytest.approx(OMEGA - width)
        assert st.min_omega_margin == pytest.approx(OMEGA - width)
        # the model's absorption counter agrees with the measurement
        assert tele.totals()["mhs_filtered"] == 1
        assert sim.value("c") == 0  # the runt never committed

    def test_wide_pulse_survives_with_margin(self, celem_circuit):
        tele = HazardTelemetry.for_circuit(celem_circuit)
        sim = _armed_sim(celem_circuit, tele)
        width = 0.6
        assert width > OMEGA
        sim.inject("set_c_g1", 1, at=5.0)
        sim.inject("set_c_g1", 0, at=5.0 + width)
        sim.run(until=30.0)
        st = tele.signals["c"]
        assert st.filtered_widths == []
        assert pytest.approx(width) == min(st.surviving_widths)
        assert st.omega_margin["surviving"] == pytest.approx(width - OMEGA)
        assert st.min_omega_margin == pytest.approx(width - OMEGA)
        assert tele.totals()["mhs_filtered"] == 0


class TestForCircuit:
    def test_structure(self, celem_circuit):
        tele = HazardTelemetry.for_circuit(celem_circuit)
        assert set(tele.signals) == {"c"}
        st = tele.signals["c"]
        assert st.mhs_gate == "mhs_c"
        # celem's Equation (1) bound is negative: no compensation
        assert st.static_bound == pytest.approx(-1.2)
        assert st.t_del == 0.0
        assert st.static_slack == pytest.approx(1.2)

    def test_totals_empty_before_runs(self, celem_circuit):
        t = HazardTelemetry.for_circuit(celem_circuit).totals()
        assert t["pulses"] == 0
        assert t["min_omega_margin"] is None
        assert t["min_delay_slack"] is None


class TestClosedLoop:
    def test_verify_attaches_and_summarizes(self, celem_circuit):
        tele = HazardTelemetry.for_circuit(celem_circuit)
        summary = verify_hazard_freeness(
            celem_circuit, runs=2, telemetry=tele, keep_traces=True
        )
        assert summary.ok
        block = summary.telemetry
        assert block["schema"] == TELEMETRY_SCHEMA
        assert block["runs"] == 2
        assert "c" in block["signals"]
        totals = block["totals"]
        # real traversals: wide set/reset pulses, all surviving
        assert totals["surviving"] > 0
        assert totals["min_omega_margin"] > 0
        # the enable rails never open onto an excited plane
        assert totals["min_delay_slack"] > 0
        assert totals["region_glitches"] == 0
        # captured traces include the internal SOP nets
        assert "set_c_g1" in summary.traces
        assert summary.traces["c"].num_transitions() > 0

    def test_render_text(self, celem_circuit):
        tele = HazardTelemetry.for_circuit(celem_circuit)
        verify_hazard_freeness(celem_circuit, runs=1, telemetry=tele)
        text = tele.render_text()
        assert "ω-margin" in text
        assert "delay slack" in text
        assert "mhs_pulses_filtered" in text

    def test_no_collection_without_request(self, celem_circuit):
        summary = verify_hazard_freeness(celem_circuit, runs=1)
        assert summary.telemetry is None
        assert summary.traces is None
