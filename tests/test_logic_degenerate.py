"""Degenerate cube-algebra cases: zero-variable spaces and empty covers.

The certifier discharges obligations against covers exactly as the
architecture lowered them, including planes that degenerate to CONST-0
(empty column) or CONST-1 (universal cube) gates.  These regression
tests pin the algebra's behaviour on those edges: the empty cover is
constant 0 *even over zero variables*, a non-empty zero-variable cube
is the universal cube, and complement/tautology/sharp round-trip
through both.
"""

from repro.logic.complement import complement, complement_cube, cube_sharp
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.logic.tautology import (
    cover_covers_cube_multi,
    covers_cover,
    covers_cube,
    is_tautology,
)


class TestZeroVariableSpace:
    def test_empty_cover_is_not_tautology(self):
        # the zero-variable space has one minterm; the empty cover
        # (constant 0) does not cover it
        assert not is_tautology(Cover.empty(0, 1))

    def test_full_cube_is_tautology(self):
        assert is_tautology(Cover(0, 1, [Cube.full(0)]))

    def test_universe_is_tautology(self):
        assert is_tautology(Cover.universe(0, 1))

    def test_complement_of_empty_is_universe(self):
        comp = complement(Cover.empty(0, 1))
        assert is_tautology(comp)
        assert comp.contains_minterm(0)

    def test_complement_of_universe_is_empty(self):
        comp = complement(Cover.universe(0, 1))
        assert not is_tautology(comp)
        assert not comp.contains_minterm(0)

    def test_double_complement_round_trip(self):
        assert is_tautology(complement(complement(Cover.universe(0, 1))))
        assert not is_tautology(complement(complement(Cover.empty(0, 1))))

    def test_complement_cube_of_full_cube_is_empty(self):
        # a cube with no bound literals is universal; its De Morgan
        # complement has no terms (constant 0)
        assert complement_cube(Cube.full(0)).is_empty()

    def test_covers_cube(self):
        full = Cube.full(0)
        assert covers_cube(Cover.universe(0, 1), full)
        assert not covers_cube(Cover.empty(0, 1), full)

    def test_sharp_against_empty_cover_keeps_cube(self):
        out = cube_sharp(Cube.full(0), Cover.empty(0, 1))
        assert out.contains_minterm(0)

    def test_sharp_against_universe_is_empty(self):
        assert cube_sharp(Cube.full(0), Cover.universe(0, 1)).is_empty()


class TestEmptyCoverPositiveArity:
    def test_empty_cover_is_not_tautology(self):
        assert not is_tautology(Cover.empty(3, 1))

    def test_cover_of_empty_cubes_is_not_tautology(self):
        # rows that are themselves empty cubes contribute nothing
        empty_cube = Cube.from_string("1-0").intersect(Cube.from_string("0-0"))
        assert empty_cube is None
        raised = Cube.from_string("10")
        dropped = Cover(2, 1, [raised]).drop_empty()
        assert is_tautology(complement(dropped)) is False

    def test_complement_of_empty_is_universe(self):
        comp = complement(Cover.empty(2, 1))
        assert len(comp) == 1
        assert is_tautology(comp)

    def test_empty_cover_covers_empty_cube_only(self):
        empty = Cover.empty(2, 1)
        assert not covers_cube(empty, Cube.full(2))
        # the empty cube is vacuously covered (it has no minterms)
        assert covers_cube(empty, Cube(2, 0, 0))

    def test_multi_output_empty_column(self):
        # a cube asserting an output whose column is empty is uncovered
        cover = Cover.empty(2, 2)
        probe = Cube.from_string("1-", 0b10)
        assert not cover_covers_cube_multi(cover, probe)
        # ... but a cube asserting *no* outputs is vacuously covered
        silent = Cube.from_string("1-", 0b00)
        assert cover_covers_cube_multi(cover, silent)

    def test_covers_cover_empty_small(self):
        # every cover covers the empty cover
        assert covers_cover(Cover.empty(2, 1), Cover.empty(2, 1))
        assert covers_cover(Cover.universe(2, 1), Cover.empty(2, 1))
