"""Edge cases of the SG environment and in-circuit delay lines."""

import pytest

from repro.core import synthesize
from repro.netlist import Gate, GateType, Netlist, Pin
from repro.sg import SGBuilder
from repro.sim import SGEnvironment, SimConfig, Simulator


def choice_sg():
    """Free input choice: the environment picks r1 or r2, never both."""
    b = SGBuilder(["r1", "r2", "g"], ["r1", "r2"])
    b.arc("000", "+r1", "100")
    b.arc("000", "+r2", "010")
    b.arc("100", "+g", "101")
    b.arc("010", "+g", "011")
    b.arc("101", "-r1", "001")
    b.arc("011", "-r2", "001")
    b.arc("001", "-g", "000")
    b.initial("000")
    return b.build()


class TestInputChoice:
    def test_environment_resolves_choices(self):
        sg = choice_sg()
        circuit = synthesize(sg, name="choice", delay_spread=0.45)
        sim = Simulator(circuit.netlist, SimConfig(jitter=0.45, seed=5))
        env = SGEnvironment(sg, sim, seed=5)
        report = env.run(max_time=2000.0, max_transitions=60)
        assert report.ok, report.conformance_errors[:2]
        # the mutually exclusive requests never coexist
        r1, r2 = sim.traces.get("r1"), sim.traces.get("r2")
        assert r1 is not None and r2 is not None
        for t, v in r1.changes:
            if v == 1:
                assert r2.value_at(t) == 0

    def test_both_branches_eventually_taken(self):
        sg = choice_sg()
        circuit = synthesize(sg, name="choice", delay_spread=0.45)
        taken = set()
        for seed in range(6):
            sim = Simulator(circuit.netlist, SimConfig(jitter=0.45, seed=seed))
            env = SGEnvironment(sg, sim, seed=seed)
            env.run(max_time=800.0, max_transitions=30)
            for net in ("r1", "r2"):
                w = sim.traces.get(net)
                if w is not None and w.num_transitions() > 0:
                    taken.add(net)
        assert taken == {"r1", "r2"}


class TestEnvironmentBudgets:
    def test_max_transitions_respected(self, handshake_sg):
        circuit = synthesize(handshake_sg)
        sim = Simulator(circuit.netlist)
        env = SGEnvironment(handshake_sg, sim, seed=1)
        report = env.run(max_time=1e6, max_transitions=12)
        assert report.transitions_observed == 12

    def test_max_time_respected(self, handshake_sg):
        circuit = synthesize(handshake_sg)
        sim = Simulator(circuit.netlist)
        env = SGEnvironment(handshake_sg, sim, seed=1, input_delay=(50.0, 60.0))
        report = env.run(max_time=200.0, max_transitions=10**6)
        assert report.final_time <= 260.0

    def test_report_counts_inputs(self, handshake_sg):
        circuit = synthesize(handshake_sg)
        sim = Simulator(circuit.netlist)
        env = SGEnvironment(handshake_sg, sim, seed=2)
        report = env.run(max_time=2000.0, max_transitions=20)
        # the handshake alternates one input per output transition
        assert report.inputs_fired >= report.transitions_observed - 1


class TestDelayLineInCircuit:
    def test_delay_line_delays(self):
        nl = Netlist("dl")
        nl.add_input("a")
        nl.add_output("y")
        nl.add(Gate("d", GateType.DELAY, [Pin("a")], "y", delay=3.6))
        sim = Simulator(nl)
        sim.initialize({"a": 0})
        sim.drive("a", 1, at=1.0)
        sim.run(10.0)
        [(t, v)] = sim.traces["y"].transitions()
        assert t == pytest.approx(4.6)
        assert v == 1

    def test_delay_line_not_jittered(self):
        nl = Netlist("dl")
        nl.add_input("a")
        nl.add_output("y")
        nl.add(Gate("d", GateType.DELAY, [Pin("a")], "y", delay=2.4))
        for seed in range(3):
            sim = Simulator(nl, SimConfig(jitter=0.5, seed=seed))
            assert sim._delay["d"] == pytest.approx(2.4)

    def test_compensated_circuit_still_conformant(self, celem_sg):
        """A circuit designed for ±90% bounds carries delay lines and
        still verifies under that jitter."""
        from repro.core import verify_hazard_freeness
        from repro.bench.circuits import figure1_csc_sg

        sg = figure1_csc_sg()
        circuit = synthesize(sg, name="comp", delay_spread=0.9)
        if circuit.compensation_required:
            delays = [g for g in circuit.netlist.gates if g.type == GateType.DELAY]
            assert delays
        summary = verify_hazard_freeness(circuit, runs=3, max_transitions=60)
        assert summary.ok


class TestCElementGate:
    def test_cel_waits_for_agreement(self):
        nl = Netlist("cel")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_output("q")
        nl.add(Gate("c", GateType.CEL, [Pin("a"), Pin("b")], "q"))
        sim = Simulator(nl)
        sim.initialize({"a": 0, "b": 0})
        sim.drive("a", 1, at=1.0)
        sim.run(10.0)
        assert sim.value("q") == 0          # only one input high
        sim.drive("b", 1, at=11.0)
        sim.run(20.0)
        assert sim.value("q") == 1          # agreement reached
        sim.drive("a", 0, at=21.0)
        sim.run(30.0)
        assert sim.value("q") == 1          # holds until both low
        sim.drive("b", 0, at=31.0)
        sim.run(40.0)
        assert sim.value("q") == 0
