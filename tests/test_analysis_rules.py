"""Per-rule tests: a clean pass on the paper suite plus one seeded
violation per registered rule id.

Every rule in the default registry must be demonstrably triggerable —
the fixtures here are the proof — and must stay silent on the paper's
own benchmark circuits (the C-element being the canonical clean spec).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    LintContext,
    Severity,
    analyze,
    default_registry,
    run_rules,
)
from repro.bench import (
    DISTRIBUTIVE_BENCHMARKS,
    NONDISTRIBUTIVE_BENCHMARKS,
    sg_of,
)
from repro.bench.circuits import figure1_csc_sg, figure1_sg, figure7b_sg
from repro.core.sop_derivation import derive_sop_spec
from repro.logic import Cover, Cube
from repro.netlist.gates import Gate, GateType, Pin
from repro.netlist.netlist import Netlist
from repro.sg import SGBuilder

ALL_RULE_IDS = [
    "SG001",
    "SG002",
    "SG003",
    "SG004",
    "SG005",
    "SG006",
    "TR001",
    "TR002",
    "TR003",
    "DL001",
    "NL001",
    "NL002",
    "NL003",
    "NL004",
    "NL005",
    "NL006",
    "HZ001",
    "HZ002",
    "HZ003",
    "HZ004",
    "HZ005",
]


class TestCatalog:
    def test_catalog_complete(self):
        assert default_registry().ids() == sorted(ALL_RULE_IDS)

    def test_at_least_ten_rules(self):
        assert len(default_registry().ids()) >= 10


class TestCleanPass:
    """The paper's circuits carry no violations."""

    def test_celem_totally_clean(self, celem_sg):
        result = analyze(celem_sg, name="celem")
        assert result.diagnostics == []
        assert result.rules_run == len(ALL_RULE_IDS)
        assert result.exit_code() == 0

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_rule_silent_on_celem(self, celem_sg, rule_id):
        result = analyze(celem_sg, name="celem", select={rule_id})
        assert result.by_rule().get(rule_id, []) == []

    def test_paper_suite_exits_clean(self):
        """Acceptance criterion: `repro lint` on every paper-suite
        circuit exits 0 (info-severity findings allowed)."""
        for name in (*DISTRIBUTIVE_BENCHMARKS, *NONDISTRIBUTIVE_BENCHMARKS):
            result = analyze(sg_of(name), name=name)
            assert result.exit_code() == 0, f"{name}: {result.summary()}"


# ----------------------------------------------------------------------
# seeded violations, one per rule
# ----------------------------------------------------------------------
class TestSgRules:
    def test_sg001_inconsistent_codes(self, celem_sg):
        s = next(iter(celem_sg.states()))
        celem_sg._code[s] ^= 0b111  # sabotage behind the builder's back
        result = analyze(celem_sg, name="bad", select={"SG001"})
        diags = result.by_rule()["SG001"]
        assert all(d.severity is Severity.ERROR for d in diags)
        assert result.exit_code() == 1

    def test_sg002_csc_conflict(self):
        result = analyze(figure1_sg(), name="figure1")
        diags = result.by_rule()["SG002"]
        assert len(diags) == 4  # the four Figure 1 conflicting pairs
        assert all("share code" in d.message for d in diags)
        assert result.exit_code() == 1
        # errors in the SG scope gate the deeper scopes
        assert result.scopes_skipped == ["cover", "netlist"]

    def test_sg003_usc_only(self):
        result = analyze(figure1_csc_sg(), name="figure1csc")
        diags = result.by_rule()["SG003"]
        assert len(diags) == 2
        assert all(d.severity is Severity.INFO for d in diags)
        # USC violations alone do not block synthesis
        assert result.exit_code() == 0
        assert "SG002" not in result.by_rule()

    def test_sg004_output_disabled(self):
        b = SGBuilder(["r1", "r2", "g"], ["r1", "r2"])
        b.arc("100", "+g", "101")  # +g excited, then +r2 disables it
        b.arc("100", "+r2", "110")
        b.arc("110", "-r1", "010")
        b.arc("010", "-r2", "000")
        b.arc("000", "+r1", "100")
        b.arc("101", "-g", "100")
        b.initial("100")
        result = analyze(b.build(), name="disabled", select={"SG004"})
        diags = result.by_rule()["SG004"]
        assert any("disabled by" in d.message for d in diags)
        assert result.exit_code() == 1

    def test_sg005_unreachable_states(self):
        b = SGBuilder(["r", "y"], ["r"])
        b.arc("00", "+r", "10")
        b.arc("10", "+y", "11")
        b.arc("11", "-r", "01")
        b.arc("01", "-y", "00")
        b.arc("11/z", "-r", "01")  # only exists as a source: unreachable
        b.initial("00")
        # b.sg skips build()'s restrict_to_reachable() pruning
        result = analyze(b.sg, name="dead", select={"SG005"})
        (diag,) = result.by_rule()["SG005"]
        assert diag.severity is Severity.WARNING
        assert "unreachable" in diag.message
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_sg006_output_trapping(self):
        # the SG004 fixture also breaks Property 1: +r2 leaves ER(+g)
        b = SGBuilder(["r1", "r2", "g"], ["r1", "r2"])
        b.arc("100", "+g", "101")
        b.arc("100", "+r2", "110")
        b.arc("110", "-r1", "010")
        b.arc("010", "-r2", "000")
        b.arc("000", "+r1", "100")
        b.arc("101", "-g", "100")
        b.initial("100")
        result = analyze(b.build(), name="escape", select={"SG006"})
        diags = result.by_rule()["SG006"]
        assert any("without firing +g" in d.message for d in diags)


class TestTriggerRules:
    def _infeasible_sg(self):
        """The unsatisfiable-trigger SG of the core trigger tests: y's
        trigger region spans a (clk, d) Gray cycle."""
        b = SGBuilder(["r", "clk", "d", "y"], ["r", "clk", "d"])
        gray = ["00", "10", "11", "01"]

        def st(r, cd, y):
            return f"{r}{cd}{y}"

        for i, cd in enumerate(gray):
            nxt = gray[(i + 1) % 4]
            if cd[0] != nxt[0]:
                tr = ("+" if nxt[0] == "1" else "-") + "clk"
            else:
                tr = ("+" if nxt[1] == "1" else "-") + "d"
            b.arc(st(0, cd, 0), tr, st(0, nxt, 0))
            b.arc(st(1, cd, 0), tr, st(1, nxt, 0))
            b.arc(st(0, cd, 0), "+r", st(1, cd, 0))
            b.arc(st(1, cd, 0), "+y", st(1, cd, 1))
            b.arc(st(1, cd, 1), "-r", st(0, cd, 1))
            b.arc(st(0, cd, 1), "-y", st(0, cd, 0))
        b.initial(st(0, "00", 0))
        return b.build()

    def test_tr001_infeasible_trigger(self):
        sg = self._infeasible_sg()
        ctx = LintContext(sg, name="infeasible")
        # force infeasibility: an OFF cube inside supercube(TR(+y))
        spec = ctx.require_spec()
        y = sg.signal_index("y")
        so = spec.output_index(y, "set")
        bad_off = (
            Cube.full(sg.num_signals, 1 << so)
            .with_literal(sg.signal_index("r"), 0b10)
            .with_literal(y, 0b01)
            .with_literal(sg.signal_index("clk"), 0b01)
        )
        spec.off.add(bad_off)
        result = run_rules(ctx, select={"TR001"})
        diags = result.by_rule()["TR001"]
        assert any("no trigger cube exists" in d.message for d in diags)
        assert result.exit_code() == 1

    def test_tr002_not_single_traversal(self):
        result = analyze(figure7b_sg(), name="fig7b", select={"TR002"})
        diags = result.by_rule()["TR002"]
        assert any("not single-traversal" in d.message for d in diags)
        assert all(d.severity is Severity.INFO for d in diags)
        assert result.exit_code() == 0

    def test_tr003_fragmented_cover(self):
        sg = figure7b_sg()
        spec = derive_sop_spec(sg)
        r = sg.signal_index("r")
        clk = sg.signal_index("clk")
        y = sg.signal_index("y")
        so = spec.output_index(y, "set")
        ro = spec.output_index(y, "reset")
        n = sg.num_signals

        def cube(bits, out):
            c = Cube.full(n, 1 << out)
            for var, val in bits.items():
                c = c.with_literal(var, 0b10 if val else 0b01)
            return c

        fragmented = Cover(
            n,
            spec.num_outputs,
            [
                cube({r: 1, y: 0, clk: 0}, so),
                cube({r: 1, y: 0, clk: 1}, so),
                cube({r: 0, y: 1, clk: 0}, ro),
                cube({r: 0, y: 1, clk: 1}, ro),
            ],
        )
        ctx = LintContext(sg, name="fragmented", cover=fragmented)
        result = run_rules(ctx, select={"TR003"})
        diags = result.by_rule()["TR003"]
        assert any("covers" in d.message for d in diags)
        assert result.exit_code() == 0  # repairable: warning only


class TestNetlistRules:
    def test_dl001_compensation_at_high_spread(self, celem_sg):
        result = analyze(
            celem_sg, name="celem", spread=0.9, select={"DL001"}
        )
        diags = result.by_rule()["DL001"]
        assert any("Equation (1)" in d.message for d in diags)
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_nl001_combinational_loop(self):
        nl = Netlist("loop")
        nl.add(Gate("g1", GateType.INV, [Pin("b")], output="a"))
        nl.add(Gate("g2", GateType.INV, [Pin("a")], output="b"))
        result = analyze(netlist=nl, name="loop", select={"NL001"})
        (diag,) = result.by_rule()["NL001"]
        assert "combinational cycle" in diag.message
        assert result.exit_code() == 1

    def test_nl001_sequential_feedback_allowed(self):
        # the same cycle through an MHS flip-flop is the sanctioned shape
        nl = Netlist("ok")
        nl.add_input("x")
        nl.add(Gate("p", GateType.AND, [Pin("x"), Pin("qn")], output="s"))
        nl.add(
            Gate(
                "ff",
                GateType.MHSFF,
                [Pin("s"), Pin("r")],
                output="q",
                output_n="qn",
                attrs={"init": 0},
            )
        )
        nl.add(Gate("rp", GateType.AND, [Pin("x", True), Pin("q")], output="r"))
        nl.add_output("q")
        result = analyze(netlist=nl, name="ok", select={"NL001"})
        assert result.by_rule().get("NL001", []) == []

    def test_nl002_undriven_net(self):
        nl = Netlist("undriven")
        nl.add(Gate("g", GateType.BUF, [Pin("ghost")], output="y"))
        nl.add_output("y")
        result = analyze(netlist=nl, name="undriven", select={"NL002"})
        (diag,) = result.by_rule()["NL002"]
        assert "'ghost'" in diag.message
        assert result.exit_code() == 1

    def test_nl003_dangling_net(self):
        nl = Netlist("dangling")
        nl.add_input("x")
        nl.add(Gate("g", GateType.BUF, [Pin("x")], output="unused"))
        nl.add(Gate("h", GateType.BUF, [Pin("x")], output="y"))
        nl.add_output("y")
        result = analyze(netlist=nl, name="dangling", select={"NL003"})
        (diag,) = result.by_rule()["NL003"]
        assert "'unused'" in diag.message
        assert result.exit_code() == 0  # warning

    def test_nl004_malformed_mhsff(self):
        nl = Netlist("badff")
        nl.add_input("s")
        ff = Gate(
            "ff",
            GateType.MHSFF,
            [Pin("s")],  # missing the reset pin; no init attribute either
            output="q",
            output_n="qn",
        )
        nl.add(ff)
        ff.output_n = "q"  # both rails on one net, behind add()'s check
        nl.add_output("q")
        result = analyze(netlist=nl, name="badff", select={"NL004"})
        messages = [d.message for d in result.by_rule()["NL004"]]
        assert any("needs exactly [set, reset]" in m for m in messages)
        assert any("same net on both rails" in m for m in messages)
        assert any("no binary init" in m for m in messages)
        assert result.exit_code() == 1

    def test_nl005_wrong_enable_rail(self):
        nl = Netlist("badack")
        nl.add_input("x")
        # set plane gated by q instead of qn: pulses can trespass
        nl.add(Gate("sp", GateType.AND, [Pin("x"), Pin("q")], output="s"))
        nl.add(Gate("rp", GateType.AND, [Pin("x", True), Pin("q")], output="r"))
        nl.add(
            Gate(
                "ff",
                GateType.MHSFF,
                [Pin("s"), Pin("r")],
                output="q",
                output_n="qn",
                attrs={"init": 0},
            )
        )
        nl.add_output("q")
        result = analyze(netlist=nl, name="badack", select={"NL005"})
        (diag,) = result.by_rule()["NL005"]
        assert "set input" in diag.message
        assert result.exit_code() == 1

    def test_nl006_excessive_fanout(self):
        nl = Netlist("fanout")
        nl.add_input("x")
        for i in range(3):
            nl.add(Gate(f"g{i}", GateType.BUF, [Pin("x")], output=f"y{i}"))
            nl.add_output(f"y{i}")
        result = analyze(
            netlist=nl, name="fanout", select={"NL006"}, fanout_limit=2
        )
        (diag,) = result.by_rule()["NL006"]
        assert "fans out to 3" in diag.message
        assert result.exit_code() == 0  # warning
