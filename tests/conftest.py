"""Shared fixtures: canonical specifications used across the test suite."""

from __future__ import annotations

import pytest

from repro.sg import SGBuilder, StateGraph
from repro.stg import elaborate, parse_g

C_ELEMENT_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""

XYZ_RING_G = """
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
"""


@pytest.fixture()
def celem_sg() -> StateGraph:
    """The Muller C-element SG (8 states, distributive)."""
    return elaborate(parse_g(C_ELEMENT_G))


@pytest.fixture()
def xyz_sg() -> StateGraph:
    """A simple sequential ring (6 states)."""
    return elaborate(parse_g(XYZ_RING_G))


@pytest.fixture()
def handshake_sg() -> StateGraph:
    """Four-phase handshake ``+r +y -r -y`` (4 states)."""
    b = SGBuilder(["r", "y"], ["r"])
    b.arc("00", "+r", "10")
    b.arc("10", "+y", "11")
    b.arc("11", "-r", "01")
    b.arc("01", "-y", "00")
    b.initial("00")
    return b.build()


@pytest.fixture()
def or_element_sg() -> StateGraph:
    """Non-distributive OR-rise / AND-fall element (CSC holds)."""
    from repro.bench.circuits import figure1_csc_sg

    return figure1_csc_sg()
