"""Tests for gates, library, netlist metrics and writers."""

import pytest

from repro.netlist import (
    DEFAULT_LIBRARY,
    Gate,
    GateType,
    Netlist,
    NetlistError,
    Pin,
    and_gate,
    or_gate,
    write_verilog,
)
from repro.netlist.trees import build_gate_tree


def simple_sop() -> Netlist:
    """f = a b' + c into an MHS flip-flop."""
    nl = Netlist("sop")
    for n in "abc":
        nl.add_input(n)
    nl.add_output("q")
    nl.add(and_gate("p0", [Pin("a"), Pin("b", inverted=True)], "n0"))
    nl.add(or_gate("o0", [Pin("n0"), Pin("c")], "n1"))
    nl.add(and_gate("p1", [Pin("a", inverted=True), Pin("b")], "n2"))
    nl.add(
        Gate("ff", GateType.MHSFF, [Pin("n1"), Pin("n2")], "q", output_n="q_n")
    )
    return nl


class TestLibrary:
    def test_and_area_scales_with_fanin(self):
        a2 = DEFAULT_LIBRARY.gate_area(and_gate("g", [Pin("a"), Pin("b")], "o"))
        a3 = DEFAULT_LIBRARY.gate_area(
            and_gate("g", [Pin("a"), Pin("b"), Pin("c")], "o")
        )
        assert a3 > a2

    def test_mhs_comparable_to_celement(self):
        mhs = DEFAULT_LIBRARY.gate_area(Gate("m", GateType.MHSFF, [], "q"))
        cel = DEFAULT_LIBRARY.gate_area(Gate("c", GateType.CEL, [], "q"))
        assert 0.5 <= mhs / cel <= 1.5  # "comparable in physical size"

    def test_delay_line_area_scales(self):
        d1 = DEFAULT_LIBRARY.gate_area(
            Gate("d", GateType.DELAY, [Pin("a")], "o", delay=1.2)
        )
        d3 = DEFAULT_LIBRARY.gate_area(
            Gate("d", GateType.DELAY, [Pin("a")], "o", delay=3.6)
        )
        assert d3 == 3 * d1

    def test_latch_two_levels(self):
        rs = DEFAULT_LIBRARY.gate_delay(Gate("r", GateType.RSLATCH, [], "q"))
        mhs = DEFAULT_LIBRARY.gate_delay(Gate("m", GateType.MHSFF, [], "q"))
        assert rs == 2 * mhs

    def test_unit_level_delay(self):
        g = and_gate("g", [Pin("a")], "o")
        assert DEFAULT_LIBRARY.gate_delay(g) == 1.2


class TestNetlistStructure:
    def test_single_driver_enforced(self):
        nl = Netlist()
        nl.add(and_gate("g1", [Pin("a")], "n"))
        with pytest.raises(NetlistError):
            nl.add(and_gate("g2", [Pin("b")], "n"))

    def test_cannot_drive_primary_input(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add(and_gate("g", [Pin("b")], "a"))

    def test_validate_finds_undriven(self):
        nl = Netlist()
        nl.add_output("q")
        nl.add(and_gate("g", [Pin("ghost")], "x"))
        problems = nl.validate()
        assert any("ghost" in p for p in problems)
        assert any("'q'" in p for p in problems)

    def test_validate_clean(self):
        assert simple_sop().validate() == []

    def test_fanout_and_driver(self):
        nl = simple_sop()
        assert nl.driver("n0").name == "p0"
        assert {g.name for g in nl.fanout("a")} == {"p0", "p1"}

    def test_nets(self):
        nl = simple_sop()
        assert {"a", "b", "c", "q", "q_n", "n0", "n1", "n2"} <= nl.nets()

    def test_fresh_net_unique(self):
        nl = Netlist()
        assert nl.fresh_net() != nl.fresh_net()


class TestMetrics:
    def test_critical_path_through_mhs(self):
        nl = simple_sop()
        # a -> AND -> OR -> MHSFF = 3 levels = 3.6
        assert nl.critical_path() == pytest.approx(3.6)

    def test_stats_row(self):
        s = simple_sop().stats()
        assert s.num_gates == 4
        assert s.num_sequential == 1
        assert "/" in s.row()

    def test_num_literals(self):
        assert simple_sop().num_literals() == 6

    def test_combinational_cycle_detected(self):
        nl = Netlist()
        nl.add_output("q")
        nl.add(and_gate("g1", [Pin("q")], "x"))
        nl.add(or_gate("g2", [Pin("x")], "q"))
        with pytest.raises(NetlistError):
            nl.critical_path()

    def test_cut_attribute_breaks_cycle(self):
        nl = Netlist()
        nl.add_output("q")
        nl.add(and_gate("g1", [Pin("q")], "x"))
        g2 = or_gate("g2", [Pin("x")], "q")
        g2.attrs["cut"] = True
        nl.add(g2)
        assert nl.critical_path() == pytest.approx(2.4)

    def test_sequential_sources_new_path(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_output("y")
        nl.add(Gate("ff", GateType.MHSFF, [Pin("a"), Pin("a")], "q", output_n="qn"))
        nl.add(and_gate("g", [Pin("q")], "y"))
        # a->ff (1.2) ends a path; q->AND->y (1.2) is separate
        assert nl.critical_path() == pytest.approx(1.2)


class TestGateTree:
    def test_small_single_gate(self):
        nl = Netlist()
        pins = [Pin(f"i{k}") for k in range(4)]
        depth = build_gate_tree(nl, GateType.OR, pins, "out", "t")
        assert depth == 1
        assert len(nl.gates) == 1

    def test_wide_two_levels(self):
        nl = Netlist()
        pins = [Pin(f"i{k}") for k in range(20)]
        depth = build_gate_tree(nl, GateType.OR, pins, "out", "t")
        assert depth == 2
        assert all(len(g.inputs) <= 8 for g in nl.gates)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_gate_tree(Netlist(), GateType.AND, [], "o", "t")

    def test_rejects_non_andor(self):
        with pytest.raises(ValueError):
            build_gate_tree(Netlist(), GateType.INV, [Pin("a")], "o", "t")


class TestVerilog:
    def test_contains_primitives_and_module(self):
        text = write_verilog(simple_sop())
        assert "module MHSFF" in text
        assert "module sop(" in text
        assert "assign" in text
        assert "MHSFF ff(" in text

    def test_inversion_bubbles(self):
        text = write_verilog(simple_sop())
        assert "~b" in text

    def test_identifier_sanitization(self):
        nl = Netlist("weird-name")
        nl.add_input("in.0")
        nl.add_output("q")
        nl.add(and_gate("g", [Pin("in.0")], "q"))
        text = write_verilog(nl)
        assert "in_0" in text and "weird_name" in text
