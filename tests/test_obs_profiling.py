"""The stage-scoped hotspot profiler.

The acceptance properties this file enforces:

* **attribution** — profiling the quick suite attributes >= 80% of the
  sampled wall time to named pipeline stages (nothing hides in an
  ``<unattributed>`` blob);
* **overhead** — the sampling engine costs < 10% wall time on the
  workload it measures;
* **stability** — a ``repro-profile/1`` document survives a JSON
  round-trip byte-for-byte, and diffing a document against itself is
  exactly empty;
* **no double-counting** — ``adopt``-merged concurrent worker spans
  subtract as a *union* from their parent's self time, never a sum;
* **conviction carries attribution** — a slowdown seeded into the
  minimizer surfaces as that function in the regress hotspot table.
"""

import copy
import importlib
import json
import time

import pytest

from repro.obs.profiling import (
    PROFILE_DIFF_SCHEMA,
    PROFILE_SCHEMA,
    UNATTRIBUTED,
    ProfileSession,
    diff_profiles,
    hotspot_summary,
    load_profile_document,
    profile_suite,
    stage_totals_from_spans,
    to_collapsed,
    to_speedscope,
    validate_profile,
)
from repro.obs.trace import Span, Tracer, trace_span

# repro.logic re-exports the minimize *function*, shadowing the
# submodule attribute; resolve the module itself for monkeypatching
minimize_mod = importlib.import_module("repro.logic.minimize")


def _busy(seconds: float) -> int:
    """Hold the GIL in a pure-Python loop for ``seconds``."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1
    return x


def _span(name, sid, parent, t0, t1, **attrs) -> Span:
    return Span(
        name=name, span_id=sid, parent_id=parent, start=t0, end=t1, attrs=attrs
    )


# ----------------------------------------------------------------------
# self-time accounting (the adopt/mp double-count fix)
# ----------------------------------------------------------------------
class TestStageTotals:
    def test_sequential_children_subtract_fully(self):
        spans = [
            _span("parent", 1, None, 0.0, 1.0),
            _span("child", 2, 1, 0.1, 0.3),
            _span("child", 3, 1, 0.5, 0.9),
        ]
        totals = stage_totals_from_spans(spans)
        assert totals["parent"]["wall_s"] == pytest.approx(1.0)
        assert totals["parent"]["self_s"] == pytest.approx(0.4)
        assert totals["child"]["wall_s"] == pytest.approx(0.6)
        assert totals["child"]["calls"] == 2

    def test_overlapping_children_subtract_as_union(self):
        """Concurrent (adopted) children overlap; a naive sum would
        subtract 1.1s from a 1.0s parent and clamp to zero — the union
        leaves the genuinely uncovered 0.2s."""
        spans = [
            _span("parent", 1, None, 0.0, 1.0),
            _span("worker", 2, 1, 0.1, 0.7),
            _span("worker", 3, 1, 0.4, 0.9),
        ]
        totals = stage_totals_from_spans(spans)
        assert totals["parent"]["self_s"] == pytest.approx(0.2)
        # worker wall time is still the full 1.1s of worker work
        assert totals["worker"]["wall_s"] == pytest.approx(1.1)

    def test_children_exceeding_parent_clip_and_never_go_negative(self):
        spans = [
            _span("parent", 1, None, 0.0, 1.0),
            _span("worker", 2, 1, -0.5, 0.8),
            _span("worker", 3, 1, 0.2, 1.7),
        ]
        totals = stage_totals_from_spans(spans)
        assert totals["parent"]["self_s"] == pytest.approx(0.0)
        assert totals["parent"]["self_s"] >= 0.0

    def test_pipeline_stage_spans_fold_to_stage_name(self):
        spans = [
            _span("pipeline.stage", 1, None, 0.0, 0.5, stage="espresso"),
        ]
        totals = stage_totals_from_spans(spans)
        assert "espresso" in totals and "pipeline.stage" not in totals

    def test_adopted_worker_fanout_does_not_double_count(self):
        """The real merge path: a parent span waits while two overlapping
        worker spans (different pids, as the fault/fuzz pools produce)
        are adopted into the tracer."""
        tracer = Tracer()
        with tracer.span("fuzz-sweep") as h:
            time.sleep(0.05)
            t0 = h._span.start
            exported = {
                "pid": 99,
                "spans": [
                    {
                        "name": "fuzz-unit",
                        "id": 1,
                        "parent": None,
                        "t0": t0 + 0.005,
                        "t1": t0 + 0.035,
                        "pid": 99,
                        "tid": 1,
                        "attrs": {},
                    },
                    {
                        "name": "fuzz-unit",
                        "id": 2,
                        "parent": None,
                        "t0": t0 + 0.010,
                        "t1": t0 + 0.040,
                        "pid": 98,
                        "tid": 1,
                        "attrs": {},
                    },
                ],
            }
            assert tracer.adopt(exported) == 2
        totals = stage_totals_from_spans(tracer.spans())
        parent = totals["fuzz-sweep"]
        # 60ms of worker wall time inside a ~50ms parent: the sum would
        # clamp parent self-time to zero, the union leaves wall - 35ms
        assert totals["fuzz-unit"]["wall_s"] == pytest.approx(0.060, abs=1e-6)
        assert parent["self_s"] > 0.0
        assert parent["self_s"] == pytest.approx(
            parent["wall_s"] - 0.035, abs=0.002
        )


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
class TestStackSampler:
    def test_cpu_work_attributes_to_open_stage(self):
        with ProfileSession(interval=0.001) as sess:
            with trace_span("espresso"):
                _busy(0.08)
        doc = sess.document()
        assert doc["engine"] == "sampler"
        assert doc["samples"] > 10
        esp = doc["stages"]["espresso"]
        assert esp["sampled_s"] > 0.04
        assert any("_busy" in f["func"] for f in esp["functions"])
        assert doc["attributed_pct"] > 50

    def test_work_outside_spans_is_unattributed(self):
        with ProfileSession(interval=0.001) as sess:
            _busy(0.05)
        doc = sess.document()
        assert UNATTRIBUTED in doc["stages"]
        assert doc["attributed_pct"] < 50

    def test_sleep_charges_the_sleeping_frame(self):
        """Wall-clock sampling sees blocked time too (the GIL is
        released during sleep), charged to the calling Python frame."""

        def nap():
            time.sleep(0.05)

        with ProfileSession(interval=0.001) as sess:
            with trace_span("minimize"):
                nap()
        doc = sess.document()
        mini = doc["stages"]["minimize"]
        assert mini["sampled_s"] > 0.02
        assert any("nap" in f["func"] for f in mini["functions"])

    def test_switch_interval_restored(self):
        import sys

        before = sys.getswitchinterval()
        with ProfileSession(interval=0.001):
            assert sys.getswitchinterval() <= 0.001 / 2 + 1e-9
        assert sys.getswitchinterval() == pytest.approx(before)

    def test_circuit_attr_keys_per_circuit_block(self):
        with ProfileSession(interval=0.001) as sess:
            with trace_span("bench-run", circuit="demo"):
                with trace_span("espresso"):
                    _busy(0.05)
        doc = sess.document()
        assert "demo" in doc.get("per_circuit", {})
        assert "espresso" in doc["per_circuit"]["demo"]["stages"]


class TestCProfileEngine:
    def test_deterministic_per_stage_attribution(self):
        with ProfileSession(engine="cprofile") as sess:
            with trace_span("espresso"):
                _busy(0.02)
        doc = sess.document()
        assert doc["engine"] == "cprofile"
        assert doc["interval_s"] is None
        esp = doc["stages"]["espresso"]
        assert esp["sampled_s"] > 0.0
        assert any("_busy" in f["func"] for f in esp["functions"])

    def test_call_counts_present(self):
        with ProfileSession(engine="cprofile") as sess:
            with trace_span("espresso"):
                _busy(0.01)
        doc = sess.document()
        rows = doc["stages"]["espresso"]["functions"]
        assert any("calls" in r and r["calls"] >= 1 for r in rows)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ProfileSession(engine="perf")


class TestMemoryWatch:
    def test_per_stage_net_allocations(self):
        with ProfileSession(interval=0.001, memory=True) as sess:
            with trace_span("alloc"):
                keep = list(range(200_000))
            del keep
        doc = sess.document()
        mem = doc["memory"]
        assert mem["peak_kb"] > 100
        assert "alloc" in mem["stages"]
        assert mem["stages"]["alloc"]["spans"] == 1
        assert isinstance(mem["top"], list) and mem["top"]


# ----------------------------------------------------------------------
# the suite document
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def suite_doc():
    """One profiled quick-suite sweep shared by the document tests."""
    return profile_suite(quick=True, runs=2, interval=0.001)


class TestSuiteDocument:
    def test_validates_clean(self, suite_doc):
        assert validate_profile(suite_doc) == []
        assert suite_doc["schema"] == PROFILE_SCHEMA
        assert suite_doc["quick"] is True

    def test_attribution_floor(self, suite_doc):
        """>= 80% of sampled wall time lands in named pipeline stages —
        the acceptance floor the CI profile-smoke job also enforces."""
        assert suite_doc["attributed_pct"] >= 80.0

    def test_stages_speak_pipeline_vocabulary(self, suite_doc):
        named = set(suite_doc["stages"]) - {UNATTRIBUTED}
        assert named & {
            "synthesize",
            "oracle",
            "espresso",
            "minimize",
            "cover-audit",
            "reachability",
            "bench-run",
        }

    def test_per_circuit_blocks(self, suite_doc):
        per = suite_doc["per_circuit"]
        assert set(per) <= set(suite_doc["circuits"])
        for blk in per.values():
            assert blk["sampled_s"] > 0

    def test_work_normalized_rates(self, suite_doc):
        assert "cube_ops_per_s" in suite_doc["rates"]
        assert suite_doc["rates"]["cube_ops_per_s"] > 0
        assert suite_doc["metrics"]["cover.cube_ops"] > 0

    def test_round_trip_is_byte_stable(self, suite_doc):
        """dump → load → dump is identical: every float in the document
        is pre-rounded, so serialization cannot drift."""
        blob = json.dumps(suite_doc, sort_keys=True)
        rt = json.loads(blob)
        assert json.dumps(rt, sort_keys=True) == blob
        assert validate_profile(rt) == []

    def test_self_diff_is_exactly_empty(self, suite_doc):
        rt = json.loads(json.dumps(suite_doc))
        diff = diff_profiles(suite_doc, rt)
        assert diff["empty"] is True
        assert diff["functions"] == []
        assert diff["new"] == [] and diff["vanished"] == []
        assert diff["stages"] == []

    def test_overhead_under_ten_percent(self):
        """Profiling the workload costs < 10% wall time (plus a small
        absolute slack so scheduler noise cannot flake a ~50ms
        measurement)."""
        from repro.obs.profiling import profile_circuit_run
        from repro.obs.trace import tracing

        def workload():
            profile_circuit_run("converta", verify_runs=1)

        workload()  # warm imports/caches outside both measurements

        def timed(arm) -> float:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                arm()
                best = min(best, time.perf_counter() - t0)
            return best

        def base_arm():
            with tracing(Tracer()):
                workload()

        def prof_arm():
            with ProfileSession(interval=0.002):
                workload()

        base = timed(base_arm)
        prof = timed(prof_arm)
        assert prof <= base * 1.10 + 0.05, (
            f"profiling overhead too high: {base * 1e3:.1f}ms -> "
            f"{prof * 1e3:.1f}ms"
        )


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
def _mini_doc(folded: dict, stages: dict | None = None, wall=1.0) -> dict:
    return {
        "schema": PROFILE_SCHEMA,
        "created_utc": "2026-08-07T00:00:00Z",
        "engine": "sampler",
        "wall_s": wall,
        "env": {"git_sha": "abc1234"},
        "stages": stages or {},
        "folded": folded,
    }


class TestDiffProfiles:
    def test_per_function_deltas_sorted_by_magnitude(self):
        a = _mini_doc({"s;f.py:slow": 0.1, "s;f.py:tiny": 0.01})
        b = _mini_doc({"s;f.py:slow": 0.4, "s;f.py:tiny": 0.02}, wall=1.3)
        diff = diff_profiles(a, b)
        assert diff["schema"] == PROFILE_DIFF_SCHEMA
        assert diff["empty"] is False
        assert diff["wall_delta_s"] == pytest.approx(0.3)
        assert diff["functions"][0]["func"] == "f.py:slow"
        assert diff["functions"][0]["delta_s"] == pytest.approx(0.3)
        assert diff["functions"][0]["ratio"] == pytest.approx(4.0)

    def test_new_and_vanished_frames(self):
        a = _mini_doc({"s;f.py:old": 0.1})
        b = _mini_doc({"s;f.py:fresh": 0.2})
        diff = diff_profiles(a, b)
        assert diff["new"] == ["f.py:fresh"]
        assert diff["vanished"] == ["f.py:old"]

    def test_leaf_aggregation_across_stacks(self):
        """The same leaf reached through different stacks sums before
        diffing — the diff is per *function*, not per stack."""
        a = _mini_doc({"s;a.py:f;hot.py:g": 0.1, "s;b.py:h;hot.py:g": 0.1})
        b = _mini_doc({"s;a.py:f;hot.py:g": 0.3})
        diff = diff_profiles(a, b)
        row = next(r for r in diff["functions"] if r["func"] == "hot.py:g")
        assert row["a_s"] == pytest.approx(0.2)
        assert row["delta_s"] == pytest.approx(0.1)

    def test_stage_deltas(self):
        a = _mini_doc({}, stages={"espresso": {"sampled_s": 0.1}})
        b = _mini_doc({}, stages={"espresso": {"sampled_s": 0.25}})
        diff = diff_profiles(a, b)
        assert diff["stages"] == [
            {
                "stage": "espresso",
                "a_s": 0.1,
                "b_s": 0.25,
                "delta_s": pytest.approx(0.15),
            }
        ]


class TestHotspotSummary:
    DOC = {
        "stages": {
            "minimize": {
                "functions": [
                    {"func": "a.py:f", "self_s": 0.3, "pct": 60.0},
                    {"func": "b.py:g", "self_s": 0.2, "pct": 40.0},
                ]
            },
            "oracle": {"functions": [{"func": "c.py:h", "self_s": 0.1, "pct": 100.0}]},
            "empty": {"functions": []},
        }
    }

    def test_stage_filter(self):
        out = hotspot_summary(self.DOC, stages={"minimize"})
        assert set(out) == {"minimize"}

    def test_top_limit_and_empty_stages_dropped(self):
        out = hotspot_summary(self.DOC, top=1)
        assert set(out) == {"minimize", "oracle"}
        assert [f["func"] for f in out["minimize"]] == ["a.py:f"]


# ----------------------------------------------------------------------
# flamegraph exports
# ----------------------------------------------------------------------
class TestExports:
    def test_collapsed_stack_lines(self):
        doc = _mini_doc({"espresso;a.py:f;b.py:g": 0.0123, "oracle;c.py:h": 2e-7})
        text = to_collapsed(doc)
        lines = text.strip().splitlines()
        assert "espresso;a.py:f;b.py:g 12300" in lines
        # sub-microsecond stacks still emit weight >= 1 (never dropped)
        assert "oracle;c.py:h 1" in lines
        assert text.endswith("\n")

    def test_speedscope_document(self):
        doc = _mini_doc({"espresso;a.py:f": 0.5, "espresso;a.py:f;b.py:g": 0.25})
        ss = to_speedscope(doc, name="unit")
        assert ss["$schema"].endswith("file-format-schema.json")
        prof = ss["profiles"][0]
        assert prof["type"] == "sampled" and prof["unit"] == "seconds"
        assert len(prof["samples"]) == len(prof["weights"]) == 2
        assert prof["endValue"] == pytest.approx(0.75)
        frames = ss["shared"]["frames"]
        for sample in prof["samples"]:
            assert all(0 <= i < len(frames) for i in sample)
        # shared frame table deduplicates across stacks
        assert [f["name"] for f in frames] == ["espresso", "a.py:f", "b.py:g"]


# ----------------------------------------------------------------------
# document loading / validation
# ----------------------------------------------------------------------
class TestLoadAndValidate:
    def test_validate_flags_problems(self):
        assert validate_profile({"schema": "other/9"})
        assert validate_profile("nope") == ["document is not a JSON object"]
        doc = _mini_doc({})
        doc["attributed_pct"] = 140.0
        assert any("attributed_pct" in p for p in validate_profile(doc))

    def _valid_doc(self):
        doc = _mini_doc({})
        doc.update(
            {
                "wall_s": 1.0,
                "sampled_s": 0.9,
                "attributed_s": 0.9,
                "attributed_pct": 100.0,
                "stages": {},
            }
        )
        return doc

    def test_load_plain_and_envelope(self, tmp_path):
        doc = self._valid_doc()
        plain = tmp_path / "p.json"
        plain.write_text(json.dumps(doc))
        assert load_profile_document(str(plain))["wall_s"] == 1.0
        env = tmp_path / "e.json"
        env.write_text(
            json.dumps({"schema": "repro-run-history/1", "doc": doc})
        )
        assert load_profile_document(str(env))["wall_s"] == 1.0

    def test_load_by_history_name(self, tmp_path):
        doc = self._valid_doc()
        (tmp_path / "run.json").write_text(json.dumps(doc))
        got = load_profile_document("run.json", history_dir=str(tmp_path))
        assert got["schema"] == PROFILE_SCHEMA

    def test_load_rejects_non_profile(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text('{"schema": "repro-bench/1"}')
        with pytest.raises(ValueError, match="not a valid profile"):
            load_profile_document(str(bad))
        with pytest.raises(FileNotFoundError):
            load_profile_document(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# regress-gate hotspot attribution (the seeded-slowdown acceptance)
# ----------------------------------------------------------------------
class TestRegressHotspots:
    @pytest.fixture(scope="class")
    def baseline(self):
        from repro.obs.harness import run_bench

        return run_bench(
            circuits=["converta"], runs=1, verify_runs=1, telemetry=True
        )

    def test_seeded_sleep_named_in_hotspot_table(self, baseline, monkeypatch):
        """An injected delay in the minimizer must come back from the
        regress gate not just as the guilty *phase* but as the guilty
        *function* in the markdown hotspot table."""
        from repro.obs.regress import Thresholds, run_regress

        real = minimize_mod.espresso

        def slow_espresso(*args, **kwargs):
            time.sleep(0.03)
            return real(*args, **kwargs)

        monkeypatch.setattr(minimize_mod, "espresso", slow_espresso)
        report = run_regress(
            baseline,
            thresholds=Thresholds(rel=0.30, abs_s=0.005, confirm_runs=1),
            telemetry=False,
        )
        assert not report.ok
        assert {d.phase for d in report.regressions} >= {"minimize"}
        assert report.hotspots, "conviction must carry hotspot rows"
        mini = [h for h in report.hotspots if h["stage"] == "minimize"]
        assert mini and mini[0]["func"].endswith(":slow_espresso")
        assert mini[0]["pct"] > 50  # the seeded sleep dominates the phase

        md = report.render_markdown()
        assert "## Hotspot attribution" in md
        assert "slow_espresso" in md
        assert "hotspot converta/minimize" in report.render_text()

        doc = report.to_json_doc()
        assert doc["hotspots"] == report.hotspots
        assert doc["profile_baseline"] is None

    def test_hotspots_opt_out(self, baseline, monkeypatch):
        from repro.obs.regress import Thresholds, run_regress

        real = minimize_mod.espresso

        def slow_espresso(*args, **kwargs):
            time.sleep(0.03)
            return real(*args, **kwargs)

        monkeypatch.setattr(minimize_mod, "espresso", slow_espresso)
        report = run_regress(
            baseline,
            thresholds=Thresholds(rel=0.30, abs_s=0.005, confirm_runs=1),
            telemetry=False,
            hotspots=False,
        )
        assert not report.ok
        assert report.hotspots == []
        assert "## Hotspot attribution" not in report.render_markdown()

    def test_clean_run_profiles_nothing(self, baseline):
        from repro.obs.regress import run_regress

        report = run_regress(baseline, telemetry=False)
        assert report.ok
        assert report.hotspots == []

    def test_committed_baseline_supplies_deltas(
        self, baseline, monkeypatch, tmp_path
    ):
        """With a committed profile in the run history, hotspot rows of
        matching (stage, function) carry base/delta columns."""
        from repro.obs.profiling import profile_circuit
        from repro.obs.registry import RunHistory
        from repro.obs.regress import Thresholds, run_regress

        real = minimize_mod.espresso

        def slow_espresso(*args, **kwargs):
            time.sleep(0.03)
            return real(*args, **kwargs)

        # commit a baseline profile *with the sleep already seeded* so
        # the hotspot function is guaranteed to match a baseline row
        monkeypatch.setattr(minimize_mod, "espresso", slow_espresso)
        base_prof = profile_circuit("converta", runs=1, verify_runs=1)
        RunHistory(str(tmp_path)).append("profile", base_prof)

        report = run_regress(
            baseline,
            thresholds=Thresholds(rel=0.30, abs_s=0.005, confirm_runs=1),
            telemetry=False,
            history_dir=str(tmp_path),
        )
        assert not report.ok
        assert report.profile_baseline is not None
        mini = [h for h in report.hotspots if h["stage"] == "minimize"]
        assert mini and "delta_s" in mini[0] and "base_s" in mini[0]
        md = report.render_markdown()
        assert "baseline self-times from" in md


# ----------------------------------------------------------------------
# tracer support surface the profiler leans on
# ----------------------------------------------------------------------
class TestTracerSupport:
    def test_stack_of_other_thread(self):
        import threading

        tracer = Tracer()
        seen = {}
        release = threading.Event()
        ready = threading.Event()

        def worker():
            with tracer.span("inner"):
                ready.set()
                release.wait(2.0)

        t = threading.Thread(target=worker)
        t.start()
        assert ready.wait(2.0)
        seen["stack"] = tracer.stack_of(t.ident)
        release.set()
        t.join()
        assert [s.name for s in seen["stack"]] == ["inner"]
        # snapshot is a copy: the live stack has since been popped
        assert tracer.stack_of(t.ident) == []

    def test_listener_hooks_fire_in_order(self):
        events = []

        class Listener:
            def span_started(self, span):
                events.append(("start", span.name))

            def span_finished(self, span):
                events.append(("finish", span.name))

        tracer = Tracer()
        listener = Listener()
        tracer.add_listener(listener)
        tracer.add_listener(listener)  # idempotent
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.remove_listener(listener)
        with tracer.span("ignored"):
            pass
        assert events == [
            ("start", "outer"),
            ("start", "inner"),
            ("finish", "inner"),
            ("finish", "outer"),
        ]
