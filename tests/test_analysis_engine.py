"""Engine-level tests: registry, scope phasing, crash containment,
pre-flight subset and baseline suppression."""

from __future__ import annotations

import pytest

from repro.analysis import (
    LintContext,
    RuleRegistry,
    Severity,
    analyze,
    apply_baseline,
    build_baseline,
    default_registry,
    load_baseline,
    rule,
    run_preflight,
    run_rules,
)
from repro.analysis.baseline import baseline_fingerprints, fingerprint
from repro.analysis.registry import Scope
from repro.bench.circuits import figure1_sg
from repro.core.synthesizer import SynthesisError, synthesize


class TestRegistry:
    def test_duplicate_id_rejected(self):
        reg = RuleRegistry()

        @rule(
            "XX001",
            title="first",
            severity=Severity.INFO,
            scope=Scope.SG,
            registry=reg,
        )
        def first(ctx, meta):
            return iter(())

        with pytest.raises(ValueError, match="XX001"):

            @rule(
                "XX001",
                title="second",
                severity=Severity.INFO,
                scope=Scope.SG,
                registry=reg,
            )
            def second(ctx, meta):
                return iter(())

    def test_select_and_ignore(self, celem_sg):
        result = analyze(celem_sg, select={"SG001", "SG002"})
        assert result.rules_run == 2
        result = analyze(celem_sg, ignore={"SG001"})
        assert result.rules_run == len(default_registry().ids()) - 1

    def test_default_registry_is_id_sorted(self):
        ids = default_registry().ids()
        assert ids == sorted(ids)


class TestPhasing:
    def test_all_scopes_run_when_clean(self, celem_sg):
        result = analyze(celem_sg, name="celem")
        assert result.scopes_run == ["sg", "cover", "netlist"]
        assert result.scopes_skipped == []

    def test_sg_errors_gate_deeper_scopes(self):
        result = analyze(figure1_sg(), name="figure1")
        assert result.scopes_run == ["sg"]
        assert result.scopes_skipped == ["cover", "netlist"]

    def test_netlist_only_context_skips_sg_scopes(self):
        from repro.netlist.gates import Gate, GateType, Pin
        from repro.netlist.netlist import Netlist

        nl = Netlist("n")
        nl.add_input("x")
        nl.add(Gate("g", GateType.BUF, [Pin("x")], output="y"))
        nl.add_output("y")
        result = analyze(netlist=nl, name="n")
        assert result.scopes_run == ["netlist"]


class TestCrashContainment:
    def test_rule_crash_becomes_engine_diagnostic(self, celem_sg):
        reg = RuleRegistry()

        @rule(
            "CR001",
            title="crasher",
            severity=Severity.INFO,
            scope=Scope.SG,
            registry=reg,
        )
        def crasher(ctx, meta):
            raise RuntimeError("boom")
            yield  # pragma: no cover - marks this as a generator

        result = run_rules(LintContext(celem_sg), reg)
        assert result.internal_errors == 1
        assert result.exit_code() == 2
        (diag,) = result.diagnostics
        assert diag.rule_id == "ENGINE"
        assert "CR001 crashed" in diag.message
        assert "boom" in diag.message


class TestPreflight:
    def test_preflight_runs_only_theorem2_rules(self, celem_sg):
        result = run_preflight(celem_sg, name="celem")
        assert result.ok
        preflight_ids = {
            r.meta.id for r in default_registry().preflight_rules()
        }
        assert preflight_ids == {"SG001", "SG002", "SG004"}
        assert result.rules_run == 3
        # SG-scope only: nothing minimized or mapped
        assert result.scopes_run == ["sg"]

    def test_synthesizer_uses_the_engine(self):
        """No second validation path: SynthesisError now carries the
        engine's structured diagnostics."""
        with pytest.raises(SynthesisError) as exc:
            synthesize(figure1_sg(), name="figure1")
        assert "Theorem 2" in str(exc.value)
        assert exc.value.diagnostics
        assert {d.rule_id for d in exc.value.diagnostics} == {"SG002"}

    def test_validate_for_synthesis_backed_by_engine(self):
        from repro.sg import validate_for_synthesis

        report = validate_for_synthesis(figure1_sg())
        assert not report.ok
        assert report.csc  # the same conflicts SG002 reports


class TestBaseline:
    def test_round_trip_suppression(self, tmp_path):
        results = [analyze(figure1_sg(), name="figure1")]
        assert results[0].errors == 4

        doc = build_baseline(results)
        path = tmp_path / "baseline.json"
        import json

        path.write_text(json.dumps(doc))
        fingerprints = load_baseline(str(path))
        assert len(fingerprints) == 4

        suppressed = apply_baseline(results, fingerprints)
        assert suppressed[0].errors == 0
        assert suppressed[0].suppressed == 4
        assert suppressed[0].exit_code() == 0
        assert "suppressed" in suppressed[0].summary()

    def test_new_findings_survive_baseline(self, celem_sg):
        # a baseline recorded on figure1 does not hide celem findings
        base = build_baseline([analyze(figure1_sg(), name="figure1")])
        celem_sg._code[next(iter(celem_sg.states()))] ^= 0b111
        fresh = [analyze(celem_sg, name="bad", select={"SG001"})]
        kept = apply_baseline(fresh, baseline_fingerprints(base))
        assert kept[0].errors == fresh[0].errors > 0

    def test_fingerprint_is_target_scoped(self):
        assert fingerprint("a", "k") != fingerprint("b", "k")

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="repro-lint-baseline/1"):
            baseline_fingerprints({"schema": "bogus", "entries": {}})
