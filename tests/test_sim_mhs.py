"""Tests for the MHS flip-flop behavioural model (Figures 4 and 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import MhsParams, MhsState, celement_response, mhs_response

OMEGA, TAU = 0.4, 1.2
P = MhsParams(OMEGA, TAU)


class TestParams:
    def test_omega_must_be_below_tau(self):
        with pytest.raises(ValueError):
            MhsParams(omega=2.0, tau=1.0)

    def test_defaults_valid(self):
        assert MhsParams().omega < MhsParams().tau


class TestPulseResponse:
    """Figure 4: pulses < ω absorbed; ≥ ω translated forward by τ."""

    def test_narrow_pulse_absorbed(self):
        assert mhs_response([(1.0, 1.3)], P) == []

    def test_wide_pulse_fires_once(self):
        events = mhs_response([(1.0, 2.0)], P)
        assert events == [(1.0 + TAU, 1)]

    def test_threshold_pulse_fires(self):
        events = mhs_response([(1.0, 1.0 + OMEGA)], P)
        assert events == [(1.0 + TAU, 1)]

    def test_just_below_threshold_absorbed(self):
        assert mhs_response([(1.0, 1.0 + OMEGA - 0.01)], P) == []

    def test_stream_to_single_transition(self):
        """Property 3: a pulse stream produces exactly one transition."""
        train = [(0.5, 0.6), (1.0, 1.1), (1.5, 2.5), (3.0, 3.1), (4.0, 5.0)]
        events = mhs_response(train, P)
        assert len(events) == 1
        assert events[0] == (1.5 + TAU, 1)

    def test_all_runts_no_transition(self):
        train = [(k * 1.0, k * 1.0 + 0.2) for k in range(1, 6)]
        assert mhs_response(train, P) == []

    def test_already_set_ignores_pulses(self):
        assert mhs_response([(1.0, 3.0)], P, initial_q=1) == []

    def test_bad_pulse_rejected(self):
        with pytest.raises(ValueError):
            mhs_response([(2.0, 1.0)], P)

    @given(st.lists(st.tuples(st.floats(0.01, 50), st.floats(0.01, 3)), max_size=8))
    def test_at_most_one_transition(self, raw):
        t = 0.0
        train = []
        for gap, width in raw:
            start = t + gap
            train.append((start, start + width))
            t = start + width
        events = mhs_response(train, P)
        assert len(events) <= 1
        if events:
            # the transition is τ after the leading edge of some pulse
            assert any(abs(events[0][0] - (s + TAU)) < 1e-9 for s, _ in train)

    def test_celement_fires_on_runt(self):
        """The ablation contrast: a C-element commits on any pulse."""
        train = [(1.0, 1.05)]
        assert mhs_response(train, P) == []
        assert celement_response(train, TAU) == [(1.0 + TAU, 1)]


class TestOverlapHandling:
    def test_transient_overlap_tolerated(self):
        st_ = MhsState(params=P, q=0)
        # stale reset still high while set rises (one ack-gate delay)
        st_.on_reset_edge(0.0, 1)
        st_.on_set_edge(0.1, 1)
        st_.on_reset_edge(0.6, 0)   # resolves 0.5 later
        assert st_.overlaps == [(0.1, 0.6)]
        assert st_.violations == []
        # the set window opened when reset released
        commits = st_.check_windows(0.6 + P.omega)
        assert commits == [(0.6 + P.tau, 1)]

    def test_persistent_overlap_flagged(self):
        st_ = MhsState(params=P, q=0, overlap_tolerance=1.0)
        st_.on_set_edge(0.0, 1)
        st_.on_reset_edge(0.1, 1)
        st_.on_reset_edge(5.0, 0)
        assert st_.violations

    def test_conflict_interrupts_window(self):
        st_ = MhsState(params=P, q=0)
        st_.on_set_edge(0.0, 1)
        st_.on_reset_edge(0.1, 1)  # conflict before ω elapsed
        assert st_.check_windows(10.0) == []

    def test_apply_commit_changes_q(self):
        st_ = MhsState(params=P, q=0)
        st_.on_set_edge(0.0, 1)
        commits = st_.check_windows(P.omega)
        assert commits == [(P.tau, 1)]
        assert st_.apply_commit(P.tau, 1)
        assert st_.q == 1
        assert not st_.apply_commit(P.tau, 1)  # idempotent

    def test_reset_side_symmetric(self):
        st_ = MhsState(params=P, q=1)
        st_.on_reset_edge(2.0, 1)
        commits = st_.check_windows(2.0 + P.omega)
        assert commits == [(2.0 + P.tau, 0)]

    def test_window_deadline(self):
        st_ = MhsState(params=P, q=0)
        assert st_.window_deadline() is None
        st_.on_set_edge(3.0, 1)
        assert st_.window_deadline() == pytest.approx(3.0 + P.omega)
