"""CLI surface of ``repro report``, ``repro history``, and the
ratchet modes of ``repro regress`` — all against synthetic ledgers in
tmp dirs, never the repo's committed ``benchmarks/history/``."""

import json

from repro.cli import main
from repro.obs.registry import RunHistory
from repro.obs.regress import Thresholds, ThresholdPolicy, save_threshold_config

from .test_obs_analytics import _bench_doc, _profile_doc, _regress_doc


def _ledger(tmp_path, n=8, step_at=None):
    history = RunHistory(str(tmp_path / "ledger"))
    for i in range(n):
        slow = step_at is not None and i >= step_at
        history.append(
            "bench",
            _bench_doc(i, f"{i:02d}" + "e" * 38, 0.030 if slow else 0.010),
        )
    return history


class TestReportCli:
    def test_text_report(self, tmp_path, capsys):
        history = _ledger(tmp_path)
        assert main(["report", "--history-dir", history.root]) == 0
        out = capsys.readouterr().out
        assert "8 run(s)" in out
        assert "bench=8" in out

    def test_json_report(self, tmp_path, capsys):
        history = _ledger(tmp_path)
        assert (
            main(["report", "--history-dir", history.root, "--format", "json"])
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-analytics/1"

    def test_html_dashboard_self_contained(self, tmp_path, capsys):
        history = _ledger(tmp_path, n=12, step_at=6)
        history.append("profile", _profile_doc(12, "0a" + "e" * 38, 0.2))
        history.append("regress", _regress_doc(13, "0a" + "e" * 38))
        html_path = tmp_path / "observatory.html"
        assert (
            main(
                [
                    "report",
                    "--history-dir",
                    history.root,
                    "--html",
                    str(html_path),
                ]
            )
            == 0
        )
        html = html_path.read_text()
        for marker in ("http://", "https://", "src=", "<script", "url("):
            assert marker not in html
        assert "<svg" in html
        assert 'class="cp-slower"' in html  # the injected step is marked

    def test_empty_ledger_fails_loudly(self, tmp_path, capsys):
        assert (
            main(["report", "--history-dir", str(tmp_path / "nothing")]) == 2
        )
        assert "no runs recorded" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        history = _ledger(tmp_path)
        out = tmp_path / "report.txt"
        assert (
            main(["report", "--history-dir", history.root, "-o", str(out)])
            == 0
        )
        assert "bench=8" in out.read_text()


class TestHistoryCli:
    def test_ls_with_filters(self, tmp_path, capsys):
        history = _ledger(tmp_path, n=3)
        history.append("profile", _profile_doc(3, "aa" + "e" * 38, 0.1))
        assert main(["history", "--history-dir", history.root, "ls"]) == 0
        assert capsys.readouterr().out.count("\n") == 4
        assert (
            main(
                [
                    "history",
                    "--history-dir",
                    history.root,
                    "ls",
                    "--kind",
                    "profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile" in out and out.count("\n") == 1
        assert (
            main(
                ["history", "--history-dir", history.root, "ls", "--sha", "01"]
            )
            == 0
        )
        assert capsys.readouterr().out.count("\n") == 1

    def test_ls_empty(self, tmp_path, capsys):
        assert (
            main(["history", "--history-dir", str(tmp_path / "none"), "ls"])
            == 0
        )
        assert "(empty)" in capsys.readouterr().out

    def test_ls_warns_on_torn_lines(self, tmp_path, capsys):
        history = _ledger(tmp_path, n=2)
        with open(history.index_path, "a") as f:
            f.write("{torn")
        assert main(["history", "--history-dir", history.root, "ls"]) == 0
        assert "1 torn index line(s)" in capsys.readouterr().err

    def test_show_latest_pretty_prints_bench(self, tmp_path, capsys):
        history = _ledger(tmp_path, n=2)
        assert main(["history", "--history-dir", history.root, "show"]) == 0
        out = capsys.readouterr().out
        assert "bench (repro-bench/1)" in out
        assert "converta" in out

    def test_show_by_prefix_and_json(self, tmp_path, capsys):
        history = _ledger(tmp_path, n=2)
        target = history.entries()[0].file
        assert (
            main(
                [
                    "history",
                    "--history-dir",
                    history.root,
                    "show",
                    target[:12],
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-run-history/1"

    def test_show_missing_entry(self, tmp_path, capsys):
        history = _ledger(tmp_path, n=1)
        assert (
            main(["history", "--history-dir", history.root, "show", "nope"])
            == 2
        )
        assert "no ledger entry" in capsys.readouterr().err

    def test_prune_dry_run_then_real(self, tmp_path, capsys):
        history = _ledger(tmp_path, n=5)
        assert (
            main(
                [
                    "history",
                    "--history-dir",
                    history.root,
                    "prune",
                    "--keep-last",
                    "2",
                    "--dry-run",
                ]
            )
            == 0
        )
        assert "would remove 3" in capsys.readouterr().out
        assert len(history.entries()) == 5
        assert (
            main(
                [
                    "history",
                    "--history-dir",
                    history.root,
                    "prune",
                    "--keep-last",
                    "2",
                ]
            )
            == 0
        )
        assert "removed 3" in capsys.readouterr().out
        assert len(history.entries()) == 2


class TestRegressRatchetCli:
    def test_propose_writes_schema_valid_proposal(self, tmp_path, capsys):
        history = _ledger(tmp_path)
        out = tmp_path / "ratchet.json"
        assert (
            main(
                [
                    "regress",
                    "--propose-ratchet",
                    "--history-dir",
                    history.root,
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-ratchet/1"
        assert doc["tightened"] >= 1
        # every proposal row carries its evidence
        assert all(row["circuits"] for row in doc["phases"])

    def test_apply_tightens_the_config(self, tmp_path, capsys):
        history = _ledger(tmp_path)
        proposal = tmp_path / "ratchet.json"
        config = tmp_path / "thresholds.json"
        save_threshold_config(ThresholdPolicy(), str(config))
        assert (
            main(
                [
                    "regress",
                    "--propose-ratchet",
                    "--history-dir",
                    history.root,
                    "--thresholds",
                    str(config),
                    "-o",
                    str(proposal),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "regress",
                    "--apply-ratchet",
                    str(proposal),
                    "--thresholds",
                    str(config),
                ]
            )
            == 0
        )
        doc = json.loads(config.read_text())
        assert doc["schema"] == "repro-thresholds/1"
        assert doc["phases"]  # overrides landed
        for band in doc["phases"].values():
            assert band["rel"] <= 0.25 and band["abs_s"] <= 0.005
        assert doc["provenance"]["allow_loosen"] is False

    def test_apply_refuses_to_loosen(self, tmp_path, capsys):
        history = _ledger(tmp_path)
        proposal = tmp_path / "ratchet.json"
        config = tmp_path / "thresholds.json"
        # a hand-tightened config the measured noise cannot support
        save_threshold_config(
            ThresholdPolicy(default=Thresholds(rel=0.001, abs_s=0.000001)),
            str(config),
        )
        main(
            [
                "regress",
                "--propose-ratchet",
                "--history-dir",
                history.root,
                "--thresholds",
                str(config),
                "-o",
                str(proposal),
            ]
        )
        before = config.read_text()
        assert (
            main(
                [
                    "regress",
                    "--apply-ratchet",
                    str(proposal),
                    "--thresholds",
                    str(config),
                ]
            )
            == 2
        )
        assert "loosen" in capsys.readouterr().err
        assert config.read_text() == before  # refused = untouched
        # --allow-loosen accepts the same proposal
        assert (
            main(
                [
                    "regress",
                    "--apply-ratchet",
                    str(proposal),
                    "--thresholds",
                    str(config),
                    "--allow-loosen",
                ]
            )
            == 0
        )
        doc = json.loads(config.read_text())
        assert doc["provenance"]["allow_loosen"] is True

    def test_baseline_still_required_without_ratchet(self, capsys):
        assert main(["regress", "--no-history"]) == 2
        assert "--baseline is required" in capsys.readouterr().err
