"""The pipeline cache's CLI surface: ``--cache-dir``/``--no-cache`` on
the synthesis commands, the ``repro cache`` maintenance subcommands,
and the fuzzer's cache-bypass guarantee.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs import get_tracer
from repro.obs.trace import Tracer, set_tracer
from repro.pipeline import ArtifactStore

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


@pytest.fixture()
def gfile(tmp_path) -> pathlib.Path:
    p = tmp_path / "celem.g"
    p.write_text(CELEM_G)
    return p


@pytest.fixture()
def cache_dir(tmp_path) -> str:
    return str(tmp_path / "cache")


@pytest.fixture(autouse=True)
def _hermetic_env(monkeypatch):
    """No ambient cache leaks into (or out of) these tests."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestSynthCaching:
    def test_warm_synth_output_is_identical(self, gfile, cache_dir, capsys):
        assert main(["synth", str(gfile), "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert main(["synth", str(gfile), "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert "N-SHOT circuit" in warm

    def test_cache_dir_is_populated(self, gfile, cache_dir, capsys):
        main(["synth", str(gfile), "--cache-dir", cache_dir])
        stats = ArtifactStore(cache_dir).stats()
        assert stats["entries"] > 0
        assert "delays" in stats["by_stage"]

    def test_no_cache_flag_stays_hermetic(self, gfile, cache_dir,
                                          monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["synth", str(gfile), "--no-cache"]) == 0
        assert ArtifactStore(cache_dir).stats()["entries"] == 0

    def test_env_var_default(self, gfile, cache_dir, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["synth", str(gfile)]) == 0
        assert ArtifactStore(cache_dir).stats()["entries"] > 0

    def test_cached_and_uncached_output_match(self, gfile, cache_dir, capsys):
        assert main(["synth", str(gfile)]) == 0
        plain = capsys.readouterr().out
        main(["synth", str(gfile), "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["synth", str(gfile), "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == plain


class TestCompareSpans:
    def _spans(self, argv):
        """Run the CLI under an enabled ambient tracer; return spans."""
        old = get_tracer()
        tr = set_tracer(Tracer(enabled=True))
        try:
            assert main(argv) == 0
        finally:
            set_tracer(old)
        return tr.spans()

    def test_compare_builds_the_sg_exactly_once(self, gfile, capsys):
        """Six flows, one run object: the parse/SG-build stage resolves
        once and every flow reuses the memoized artifact."""
        spans = self._spans(["compare", str(gfile)])
        builds = [
            s for s in spans
            if s.name == "pipeline.stage" and s.attrs.get("stage") == "sg-build"
        ]
        assert len(builds) == 1
        parses = [
            s for s in spans
            if s.name == "pipeline.stage" and s.attrs.get("stage") == "parse"
        ]
        assert len(parses) <= 1

    def test_synth_stage_spans_carry_outcomes(self, gfile, cache_dir, capsys):
        cold = self._spans(["synth", str(gfile), "--cache-dir", cache_dir])
        outcomes = {
            s.attrs["stage"]: s.attrs["outcome"]
            for s in cold if s.name == "pipeline.stage"
        }
        assert outcomes and set(outcomes.values()) == {"miss"}
        warm = self._spans(["synth", str(gfile), "--cache-dir", cache_dir])
        outcomes = {
            s.attrs["stage"]: s.attrs["outcome"]
            for s in warm if s.name == "pipeline.stage"
        }
        assert outcomes and set(outcomes.values()) == {"hit"}


class TestCacheSubcommand:
    def _populate(self, gfile, cache_dir, capsys):
        main(["synth", str(gfile), "--cache-dir", cache_dir])
        capsys.readouterr()

    def test_no_directory_is_an_error(self, capsys):
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_stats_text(self, gfile, cache_dir, capsys):
        self._populate(gfile, cache_dir, capsys)
        assert main(["cache", "--cache-dir", cache_dir, "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "delays" in out

    def test_stats_json(self, gfile, cache_dir, capsys):
        self._populate(gfile, cache_dir, capsys)
        assert main(["cache", "--cache-dir", cache_dir, "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] > 0
        assert "by_stage" in doc and "session" in doc

    def test_stats_honours_env_var(self, gfile, cache_dir, monkeypatch, capsys):
        self._populate(gfile, cache_dir, capsys)
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["cache", "stats", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] > 0

    def test_ls(self, gfile, cache_dir, capsys):
        self._populate(gfile, cache_dir, capsys)
        assert main(["cache", "--cache-dir", cache_dir, "ls"]) == 0
        out = capsys.readouterr().out
        assert "sg-build" in out and "celem" in out

    def test_ls_empty(self, cache_dir, capsys):
        assert main(["cache", "--cache-dir", cache_dir, "ls"]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_gc_requires_a_bound(self, cache_dir, capsys):
        assert main(["cache", "--cache-dir", cache_dir, "gc"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_gc_size_bound_then_warm_run_still_works(
        self, gfile, cache_dir, capsys
    ):
        """The acceptance property: gc enforces the bound and a
        subsequent run repopulates and reproduces identical output."""
        self._populate(gfile, cache_dir, capsys)
        baseline = None
        assert main(["synth", str(gfile), "--cache-dir", cache_dir]) == 0
        baseline = capsys.readouterr().out
        assert main(
            ["cache", "--cache-dir", cache_dir, "gc", "--max-bytes", "1"]
        ) == 0
        assert "evicted" in capsys.readouterr().out
        assert ArtifactStore(cache_dir).stats()["entries"] == 0
        assert main(["synth", str(gfile), "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == baseline

    def test_gc_json(self, gfile, cache_dir, capsys):
        self._populate(gfile, cache_dir, capsys)
        assert main(
            ["cache", "--cache-dir", cache_dir, "gc", "--max-bytes", "1",
             "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["evicted"] > 0 and doc["kept"] == 0

    def test_gc_age_bound_keeps_fresh_entries(self, gfile, cache_dir, capsys):
        self._populate(gfile, cache_dir, capsys)
        before = ArtifactStore(cache_dir).stats()["entries"]
        assert main(
            ["cache", "--cache-dir", cache_dir, "gc", "--max-age", "7d"]
        ) == 0
        assert ArtifactStore(cache_dir).stats()["entries"] == before

    def test_clear(self, gfile, cache_dir, capsys):
        self._populate(gfile, cache_dir, capsys)
        assert main(["cache", "--cache-dir", cache_dir, "clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert ArtifactStore(cache_dir).stats()["entries"] == 0


class TestCompareAndLintCaching:
    def test_warm_compare_output_is_identical(self, gfile, cache_dir, capsys):
        assert main(["compare", str(gfile), "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert main(["compare", str(gfile), "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == cold

    def test_warm_lint_output_is_identical(self, gfile, cache_dir, capsys):
        assert main(["lint", str(gfile), "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert main(["lint", str(gfile), "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == cold
        assert ArtifactStore(cache_dir).stats()["entries"] > 0


class TestBenchCaching:
    def test_bench_reports_cache_block(self, cache_dir, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert main(
            ["bench", "chu172", "--quick", "--cache-dir", cache_dir,
             "--no-history", "-o", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["cache"]["dir"] == str(pathlib.Path(cache_dir).resolve())
        assert doc["cache"]["misses"] > 0
        entry = doc["circuits"][0]
        assert entry["cache"]["misses"] >= 0
        # warm: the second document is nearly all hits
        assert main(
            ["bench", "chu172", "--quick", "--cache-dir", cache_dir,
             "--no-history", "-o", str(out)]
        ) == 0
        warm = json.loads(out.read_text())
        assert warm["cache"]["hit_rate"] >= 0.9

    def test_bench_without_store_has_no_cache_block(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert main(
            ["bench", "chu172", "--quick", "--no-history", "-o", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert "cache" not in doc
        assert "cache" not in doc["circuits"][0]


class TestFuzzBypass:
    def test_run_flow_is_cache_bypassed(self, monkeypatch):
        """The fuzzer's crash-contained flows must never touch a
        pipeline cache — record the bypass flag at dispatch time."""
        from repro.fuzz import differential
        from repro.pipeline import cache_bypassed
        from repro.stg import elaborate, parse_g

        seen = []
        real = differential._dispatch

        def spy(flow, sg, name):
            seen.append(cache_bypassed())
            return real(flow, sg, name)

        monkeypatch.setattr(differential, "_dispatch", spy)
        sg = elaborate(parse_g(CELEM_G))
        outcome = differential.run_flow("nshot", sg, name="celem")
        assert outcome.status == "ok"
        assert seen == [True]

    def test_run_flow_leaves_ambient_cache_empty(
        self, cache_dir, monkeypatch
    ):
        """Even with REPRO_CACHE_DIR set, a fuzz flow writes nothing."""
        from repro.fuzz.differential import run_flow
        from repro.stg import elaborate, parse_g

        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        sg = elaborate(parse_g(CELEM_G))
        assert run_flow("nshot", sg, name="celem").status == "ok"
        assert ArtifactStore(cache_dir).stats()["entries"] == 0
