"""The append-only run-history registry."""

import json

import pytest

from repro.obs.registry import (
    HISTORY_SCHEMA,
    RunHistory,
    fingerprint_digest,
)

ENV = {
    "python": "3.12.0",
    "implementation": "CPython",
    "platform": "Linux-x86_64",
    "machine": "x86_64",
    "cpu_count": 8,
    "git_sha": "deadbeefcafe0123456789aa",
    "argv": ["repro", "bench"],
}


def _doc(sha="deadbeefcafe0123456789aa", created="2026-08-06T12:00:00Z"):
    return {
        "schema": "repro-bench/1",
        "created_utc": created,
        "env": {**ENV, "git_sha": sha},
        "circuits": [],
    }


class TestFingerprint:
    def test_stable(self):
        assert fingerprint_digest(ENV) == fingerprint_digest(dict(ENV))

    def test_ignores_run_identity(self):
        """Same machine, different run → same digest."""
        other = {**ENV, "git_sha": "ffff", "argv": ["repro", "regress"]}
        assert fingerprint_digest(ENV) == fingerprint_digest(other)

    def test_machine_changes_digest(self):
        assert fingerprint_digest(ENV) != fingerprint_digest(
            {**ENV, "cpu_count": 64}
        )

    def test_none_env(self):
        assert len(fingerprint_digest(None)) == 12

    def test_cross_process_stability(self):
        """Same interpreter on the same box → the same digest in every
        process, so history entries from separate CI steps correlate."""
        import os
        import pathlib
        import subprocess
        import sys

        from repro.obs.harness import environment_fingerprint

        local = fingerprint_digest(environment_fingerprint())
        root = pathlib.Path(__file__).resolve().parents[1]
        env = {
            **os.environ,
            "PYTHONPATH": str(root / "src"),
            # hash randomization must not leak into the digest
            "PYTHONHASHSEED": "random",
        }
        snippet = (
            "from repro.obs.harness import environment_fingerprint; "
            "from repro.obs.registry import fingerprint_digest; "
            "print(fingerprint_digest(environment_fingerprint()))"
        )
        digests = [
            subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
                env=env, cwd=root,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert digests[0] == digests[1] == local


class TestAppend:
    def test_round_trip(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        entry = hist.append("bench", _doc())
        assert entry.kind == "bench"
        assert entry.git_sha.startswith("deadbeef")
        loaded = hist.load(entry)
        assert loaded["schema"] == HISTORY_SCHEMA
        assert loaded["doc"]["schema"] == "repro-bench/1"
        assert loaded["env_digest"] == fingerprint_digest(ENV)

    def test_duplicate_append_deduplicated(self, tmp_path):
        """Same kind + SHA + fingerprint + timestamp → one entry."""
        hist = RunHistory(str(tmp_path / "h"))
        a = hist.append("bench", _doc())
        b = hist.append("bench", _doc())
        assert b == a
        assert len(hist.entries()) == 1
        assert len(list((tmp_path / "h").glob("*.json"))) == 1

    def test_distinct_timestamps_not_deduplicated(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        a = hist.append("bench", _doc(created="2026-08-06T12:00:00Z"))
        b = hist.append("bench", _doc(created="2026-08-06T12:00:01Z"))
        assert a.file != b.file
        assert len(hist.entries()) == 2

    def test_distinct_sha_not_deduplicated(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        hist.append("bench", _doc(sha="aaaaaaaaaaaa"))
        hist.append("bench", _doc(sha="bbbbbbbbbbbb"))
        assert len(hist.entries()) == 2

    def test_distinct_kind_not_deduplicated(self, tmp_path):
        """The same document stored under two kinds is two runs."""
        hist = RunHistory(str(tmp_path / "h"))
        hist.append("bench", _doc())
        hist.append("regress", _doc())
        assert len(hist.entries()) == 2

    def test_kind_filter_and_latest(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        hist.append("bench", _doc(created="2026-08-06T10:00:00Z"))
        last = hist.append("regress", _doc(created="2026-08-06T11:00:00Z"))
        assert [e.kind for e in hist.entries("regress")] == ["regress"]
        assert hist.latest().file == last.file
        assert hist.latest("bench").kind == "bench"

    def test_regress_doc_env_under_current(self, tmp_path):
        """Regress documents nest env inside ``current``."""
        hist = RunHistory(str(tmp_path / "h"))
        entry = hist.append(
            "regress",
            {"schema": "repro-regress/1", "current": {"env": ENV}},
        )
        assert entry.git_sha == ENV["git_sha"]

    def test_bad_kind_rejected(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        with pytest.raises(ValueError):
            hist.append("../escape", _doc())

    def test_for_sha(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        hist.append("bench", _doc(sha="aaaaaaaaaaaa"))
        hist.append("bench", _doc(sha="bbbbbbbbbbbb"))
        assert len(hist.for_sha("aaaaaaa")) == 1
        with pytest.raises(ValueError):
            hist.for_sha("aaa")  # too short to be unambiguous


class TestReaderTolerance:
    def test_empty_store(self, tmp_path):
        hist = RunHistory(str(tmp_path / "missing"))
        assert hist.entries() == []
        assert hist.latest() is None

    def test_torn_index_line_skipped(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        hist.append("bench", _doc(created="2026-08-06T12:00:00Z"))
        with open(hist.index_path, "a") as f:
            f.write('{"file": "half-writ')  # crashed writer
        hist.append("bench", _doc(created="2026-08-06T12:00:01Z"))
        assert len(hist.entries()) == 2

    def test_load_rejects_foreign_file(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        hist.append("bench", _doc())
        stray = tmp_path / "h" / "stray.json"
        stray.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="envelope"):
            hist.load("stray.json")

    def test_scan_counts_torn_lines(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        hist.append("bench", _doc(created="2026-08-06T12:00:00Z"))
        with open(hist.index_path, "a") as f:
            f.write('{"file": "half-writ\n{also torn\n')
        entries, torn = hist.scan()
        assert len(entries) == 1
        assert torn == 2


class TestPrune:
    def _fill(self, hist, n, kind="bench"):
        for i in range(n):
            hist.append(kind, _doc(created=f"2026-08-06T12:00:{i:02d}Z"))

    def test_keep_last_per_kind(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        self._fill(hist, 5)
        report = hist.prune(keep_last=2)
        assert len(report.removed) == 3
        assert len(hist.entries()) == 2
        # the removed files are really gone
        import os

        for name in report.removed:
            assert not os.path.exists(os.path.join(hist.root, name))

    def test_kind_filter_leaves_other_kinds(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        self._fill(hist, 4, kind="bench")
        self._fill(hist, 4, kind="profile")
        hist.prune(keep_last=1, kind="profile")
        assert len(hist.entries("bench")) == 4
        assert len(hist.entries("profile")) == 1

    def test_dry_run_touches_nothing(self, tmp_path):
        hist = RunHistory(str(tmp_path / "h"))
        self._fill(hist, 4)
        report = hist.prune(keep_last=1, dry_run=True)
        assert report.dry_run and len(report.removed) == 3
        assert len(hist.entries()) == 4

    def test_keep_last_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            RunHistory(str(tmp_path / "h")).prune(keep_last=0)

    def test_referenced_baselines_survive(self, tmp_path):
        """An old bench a regress run compared against, and the profile
        file its hotspot deltas came from, must survive any prune."""
        hist = RunHistory(str(tmp_path / "h"))
        old_bench = hist.append("bench", _doc(created="2026-08-06T12:00:00Z"))
        profile = hist.append(
            "profile",
            {
                "schema": "repro-profile/1",
                "created_utc": "2026-08-06T12:00:01Z",
                "env": ENV,
                "functions": [],
            },
        )
        self._fill(hist, 5)  # newer benches push the old one past keep-last
        hist.append(
            "regress",
            {
                "schema": "repro-regress/1",
                "created_utc": "2026-08-06T12:01:00Z",
                "env": ENV,
                "baseline": {
                    "created_utc": "2026-08-06T12:00:00Z",
                    "git_sha": ENV["git_sha"],
                },
                "profile_baseline": profile.file,
            },
        )
        report = hist.prune(keep_last=1)
        kept = {e.file for e in hist.entries()}
        assert old_bench.file in kept
        assert profile.file in kept
        assert old_bench.file in report.protected
