"""Counters, gauges, histograms, and the registry merge semantics."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    percentile,
    set_metrics,
)


class TestPercentile:
    def test_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(vals, 0.5) == 5.0
        assert percentile(vals, 0.9) == 9.0
        assert percentile(vals, 0.0) == 1.0
        assert percentile(vals, 1.0) == 10.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_result_is_an_observed_sample(self):
        vals = [3.0, 1.0, 4.0, 1.5, 9.0]
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert percentile(vals, q) in vals

    def test_errors(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 1.5)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.add()
        c.add(4)
        c.inc()
        assert c.value == 6

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_histogram_summary(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == 50.0
        assert s["p90"] == 90.0
        assert s["p99"] == 99.0

    def test_empty_histogram_summary(self):
        assert Histogram().summary() == {"count": 0}

    def test_counter_thread_safety(self):
        c = Counter()
        n_threads, n_incs = 8, 1000

        def work():
            for _ in range(n_incs):
                c.add()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs


class TestRegistry:
    def test_instruments_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.counter("a") is not reg.counter("b")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("sim.events").add(10)
        reg.gauge("states").set(20)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"sim.events": 10}
        assert snap["gauges"] == {"states": 20}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").add(5)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_merge_semantics(self):
        """Counters add, gauges last-write-wins, histograms concatenate —
        the contract the campaign's worker merge relies on."""
        a = MetricsRegistry()
        a.counter("events").add(10)
        a.gauge("states").set(5)
        a.histogram("lat").observe(1.0)

        b = MetricsRegistry()
        b.counter("events").add(3)
        b.counter("only_b").add(1)
        b.gauge("states").set(9)
        b.histogram("lat").observe(2.0)

        a.merge(b.export())
        snap = a.snapshot()
        assert snap["counters"] == {"events": 13, "only_b": 1}
        assert snap["gauges"] == {"states": 9}
        assert snap["histograms"]["lat"]["count"] == 2
        assert snap["histograms"]["lat"]["max"] == 2.0

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("c").add(1)
        reg.merge(None)
        assert reg.snapshot()["counters"] == {"c": 1}

    def test_export_is_picklable_raw_samples(self):
        import pickle

        reg = MetricsRegistry()
        reg.histogram("lat").observe(1.5)
        exported = reg.export()
        assert exported["histograms"] == {"lat": [1.5]}
        assert pickle.loads(pickle.dumps(exported)) == exported

    def test_global_registry_swap_and_restore(self):
        prev = get_metrics()
        fresh = MetricsRegistry()
        try:
            assert set_metrics(fresh) is fresh
            assert get_metrics() is fresh
        finally:
            set_metrics(prev)
        assert get_metrics() is prev
