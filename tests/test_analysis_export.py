"""Exporter tests: text report, ``repro-lint/1`` JSON and SARIF 2.1.0
structural validity."""

from __future__ import annotations

import json

from repro.analysis import (
    analyze,
    default_registry,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.export import LINT_SCHEMA, SARIF_VERSION
from repro.bench.circuits import figure1_sg


def _results(celem_sg):
    return [
        analyze(celem_sg, name="celem", source="celem.g"),
        analyze(figure1_sg(), name="figure1"),
    ]


class TestText:
    def test_contains_findings_and_summaries(self, celem_sg):
        text = render_text(_results(celem_sg))
        assert "SG002" in text
        assert "celem: clean" in text
        assert "figure1: 4 error(s)" in text
        assert "total: 4 error(s)" in text

    def test_verbose_lists_clean_targets(self, celem_sg):
        text = render_text([analyze(celem_sg, name="celem")], verbose=True)
        assert "── celem ──" in text


class TestJson:
    def test_schema_and_shape(self, celem_sg):
        doc = json.loads(render_json(_results(celem_sg)))
        assert doc["schema"] == LINT_SCHEMA == "repro-lint/1"
        assert doc["totals"]["targets"] == 2
        assert doc["totals"]["errors"] == 4

        celem, figure1 = doc["targets"]
        assert celem["name"] == "celem"
        assert celem["diagnostics"] == []
        assert celem["scopes_run"] == ["sg", "cover", "netlist"]
        assert figure1["scopes_skipped"] == ["cover", "netlist"]

        diag = figure1["diagnostics"][0]
        assert diag["rule"] == "SG002"
        assert diag["severity"] == "error"
        assert diag["location"]["kind"] == "state-pair"
        assert "hint" in diag

        # the full rule catalog rides along for consumers
        ids = [r["id"] for r in doc["rules"]]
        assert ids == default_registry().ids()


class TestSarif:
    def test_required_210_fields(self, celem_sg):
        doc = json.loads(render_sarif(_results(celem_sg)))
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        assert len(doc["runs"]) == 1

        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == default_registry().ids()
        for r in driver["rules"]:
            assert r["shortDescription"]["text"]
            assert r["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )

        results = doc["runs"][0]["results"]
        assert len(results) == 4
        for entry in results:
            assert entry["ruleId"] == "SG002"
            assert entry["level"] == "error"
            assert entry["message"]["text"].startswith("figure1: ")
            # ruleIndex must agree with the driver rules array
            assert driver["rules"][entry["ruleIndex"]]["id"] == entry["ruleId"]
            (loc,) = entry["locations"]
            (logical,) = loc["logicalLocations"]
            assert logical["fullyQualifiedName"].startswith("figure1::")

    def test_physical_location_for_file_targets(self, celem_sg):
        celem_sg._code[next(iter(celem_sg.states()))] ^= 0b111
        result = analyze(
            celem_sg, name="bad", source="specs/bad.g", select={"SG001"}
        )
        doc = json.loads(render_sarif([result]))
        entry = doc["runs"][0]["results"][0]
        uri = entry["locations"][0]["physicalLocation"]["artifactLocation"][
            "uri"
        ]
        assert uri == "specs/bad.g"
