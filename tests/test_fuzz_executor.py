"""Tests for the shared watchdog-guarded worker pool."""

from __future__ import annotations

import os
import time

import pytest

from repro.fuzz.executor import (
    ExecutorPolicy,
    ExecutorReport,
    TaskResult,
    WallClockTimeout,
    run_tasks,
    wall_clock_guard,
)


# --- module-level task functions (must pickle for the pool) -----------
def _square(x):
    return x * x


def _maybe_fail(x):
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x


def _die(x):
    if x == "die":
        os._exit(17)  # simulated segfault: bypasses all Python cleanup
    return x


def _hang(x):
    if x == "hang":
        time.sleep(60)
    return x


_FLAKY_STATE = {"calls": 0}


def _unpicklable(_x):
    return lambda: None  # closures do not pickle


class TestInline:
    def test_all_ok(self):
        report = run_tasks(_square, [1, 2, 3])
        assert [r.status for r in report.results] == ["ok"] * 3
        assert report.values() == [1, 4, 9]
        assert not report.truncated

    def test_error_contained_in_order(self):
        report = run_tasks(_maybe_fail, [0, 1, 2, 3])
        assert [r.status for r in report.results] == ["ok", "error", "ok", "error"]
        assert "ValueError: odd payload 1" in report.results[1].detail
        assert report.counts()["error"] == 2

    def test_timeout_via_sigalrm(self):
        policy = ExecutorPolicy(task_timeout=0.2)
        report = run_tasks(_hang, ["hang", "fast"], policy)
        assert report.results[0].status == "timeout"
        assert report.results[1].status == "ok"

    def test_retries_error_with_attempts_recorded(self):
        policy = ExecutorPolicy(retries=2, backoff=0.001)
        report = run_tasks(_maybe_fail, [1], policy)
        assert report.results[0].status == "error"
        assert report.results[0].attempts == 3

    def test_empty_batch(self):
        report = run_tasks(_square, [])
        assert report.results == []

    def test_wall_clock_guard_raises(self):
        with pytest.raises(WallClockTimeout):
            with wall_clock_guard(0.05):
                time.sleep(5)

    def test_wall_clock_guard_disabled(self):
        with wall_clock_guard(None):
            pass
        with wall_clock_guard(0):
            pass


class TestPool:
    def test_all_ok_in_submission_order(self):
        policy = ExecutorPolicy(jobs=3)
        report = run_tasks(_square, list(range(10)), policy)
        assert report.values() == [x * x for x in range(10)]
        assert not report.truncated

    def test_error_contained(self):
        policy = ExecutorPolicy(jobs=2)
        report = run_tasks(_maybe_fail, [0, 1, 2, 3], policy)
        assert [r.status for r in report.results] == ["ok", "error", "ok", "error"]

    def test_worker_death_is_crashed_and_pool_survives(self):
        policy = ExecutorPolicy(jobs=2)
        report = run_tasks(_die, ["a", "die", "b", "c"], policy)
        by_status = {r.status for r in report.results}
        assert report.results[1].status == "crashed"
        assert "exit code" in report.results[1].detail
        # the other tasks still completed on respawned/live workers
        assert [r.status for i, r in enumerate(report.results) if i != 1] == ["ok"] * 3
        assert by_status == {"ok", "crashed"}

    def test_stuck_worker_killed_on_deadline(self):
        policy = ExecutorPolicy(jobs=2, task_timeout=0.5)
        t0 = time.monotonic()
        report = run_tasks(_hang, ["hang", "x", "y"], policy)
        assert time.monotonic() - t0 < 30
        assert report.results[0].status == "timeout"
        assert report.results[1].status == "ok"
        assert report.results[2].status == "ok"

    def test_crash_retry_exhaustion(self):
        # NB: a single payload would run inline and _die would take the
        # test process with it — two payloads force the pool
        policy = ExecutorPolicy(jobs=2, retries=1, backoff=0.001)
        report = run_tasks(_die, ["die", "ok"], policy)
        assert report.results[0].status == "crashed"
        assert report.results[0].attempts == 2

    def test_unpicklable_result_is_error_not_hang(self):
        policy = ExecutorPolicy(jobs=2)
        report = run_tasks(_unpicklable, [1, 2], policy)
        assert all(r.status == "error" for r in report.results)
        assert "not sendable" in report.results[0].detail


class TestReportShape:
    def test_counts_cover_all_statuses(self):
        report = ExecutorReport(
            results=[TaskResult(0, "ok"), TaskResult(1, "cancelled")]
        )
        counts = report.counts()
        assert counts["ok"] == 1 and counts["cancelled"] == 1
        assert set(counts) == {"ok", "error", "timeout", "crashed", "cancelled"}
