"""Tests for VCD export, DOT export and the Figure 5 structural cell."""

import pytest

from repro.bench.circuits import figure1_csc_sg
from repro.core import synthesize
from repro.netlist import build_mhs_cell
from repro.sg import netlist_to_dot, sg_to_dot, signal_regions
from repro.sim import SGEnvironment, SimConfig, Simulator, TraceSet, write_vcd


class TestVcd:
    def _traces(self) -> tuple:
        sg = figure1_csc_sg()
        circuit = synthesize(sg, delay_spread=0.45)
        sim = Simulator(circuit.netlist, SimConfig(jitter=0.45, seed=3))
        env = SGEnvironment(sg, sim, seed=3)
        env.run(max_time=200.0, max_transitions=20)
        return sim.traces, circuit

    def test_header_and_definitions(self):
        traces, _ = self._traces()
        vcd = write_vcd(traces, nets=["a", "b", "c"])
        assert "$timescale 1ps $end" in vcd
        assert vcd.count("$var wire 1") == 3
        assert "$enddefinitions $end" in vcd

    def test_initial_dump_and_changes(self):
        traces, _ = self._traces()
        vcd = write_vcd(traces, nets=["c"])
        assert "$dumpvars" in vcd
        # the output transitions at least once -> at least one timestamp
        assert "#" in vcd

    def test_times_sorted(self):
        traces, _ = self._traces()
        vcd = write_vcd(traces)
        times = [int(l[1:]) for l in vcd.splitlines() if l.startswith("#")]
        assert times == sorted(times)

    def test_unknown_net_defaults_low(self):
        ts = TraceSet()
        ts.record("x", 0.0, 1)
        vcd = write_vcd(ts, nets=["x", "ghost"])
        assert "$var wire 1" in vcd

    def test_identifier_uniqueness_many_nets(self):
        ts = TraceSet()
        names = [f"n{i}" for i in range(200)]
        for n in names:
            ts.record(n, 0.0, 0)
        vcd = write_vcd(ts, nets=names)
        # "$var wire 1 <id> <name> $end" — the id is field 3
        codes = [
            line.split()[3]
            for line in vcd.splitlines()
            if line.startswith("$var")
        ]
        assert len(codes) == len(names)
        assert len(set(codes)) == len(codes)


class TestDot:
    def test_sg_dot_nodes_and_arcs(self, celem_sg):
        dot = sg_to_dot(celem_sg, title="celem")
        assert dot.count("->") >= celem_sg.num_states  # cyclic SG
        assert "1*1*1" in dot or "110*" in dot
        assert 'label="celem"' in dot

    def test_region_coloring(self, celem_sg):
        c = celem_sg.signal_index("c")
        regions = signal_regions(celem_sg, c)
        dot = sg_to_dot(celem_sg, regions.excitation + regions.quiescent)
        assert "fillcolor" in dot

    def test_initial_state_highlighted(self, celem_sg):
        assert "penwidth=2" in sg_to_dot(celem_sg)

    def test_netlist_dot(self, celem_sg):
        circuit = synthesize(celem_sg)
        dot = netlist_to_dot(circuit.netlist, title="fig3")
        assert "mhs_c" in dot
        assert "box3d" in dot          # the flip-flop shape
        assert "doublecircle" in dot   # output port

    def test_inverted_pins_dashed(self, celem_sg):
        circuit = synthesize(celem_sg)
        dot = netlist_to_dot(circuit.netlist)
        assert "style=dashed" in dot   # the reset plane's input bubbles


class TestMhsCell:
    def test_structure(self):
        cell = build_mhs_cell()
        assert cell.validate() == []
        stages = [g.attrs.get("stage") for g in cell.gates]
        assert stages == ["master", "filter", "filter", "slave"]

    def test_filter_marked_degenerated(self):
        cell = build_mhs_cell()
        filters = [g for g in cell.gates if g.attrs.get("stage") == "filter"]
        assert all(g.attrs.get("degenerated") for g in filters)

    def test_signal_flow_master_to_slave(self):
        cell = build_mhs_cell()
        slave = next(g for g in cell.gates if g.name == "slave")
        assert {p.net for p in slave.inputs} == {"slave_set", "slave_reset"}
        fs = cell.driver("slave_set")
        assert fs is not None and fs.attrs.get("stage") == "filter"
        master = cell.driver(fs.inputs[0].net)
        assert master is not None and master.attrs.get("stage") == "master"
