"""Tests for dynamic performance measurement."""

import math

import pytest

from repro.baselines import synthesize_beerel
from repro.core import synthesize
from repro.sim import measure_performance


class TestMeasurePerformance:
    def test_conformant_and_populated(self, handshake_sg):
        circuit = synthesize(handshake_sg)
        report = measure_performance(circuit.netlist, handshake_sg, runs=2)
        assert report.conformant
        assert report.transitions > 0
        assert report.response_times  # y measured
        assert not math.isnan(report.mean_response())

    def test_response_bounded_by_static_path(self, celem_sg):
        circuit = synthesize(celem_sg)
        report = measure_performance(circuit.netlist, celem_sg, runs=3)
        assert report.mean_response() <= circuit.stats().delay + 1e-9

    def test_ordering_vs_baseline(self, celem_sg):
        ours = synthesize(celem_sg)
        syn = synthesize_beerel(celem_sg)
        p_ours = measure_performance(ours.netlist, celem_sg)
        p_syn = measure_performance(syn.netlist, celem_sg)
        assert p_ours.conformant and p_syn.conformant
        assert p_ours.mean_response() < p_syn.mean_response() + 1e-9

    def test_cycle_times_recorded(self, handshake_sg):
        circuit = synthesize(handshake_sg)
        report = measure_performance(
            circuit.netlist, handshake_sg, runs=1, max_transitions=40
        )
        cyc = report.mean_cycle("y")
        assert not math.isnan(cyc)
        assert cyc > 0

    def test_jitter_slows_mean_response(self, celem_sg):
        """Worst-case-bounded jitter can only stretch the average."""
        circuit = synthesize(celem_sg, delay_spread=0.45)
        calm = measure_performance(circuit.netlist, celem_sg, jitter=0.0, runs=2)
        noisy = measure_performance(
            circuit.netlist, celem_sg, jitter=0.45, runs=2, base_seed=7
        )
        assert calm.conformant and noisy.conformant
        # the comparison is statistical; allow slack but expect the
        # jittered mean not to be dramatically faster
        assert noisy.mean_response() > calm.mean_response() * 0.6

    def test_summary_text(self, handshake_sg):
        circuit = synthesize(handshake_sg)
        report = measure_performance(circuit.netlist, handshake_sg, runs=1)
        assert "mean response" in report.summary()

    def test_missing_signal_is_nan(self, handshake_sg):
        circuit = synthesize(handshake_sg)
        report = measure_performance(circuit.netlist, handshake_sg, runs=1)
        assert math.isnan(report.mean_cycle("nonexistent"))
