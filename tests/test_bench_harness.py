"""The machine-readable benchmark harness and its CLI surface.

``repro bench`` must emit a document that validates against the
``repro-bench/1`` schema it documents, and ``--profile`` must render
the *same* tracer spans the harness aggregates — there is no second
timing path to drift out of sync.
"""

import json
import pathlib
import re

import pytest

from repro.cli import main
from repro.obs import get_metrics, get_tracer
from repro.obs.harness import (
    BENCH_SCHEMA,
    WORK_METRICS,
    bench_circuit,
    default_bench_path,
    environment_fingerprint,
    quick_circuits,
    run_bench,
    validate_bench,
    write_bench,
)

CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


@pytest.fixture()
def gfile(tmp_path) -> pathlib.Path:
    p = tmp_path / "celem.g"
    p.write_text(CELEM_G)
    return p


@pytest.fixture(scope="module")
def quick_doc():
    """One shared quick bench document (each measurement is cheap but
    not free; the schema assertions below all read the same run)."""
    return run_bench(circuits=["chu172"], quick=True)


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
class TestBenchCircuit:
    def test_entry_shape_and_phase_coverage(self):
        entry, tracer = bench_circuit("chu172", runs=2, verify_runs=1)
        assert entry["name"] == "chu172"
        assert entry["runs"] == 2
        assert entry["states"] > 0
        # the end-to-end pipeline phases all show up by name
        for phase in ("synthesize", "sop-derivation", "regions",
                      "minimize", "netlist-build", "verify", "oracle"):
            assert phase in entry["phases"], f"missing phase {phase}"
            p = entry["phases"][phase]
            assert p["median_s"] >= 0.0
            assert p["p90_s"] >= p["median_s"]
            assert p["calls"] >= 1
        assert entry["total"]["median_s"] > 0.0
        # the returned tracer is the last run's span set
        assert any(s.name == "bench-run" for s in tracer.spans())

    def test_work_metrics_recorded(self):
        entry, _ = bench_circuit("chu172", runs=1, verify_runs=1)
        metrics = entry["metrics"]
        assert set(metrics) == set(WORK_METRICS.values())
        assert metrics["sim_events"] > 0
        assert metrics["sim_runs"] == 1
        assert metrics["reachability_states"] == entry["states"]
        assert metrics["espresso_iterations"] >= 1
        assert metrics["cover_cubes"] >= 1
        assert all(
            isinstance(v, int) and v >= 0 for v in metrics.values()
        )

    def test_bench_restores_global_tracer_and_metrics(self):
        tracer_before = get_tracer()
        metrics_before = get_metrics()
        runs_before = metrics_before.snapshot()["counters"].get("sim.runs", 0)
        bench_circuit("chu172", runs=1, verify_runs=1)
        assert get_tracer() is tracer_before
        assert get_tracer().enabled is False
        # the caller's registry comes back untouched by bench noise
        assert get_metrics() is metrics_before
        assert (
            get_metrics().snapshot()["counters"].get("sim.runs", 0)
            == runs_before
        )


class TestRunBench:
    def test_document_validates(self, quick_doc):
        assert validate_bench(quick_doc) == []
        assert quick_doc["schema"] == BENCH_SCHEMA
        assert quick_doc["quick"] is True
        assert quick_doc["runs_per_circuit"] == 1
        assert [e["name"] for e in quick_doc["circuits"]] == ["chu172"]
        assert quick_doc["totals"]["circuits"] == 1
        assert quick_doc["totals"]["wall_s"] > 0.0
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", quick_doc["created_utc"]
        )

    def test_quick_default_suite(self):
        assert quick_circuits() == ["chu150", "chu172", "converta", "pmcm2"]

    def test_unknown_circuit_raises_keyerror(self):
        with pytest.raises(KeyError):
            run_bench(circuits=["no_such_circuit"], quick=True)

    def test_progress_callback(self):
        seen = []
        run_bench(
            circuits=["chu172"], quick=True,
            progress=lambda name, entry: seen.append(name),
        )
        assert seen == ["chu172"]

    def test_chrome_trace_written(self, tmp_path):
        path = tmp_path / "trace.json"
        run_bench(circuits=["chu172"], quick=True, chrome_trace=str(path))
        doc = json.loads(path.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert "bench-run" in names and "synthesize" in names


class TestEnvironmentAndIO:
    def test_fingerprint_keys(self):
        env = environment_fingerprint()
        for key in ("python", "implementation", "platform", "machine",
                    "cpu_count", "git_sha", "argv"):
            assert key in env
        assert env["cpu_count"] >= 1

    def test_default_path_is_utc_dated(self):
        assert re.fullmatch(
            r"\./BENCH_\d{4}-\d{2}-\d{2}\.json", default_bench_path()
        )

    def test_write_bench_roundtrip(self, tmp_path, quick_doc):
        path = write_bench(quick_doc, str(tmp_path / "BENCH_test.json"))
        assert json.loads(pathlib.Path(path).read_text()) == quick_doc

    def test_default_path_tag_suffix(self):
        assert re.fullmatch(
            r"\./BENCH_\d{4}-\d{2}-\d{2}-static\.json",
            default_bench_path(tag="static"),
        )

    def test_tag_validation(self):
        with pytest.raises(ValueError, match="tag"):
            default_bench_path(tag="../evil")

    def test_default_path_never_overwrites(
        self, tmp_path, quick_doc, monkeypatch
    ):
        """Two same-day default-named writes both survive: the second
        steps to a deterministic -2 suffix instead of clobbering."""
        monkeypatch.chdir(tmp_path)
        first = write_bench(quick_doc)
        second = write_bench({**quick_doc, "runs_per_circuit": 99})
        third = write_bench(quick_doc)
        assert first != second != third
        assert second == first.replace(".json", "-2.json")
        assert third == first.replace(".json", "-3.json")
        assert json.loads(pathlib.Path(first).read_text()) == quick_doc
        assert (
            json.loads(pathlib.Path(second).read_text())["runs_per_circuit"]
            == 99
        )

    def test_tagged_default_path_collision_steps(
        self, tmp_path, quick_doc, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        first = write_bench(quick_doc, tag="static")
        second = write_bench(quick_doc, tag="static")
        assert "-static" in first
        assert second == first.replace(".json", "-2.json")

    def test_explicit_path_keeps_overwrite_semantics(
        self, tmp_path, quick_doc
    ):
        target = str(tmp_path / "BENCH_pinned.json")
        write_bench({**quick_doc, "runs_per_circuit": 1}, target)
        write_bench({**quick_doc, "runs_per_circuit": 2}, target)
        assert (
            json.loads(pathlib.Path(target).read_text())["runs_per_circuit"]
            == 2
        )


class TestValidateBench:
    def test_rejects_non_object(self):
        assert validate_bench([]) == ["document is not a JSON object"]

    def test_flags_each_defect(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))  # deep copy
        doc["schema"] = "bogus/9"
        del doc["env"]["python"]
        doc["circuits"][0]["metrics"]["sim_events"] = -1
        doc["circuits"][0]["total"]["median_s"] = -0.5
        problems = validate_bench(doc)
        assert any("schema" in p for p in problems)
        assert any("env.python" in p for p in problems)
        assert any("sim_events" in p for p in problems)
        assert any("total.median_s" in p for p in problems)

    def test_flags_empty_circuits(self, quick_doc):
        doc = {**quick_doc, "circuits": []}
        assert validate_bench(doc) == ["circuits: missing or empty"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_bench_quick_subset(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_ci.json"
        # --no-history keeps the test from appending to the repo's
        # real benchmarks/history/ ledger on every run
        assert main(
            ["bench", "chu172", "--quick", "--no-history", "-o", str(out_path)]
        ) == 0
        captured = capsys.readouterr()
        assert f"wrote {out_path}" in captured.out
        assert "chu172" in captured.err  # progress goes to stderr
        doc = json.loads(out_path.read_text())
        assert validate_bench(doc) == []

    def test_bench_unknown_circuit_fails_cleanly(self, capsys):
        assert main(["bench", "no_such_circuit", "--quick"]) == 1
        assert "unknown benchmark circuit" in capsys.readouterr().err


class TestProfileCli:
    def test_synth_profile_shows_nested_phases(self, gfile, capsys):
        assert main(["synth", str(gfile), "--profile"]) == 0
        err = capsys.readouterr().err
        assert "profile" in err
        # at least five distinct pipeline phases, nested under synthesize
        for phase in ("reachability", "synthesize", "sop-derivation",
                      "minimize", "espresso", "netlist-build",
                      "delay-eval"):
            assert phase in err, f"phase {phase} missing from profile"
        # the CLI pulls through the content-addressed DAG: stage spans
        # wrap the work, and sop-derivation is nested inside them
        assert "pipeline.stage" in err
        assert re.search(r"\n +sop-derivation", err)  # indented = nested

    def test_synth_without_profile_prints_no_spans(self, gfile, capsys):
        assert main(["synth", str(gfile)]) == 0
        assert "profile" not in capsys.readouterr().err

    def test_compare_profile(self, gfile, capsys):
        assert main(["compare", str(gfile), "--profile"]) == 0
        err = capsys.readouterr().err
        assert "profile" in err and "synthesize" in err

    def test_profile_restores_disabled_tracer(self, gfile, capsys):
        main(["synth", str(gfile), "--profile"])
        assert get_tracer().enabled is False
