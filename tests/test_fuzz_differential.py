"""Tests for the crash-contained differential harness and its judges."""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (
    FLOW_NAMES,
    Disagreement,
    FlowOutcome,
    FuzzConfig,
    SpecKnobs,
    generate_spec,
    judge,
    run_flow,
    run_fuzz,
)
from repro.fuzz.generator import SpecLabels


def _labels(**over) -> SpecLabels:
    base = dict(
        states=10,
        signals=4,
        inputs=2,
        consistent=True,
        csc=True,
        usc=True,
        semimodular=True,
        distributive=True,
        detonant_count=0,
        single_traversal=True,
    )
    base.update(over)
    return SpecLabels(**base)


def _ok(flow):
    return FlowOutcome(flow=flow, status="ok", area=1.0, delay=1.0, gates=1)


def _refused(flow, etype="SynthesisError"):
    return FlowOutcome(
        flow=flow, status="refused", detail=f"{etype}: nope", error_type=etype
    )


class TestJudge:
    def test_all_ok_on_valid_distributive_is_clean(self):
        assert judge(_labels(), [_ok(f) for f in FLOW_NAMES]) == []

    def test_crash_is_always_a_finding(self):
        outcomes = [
            FlowOutcome(
                flow="lavagno",
                status="crashed",
                detail="KeyError: 'x'",
                error_type="KeyError",
            )
        ]
        findings = judge(_labels(), outcomes)
        assert findings == [("flow-crash", "lavagno", "KeyError: 'x'")]

    def test_timeout_is_a_finding(self):
        outcomes = [FlowOutcome(flow="qflop", status="timeout", detail="20s")]
        assert judge(_labels(), outcomes)[0][0] == "flow-timeout"

    def test_invalid_spec_must_be_refused_by_everyone(self):
        labels = _labels(csc=False)
        findings = judge(labels, [_ok("nshot"), _refused("lavagno")])
        assert findings == [
            (
                "unexpected-success",
                "nshot",
                findings[0][2],
            )
        ]
        assert "Theorem 2" in findings[0][2]

    def test_nondistributive_refusal_by_restricted_flows_is_expected(self):
        labels = _labels(distributive=False, detonant_count=2)
        outcomes = [
            _refused("lavagno", "NotDistributiveError"),
            _refused("beerel", "NotDistributiveError"),
            _ok("nshot"),
            _ok("complex_gate"),
            _ok("qflop"),
        ]
        assert judge(labels, outcomes) == []

    def test_nondistributive_acceptance_by_restricted_flow_is_a_finding(self):
        labels = _labels(distributive=False, detonant_count=1)
        findings = judge(labels, [_ok("lavagno")])
        assert findings[0][:2] == ("unexpected-success", "lavagno")

    def test_universal_flow_refusing_valid_spec_is_a_finding(self):
        findings = judge(_labels(), [_refused("nshot")])
        assert findings[0][:2] == ("unexpected-refusal", "nshot")

    def test_data_dependent_refusals_are_tolerated(self):
        outcomes = [
            _refused("beerel", "StateSignalsRequiredError"),
            _refused("hazard_free_sop", "UnmaskableHazardError"),
        ]
        assert judge(_labels(), outcomes) == []


class TestRunFlow:
    def test_every_flow_contained_on_valid_spec(self):
        sg = generate_spec(0, SpecKnobs(signals=6)).sg
        for flow in FLOW_NAMES:
            out = run_flow(flow, sg, timeout=15.0)
            assert out.status in ("ok", "refused"), (flow, out.detail)

    def test_unknown_flow_is_crash_verdict_not_exception(self):
        sg = generate_spec(0, SpecKnobs(signals=6)).sg
        out = run_flow("no-such-flow", sg)
        assert out.status == "crashed"
        assert out.error_type == "ValueError"

    def test_refusal_carries_error_type(self):
        sg = generate_spec(1, SpecKnobs(signals=6, csc=False)).sg
        out = run_flow("nshot", sg, timeout=15.0)
        assert out.status == "refused"
        assert out.error_type == "SynthesisError"


class TestCampaign:
    def test_small_campaign_is_clean_and_contained(self):
        cfg = FuzzConfig(
            seed=0, budget=8, signals=6, jobs=1, oracle_runs=1, flow_timeout=15.0
        )
        report = run_fuzz(cfg)
        assert len(report.samples) == 8
        assert report.clean
        assert not report.truncated
        # every sample produced a verdict from every flow
        for s in report.samples:
            assert [o.flow for o in s.outcomes] == list(FLOW_NAMES)
            for o in s.outcomes:
                assert o.status in ("ok", "refused")

    def test_pool_campaign_matches_inline(self):
        inline = run_fuzz(
            FuzzConfig(seed=5, budget=4, signals=6, jobs=1, oracle_runs=0)
        )
        pooled = run_fuzz(
            FuzzConfig(seed=5, budget=4, signals=6, jobs=2, oracle_runs=0)
        )
        key = lambda r: [(s.seed, [(o.flow, o.status) for o in s.outcomes]) for s in r.samples]
        assert key(inline) == key(pooled)

    def test_schema_document(self):
        report = run_fuzz(
            FuzzConfig(seed=2, budget=4, signals=6, jobs=1, oracle_runs=0)
        )
        doc = report.to_json()
        assert doc["schema"] == "repro-fuzz/1"
        assert doc["summary"]["samples"] == 4
        json.dumps(doc)  # must be serializable as-is

    def test_broken_flow_is_found_minimized_and_archived(
        self, monkeypatch, tmp_path
    ):
        """End-to-end pipeline: injected flow bug -> disagreement ->
        shrink -> corpus archive, with the campaign itself surviving."""
        import repro.baselines as baselines
        from repro.fuzz import archive_reproducer, load_corpus

        def broken(sg, name="cg", **kw):
            raise KeyError("injected bug")

        monkeypatch.setattr(baselines, "synthesize_complex_gate", broken)
        report = run_fuzz(
            FuzzConfig(
                seed=1,
                budget=4,
                signals=6,
                jobs=1,  # inline, so the monkeypatch reaches the worker
                oracle_runs=0,
                minimize=True,
                shrink_evals=60,
            )
        )
        assert not report.clean
        sigs = {d.signature for d in report.disagreements}
        assert "flow-crash:complex_gate:KeyError" in sigs
        unique = report.unique_disagreements()
        d = next(x for x in unique if x.flow == "complex_gate")
        assert d.minimized_text is not None
        assert 1 <= d.minimized_states <= d.original_states
        path = archive_reproducer(d, tmp_path)
        assert path is not None and path.exists()
        entries = load_corpus(tmp_path)
        assert entries[0].signature == d.signature
        assert entries[0].sg().num_states == d.minimized_states
