"""Tests for critical-path tracing."""

import pytest

from repro.core import synthesize
from repro.netlist import Gate, GateType, Netlist, Pin, and_gate, or_gate


class TestCriticalPathTrace:
    def test_trace_matches_critical_path(self, celem_sg, or_element_sg):
        for sg in (celem_sg, or_element_sg):
            circuit = synthesize(sg)
            nl = circuit.netlist
            trace = nl.critical_path_trace()
            assert trace, "non-empty netlist must have a path"
            assert trace[-1][1] == pytest.approx(nl.critical_path())

    def test_trace_is_connected(self, or_element_sg):
        nl = synthesize(or_element_sg).netlist
        trace = nl.critical_path_trace()
        by_name = {g.name: g for g in nl.gates}
        for (a, _), (b, _) in zip(trace, trace[1:]):
            ga, gb = by_name[a], by_name[b]
            outs = {ga.output, ga.output_n}
            assert outs & {p.net for p in gb.inputs}

    def test_trace_arrival_monotone(self, or_element_sg):
        nl = synthesize(or_element_sg).netlist
        times = [t for _, t in nl.critical_path_trace()]
        assert times == sorted(times)

    def test_four_level_story(self):
        """AND → OR → ack → MHS: the 4.8 ns of Table 2, by name."""
        nl = Netlist("four")
        for n in "abc":
            nl.add_input(n)
        nl.add_output("q")
        nl.add(and_gate("and_p1", [Pin("a"), Pin("b")], "p1"))
        nl.add(and_gate("and_p2", [Pin("a"), Pin("c")], "p2"))
        nl.add(or_gate("or_set", [Pin("p1"), Pin("p2")], "s"))
        nl.add(and_gate("ack_set", [Pin("s"), Pin("qn")], "sg_"))
        nl.add(and_gate("ack_rst", [Pin("a", True), Pin("q")], "rg"))
        nl.add(Gate("mhs", GateType.MHSFF, [Pin("sg_"), Pin("rg")], "q", output_n="qn"))
        trace = nl.critical_path_trace()
        names = [n for n, _ in trace]
        assert names == ["and_p1", "or_set", "ack_set", "mhs"] or names == [
            "and_p2",
            "or_set",
            "ack_set",
            "mhs",
        ]
        assert trace[-1][1] == pytest.approx(4.8)

    def test_empty_netlist(self):
        assert Netlist("empty").critical_path_trace() == []

    def test_cut_terminates_trace(self):
        nl = Netlist("cut")
        nl.add_input("a")
        nl.add_output("y")
        nl.add(and_gate("g1", [Pin("a")], "x"))
        pad = Gate("pad", GateType.DELAY, [Pin("x")], "y", delay=2.4,
                   attrs={"cut": True})
        nl.add(pad)
        trace = nl.critical_path_trace()
        assert [n for n, _ in trace] == ["g1", "pad"]
        assert trace[-1][1] == pytest.approx(1.2 + 2.4)
