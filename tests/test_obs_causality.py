"""The causal flight recorder and its `repro explain` engine.

The acceptance property: for a paper-suite circuit, the recorder must
reproduce a causal chain from an MHS-filtered pulse back to a specific
environment input transition — organically under the stress ladder
where the physics allows it, via the causally-anchored probe where the
SOP planes are exactly the trigger cubes and can never shed a runt.
"""

import pytest

from repro.bench.runner import sg_of
from repro.core import synthesize, verify_hazard_freeness
from repro.obs.causality import (
    CAUSALITY_SCHEMA,
    CausalChain,
    FlightRecorder,
    RecordedEvent,
    find_filtered_chain,
    _probe_chain,
)


def _ev(seq, cause=None, *, kind="net", net="a", value=1, time=1.0, gate=None):
    return RecordedEvent(
        seq=seq, time=time, kind=kind, net=net, value=value,
        cause=cause, gate=gate,
    )


# ----------------------------------------------------------------------
# dataclass behavior
# ----------------------------------------------------------------------
class TestRecordedEvent:
    def test_describe_net(self):
        s = _ev(1, gate="set_c_g1").describe()
        assert "a -> 1" in s and "set_c_g1" in s

    def test_describe_filtered(self):
        ev = RecordedEvent(
            seq=-1, time=2.0, kind="mhs-filtered",
            cause=5, gate="mhs_c", width=0.2,
        )
        assert "ω-filtered" in ev.describe()
        assert "0.200" in ev.describe()

    def test_to_dict_drops_net_fields_for_derived(self):
        ev = RecordedEvent(
            seq=-1, time=2.0, kind="mhs-filtered",
            cause=5, gate="mhs_c", width=0.2,
        )
        d = ev.to_dict()
        assert "net" not in d
        assert d["width"] == pytest.approx(0.2)

    def test_root(self):
        assert _ev(1).is_root
        assert not _ev(2, cause=1).is_root


class TestCausalChain:
    def _chain(self, inputs=("a",), truncated=False):
        events = [_ev(1, net="a"), _ev(2, cause=1, net="c", gate="g")]
        return CausalChain(
            target=events[-1], events=events,
            truncated=truncated, inputs=frozenset(inputs),
        )

    def test_environment_rooted(self):
        assert self._chain().environment_rooted
        # same root net, but not a primary input of this netlist
        assert not self._chain(inputs=("x",)).environment_rooted
        # a truncated walk cannot claim its root is the true origin
        assert not self._chain(truncated=True).environment_rooted

    def test_origin_naming(self):
        doc = self._chain().to_json_doc()
        assert doc["schema"] == CAUSALITY_SCHEMA
        assert doc["origin"] == "environment input transition a -> 1"
        assert doc["depth"] == 2
        assert [e["seq"] for e in doc["chain"]] == [1, 2]

    def test_render_truncation_flag(self):
        text = self._chain(truncated=True).render_text()
        assert "TRUNCATED" in text
        assert "history evicted" in text

    def test_render_elides_long_chains(self):
        events = [_ev(1)] + [_ev(i, cause=i - 1) for i in range(2, 101)]
        chain = CausalChain(
            target=events[-1], events=events, inputs=frozenset("a")
        )
        text = chain.render_text(max_steps=10)
        assert "90 intermediate event(s) elided" in text
        assert text.count("\n") < 20  # capped, not 100 lines


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_minimum_budget(self):
        with pytest.raises(ValueError):
            FlightRecorder(budget=4)

    def _chained(self, rec, n):
        rec.on_event(0, 0.0, "net", "a", 1, None, None)
        for seq in range(1, n):
            rec.on_event(seq, float(seq), "net", "c", seq % 2, seq - 1, "g")

    def test_explain_walks_to_root(self):
        rec = FlightRecorder(budget=64)
        self._chained(rec, 10)
        chain = rec.explain(9)
        assert chain.depth == 10
        assert chain.root.seq == 0
        assert not chain.truncated

    def test_eviction_counts_and_truncates(self):
        rec = FlightRecorder(budget=16)
        self._chained(rec, 40)  # 24 oldest evicted
        assert len(rec) == 16
        assert rec.dropped == 24
        chain = rec.explain(39)
        assert chain.truncated
        assert chain.dropped == 24
        assert chain.root.seq == 24  # the oldest survivor

    def test_explain_unknown_seq_raises(self):
        rec = FlightRecorder(budget=16)
        with pytest.raises(KeyError):
            rec.explain(999)

    def test_filtered_pulse_bookkeeping(self):
        rec = FlightRecorder(budget=16)
        self._chained(rec, 5)
        rec.on_filtered(5.0, gate="mhs_c", width=0.1, cause=4)
        (pulse,) = rec.filtered_pulses()
        assert pulse.seq < 0  # derived events never collide with queue seqs
        chain = rec.explain_last_filtered()
        assert chain.target is pulse
        assert chain.root.seq == 0

    def test_evicted_filtered_pulse_forgotten(self):
        rec = FlightRecorder(budget=16)
        rec.on_filtered(0.0, gate="mhs_c", width=0.1, cause=None)
        self._chained(rec, 20)  # pushes the derived event out
        assert rec.filtered_pulses() == []
        assert rec.explain_last_filtered() is None

    def test_find_net_event_nearest_in_time(self):
        rec = FlightRecorder(budget=16)
        rec.on_event(0, 1.0, "net", "c", 1, None, None)
        rec.on_event(1, 9.0, "net", "c", 0, 0, None)
        assert rec.find_net_event("c").seq == 1  # latest by default
        assert rec.find_net_event("c", at=2.0).seq == 0
        assert rec.find_net_event("c", value=1).seq == 0
        assert rec.find_net_event("nope") is None


# ----------------------------------------------------------------------
# against the real simulator
# ----------------------------------------------------------------------
class TestRecorderWiring:
    def test_verify_records_environment_rooted_dag(self, celem_sg):
        circuit = synthesize(celem_sg, name="celem", delay_spread=0.0)
        rec = FlightRecorder()
        summary = verify_hazard_freeness(circuit, runs=1, recorder=rec)
        assert summary.ok
        nets = rec.events("net")
        assert nets, "a closed-loop run must record net events"
        roots = [ev for ev in nets if ev.is_root]
        assert roots and all(ev.net in ("a", "b") for ev in roots)
        # any derived-net change must explain back to an input transition
        derived = [ev for ev in nets if ev.net not in ("a", "b")]
        assert derived
        assert rec.explain(derived[-1]).environment_rooted

    def test_clean_run_has_no_causes(self, celem_sg):
        circuit = synthesize(celem_sg, name="celem", delay_spread=0.0)
        summary = verify_hazard_freeness(
            circuit, runs=1, recorder=FlightRecorder()
        )
        assert all(r.causes == [] for r in summary.runs)


class TestFindFilteredChain:
    def test_organic_chain_on_converta(self):
        """The stress ladder catches a real runt being absorbed."""
        circuit = synthesize(sg_of("converta"), name="converta",
                             delay_spread=0.0)
        chain, info = find_filtered_chain(circuit, seeds=8, probe=False)
        assert chain is not None
        assert info["mode"] == "organic"
        assert chain.environment_rooted
        assert chain.target.kind == "mhs-filtered"
        assert 0.0 < chain.target.width < 0.4  # sub-ω by construction

    def test_probe_chain_is_causally_anchored(self, celem_sg):
        """The probe rides an input event, so the injected runt's chain
        genuinely roots at that environment transition."""
        circuit = synthesize(celem_sg, name="celem", delay_spread=0.0)
        chain, info = _probe_chain(circuit)
        assert chain is not None
        assert info["mode"] == "probe"
        assert chain.environment_rooted
        assert chain.root.net in ("a", "b")
        assert chain.target.kind == "mhs-filtered"
        assert chain.target.width == pytest.approx(info["runt_width"])

    def test_no_probe_no_chain_reports_none(self, handshake_sg):
        # chu133-class physics: planes are exactly the trigger cubes,
        # so without the probe the sweep must come back empty-handed
        circuit = synthesize(handshake_sg, name="hs", delay_spread=0.0)
        chain, info = find_filtered_chain(circuit, seeds=2, probe=False)
        if chain is None:
            assert info["mode"] == "none"
        else:  # pragma: no cover - corner found a runt: also fine
            assert chain.environment_rooted


@pytest.mark.slow
class TestPaperSuiteAcceptance:
    def test_every_circuit_explains_a_filtered_pulse(self):
        """ISSUE acceptance: every paper-suite circuit reproduces a
        causal chain from an MHS-filtered pulse back to a specific
        environment input transition."""
        from repro.bench.circuits import DISTRIBUTIVE_BENCHMARKS

        for name in DISTRIBUTIVE_BENCHMARKS:
            circuit = synthesize(sg_of(name), name=name, delay_spread=0.0)
            chain, info = find_filtered_chain(circuit, seeds=16)
            assert chain is not None, f"{name}: no chain found"
            assert chain.environment_rooted, f"{name}: {info}"
            assert "environment input transition" in chain.to_json_doc()[
                "origin"
            ], name
