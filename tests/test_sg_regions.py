"""Tests for excitation/quiescent/trigger regions (Definitions 5-9)."""

from repro.bench.circuits import figure2_sg, figure7a_sg, figure7b_sg
from repro.sg import (
    check_output_trapping,
    excitation_regions,
    is_single_traversal,
    is_single_traversal_for,
    quiescent_region_of,
    signal_regions,
    trigger_region_reachable_from_all,
    trigger_regions,
)


def labels(sg, states):
    return sorted(sg.state_label(s) for s in states)


class TestExcitationRegions:
    def test_celem_regions(self, celem_sg):
        c = celem_sg.signal_index("c")
        ers = excitation_regions(celem_sg, c)
        assert len(ers) == 2
        up = next(r for r in ers if r.rising)
        dn = next(r for r in ers if not r.rising)
        assert labels(celem_sg, up.states) == ["110*"]
        assert labels(celem_sg, dn.states) == ["001*"]

    def test_region_value_consistency(self, celem_sg, or_element_sg):
        for sg in (celem_sg, or_element_sg):
            for a in sg.non_inputs:
                for er in excitation_regions(sg, a):
                    want = 0 if er.rising else 1
                    for s in er.states:
                        assert sg.value(s, a) == want
                        assert sg.is_excited(s, a)

    def test_multiple_regions_per_direction(self):
        # fig7a cycled twice would still give one ER per direction;
        # use the xyz ring where y has exactly one of each
        sg = figure7a_sg()
        y = sg.signal_index("y")
        ers = excitation_regions(sg, y)
        assert len(ers) == 2

    def test_or_element_er_is_connected_union(self, or_element_sg):
        c = or_element_sg.signal_index("c")
        up = [r for r in excitation_regions(or_element_sg, c) if r.rising]
        # OR causality: one connected region {100,010,110}
        assert len(up) == 1
        assert len(up[0].states) == 3


class TestQuiescentRegions:
    def test_celem_qr(self, celem_sg):
        c = celem_sg.signal_index("c")
        sr = signal_regions(celem_sg, c)
        up = next(r for r in sr.excitation if r.rising)
        qr = sr.quiescent_after(up)
        assert qr.kind == "QR"
        # after +c: states with c=1 and c stable
        for s in qr.states:
            assert celem_sg.value(s, c) == 1
            assert not celem_sg.is_excited(s, c)
        assert len(qr.states) == 3

    def test_empty_qr_when_immediately_reexcited(self):
        # a free-running output would re-excite immediately; emulate by
        # checking the xyz ring where each QR is nonempty instead
        sg = figure7a_sg()
        y = sg.signal_index("y")
        sr = signal_regions(sg, y)
        for er, qr in zip(sr.excitation, sr.quiescent):
            assert len(qr.states) == 1

    def test_union_states(self, celem_sg):
        c = celem_sg.signal_index("c")
        sr = signal_regions(celem_sg, c)
        total = (
            sr.union_states("ER", 1)
            | sr.union_states("ER", -1)
            | sr.union_states("QR", 1)
            | sr.union_states("QR", -1)
        )
        assert total == set(celem_sg.states())


class TestTriggerRegions:
    def test_singleton_for_celem(self, celem_sg):
        c = celem_sg.signal_index("c")
        for er in excitation_regions(celem_sg, c):
            trs = trigger_regions(celem_sg, er)
            assert len(trs) == 1
            assert len(trs[0].states) == 1

    def test_figure2_proper_subset(self):
        sg = figure2_sg()
        x = sg.signal_index("x")
        up = next(r for r in excitation_regions(sg, x) if r.rising)
        assert labels(sg, up.states) == ["110*", "1q0".replace("q", "0*")] or len(up.states) == 2
        trs = trigger_regions(sg, up)
        assert len(trs) == 1
        assert labels(sg, trs[0].states) == ["110*"]

    def test_figure7b_two_state_trigger_region(self):
        sg = figure7b_sg()
        y = sg.signal_index("y")
        for er in excitation_regions(sg, y):
            trs = trigger_regions(sg, er)
            assert len(trs) == 1
            assert len(trs[0].states) == 2  # both clock phases

    def test_trigger_region_closed_under_non_signal_arcs(self, or_element_sg):
        c = or_element_sg.signal_index("c")
        for er in excitation_regions(or_element_sg, c):
            for tr in trigger_regions(or_element_sg, er):
                for s in tr.states:
                    for t, d in or_element_sg.successors(s):
                        if t.signal != c:
                            assert d in tr.states


class TestProperties1And2:
    def test_output_trapping(self, celem_sg, or_element_sg):
        for sg in (celem_sg, or_element_sg):
            for a in sg.non_inputs:
                for er in excitation_regions(sg, a):
                    assert check_output_trapping(sg, er) == []

    def test_trigger_reachability(self, celem_sg, or_element_sg):
        for sg in (celem_sg, or_element_sg, figure7b_sg()):
            for a in sg.non_inputs:
                for er in excitation_regions(sg, a):
                    assert trigger_region_reachable_from_all(sg, er)


class TestSingleTraversal:
    def test_classification(self, celem_sg):
        assert is_single_traversal(celem_sg)
        assert is_single_traversal(figure7a_sg())
        assert not is_single_traversal(figure7b_sg())

    def test_per_signal(self):
        sg = figure7b_sg()
        assert not is_single_traversal_for(sg, sg.signal_index("y"))
