"""Corpus round-trip tests plus the forever-regression replay.

The replay half is the point of the corpus: every ``.g`` file under
``examples/fuzz-corpus/`` is pushed through every synthesis flow on
every test run.  The guarantee is **containment** — each flow answers
with a structured verdict — and, for archived ``flow-crash`` findings,
that the crash stays fixed.
"""

from __future__ import annotations

import pytest

from repro.fuzz import (
    Disagreement,
    SpecKnobs,
    archive_reproducer,
    generate_spec,
    load_corpus,
    replay_entry,
)
from repro.fuzz.corpus import DEFAULT_CORPUS
from repro.sg.sgformat import write_sg

REPO_CORPUS = load_corpus()


def _disagreement(seed=3) -> Disagreement:
    spec = generate_spec(seed, SpecKnobs(signals=6, csc=False))
    return Disagreement(
        kind="unexpected-refusal",
        flow="nshot",
        seed=seed,
        knobs=spec.knobs,
        detail="SynthesisError: preflight",
        spec_text=write_sg(spec.sg, spec.name),
        labels=spec.labels.to_json(),
        original_states=spec.labels.states,
    )


class TestArchive:
    def test_roundtrip(self, tmp_path):
        d = _disagreement()
        path = archive_reproducer(d, tmp_path)
        assert path is not None and path.suffix == ".g"
        entries = load_corpus(tmp_path)
        assert len(entries) == 1
        e = entries[0]
        assert e.signature == d.signature
        assert e.meta["kind"] == "unexpected-refusal"
        assert e.meta["flow"] == "nshot"
        assert e.meta["seed"] == d.seed
        assert e.meta["knobs"] == d.knobs.to_json()
        assert e.meta["labels"] == d.labels
        # the spec text parses despite the header comments
        assert e.sg().num_states == d.original_states

    def test_dedupe_by_signature(self, tmp_path):
        d = _disagreement(seed=3)
        assert archive_reproducer(d, tmp_path) is not None
        other = _disagreement(seed=9)  # same signature, different witness
        assert archive_reproducer(other, tmp_path) is None
        assert len(load_corpus(tmp_path)) == 1

    def test_prefers_minimized_text(self, tmp_path):
        d = _disagreement()
        d.minimized_text = write_sg(
            generate_spec(0, SpecKnobs(signals=4, csc=False)).sg, "mini"
        )
        d.minimized_states = 8
        path = archive_reproducer(d, tmp_path)
        entry = load_corpus(tmp_path)[0]
        assert entry.meta["states"] == 8

    def test_nothing_to_archive(self, tmp_path):
        d = _disagreement()
        d.spec_text = ""
        assert archive_reproducer(d, tmp_path) is None

    def test_missing_dir_loads_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestRepoCorpus:
    """The committed corpus under examples/fuzz-corpus/."""

    def test_corpus_is_seeded(self):
        # the fuzzing PR landed with its first real findings archived
        assert len(REPO_CORPUS) >= 3

    @pytest.mark.parametrize(
        "entry", REPO_CORPUS, ids=[e.path.stem for e in REPO_CORPUS]
    )
    def test_replays_green(self, entry):
        outcomes = replay_entry(entry, timeout=30.0)
        statuses = {o.flow: o for o in outcomes}
        # containment: every flow answers with a structured verdict
        for o in outcomes:
            assert o.status in ("ok", "refused", "timeout"), (
                f"{entry.path.name}: {o.flow} escaped containment: "
                f"{o.status} {o.detail}"
            )
        # a fixed crash stays fixed: the recorded flow must not crash
        if entry.meta.get("kind") == "flow-crash":
            flow = entry.meta["flow"]
            assert statuses[flow].status != "crashed", (
                f"{entry.path.name}: regression — {flow} crashes again: "
                f"{statuses[flow].detail}"
            )
