"""Tests for the .sg state-graph file format."""

import pytest

from repro.bench.circuits import figure1_csc_sg, figure7b_sg
from repro.sg import SGError, parse_sg, validate_for_synthesis, write_sg

HANDSHAKE_SG = """
.model hs
.inputs r
.outputs y
.state graph
s0 r+ s1
s1 y+ s2
s2 r- s3
s3 y- s0
.marking {s0}
.end
"""


class TestParse:
    def test_basic(self):
        sg = parse_sg(HANDSHAKE_SG)
        assert sg.num_states == 4
        assert sg.signals == ["r", "y"]
        assert sg.code(sg.initial) == 0
        assert validate_for_synthesis(sg).ok

    def test_inferred_initial_values(self):
        # a falling-first signal starts at 1
        text = HANDSHAKE_SG.replace("r+ s1", "r- s1").replace(
            "r- s3", "r+ s3"
        )
        sg = parse_sg(text)
        assert sg.value(sg.initial, sg.signal_index("r")) == 1

    def test_explicit_coding(self):
        text = HANDSHAKE_SG.replace(
            ".marking", ".coding s0 00\n.marking"
        )
        sg = parse_sg(text)
        assert sg.code(sg.initial) == 0

    def test_coding_contradiction_detected(self):
        text = HANDSHAKE_SG.replace(
            ".marking", ".coding s2 00\n.marking"
        )
        with pytest.raises(SGError):
            parse_sg(text)

    def test_inconsistent_cycle_detected(self):
        text = """
        .model bad
        .inputs a
        .outputs y
        .state graph
        s0 a+ s1
        s1 y+ s2
        s2 a+ s0
        .marking {s0}
        .end
        """
        with pytest.raises(SGError):
            parse_sg(text)

    def test_bad_label(self):
        with pytest.raises(SGError):
            parse_sg(HANDSHAKE_SG.replace("r+ s1", "r* s1"))

    def test_missing_signals(self):
        with pytest.raises(SGError):
            parse_sg(".model x\n.state graph\ns0 a+ s1\n.end\n")

    def test_undeclared_signal(self):
        with pytest.raises(SGError):
            parse_sg(HANDSHAKE_SG.replace("y+ s2", "z+ s2"))


class TestRoundtrip:
    @pytest.mark.parametrize(
        "maker", [figure1_csc_sg, figure7b_sg], ids=["orelem", "fig7b"]
    )
    def test_roundtrip_preserves_structure(self, maker):
        sg = maker()
        back = parse_sg(write_sg(sg, "rt"))
        assert back.num_states == sg.num_states
        assert back.signals == sg.signals
        assert validate_for_synthesis(back).ok
        # same set of state codes and transition labels
        assert {sg.code(s) for s in sg.states()} == {
            back.code(s) for s in back.states()
        }

    def test_roundtrip_synthesis_equivalent(self, celem_sg):
        from repro.core import synthesize

        back = parse_sg(write_sg(celem_sg, "celem"))
        a = synthesize(celem_sg).stats()
        b = synthesize(back).stats()
        assert (a.area, a.delay) == (b.area, b.delay)


CELEM_G = """
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
"""


class TestSpecDigest:
    """The content-addressed pipeline's root key: cosmetic edits keep
    the digest, semantic edits change it."""

    def digest(self, text):
        from repro.sg import spec_digest

        return spec_digest(text)

    # -- cosmetic invariance -----------------------------------------
    def test_comments_and_blank_lines_ignored(self):
        noisy = CELEM_G.replace(
            ".graph", "# a comment\n\n.graph  # trailing comment"
        )
        assert self.digest(noisy) == self.digest(CELEM_G)

    def test_whitespace_runs_ignored(self):
        spaced = CELEM_G.replace("a+ c+", "   a+\t \tc+   ")
        assert self.digest(spaced) == self.digest(CELEM_G)

    def test_declaration_name_order_ignored(self):
        swapped = CELEM_G.replace(".inputs a b", ".inputs b a")
        assert self.digest(swapped) == self.digest(CELEM_G)

    def test_split_declarations_ignored(self):
        split = CELEM_G.replace(".inputs a b", ".inputs a\n.inputs b")
        assert self.digest(split) == self.digest(CELEM_G)

    def test_graph_line_order_ignored(self):
        reordered = CELEM_G.replace(
            "a+ c+\nb+ c+", "b+ c+\na+ c+"
        )
        assert self.digest(reordered) == self.digest(CELEM_G)

    def test_successor_grouping_ignored(self):
        # "c+ a- b-" is the same two arcs as "c+ a-" plus "c+ b-"
        ungrouped = CELEM_G.replace("c+ a- b-", "c+ a-\nc+ b-")
        assert self.digest(ungrouped) == self.digest(CELEM_G)

    def test_marking_token_order_ignored(self):
        swapped = CELEM_G.replace(
            "{ <c-,a+> <c-,b+> }", "{ <c-,b+>   <c-, a+> }"
        )
        assert self.digest(swapped) == self.digest(CELEM_G)

    def test_sg_dialect_arc_order_ignored_with_explicit_marking(self):
        reordered = HANDSHAKE_SG.replace(
            "s0 r+ s1\ns1 y+ s2", "s1 y+ s2\ns0 r+ s1"
        )
        assert self.digest(reordered) == self.digest(HANDSHAKE_SG)

    # -- semantic sensitivity ----------------------------------------
    def test_arc_change_changes_digest(self):
        assert self.digest(
            CELEM_G.replace("a- c-", "a- b-")
        ) != self.digest(CELEM_G)

    def test_polarity_change_changes_digest(self):
        assert self.digest(
            HANDSHAKE_SG.replace("s0 r+ s1", "s0 r- s1")
        ) != self.digest(HANDSHAKE_SG)

    def test_model_rename_changes_digest(self):
        # the name becomes the synthesized module's name
        assert self.digest(
            CELEM_G.replace(".model celem", ".model other")
        ) != self.digest(CELEM_G)

    def test_marking_change_changes_digest(self):
        assert self.digest(
            HANDSHAKE_SG.replace(".marking {s0}", ".marking {s2}")
        ) != self.digest(HANDSHAKE_SG)

    def test_signal_role_change_changes_digest(self):
        moved = CELEM_G.replace(".inputs a b", ".inputs a").replace(
            ".outputs c", ".outputs c b"
        )
        assert self.digest(moved) != self.digest(CELEM_G)

    def test_implicit_initial_state_is_frozen(self):
        # without a .marking, the first arc's source is the initial
        # state — reordering arcs then IS a semantic edit
        bare = HANDSHAKE_SG.replace(".marking {s0}\n", "")
        rotated = bare.replace(
            "s0 r+ s1\ns1 y+ s2", "s1 y+ s2\ns0 r+ s1"
        )
        assert self.digest(rotated) != self.digest(bare)

    def test_digest_is_sha256_hex(self):
        d = self.digest(CELEM_G)
        assert len(d) == 64 and set(d) <= set("0123456789abcdef")
