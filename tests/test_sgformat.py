"""Tests for the .sg state-graph file format."""

import pytest

from repro.bench.circuits import figure1_csc_sg, figure7b_sg
from repro.sg import SGError, parse_sg, validate_for_synthesis, write_sg

HANDSHAKE_SG = """
.model hs
.inputs r
.outputs y
.state graph
s0 r+ s1
s1 y+ s2
s2 r- s3
s3 y- s0
.marking {s0}
.end
"""


class TestParse:
    def test_basic(self):
        sg = parse_sg(HANDSHAKE_SG)
        assert sg.num_states == 4
        assert sg.signals == ["r", "y"]
        assert sg.code(sg.initial) == 0
        assert validate_for_synthesis(sg).ok

    def test_inferred_initial_values(self):
        # a falling-first signal starts at 1
        text = HANDSHAKE_SG.replace("r+ s1", "r- s1").replace(
            "r- s3", "r+ s3"
        )
        sg = parse_sg(text)
        assert sg.value(sg.initial, sg.signal_index("r")) == 1

    def test_explicit_coding(self):
        text = HANDSHAKE_SG.replace(
            ".marking", ".coding s0 00\n.marking"
        )
        sg = parse_sg(text)
        assert sg.code(sg.initial) == 0

    def test_coding_contradiction_detected(self):
        text = HANDSHAKE_SG.replace(
            ".marking", ".coding s2 00\n.marking"
        )
        with pytest.raises(SGError):
            parse_sg(text)

    def test_inconsistent_cycle_detected(self):
        text = """
        .model bad
        .inputs a
        .outputs y
        .state graph
        s0 a+ s1
        s1 y+ s2
        s2 a+ s0
        .marking {s0}
        .end
        """
        with pytest.raises(SGError):
            parse_sg(text)

    def test_bad_label(self):
        with pytest.raises(SGError):
            parse_sg(HANDSHAKE_SG.replace("r+ s1", "r* s1"))

    def test_missing_signals(self):
        with pytest.raises(SGError):
            parse_sg(".model x\n.state graph\ns0 a+ s1\n.end\n")

    def test_undeclared_signal(self):
        with pytest.raises(SGError):
            parse_sg(HANDSHAKE_SG.replace("y+ s2", "z+ s2"))


class TestRoundtrip:
    @pytest.mark.parametrize(
        "maker", [figure1_csc_sg, figure7b_sg], ids=["orelem", "fig7b"]
    )
    def test_roundtrip_preserves_structure(self, maker):
        sg = maker()
        back = parse_sg(write_sg(sg, "rt"))
        assert back.num_states == sg.num_states
        assert back.signals == sg.signals
        assert validate_for_synthesis(back).ok
        # same set of state codes and transition labels
        assert {sg.code(s) for s in sg.states()} == {
            back.code(s) for s in back.states()
        }

    def test_roundtrip_synthesis_equivalent(self, celem_sg):
        from repro.core import synthesize

        back = parse_sg(write_sg(celem_sg, "celem"))
        a = synthesize(celem_sg).stats()
        b = synthesize(back).stats()
        assert (a.area, a.delay) == (b.area, b.delay)
