"""Tests for the `repro fuzz` CLI subcommand."""

from __future__ import annotations

import json

from repro.cli import main


class TestFuzzCli:
    def test_clean_run_exits_zero(self, capsys):
        rc = main(
            [
                "fuzz",
                "--seed",
                "0",
                "--budget",
                "4",
                "--signals",
                "6",
                "--oracle-runs",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "samples" in out

    def test_json_schema(self, capsys):
        rc = main(
            [
                "fuzz",
                "--seed",
                "2",
                "--budget",
                "4",
                "--signals",
                "6",
                "--oracle-runs",
                "0",
                "--format",
                "json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-fuzz/1"
        assert doc["summary"]["samples"] == 4
        assert doc["summary"]["disagreements"] == 0
        assert doc["config"]["seed"] == 2

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "fuzz.json"
        rc = main(
            [
                "fuzz",
                "--seed",
                "0",
                "--budget",
                "2",
                "--signals",
                "6",
                "--oracle-runs",
                "0",
                "--format",
                "json",
                "-o",
                str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-fuzz/1"
        capsys.readouterr()

    def test_bad_knob_mode_exits_two(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--csc", "bogus", "--budget", "2"])
        assert exc.value.code == 2
        capsys.readouterr()

    def test_disagreement_exits_one_and_archives(
        self, monkeypatch, tmp_path, capsys
    ):
        import repro.baselines as baselines

        def broken(sg, name="cg", **kw):
            raise KeyError("injected bug")

        monkeypatch.setattr(baselines, "synthesize_complex_gate", broken)
        rc = main(
            [
                "fuzz",
                "--seed",
                "1",
                "--budget",
                "2",
                "--signals",
                "6",
                "--oracle-runs",
                "0",
                "--shrink-evals",
                "40",
                "--archive",
                "--corpus",
                str(tmp_path),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "flow-crash" in out
        assert list(tmp_path.glob("*.g"))
