"""Tests for the SIS/Lavagno, SYN/Beerel and complex-gate baselines."""

import pytest

from repro.baselines import (
    NotDistributiveError,
    add_hazard_cover_cubes,
    function_hazard_states,
    next_state_function,
    static_one_hazard_pairs,
    synthesize_beerel,
    synthesize_complex_gate,
    synthesize_lavagno,
)
from repro.bench.circuits import figure1_csc_sg, figure1_sg
from repro.logic import covers_cube, minimize
from repro.netlist import GateType
from repro.stg import elaborate
from repro.bench.circuits.handshakes import fork_join, muller_pipeline


class TestNextStateFunction:
    def test_celem_majority(self, celem_sg):
        c = celem_sg.signal_index("c")
        spec = next_state_function(celem_sg, c)
        cover = minimize(spec.on, spec.dc, spec.off)
        # the C-element's next-state function is the majority function
        for m, want in [(0b011, 1), (0b111, 1), (0b101, 1), (0b000, 0), (0b100, 0)]:
            assert cover.contains_minterm(m) == bool(want)

    def test_on_off_partition(self, celem_sg, xyz_sg):
        for sg in (celem_sg, xyz_sg):
            for a in sg.non_inputs:
                spec = next_state_function(sg, a)
                assert not spec.on_states & spec.off_states
                assert spec.on_states | spec.off_states == set(sg.states())


class TestHazardCovers:
    def test_static_pairs_detected(self, celem_sg):
        c = celem_sg.signal_index("c")
        spec = next_state_function(celem_sg, c)
        pairs = static_one_hazard_pairs(celem_sg, spec)
        assert pairs  # e.g. 111 -> 011 keeps f=1 while a falls

    def test_hazard_cover_fixes_all_pairs(self, celem_sg):
        c = celem_sg.signal_index("c")
        spec = next_state_function(celem_sg, c)
        cover = minimize(spec.on, spec.dc, spec.off)
        fixed, added = add_hazard_cover_cubes(celem_sg, spec, cover)
        for s, d in static_one_hazard_pairs(celem_sg, spec):
            from repro.logic import Cube

            pair = Cube.from_minterm(celem_sg.code(s), celem_sg.num_signals).supercube(
                Cube.from_minterm(celem_sg.code(d), celem_sg.num_signals)
            )
            assert any(cu.contains(pair) for cu in fixed.cubes)

    def test_function_hazards_on_concurrent_spec(self):
        sg = elaborate(muller_pipeline(3))
        exposed = 0
        for a in sg.non_inputs:
            spec = next_state_function(sg, a)
            exposed += len(function_hazard_states(sg, spec))
        assert exposed > 0

    def test_no_function_hazards_on_sequential_spec(self, xyz_sg):
        for a in xyz_sg.non_inputs:
            spec = next_state_function(xyz_sg, a)
            assert function_hazard_states(xyz_sg, spec) == []


class TestLavagno:
    def test_rejects_nondistributive(self):
        with pytest.raises(NotDistributiveError):
            synthesize_lavagno(figure1_csc_sg())

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            synthesize_lavagno(figure1_sg())

    def test_sequential_circuit_unpadded(self, xyz_sg):
        res = synthesize_lavagno(xyz_sg)
        assert res.delay_lines_inserted == 0
        assert res.netlist.validate() == []

    def test_concurrent_circuit_padded(self):
        sg = elaborate(muller_pipeline(3))
        res = synthesize_lavagno(sg)
        assert res.delay_lines_inserted > 0
        pads = [g for g in res.netlist.gates if g.type == GateType.DELAY]
        assert len(pads) == res.delay_lines_inserted
        assert all(g.attrs.get("cut") for g in pads)

    def test_padding_slows_critical_path(self):
        sg = elaborate(muller_pipeline(3))
        padded = synthesize_lavagno(sg).stats().delay
        unpadded = synthesize_lavagno(sg, pad_levels=0).stats().delay
        assert padded > unpadded

    def test_no_storage_elements(self, celem_sg):
        res = synthesize_lavagno(celem_sg)
        assert not res.netlist.sequential_gates()


class TestBeerel:
    def test_rejects_nondistributive(self):
        with pytest.raises(NotDistributiveError):
            synthesize_beerel(figure1_csc_sg())

    def test_monotonous_cubes_cover_ers(self, celem_sg):
        from repro.sg import signal_regions

        res = synthesize_beerel(celem_sg)
        c = celem_sg.signal_index("c")
        sr = signal_regions(celem_sg, c)
        for kind, direction in (("set", 1), ("reset", -1)):
            cover = res.covers[(c, kind)]
            for er in sr.excitation:
                if er.direction != direction:
                    continue
                for s in er.states:
                    assert cover.contains_minterm(celem_sg.code(s))

    def test_one_latch_per_signal(self, celem_sg, xyz_sg):
        for sg in (celem_sg, xyz_sg):
            res = synthesize_beerel(sg)
            latches = [g for g in res.netlist.gates if g.type == GateType.RSLATCH]
            assert len(latches) == len(sg.non_inputs)

    def test_structure_valid(self, celem_sg):
        res = synthesize_beerel(celem_sg)
        assert res.netlist.validate() == []

    def test_latch_two_level_delay_model(self, celem_sg):
        # plane (1) + ack (1) + latch (2 levels) = 4.8 max for this SG
        res = synthesize_beerel(celem_sg)
        assert res.stats().delay == pytest.approx(4.8)


class TestComplexGate:
    def test_one_gate_per_signal(self, celem_sg):
        res = synthesize_complex_gate(celem_sg)
        assert len(res.netlist.gates) == len(celem_sg.non_inputs)

    def test_single_level_delay(self, celem_sg):
        res = synthesize_complex_gate(celem_sg)
        assert res.stats().delay == pytest.approx(1.2)

    def test_handles_nondistributive(self):
        # the complex-gate model has no distributivity restriction
        res = synthesize_complex_gate(figure1_csc_sg())
        assert res.netlist.gates

    def test_area_smallest_of_all_flows(self, celem_sg):
        from repro.core import synthesize

        cg = synthesize_complex_gate(celem_sg).stats().area
        ours = synthesize(celem_sg).stats().area
        assert cg < ours
