"""The span tracer: nesting, thread/process safety, exports, no-op cost.

The critical properties: a *disabled* tracer must cost essentially
nothing on the synthesis hot path, and spans recorded in pool workers
must merge into the parent's trace with correct nesting — no duplicate
ids, no lost spans — regardless of ``jobs``.
"""

import json
import threading
import time

import pytest

from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    get_tracer,
    set_tracer,
    trace_span,
    traced,
    tracing,
)
from repro.obs.trace import _NULL_SPAN


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
class TestSpanBasics:
    def test_disabled_tracer_hands_out_shared_null_span(self):
        tr = Tracer(enabled=False)
        sp = tr.span("anything", k=1)
        assert sp is _NULL_SPAN
        with sp as inner:
            inner.set(x=1)
            inner.add("y")
        assert inner.id is None
        assert tr.spans() == []

    def test_global_default_is_disabled(self):
        assert get_tracer().enabled is False
        with trace_span("ignored") as sp:
            assert sp is _NULL_SPAN

    def test_nesting_and_attrs(self):
        tr = Tracer()
        with tr.span("outer", circuit="c") as outer:
            with tr.span("inner") as inner:
                inner.set(states=20)
                inner.add("arcs", 5)
                inner.add("arcs", 3)
        spans = {s.name: s for s in tr.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attrs == {"circuit": "c"}
        assert spans["inner"].attrs == {"states": 20, "arcs": 8}
        assert spans["inner"].duration >= 0.0
        assert spans["outer"].end >= spans["inner"].end

    def test_sibling_spans_share_parent(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        by_name = {s.name: s for s in tr.spans()}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id
        ids = [s.span_id for s in tr.spans()]
        assert len(ids) == len(set(ids))

    def test_traced_decorator(self):
        tr = Tracer()

        @traced("wrapped", kind="test")
        def fn(x):
            return x + 1

        with tracing(tr):
            assert fn(1) == 2
        (sp,) = tr.spans()
        assert sp.name == "wrapped"
        assert sp.attrs == {"kind": "test"}

    def test_tracing_restores_previous_tracer(self):
        before = get_tracer()
        inner = Tracer()
        with tracing(inner) as t:
            assert t is inner
            assert get_tracer() is inner
        assert get_tracer() is before

    def test_current_span_id_tracks_stack(self):
        tr = Tracer()
        assert tr.current_span_id() is None
        with tr.span("a") as a:
            assert tr.current_span_id() == a.id
            with tr.span("b") as b:
                assert tr.current_span_id() == b.id
            assert tr.current_span_id() == a.id
        assert tr.current_span_id() is None

    def test_phase_totals_aggregates_by_name(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("phase"):
                time.sleep(0.001)
        totals = tr.phase_totals()
        assert totals["phase"]["calls"] == 3
        assert totals["phase"]["total_s"] >= 0.003


# ----------------------------------------------------------------------
# thread safety
# ----------------------------------------------------------------------
class TestThreads:
    def test_concurrent_threads_keep_independent_stacks(self):
        tr = Tracer()
        n_threads, n_spans = 4, 50
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for k in range(n_spans):
                with tr.span("outer", thread=tid):
                    with tr.span("inner", k=k):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tr.spans()
        assert len(spans) == n_threads * n_spans * 2
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.name == "inner":
                parent = by_id[s.parent_id]
                assert parent.name == "outer"
                assert parent.tid == s.tid  # nesting never crosses threads


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
class TestExports:
    def _tracer_with_tree(self) -> Tracer:
        tr = Tracer()
        with tr.span("root", circuit="c"):
            with tr.span("child", states=7):
                pass
        return tr

    def test_json_schema(self):
        doc = self._tracer_with_tree().to_json()
        assert doc["schema"] == TRACE_SCHEMA == "repro-trace/1"
        assert len(doc["spans"]) == 2
        json.dumps(doc)  # serializable
        by_name = {d["name"]: d for d in doc["spans"]}
        assert by_name["child"]["parent"] == by_name["root"]["id"]
        # times are origin-relative seconds
        assert by_name["root"]["t0"] == 0.0
        assert by_name["child"]["t0"] >= 0.0
        assert by_name["child"]["dur"] <= by_name["root"]["dur"]
        assert by_name["child"]["attrs"] == {"states": 7}

    def test_chrome_trace_format(self, tmp_path):
        tr = self._tracer_with_tree()
        doc = tr.to_chrome()
        assert all(ev["ph"] == "X" for ev in doc["traceEvents"])
        assert all(ev["ts"] >= 0.0 for ev in doc["traceEvents"])
        path = tmp_path / "trace.json"
        tr.write_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert {ev["name"] for ev in loaded["traceEvents"]} == {"root", "child"}

    def test_render_tree_indents_children(self):
        text = self._tracer_with_tree().render_tree()
        lines = text.splitlines()
        assert any(line.startswith("root") for line in lines)
        assert any(line.startswith("  child") for line in lines)
        assert "circuit=c" in text

    def test_render_tree_empty(self):
        assert "no spans" in Tracer().render_tree()


# ----------------------------------------------------------------------
# multiprocessing-style adopt/merge
# ----------------------------------------------------------------------
class TestAdopt:
    def test_adopt_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("unit"):
            with worker.span("oracle"):
                pass
        exported = worker.export()

        parent = Tracer()
        with parent.span("campaign") as camp:
            adopted = parent.adopt(exported, parent_id=camp.id)
        assert adopted == 2
        spans = parent.spans()
        assert len(spans) == 3
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids)), "id collision after merge"
        by_name = {s.name: s for s in spans}
        assert by_name["unit"].parent_id == by_name["campaign"].span_id
        assert by_name["oracle"].parent_id == by_name["unit"].span_id

    def test_adopt_defaults_to_current_open_span(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        with parent.span("p") as p:
            parent.adopt(worker.export())
            expected_parent = p.id
        by_name = {s.name: s for s in parent.spans()}
        assert by_name["w"].parent_id == expected_parent

    def test_adopt_none_and_disabled_are_noops(self):
        tr = Tracer()
        assert tr.adopt(None) == 0
        disabled = Tracer(enabled=False)
        assert disabled.adopt({"spans": [{"id": 1}]}) == 0

    def test_export_survives_pickle(self):
        import pickle

        tr = Tracer()
        with tr.span("x", k=1):
            pass
        assert pickle.loads(pickle.dumps(tr.export())) == tr.export()


# ----------------------------------------------------------------------
# the fault campaign merges worker spans into one coherent trace
# ----------------------------------------------------------------------
class TestCampaignTraceMerge:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_campaign_spans_form_one_tree(self, jobs):
        """Worker spans ship home over the pool pipe and re-parent under
        the campaign root: every parent chain terminates at the single
        ``fault-campaign`` span, ids stay unique, and each executed
        point's oracle span survives (none lost, none duplicated)."""
        from repro.faults import run_campaign
        from repro.obs import MetricsRegistry, get_metrics, set_metrics

        prev_metrics = get_metrics()
        set_metrics(MetricsRegistry())
        try:
            with tracing(Tracer()) as tr:
                res = run_campaign(["c_element"], seeds=2, jobs=jobs)
            registry = get_metrics()
        finally:
            set_metrics(prev_metrics)

        spans = tr.spans()
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids)), "duplicate span ids after merge"

        (root,) = [s for s in spans if s.name == "fault-campaign"]
        by_id = {s.span_id: s for s in spans}
        campaign_names = {"campaign-unit", "oracle", "sim-initialize"}
        for s in spans:
            if s.name not in campaign_names:
                continue  # circuit-cache synthesis spans predate the root
            cur = s
            hops = 0
            while cur.parent_id is not None:
                assert cur.parent_id in by_id, f"orphaned span {s.name}"
                cur = by_id[cur.parent_id]
                hops += 1
                assert hops < 100
            assert cur is root, f"{s.name} not rooted in fault-campaign"

        # one campaign-unit per work unit (faults + the golden baseline)
        units = [s for s in spans if s.name == "campaign-unit"]
        assert len(units) == res.num_faults + 1
        assert all(u.parent_id == root.span_id for u in units)

        # one oracle span per executed point, nested inside its unit
        unit_ids = {u.span_id for u in units}
        oracles = [s for s in spans if s.name == "oracle"]
        executed = [
            r for r in res.records + res.baselines if r.seed >= 0
        ]
        assert len(oracles) == len(executed)
        assert all(o.parent_id in unit_ids for o in oracles)

        # worker metrics merged too: one sim.runs tick per executed point
        counters = registry.snapshot()["counters"]
        assert counters["sim.runs"] == len(executed)
        assert counters["sim.events"] > 0

    def test_serial_and_parallel_traces_agree(self):
        """jobs=1 and jobs=2 record the same span population (the merge
        neither drops nor fabricates work)."""
        from collections import Counter as C

        from repro.faults import run_campaign

        def names(jobs):
            with tracing(Tracer()) as tr:
                run_campaign(["c_element"], seeds=2, jobs=jobs)
            return C(s.name for s in tr.spans())

        assert names(1) == names(2)


# ----------------------------------------------------------------------
# no-op overhead
# ----------------------------------------------------------------------
class TestNoopOverhead:
    def test_disabled_tracer_overhead_below_5_percent(self):
        """The untraced hot path must stay within noise.

        Deterministic accounting instead of a flaky A/B timing race:
        count the instrumentation points one traced synth run hits,
        time the null-span machinery at 1000× that count, and require
        the per-run share to stay under 5% of the measured synth time.
        """
        from repro.bench import sg_of
        from repro.core import synthesize

        assert get_tracer().enabled is False
        sg = sg_of("chu172")
        synthesize(sg, name="chu172")  # warm per-process caches
        synth_s = min(
            _timed(lambda: synthesize(sg, name="chu172")) for _ in range(5)
        )

        with tracing(Tracer()) as tr:
            synthesize(sg, name="chu172")
        points = len(tr.spans())
        assert points >= 5, "synthesis should hit several span points"

        reps = 1000
        t0 = time.perf_counter()
        for _ in range(points * reps):
            with trace_span("phase", circuit="chu172") as sp:
                sp.set(states=1)
        null_s = (time.perf_counter() - t0) / reps
        assert null_s < 0.05 * synth_s, (
            f"disabled tracer costs {null_s * 1e6:.1f}µs per synth "
            f"({points} points) vs {synth_s * 1e3:.2f}ms synth time"
        )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
