"""Gate-level netlist substrate: cells, library, container, writers."""

from .gates import Gate, GateType, Pin, and_gate, or_gate
from .library import Library, DEFAULT_LIBRARY, LEVEL_DELAY_NS
from .netlist import Netlist, NetlistError, NetlistStats
from .verilog import write_verilog
from .mhs_cell import build_mhs_cell, MHS_STAGE_NAMES
from .trees import build_gate_tree, MAX_FANIN

__all__ = [
    "Gate",
    "GateType",
    "Pin",
    "and_gate",
    "or_gate",
    "Library",
    "DEFAULT_LIBRARY",
    "LEVEL_DELAY_NS",
    "Netlist",
    "NetlistError",
    "NetlistStats",
    "write_verilog",
    "build_mhs_cell",
    "MHS_STAGE_NAMES",
    "build_gate_tree",
    "MAX_FANIN",
]
