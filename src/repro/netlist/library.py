"""Area/delay library in the style of the SIS ``lib2`` measurements.

The paper reports area and delay "derived using this [SIS] library",
following the measurement strategy of Beerel & Meng (Section 5.1 of
[1]): area is proportional to the transistor-pair count of static CMOS
cells, and delay is counted in logic levels of a unit gate delay.

Calibration chosen here (documented substitution, see DESIGN.md §3):

* unit level delay ``1.2 ns`` — Table 2's SYN/ASSASSIN delay columns
  are all multiples of 1.2 (3.6 / 4.8 / 6.0), i.e. 3, 4 or 5 levels;
  the N-SHOT critical cycle AND → OR → ack-AND → MHS is 4 levels =
  4.8 ns, collapsing to 3.6 when a plane is a single cube;
* area unit ``8`` per transistor pair: a k-input AND/OR (NAND/NOR +
  inverter) is ``k + 1`` pairs, the C-element 6 pairs, and the MHS
  flip-flop 7 pairs — the paper notes its layout is comparable to a
  C-element even though transistor counts differ slightly.

Absolute numbers are not expected to match the paper's testbed; the
*shape* of the comparisons is (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .gates import Gate, GateType

__all__ = ["Library", "DEFAULT_LIBRARY", "LEVEL_DELAY_NS"]

#: one logic level in ns (see module docstring)
LEVEL_DELAY_NS = 1.2

#: area of one transistor pair
_PAIR_AREA = 8.0


@dataclass(frozen=True)
class Library:
    """Area/delay model for the gate repertoire.

    ``level_delay`` is the propagation delay of every ordinary gate;
    sequential cells also take one level.  Delay lines use their own
    ``delay`` attribute.
    """

    level_delay: float = LEVEL_DELAY_NS
    pair_area: float = _PAIR_AREA

    def gate_area(self, gate: Gate) -> float:
        """Area of one cell instance in library units."""
        k = len(gate.inputs)
        t = gate.type
        if t in (GateType.AND, GateType.OR):
            if k <= 1:
                return self.pair_area * 2  # degenerate: buffer-strength
            pairs = k + 1
            # inversion bubbles come free on AND-with-inversions cells
            return self.pair_area * pairs
        if t == GateType.INV:
            return self.pair_area * 1
        if t == GateType.BUF:
            return self.pair_area * 2
        if t == GateType.DELAY:
            # a delay line of d ns modelled as a buffer chain
            d = gate.delay if gate.delay is not None else self.level_delay
            stages = max(1, round(d / self.level_delay))
            return self.pair_area * 2 * stages
        if t == GateType.CEL:
            return self.pair_area * 6
        if t == GateType.RSLATCH:
            return self.pair_area * 4
        if t == GateType.MHSFF:
            # master RS + filter + slave RS; layout comparable to a
            # C-element per the paper (Section IV-B footnote 4)
            return self.pair_area * 7
        if t == GateType.QFLOP:
            # Q-flop synchronizer: latch + metastability detector +
            # completion logic — the expensive memory element of [9]
            return self.pair_area * 10
        if t in (GateType.INPUT, GateType.CONST):
            return 0.0
        raise ValueError(f"unknown gate type {t}")

    def gate_delay(self, gate: Gate) -> float:
        """Nominal propagation delay of one cell in ns.

        The C-element/RS latch of the baseline flows is realized from
        discrete cross-coupled gates in the SIS library (two levels);
        the MHS flip-flop is the paper's custom transistor-level cell
        (Figure 5) and responds in one level.
        """
        if gate.delay is not None:
            return gate.delay
        t = gate.type
        if t in (GateType.INPUT, GateType.CONST):
            return 0.0
        if t in (GateType.CEL, GateType.RSLATCH):
            return 2 * self.level_delay
        if t == GateType.QFLOP:
            # synchronizer: sample + resolve + completion handshake
            return 3 * self.level_delay
        return self.level_delay


DEFAULT_LIBRARY = Library()
