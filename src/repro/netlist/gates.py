"""Gate types and netlist cells.

The implementation targets the gate repertoire of the paper's
architecture (Section IV-A):

* ``AND`` gates *with input inversion bubbles* — the paper assumes
  AND-gates with input inversions are available as basic gates
  (footnote 2), so an input literal ``x'`` costs no separate inverter;
* ``OR`` gates for the SOP second level;
* the ``MHSFF`` storage element (master RS latch + hazard filter +
  slave RS latch, Figure 5) modelled as one cell with dual-rail
  outputs ``q``/``qn`` and ``enable-set``/``enable-reset`` gating built
  into the surrounding acknowledgement scheme;
* ``CEL`` (C-element) and ``RSLATCH`` for the baseline architectures;
* ``DELAY`` for matched delay lines (the local compensation of
  Figure 3 and the hazard-masking delays of the SIS/Lavagno baseline);
* ``INV``/``BUF`` utility cells.

A :class:`Gate` drives exactly one output net from a list of input
pins; each pin is ``(net, inverted)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

__all__ = ["GateType", "Pin", "Gate"]


class GateType(str, Enum):
    """Cell kinds available to the flows."""

    AND = "and"        # AND with optional per-input inversions
    OR = "or"          # OR (also with optional inversions)
    INV = "inv"
    BUF = "buf"
    DELAY = "delay"    # matched delay line; `delay` attribute in ns
    CEL = "cel"        # Muller C-element (baseline architectures)
    RSLATCH = "rs"     # set/reset latch (baseline architectures)
    MHSFF = "mhsff"    # the paper's MHS flip-flop (behavioural cell)
    QFLOP = "qflop"    # Q-flop synchronizer (Rosenberger et al. [9])
    INPUT = "input"    # primary input pseudo-cell
    CONST = "const"    # constant driver (value attribute)


@dataclass(frozen=True, slots=True)
class Pin:
    """An input connection: a net name plus an inversion bubble flag."""

    net: str
    inverted: bool = False

    def __str__(self) -> str:
        return ("~" if self.inverted else "") + self.net


@dataclass
class Gate:
    """One netlist cell instance.

    Attributes
    ----------
    name:
        Unique instance name.
    type:
        The :class:`GateType`.
    inputs:
        Ordered input pins.  For ``MHSFF`` the convention is
        ``[set, reset]``; for ``RSLATCH`` likewise; for ``CEL`` all
        inputs are symmetric.
    output:
        The driven net.  ``MHSFF`` and ``RSLATCH`` additionally drive
        ``output_n`` (the dual rail).
    delay:
        Nominal propagation delay in ns (library default when None).
    attrs:
        Free-form attributes (e.g. ``{"value": 1}`` for CONST,
        ``{"init": 0}`` for sequential cells).
    """

    name: str
    type: GateType
    inputs: list[Pin] = field(default_factory=list)
    output: str = ""
    output_n: str | None = None
    delay: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def is_sequential(self) -> bool:
        return self.type in (
            GateType.MHSFF,
            GateType.CEL,
            GateType.RSLATCH,
            GateType.QFLOP,
        )

    def input_nets(self) -> list[str]:
        return [p.net for p in self.inputs]

    def describe(self) -> str:
        ins = ", ".join(str(p) for p in self.inputs)
        extra = f" / {self.output_n}" if self.output_n else ""
        return f"{self.name}: {self.type.value}({ins}) -> {self.output}{extra}"


def and_gate(name: str, pins: Sequence[Pin], output: str) -> Gate:
    """Convenience constructor for an AND gate with inversion bubbles."""
    return Gate(name, GateType.AND, list(pins), output)


def or_gate(name: str, pins: Sequence[Pin], output: str) -> Gate:
    """Convenience constructor for an OR gate."""
    return Gate(name, GateType.OR, list(pins), output)
