"""Structural model of the MHS flip-flop cell (Figure 5).

The paper's Figure 5 shows the flip-flop's internals: a **master RS
latch** converting input pulses into an analog level, a **hazard
filter** (two "degenerated inverters", the same structure mutual
exclusion elements use to block metastability), and a **slave RS
latch** that removes the filter's hazardous down-transitions.  The
behavioural cell used in simulation (:mod:`repro.sim.mhs`) abstracts
this; the structural view here documents the gate-level anatomy,
drives the Figure 5 bench, and provides the transistor-pair accounting
behind the library's area number for the cell.
"""

from __future__ import annotations

from .gates import Gate, GateType, Pin
from .netlist import Netlist

__all__ = ["build_mhs_cell", "MHS_STAGE_NAMES"]

#: the three stages of Figure 5, in signal-flow order
MHS_STAGE_NAMES = ("master", "filter", "slave")


def build_mhs_cell(name: str = "mhs_cell") -> Netlist:
    """Gate-level netlist of one MHS flip-flop (Figure 5).

    Ports: inputs ``set`` / ``reset``; outputs ``q`` / ``qn``.
    Internal nets: ``master_s`` / ``master_r`` (master latch rails),
    ``slave_set`` / ``slave_reset`` (the filter outputs shown in the
    paper's Figure 6 waveforms).

    The filter stage is modelled with buffer cells marked
    ``{"stage": "filter", "degenerated": True}`` — at this abstraction
    a degenerated inverter is a threshold element; its electrical role
    (suppressing sub-threshold master excursions) lives in the
    behavioural model's ω parameter.
    """
    nl = Netlist(name)
    nl.add_input("set")
    nl.add_input("reset")
    nl.add_output("q")
    nl.add_output("qn")

    # master RS latch: converts input pulses into a held level
    nl.add(
        Gate(
            "master",
            GateType.RSLATCH,
            [Pin("set"), Pin("reset")],
            "master_s",
            output_n="master_r",
            attrs={"stage": "master"},
        )
    )
    # hazard filter: two degenerated inverters; hazard-free
    # up-transitions on slave_set / slave_reset (first filtering stage)
    nl.add(
        Gate(
            "filter_s",
            GateType.BUF,
            [Pin("master_s")],
            "slave_set",
            attrs={"stage": "filter", "degenerated": True},
        )
    )
    nl.add(
        Gate(
            "filter_r",
            GateType.BUF,
            [Pin("master_r")],
            "slave_reset",
            attrs={"stage": "filter", "degenerated": True},
        )
    )
    # slave RS latch: eliminates the filter's hazardous down-transitions
    nl.add(
        Gate(
            "slave",
            GateType.RSLATCH,
            [Pin("slave_set"), Pin("slave_reset")],
            "q",
            output_n="qn",
            attrs={"stage": "slave"},
        )
    )
    return nl
