"""Fanin-limited gate trees.

Library cells have bounded fanin; wide SOP planes decompose into gate
trees, which is where the extra logic level of the biggest Table 2
circuits (the 6.0 ns rows) comes from.  The helpers here build balanced
AND/OR trees and report their depth.
"""

from __future__ import annotations

from .gates import Gate, GateType, Pin
from .netlist import Netlist

__all__ = ["build_gate_tree", "MAX_FANIN"]

#: default maximum gate fanin (library limit)
MAX_FANIN = 8


def build_gate_tree(
    nl: Netlist,
    gate_type: GateType,
    pins: list[Pin],
    output: str,
    prefix: str,
    max_fanin: int = MAX_FANIN,
) -> int:
    """Build a fanin-limited AND/OR tree driving ``output``.

    Returns the tree depth in levels.  A single pin degenerates to a
    buffer only when it carries an inversion bubble (a bare net is just
    wired through by the caller instead).
    """
    if gate_type not in (GateType.AND, GateType.OR):
        raise ValueError("build_gate_tree handles AND/OR only")
    if not pins:
        raise ValueError("empty pin list")
    if len(pins) <= max_fanin:
        nl.add(Gate(f"{prefix}_{output}", gate_type, list(pins), output))
        return 1
    # group pins into max_fanin chunks, recurse on the chunk outputs
    depth = 0
    children: list[Pin] = []
    for k in range(0, len(pins), max_fanin):
        chunk = pins[k : k + max_fanin]
        if len(chunk) == 1:
            children.append(chunk[0])
            continue
        net = nl.fresh_net(f"{prefix}_t")
        nl.add(Gate(f"{prefix}_{net}", gate_type, chunk, net))
        children.append(Pin(net))
        depth = 1
    return depth + build_gate_tree(nl, gate_type, children, output, prefix, max_fanin)
