"""Gate-level netlist container with area/delay reporting.

A :class:`Netlist` is a set of :class:`~repro.netlist.gates.Gate`
instances connected by named nets, plus primary input/output
declarations.  It provides:

* structural queries (driver of a net, fanout),
* area accounting against a :class:`~repro.netlist.library.Library`,
* critical-path delay — the longest register-to-register /
  input-to-output path counting each traversed cell's delay, with
  sequential cells (MHS flip-flop, C-element, RS latch) terminating
  and sourcing paths.  This reproduces the paper's "delay" column:
  levels × 1.2 ns along the worst path through the SOP planes into the
  storage element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .gates import Gate, GateType
from .library import DEFAULT_LIBRARY, Library

__all__ = ["Netlist", "NetlistError", "NetlistStats"]


class NetlistError(ValueError):
    """Raised on structural problems (multiple drivers, dangling nets)."""


@dataclass
class NetlistStats:
    """Summary produced by :meth:`Netlist.stats`."""

    area: float
    delay: float
    num_gates: int
    num_literals: int
    num_sequential: int

    def row(self) -> str:
        return f"{self.area:.0f}/{self.delay:.1f}"


class Netlist:
    """A named collection of gates with primary I/O."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.gates: list[Gate] = []
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._driver: dict[str, Gate] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def fresh_net(self, prefix: str = "n") -> str:
        """Allocate a fresh unique net name."""
        self._counter += 1
        return f"{prefix}{self._counter}"

    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._driver:
            raise NetlistError(f"net {net!r} already driven")
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        """Declare a primary output net (must be driven eventually)."""
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)
        return net

    def add(self, gate: Gate) -> Gate:
        """Insert a gate, enforcing single drivers."""
        for out in filter(None, (gate.output, gate.output_n)):
            if out in self._driver:
                raise NetlistError(f"net {out!r} has multiple drivers")
            if out in self.primary_inputs:
                raise NetlistError(f"gate drives primary input {out!r}")
            self._driver[out] = gate
        self.gates.append(gate)
        return gate

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def driver(self, net: str) -> Gate | None:
        """The gate driving a net (None for primary inputs)."""
        return self._driver.get(net)

    def nets(self) -> set[str]:
        """All net names appearing in the netlist."""
        out = set(self.primary_inputs) | set(self.primary_outputs)
        for g in self.gates:
            out.update(p.net for p in g.inputs)
            if g.output:
                out.add(g.output)
            if g.output_n:
                out.add(g.output_n)
        return out

    def fanout(self, net: str) -> list[Gate]:
        """Gates reading a net."""
        return [g for g in self.gates if any(p.net == net for p in g.inputs)]

    def validate(self) -> list[str]:
        """Structural lint: undriven nets, dangling outputs."""
        problems = []
        driven = set(self.primary_inputs) | set(self._driver)
        for g in self.gates:
            for p in g.inputs:
                if p.net not in driven:
                    problems.append(f"gate {g.name}: input net {p.net!r} undriven")
        for po in self.primary_outputs:
            if po not in driven:
                problems.append(f"primary output {po!r} undriven")
        return problems

    def sequential_gates(self) -> list[Gate]:
        return [g for g in self.gates if g.is_sequential]

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def area(self, library: Library = DEFAULT_LIBRARY) -> float:
        """Total cell area."""
        return sum(library.gate_area(g) for g in self.gates)

    def num_literals(self) -> int:
        """Total input pins of AND/OR gates (SOP literal count proxy)."""
        return sum(
            len(g.inputs)
            for g in self.gates
            if g.type in (GateType.AND, GateType.OR)
        )

    def critical_path(self, library: Library = DEFAULT_LIBRARY) -> float:
        """Longest path delay in ns.

        Paths start at primary inputs and at sequential-cell outputs,
        and end at primary outputs and sequential-cell inputs; a
        sequential cell's own delay is charged once at the path end
        (the response of the storage element, τ in Figure 4).
        Combinational cycles (there are none in the architectures
        built here; feedback always crosses a sequential cell) raise
        :class:`NetlistError`.
        """
        memo: dict[str, float] = {}
        visiting: set[str] = set()

        def arrival(net: str) -> float:
            """Latest arrival time at a net."""
            if net in memo:
                return memo[net]
            g = self._driver.get(net)
            if g is None:
                memo[net] = 0.0  # primary input
                return 0.0
            if g.is_sequential or g.attrs.get("cut"):
                # sequential outputs (and explicit feedback cuts, e.g. the
                # output buffer of a combinational-feedback baseline)
                # source a new path
                memo[net] = 0.0
                return 0.0
            if net in visiting:
                raise NetlistError(f"combinational cycle through net {net!r}")
            visiting.add(net)
            ins = [arrival(p.net) for p in g.inputs] or [0.0]
            val = max(ins) + library.gate_delay(g)
            visiting.discard(net)
            memo[net] = val
            return val

        worst = 0.0
        for g in self.gates:
            if g.is_sequential or g.attrs.get("cut"):
                ins = [arrival(p.net) for p in g.inputs] or [0.0]
                worst = max(worst, max(ins) + library.gate_delay(g))
        for po in self.primary_outputs:
            worst = max(worst, arrival(po))
        return worst

    def critical_path_trace(
        self, library: Library = DEFAULT_LIBRARY
    ) -> list[tuple[str, float]]:
        """The worst path as (gate name, arrival at its output) pairs.

        Follows the same path rules as :meth:`critical_path`; the list
        runs from the path's first gate to its endpoint (the sequential
        cell or primary output that closes it).  Useful for explaining
        a Table 2 delay cell: e.g. ``and → or → ack → mhs``.
        """
        memo: dict[str, tuple[float, list[tuple[str, float]]]] = {}

        def arrival(net: str) -> tuple[float, list[tuple[str, float]]]:
            if net in memo:
                return memo[net]
            g = self._driver.get(net)
            if g is None or g.is_sequential or g.attrs.get("cut"):
                memo[net] = (0.0, [])
                return memo[net]
            best = (0.0, [])
            for p in g.inputs:
                cand = arrival(p.net)
                if cand[0] >= best[0]:
                    best = cand
            t = best[0] + library.gate_delay(g)
            memo[net] = (t, best[1] + [(g.name, t)])
            return memo[net]

        worst: tuple[float, list[tuple[str, float]]] = (0.0, [])
        for g in self.gates:
            if g.is_sequential or g.attrs.get("cut"):
                for p in g.inputs:
                    t0, path = arrival(p.net)
                    t = t0 + library.gate_delay(g)
                    if t > worst[0]:
                        worst = (t, path + [(g.name, t)])
        for po in self.primary_outputs:
            t, path = arrival(po)
            if t > worst[0]:
                worst = (t, path)
        return worst[1]

    def stats(self, library: Library = DEFAULT_LIBRARY) -> NetlistStats:
        """Area/delay/count summary (the Table 2 row for this circuit)."""
        return NetlistStats(
            area=self.area(library),
            delay=self.critical_path(library),
            num_gates=len(self.gates),
            num_literals=self.num_literals(),
            num_sequential=len(self.sequential_gates()),
        )

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"netlist {self.name}: {len(self.gates)} gates",
            f"  inputs:  {', '.join(self.primary_inputs)}",
            f"  outputs: {', '.join(self.primary_outputs)}",
        ]
        lines.extend("  " + g.describe() for g in self.gates)
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Netlist({self.name!r}, {len(self.gates)} gates)"
