"""Structural Verilog-style writer.

Emits a readable structural netlist for inspection and for feeding
external gate-level simulators.  The MHS flip-flop, C-element and RS
latch are emitted as instantiations of behavioural primitives whose
definitions are included once per file (matching how the authors
validated their designs "at the gate-level using VERILOG").
"""

from __future__ import annotations

from .gates import Gate, GateType
from .netlist import Netlist

__all__ = ["write_verilog"]

_PRIMITIVES = """
// --- behavioural primitives -------------------------------------------
module MHSFF(input set, input rst, output reg q, output qn);
  // master RS latch + hazard filter + slave RS latch (Figure 5).
  // Behaviourally a C-element on (set, ~rst) that is additionally
  // immune to short input pulses (electrical property, not expressible
  // at this abstraction).
  assign qn = ~q;
  always @(posedge set) q <= 1'b1;
  always @(posedge rst) q <= 1'b0;
endmodule

module CEL(input a, input b, output reg q);
  always @(a or b) if (a == b) q <= a;
endmodule

module RSLATCH(input s, input r, output reg q, output qn);
  assign qn = ~q;
  always @(s or r) begin
    if (s && !r) q <= 1'b1;
    else if (r && !s) q <= 1'b0;
  end
endmodule
// ----------------------------------------------------------------------
"""


def _expr(gate: Gate) -> str:
    terms = [("~" if p.inverted else "") + _id(p.net) for p in gate.inputs]
    if gate.type == GateType.AND:
        return " & ".join(terms) if terms else "1'b1"
    if gate.type == GateType.OR:
        return " | ".join(terms) if terms else "1'b0"
    if gate.type == GateType.INV:
        return f"~{terms[0]}"
    if gate.type in (GateType.BUF, GateType.DELAY):
        return terms[0]
    if gate.type == GateType.CONST:
        return f"1'b{int(gate.attrs.get('value', 0))}"
    raise ValueError(f"no expression form for {gate.type}")


def _id(net: str) -> str:
    """Sanitize a net name into a Verilog identifier."""
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in net)
    if out and out[0].isdigit():
        out = "n_" + out
    return out


def write_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Serialize a netlist as structural Verilog text."""
    name = module_name or _id(netlist.name)
    ins = [_id(n) for n in netlist.primary_inputs]
    outs = [_id(n) for n in netlist.primary_outputs]
    ports = ins + outs
    lines = [f"module {name}({', '.join(ports)});"]
    for n in ins:
        lines.append(f"  input {n};")
    for n in outs:
        lines.append(f"  output {n};")
    internal = {
        _id(n)
        for n in netlist.nets()
        if _id(n) not in set(ins) | set(outs)
    }
    for n in sorted(internal):
        lines.append(f"  wire {n};")
    lines.append("")
    for g in netlist.gates:
        if g.type in (GateType.AND, GateType.OR, GateType.INV, GateType.BUF,
                      GateType.CONST):
            lines.append(f"  assign {_id(g.output)} = {_expr(g)};  // {g.name}")
        elif g.type == GateType.DELAY:
            d = g.delay if g.delay is not None else 0.0
            lines.append(
                f"  assign #{d:g} {_id(g.output)} = {_expr(g)};  // {g.name} (delay line)"
            )
        elif g.type == GateType.MHSFF:
            qn = _id(g.output_n) if g.output_n else _id(g.output) + "_n"
            lines.append(
                f"  MHSFF {_id(g.name)}(.set({_id(g.inputs[0].net)}), "
                f".rst({_id(g.inputs[1].net)}), .q({_id(g.output)}), .qn({qn}));"
            )
        elif g.type == GateType.CEL:
            lines.append(
                f"  CEL {_id(g.name)}(.a({_id(g.inputs[0].net)}), "
                f".b({_id(g.inputs[1].net)}), .q({_id(g.output)}));"
            )
        elif g.type == GateType.RSLATCH:
            qn = _id(g.output_n) if g.output_n else _id(g.output) + "_n"
            lines.append(
                f"  RSLATCH {_id(g.name)}(.s({_id(g.inputs[0].net)}), "
                f".r({_id(g.inputs[1].net)}), .q({_id(g.output)}), .qn({qn}));"
            )
        elif g.type == GateType.INPUT:
            continue
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot emit gate type {g.type}")
    lines.append("endmodule")
    return _PRIMITIVES + "\n" + "\n".join(lines) + "\n"
