"""Watchdog-guarded worker pool shared by the fuzz and fault campaigns.

Lifted out of :mod:`repro.faults.campaign` (which used a bare
``multiprocessing.Pool.map``) and generalized: the pool here owns one
pipe per worker process, so the parent can enforce **per-task wall
clock deadlines** (a stuck worker is terminated and respawned, the task
becomes a ``timeout`` result), survive **worker death** (segfault,
``os._exit``, OOM-kill — the task becomes a ``crashed`` result), and
apply **bounded retries with exponential backoff** for flaky tasks.

Design rules, inherited from the fault campaign and now enforced for
every client:

* a task that raises, times out, or kills its worker is a *recorded*
  :class:`TaskResult`, never an exception that aborts the batch;
* ``KeyboardInterrupt`` terminates the pool cleanly and returns the
  partial results with ``truncated=True`` — a long campaign interrupted
  at 90% still flushes 90% of its report;
* ``jobs=1`` runs inline in the calling process (no pickling, spans
  land in the caller's tracer) under the same timeout/retry policy via
  a SIGALRM guard.

The task function must be a **module-level picklable callable**; its
payloads and return values cross a pipe when ``jobs > 1``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = [
    "TASK_STATUSES",
    "WallClockTimeout",
    "wall_clock_guard",
    "ExecutorPolicy",
    "TaskResult",
    "ExecutorReport",
    "run_tasks",
]

#: vocabulary of :attr:`TaskResult.status`
TASK_STATUSES = ("ok", "error", "timeout", "crashed", "cancelled")


class WallClockTimeout(Exception):
    """The per-task SIGALRM guard fired (inline mode)."""


@contextmanager
def wall_clock_guard(seconds: float | None):
    """Raise :class:`WallClockTimeout` after ``seconds`` of wall clock.

    Usable only on the main thread of a process with ``SIGALRM`` (the
    no-op fallback keeps callers portable); nests by saving the old
    handler.  This is the guard the fault campaign used per point, now
    shared by every fuzz flow probe.
    """
    usable = (
        seconds
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _handler(signum, frame):
        raise WallClockTimeout()

    old = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


@dataclass(frozen=True)
class ExecutorPolicy:
    """How a batch of tasks is executed.

    ``task_timeout`` is wall-clock seconds per *attempt*; ``retries``
    is the number of extra attempts granted after an ``error`` or
    ``crashed`` attempt (and after ``timeout`` when
    ``retry_on_timeout``); ``backoff`` is the base of the exponential
    delay between attempts of the same task.
    """

    jobs: int = 1
    task_timeout: float | None = None
    retries: int = 0
    backoff: float = 0.05
    retry_on_timeout: bool = False


@dataclass
class TaskResult:
    """Outcome of one task, whatever happened to it.

    ``status`` is one of :data:`TASK_STATUSES`: ``ok`` (``value`` holds
    the return), ``error`` (the task raised), ``timeout`` (an attempt
    exceeded the deadline), ``crashed`` (the worker process died under
    the task), ``cancelled`` (never ran — the batch was interrupted).
    """

    index: int
    status: str
    value: Any = None
    detail: str = ""
    attempts: int = 0
    runtime: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ExecutorReport:
    """All task results of one batch, in submission order."""

    results: list[TaskResult] = field(default_factory=list)
    #: the batch was interrupted; trailing results are ``cancelled``
    truncated: bool = False

    def values(self) -> list[Any]:
        return [r.value for r in self.results if r.ok]

    def counts(self) -> dict[str, int]:
        out = {k: 0 for k in TASK_STATUSES}
        for r in self.results:
            out[r.status] = out.get(r.status, 0) + 1
        return out


def _retryable(status: str, policy: ExecutorPolicy) -> bool:
    if status in ("error", "crashed"):
        return True
    return status == "timeout" and policy.retry_on_timeout


# ----------------------------------------------------------------------
# inline execution (jobs=1)
# ----------------------------------------------------------------------
def _run_inline(
    fn: Callable[[Any], Any], payloads: Sequence[Any], policy: ExecutorPolicy
) -> ExecutorReport:
    results: list[TaskResult] = []
    truncated = False
    for i, payload in enumerate(payloads):
        if truncated:
            results.append(TaskResult(i, "cancelled", detail="interrupted"))
            continue
        attempt = 0
        res = TaskResult(i, "error")
        while True:
            attempt += 1
            t0 = time.perf_counter()
            try:
                with wall_clock_guard(policy.task_timeout):
                    value = fn(payload)
                res = TaskResult(i, "ok", value=value)
            except WallClockTimeout:
                res = TaskResult(
                    i,
                    "timeout",
                    detail=f"task exceeded {policy.task_timeout}s",
                )
            except KeyboardInterrupt:
                truncated = True
                res = TaskResult(i, "cancelled", detail="interrupted")
            except Exception as e:
                res = TaskResult(i, "error", detail=f"{type(e).__name__}: {e}")
            res.attempts = attempt
            res.runtime = time.perf_counter() - t0
            if (
                res.status == "ok"
                or truncated
                or not _retryable(res.status, policy)
                or attempt > policy.retries
            ):
                break
            try:
                time.sleep(policy.backoff * (2 ** (attempt - 1)))
            except KeyboardInterrupt:
                truncated = True
                break
        results.append(res)
    return ExecutorReport(results=results, truncated=truncated)


# ----------------------------------------------------------------------
# pool execution (jobs>1): one pipe per worker, parent-side deadlines
# ----------------------------------------------------------------------
def _pool_worker(fn: Callable[[Any], Any], conn) -> None:
    """Worker loop: serve (index, payload) requests until the pipe closes."""
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            if msg is None:
                return
            index, payload = msg
            try:
                out = (index, "ok", fn(payload))
            except Exception as e:
                out = (index, "error", f"{type(e).__name__}: {e}")
            try:
                conn.send(out)
            except Exception as e:
                # an unpicklable return value must not kill the worker
                conn.send(
                    (index, "error", f"result not sendable: {type(e).__name__}: {e}")
                )
    except KeyboardInterrupt:  # pragma: no cover - signal timing
        pass


class _Worker:
    """Parent-side handle of one pool process."""

    def __init__(self, fn: Callable[[Any], Any], ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_pool_worker, args=(fn, child), daemon=True)
        self.proc.start()
        child.close()
        self.task: tuple[int, int] | None = None  # (index, attempt)
        self.deadline: float | None = None

    def assign(self, index: int, payload: Any, attempt: int, timeout: float | None) -> None:
        self.conn.send((index, payload))
        self.task = (index, attempt)
        self.deadline = (time.monotonic() + timeout) if timeout else None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=2.0)


def _run_pool(
    fn: Callable[[Any], Any], payloads: Sequence[Any], policy: ExecutorPolicy
) -> ExecutorReport:
    ctx = multiprocessing.get_context()
    n = len(payloads)
    # queue entries: (not_before_monotonic, index, attempt)
    queue: list[tuple[float, int, int]] = [(0.0, i, 1) for i in range(n)]
    started: dict[int, float] = {}
    results: dict[int, TaskResult] = {}
    workers = [_Worker(fn, ctx) for _ in range(min(policy.jobs, n))]
    truncated = False

    def settle(index: int, attempt: int, status: str, value: Any, detail: str) -> None:
        """Record an attempt's outcome: final result or a requeue."""
        runtime = time.monotonic() - started.pop(index, time.monotonic())
        if status != "ok" and _retryable(status, policy) and attempt <= policy.retries:
            queue.append(
                (time.monotonic() + policy.backoff * (2 ** (attempt - 1)), index, attempt + 1)
            )
            return
        results[index] = TaskResult(
            index, status, value=value, detail=detail, attempts=attempt, runtime=runtime
        )

    try:
        while len(results) < n:
            now = time.monotonic()
            # hand ready queue entries to idle workers
            for w in workers:
                if w.task is not None or not queue:
                    continue
                queue.sort()
                if queue[0][0] > now:
                    continue
                _, index, attempt = queue.pop(0)
                started[index] = time.monotonic()
                try:
                    w.assign(index, payloads[index], attempt, policy.task_timeout)
                except (OSError, BrokenPipeError):
                    # worker already gone: respawn and requeue the task
                    w.kill()
                    workers[workers.index(w)] = _Worker(fn, ctx)
                    queue.append((now, index, attempt))

            busy = [w for w in workers if w.task is not None]
            if not busy:
                if queue:  # everything is backing off
                    queue.sort()
                    time.sleep(max(0.0, min(queue[0][0] - time.monotonic(), 0.05)))
                    continue
                break  # nothing queued, nothing running: all settled
            # wait for a result, but wake early for deadlines/backoffs
            wait_for = 0.25
            for w in busy:
                if w.deadline is not None:
                    wait_for = min(wait_for, max(0.0, w.deadline - now))
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=wait_for
            )
            for conn in ready:
                w = next(x for x in busy if x.conn is conn)
                if w.task is None:  # pragma: no cover - settled by deadline path
                    continue
                index, attempt = w.task
                try:
                    r_index, status, value = w.conn.recv()
                except (EOFError, OSError):
                    # the worker died mid-task
                    code = w.proc.exitcode
                    w.kill()
                    workers[workers.index(w)] = _Worker(fn, ctx)
                    settle(
                        index, attempt, "crashed", None,
                        f"worker process died (exit code {code})",
                    )
                    continue
                w.task = None
                w.deadline = None
                if status == "ok":
                    settle(r_index, attempt, "ok", value, "")
                else:
                    settle(r_index, attempt, "error", None, value)
            # enforce deadlines on workers that are still running
            now = time.monotonic()
            for w in list(workers):
                if w.task is None or w.deadline is None or now < w.deadline:
                    continue
                index, attempt = w.task
                w.kill()
                workers[workers.index(w)] = _Worker(fn, ctx)
                settle(
                    index, attempt, "timeout", None,
                    f"task exceeded {policy.task_timeout}s; worker terminated",
                )
    except KeyboardInterrupt:
        truncated = True
    finally:
        for w in workers:
            w.kill()

    ordered = [
        results.get(i, TaskResult(i, "cancelled", detail="interrupted"))
        for i in range(n)
    ]
    return ExecutorReport(results=ordered, truncated=truncated)


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    policy: ExecutorPolicy | None = None,
) -> ExecutorReport:
    """Run ``fn`` over ``payloads`` under the policy's containment rules.

    Every payload yields exactly one :class:`TaskResult` in submission
    order; the call itself raises only on programming errors (an
    unpicklable ``fn``), never because a task failed.
    """
    policy = policy or ExecutorPolicy()
    payloads = list(payloads)
    if not payloads:
        return ExecutorReport(results=[])
    if policy.jobs > 1 and len(payloads) > 1:
        return _run_pool(fn, payloads, policy)
    return _run_inline(fn, payloads, policy)
