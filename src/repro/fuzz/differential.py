"""Crash-contained differential harness over every synthesis flow.

Each generated spec (:mod:`repro.fuzz.generator`) is pushed through
the N-SHOT synthesizer *and* every baseline flow.  Whatever a flow
does — succeed, refuse with a structured
:class:`~repro.core.synthesizer.SynthesisError`, raise something else,
or hang — becomes a :class:`FlowOutcome`; a fuzz campaign never dies to
a flow bug, because finding flow bugs is the point.

Three judges turn outcomes into :class:`Disagreement` records:

* the **capability matrix** — the paper's Table 2 applicability rules
  as an executable oracle: every flow must refuse a spec that fails
  the Theorem 2 preconditions; ``lavagno``/``beerel`` must refuse
  non-distributive specs (failure code ``(1)``) and must *not* refuse
  distributive ones except through their documented data-dependent
  codes (``(2)`` state signals, ``(fh)`` function hazards); the
  universal flows (``nshot``, ``complex_gate``, ``qflop``) must accept
  every valid spec;
* the **Monte-Carlo oracle** — N-SHOT netlists are closed-loop
  simulated against their own spec (:func:`repro.core.verify.run_oracle`);
  any conformance violation or hazard on a generator-certified spec is
  a finding;
* the **lint catalog** — ``run_preflight`` must agree with the
  generator's ground-truth labels, and the full rule catalog must not
  crash on any generated spec.

Disagreements carry a stable ``signature`` so the shrinker
(:mod:`repro.fuzz.shrink`) and corpus (:mod:`repro.fuzz.corpus`) can
deduplicate and archive minimal reproducers.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass, field

from ..obs import (
    MetricsRegistry,
    Tracer,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
    trace_span,
)
from ..sg.graph import StateGraph
from ..sg.sgformat import write_sg
from .executor import ExecutorPolicy, WallClockTimeout, run_tasks, wall_clock_guard
from .generator import (
    GenerationError,
    SpecKnobs,
    SpecLabels,
    classify,
    derive_seed,
    generate_spec,
    knob_combinations,
)

__all__ = [
    "FLOW_NAMES",
    "DISAGREEMENT_KINDS",
    "FlowOutcome",
    "Disagreement",
    "SpecResult",
    "FuzzConfig",
    "run_flow",
    "judge",
    "run_fuzz_unit",
    "run_fuzz",
]

#: every synthesis flow the harness cross-checks
FLOW_NAMES = (
    "nshot",
    "lavagno",
    "beerel",
    "complex_gate",
    "qflop",
    "hazard_free_sop",
)

#: vocabulary of :attr:`Disagreement.kind`
DISAGREEMENT_KINDS = (
    "flow-crash",          # a flow raised something other than SynthesisError
    "flow-timeout",        # a flow exceeded its wall-clock budget
    "unexpected-refusal",  # a flow refused a spec it must accept
    "unexpected-success",  # a flow accepted a spec it must refuse
    "oracle-violation",    # the simulated N-SHOT circuit broke conformance
    "lint-mismatch",       # preflight verdict contradicts ground-truth labels
    "lint-crash",          # a lint rule raised an internal error
    "generator-error",     # the generator failed its own label contract
)

#: flows that must synthesize every spec meeting the Theorem 2
#: preconditions (no distributivity or hazard restriction)
UNIVERSAL_FLOWS = frozenset({"nshot", "complex_gate", "qflop"})

#: flows restricted to distributive SGs (Table 2 failure code (1))
DISTRIBUTIVE_ONLY_FLOWS = frozenset({"lavagno", "beerel"})

#: refusal types that are legitimate on *some* valid specs — data
#: dependent, so never a disagreement by themselves
DATA_DEPENDENT_REFUSALS = frozenset(
    {"StateSignalsRequiredError", "UnmaskableHazardError"}
)

#: flows whose netlists the Monte-Carlo oracle simulates (the baseline
#: architectures model cost structure, not simulatable timing)
ORACLE_FLOWS = frozenset({"nshot"})


@dataclass
class FlowOutcome:
    """What one flow did with one spec.  ``status`` is ``ok`` /
    ``refused`` (a structured :class:`SynthesisError`) / ``crashed``
    (anything else) / ``timeout``."""

    flow: str
    status: str
    detail: str = ""
    error_type: str = ""
    area: float = 0.0
    delay: float = 0.0
    gates: int = 0
    runtime: float = 0.0
    oracle: dict | None = None

    def to_json(self) -> dict:
        out = {
            "flow": self.flow,
            "status": self.status,
            "runtime": round(self.runtime, 4),
        }
        if self.detail:
            out["detail"] = self.detail
        if self.error_type:
            out["error_type"] = self.error_type
        if self.status == "ok":
            out.update(area=self.area, delay=self.delay, gates=self.gates)
        if self.oracle is not None:
            out["oracle"] = self.oracle
        return out


@dataclass
class Disagreement:
    """One finding: a spec on which reality contradicted the rules."""

    kind: str
    flow: str
    seed: int
    knobs: SpecKnobs
    detail: str
    spec_text: str
    labels: dict = field(default_factory=dict)
    #: filled by the shrinker: minimized spec + size bookkeeping
    minimized_text: str | None = None
    original_states: int = 0
    minimized_states: int = 0
    shrink_evals: int = 0

    @property
    def signature(self) -> str:
        """Stable dedupe key: same kind on the same flow via the same
        error type is one bug, whatever seed found it."""
        etype = ""
        if ":" in self.detail and self.kind in ("flow-crash", "unexpected-refusal"):
            etype = self.detail.split(":", 1)[0].strip()
        return f"{self.kind}:{self.flow}:{etype}"

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "flow": self.flow,
            "seed": self.seed,
            "knobs": self.knobs.to_json(),
            "detail": self.detail,
            "signature": self.signature,
            "labels": self.labels,
            "spec": self.spec_text,
            "minimized": self.minimized_text,
            "original_states": self.original_states,
            "minimized_states": self.minimized_states,
            "shrink_evals": self.shrink_evals,
        }


@dataclass
class SpecResult:
    """Everything one fuzz sample produced (picklable for the pool)."""

    seed: int
    knobs: SpecKnobs
    name: str = ""
    labels: dict = field(default_factory=dict)
    outcomes: list[FlowOutcome] = field(default_factory=list)
    disagreements: list[Disagreement] = field(default_factory=list)
    runtime: float = 0.0

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "name": self.name,
            "knobs": self.knobs.to_json(),
            "labels": self.labels,
            "outcomes": [o.to_json() for o in self.outcomes],
            "disagreements": [d.signature for d in self.disagreements],
            "runtime": round(self.runtime, 4),
        }


# ----------------------------------------------------------------------
# one flow, crash-contained
# ----------------------------------------------------------------------
def _dispatch(flow: str, sg: StateGraph, name: str):
    """Invoke one flow; returns an object with ``.netlist``."""
    if flow == "nshot":
        from ..core.synthesizer import synthesize

        return synthesize(sg, name=name)
    if flow == "lavagno":
        from ..baselines import synthesize_lavagno

        return synthesize_lavagno(sg, name=name)
    if flow == "beerel":
        from ..baselines import synthesize_beerel

        return synthesize_beerel(sg, name=name)
    if flow == "complex_gate":
        from ..baselines import synthesize_complex_gate

        return synthesize_complex_gate(sg, name=name)
    if flow == "qflop":
        from ..baselines import synthesize_qmodule

        return synthesize_qmodule(sg, name=name)
    if flow == "hazard_free_sop":
        from ..baselines import synthesize_hazard_free_sop

        return synthesize_hazard_free_sop(sg, name=name)
    raise ValueError(f"unknown flow {flow!r}")


def run_flow(
    flow: str, sg: StateGraph, *, name: str = "fuzz", timeout: float | None = None
) -> FlowOutcome:
    """Run one flow on one spec; every exception becomes a verdict.

    ``refused`` is reserved for structured
    :class:`~repro.core.synthesizer.SynthesisError` — the contract the
    baselines satellite establishes; any other exception type is a
    ``crashed`` finding by definition.

    The whole flow runs under :func:`repro.pipeline.cache_bypass`: a
    crash-contained computation — one that a watchdog may kill halfway
    — must never publish stage artifacts into a shared pipeline cache,
    so a crashed outcome can never be replayed as cached truth.
    """
    from ..core.synthesizer import SynthesisError
    from ..pipeline import cache_bypass

    t0 = _time.perf_counter()
    try:
        with cache_bypass(), wall_clock_guard(timeout):
            result = _dispatch(flow, sg, name)
        stats = result.netlist.stats()
        return FlowOutcome(
            flow=flow,
            status="ok",
            area=stats.area,
            delay=stats.delay,
            gates=stats.num_gates,
            runtime=_time.perf_counter() - t0,
        )
    except WallClockTimeout:
        return FlowOutcome(
            flow=flow,
            status="timeout",
            detail=f"exceeded {timeout}s",
            runtime=_time.perf_counter() - t0,
        )
    except SynthesisError as e:
        return FlowOutcome(
            flow=flow,
            status="refused",
            detail=f"{type(e).__name__}: {e}",
            error_type=type(e).__name__,
            runtime=_time.perf_counter() - t0,
        )
    except Exception as e:
        return FlowOutcome(
            flow=flow,
            status="crashed",
            detail=f"{type(e).__name__}: {e}",
            error_type=type(e).__name__,
            runtime=_time.perf_counter() - t0,
        )


# ----------------------------------------------------------------------
# judges
# ----------------------------------------------------------------------
def judge(labels: SpecLabels, outcomes: list[FlowOutcome]) -> list[tuple[str, str, str]]:
    """Apply the capability matrix; returns ``(kind, flow, detail)``.

    The matrix is the executable form of the paper's Table 2
    applicability rules plus the structured-error contract — see the
    module docstring for the full statement.
    """
    findings: list[tuple[str, str, str]] = []
    valid = labels.consistent and labels.csc and labels.semimodular
    for o in outcomes:
        if o.status == "crashed":
            findings.append(("flow-crash", o.flow, o.detail))
            continue
        if o.status == "timeout":
            findings.append(("flow-timeout", o.flow, o.detail))
            continue
        if not valid:
            if o.status == "ok":
                findings.append(
                    (
                        "unexpected-success",
                        o.flow,
                        "accepted a spec failing the Theorem 2 preconditions "
                        f"(consistent={labels.consistent} csc={labels.csc} "
                        f"semimodular={labels.semimodular})",
                    )
                )
            continue
        # valid spec from here on
        if o.flow in DISTRIBUTIVE_ONLY_FLOWS and not labels.distributive:
            if o.status == "ok":
                findings.append(
                    (
                        "unexpected-success",
                        o.flow,
                        "accepted a non-distributive spec "
                        f"({labels.detonant_count} detonant state(s))",
                    )
                )
            continue  # refusal with code (1) is the expected outcome
        if o.status == "refused" and o.error_type not in DATA_DEPENDENT_REFUSALS:
            findings.append(("unexpected-refusal", o.flow, o.detail))
    return findings


def _oracle_outcome(
    circuit, sg: StateGraph, *, runs: int, base_seed: int, timeout: float | None
) -> tuple[dict, list[tuple[str, str, str]]]:
    """Simulate the N-SHOT circuit against its own spec a few times."""
    from ..core.verify import run_oracle
    from ..sim.simulator import SimConfig

    findings: list[tuple[str, str, str]] = []
    summary = {"runs": 0, "clean": 0, "violations": 0, "timeouts": 0, "errors": 0}
    for k in range(runs):
        env_seed = derive_seed(base_seed, 7919 + k)
        try:
            with wall_clock_guard(timeout):
                verdict = run_oracle(
                    circuit.netlist,
                    sg,
                    SimConfig(seed=env_seed, max_events=50_000, max_sim_time=2400.0),
                    max_time=1200.0,
                    max_transitions=60,
                    internal_nets=circuit.architecture.sop_nets,
                )
        except WallClockTimeout:
            summary["runs"] += 1
            summary["timeouts"] += 1
            continue
        summary["runs"] += 1
        if verdict.status == "clean":
            summary["clean"] += 1
        elif verdict.status == "violation":
            summary["violations"] += 1
            head = verdict.errors[0] if verdict.errors else "conformance violation"
            findings.append(
                (
                    "oracle-violation",
                    "nshot",
                    f"env_seed={env_seed}: {head}",
                )
            )
        elif verdict.status == "timeout":
            summary["timeouts"] += 1
        else:
            summary["errors"] += 1
            head = verdict.errors[0] if verdict.errors else "simulation error"
            findings.append(
                ("oracle-violation", "nshot", f"env_seed={env_seed}: [error] {head}")
            )
    return summary, findings


def _lint_findings(
    sg: StateGraph, labels: SpecLabels, name: str
) -> list[tuple[str, str, str]]:
    """Cross-check the lint catalog against the generator's labels."""
    from ..analysis.engine import analyze, run_preflight

    findings: list[tuple[str, str, str]] = []
    expected_ok = labels.consistent and labels.csc and labels.semimodular
    try:
        preflight = run_preflight(sg, name=name)
    except Exception as e:
        return [("lint-crash", "preflight", f"{type(e).__name__}: {e}")]
    if preflight.ok != expected_ok:
        rules = sorted({d.rule_id for d in preflight.diagnostics})
        findings.append(
            (
                "lint-mismatch",
                "preflight",
                f"preflight ok={preflight.ok} but labels say "
                f"consistent={labels.consistent} csc={labels.csc} "
                f"semimodular={labels.semimodular} (fired: {rules})",
            )
        )
    try:
        full = analyze(sg, name=name)
        if full.internal_errors:
            findings.append(
                (
                    "lint-crash",
                    "catalog",
                    "; ".join(str(e) for e in full.internal_errors[:3]),
                )
            )
    except Exception as e:
        findings.append(("lint-crash", "catalog", f"{type(e).__name__}: {e}"))
    return findings


# ----------------------------------------------------------------------
# one sample end to end (the pool task function)
# ----------------------------------------------------------------------
def run_fuzz_unit(payload) -> tuple[SpecResult, dict | None, dict | None]:
    """Generate + cross-synthesize + judge one sample; never raises.

    ``payload`` is ``(seed, knobs, flow_timeout, oracle_runs, trace)``.
    Returns ``(result, trace_export, metrics_export)`` with the same
    ship-spans-home convention as the fault campaign's ``_run_unit``.
    """
    seed, knobs, flow_timeout, oracle_runs, trace = payload
    tracer = get_tracer()
    foreign = trace and (tracer.pid != os.getpid() or not tracer.enabled)
    prev_tracer = prev_metrics = None
    if foreign:
        prev_tracer, prev_metrics = get_tracer(), get_metrics()
        set_tracer(Tracer())
        set_metrics(MetricsRegistry())
    try:
        result = _run_fuzz_unit_inner(seed, knobs, flow_timeout, oracle_runs)
    finally:
        if foreign:
            trace_export = get_tracer().export()
            metrics_export = get_metrics().export()
            set_tracer(prev_tracer)
            set_metrics(prev_metrics)
    if foreign:
        return result, trace_export, metrics_export
    return result, None, None


def _run_fuzz_unit_inner(
    seed: int, knobs: SpecKnobs, flow_timeout: float | None, oracle_runs: int
) -> SpecResult:
    t0 = _time.perf_counter()
    result = SpecResult(seed=seed, knobs=knobs)
    with trace_span("fuzz-unit", seed=seed, knobs=knobs.short()) as sp:
        try:
            spec = generate_spec(seed, knobs)
        except GenerationError as e:
            result.disagreements.append(
                Disagreement(
                    kind="generator-error",
                    flow="generator",
                    seed=seed,
                    knobs=knobs,
                    detail=str(e),
                    spec_text="",
                )
            )
            result.runtime = _time.perf_counter() - t0
            sp.set(outcome="generator-error")
            return result
        result.name = spec.name
        result.labels = spec.labels.to_json()
        spec_text = write_sg(spec.sg, spec.name)

        nshot_circuit = None
        for flow in FLOW_NAMES:
            if flow == "nshot":
                # keep the circuit for the oracle judge without paying
                # for a second synthesis
                from ..core.synthesizer import SynthesisError

                t1 = _time.perf_counter()
                try:
                    with wall_clock_guard(flow_timeout):
                        nshot_circuit = _dispatch("nshot", spec.sg, spec.name)
                    stats = nshot_circuit.netlist.stats()
                    outcome = FlowOutcome(
                        flow="nshot",
                        status="ok",
                        area=stats.area,
                        delay=stats.delay,
                        gates=stats.num_gates,
                        runtime=_time.perf_counter() - t1,
                    )
                except WallClockTimeout:
                    outcome = FlowOutcome(
                        flow="nshot",
                        status="timeout",
                        detail=f"exceeded {flow_timeout}s",
                        runtime=_time.perf_counter() - t1,
                    )
                except SynthesisError as e:
                    outcome = FlowOutcome(
                        flow="nshot",
                        status="refused",
                        detail=f"{type(e).__name__}: {e}",
                        error_type=type(e).__name__,
                        runtime=_time.perf_counter() - t1,
                    )
                except Exception as e:
                    outcome = FlowOutcome(
                        flow="nshot",
                        status="crashed",
                        detail=f"{type(e).__name__}: {e}",
                        error_type=type(e).__name__,
                        runtime=_time.perf_counter() - t1,
                    )
            else:
                outcome = run_flow(
                    flow, spec.sg, name=spec.name, timeout=flow_timeout
                )
            result.outcomes.append(outcome)

        findings = judge(spec.labels, result.outcomes)
        findings.extend(_lint_findings(spec.sg, spec.labels, spec.name))

        valid = (
            spec.labels.consistent and spec.labels.csc and spec.labels.semimodular
        )
        if valid and oracle_runs > 0 and nshot_circuit is not None:
            nshot = next(o for o in result.outcomes if o.flow == "nshot")
            if nshot.status == "ok":
                summary, oracle_findings = _oracle_outcome(
                    nshot_circuit,
                    spec.sg,
                    runs=oracle_runs,
                    base_seed=seed,
                    timeout=flow_timeout,
                )
                nshot.oracle = summary
                findings.extend(oracle_findings)

        for kind, flow, detail in findings:
            result.disagreements.append(
                Disagreement(
                    kind=kind,
                    flow=flow,
                    seed=seed,
                    knobs=knobs,
                    detail=detail,
                    spec_text=spec_text,
                    labels=spec.labels.to_json(),
                    original_states=spec.labels.states,
                )
            )
        result.runtime = _time.perf_counter() - t0
        sp.set(
            outcomes={o.flow: o.status for o in result.outcomes},
            disagreements=len(result.disagreements),
        )
    return result


# ----------------------------------------------------------------------
# campaign orchestration
# ----------------------------------------------------------------------
@dataclass
class FuzzConfig:
    """Knobs of one differential fuzz campaign.

    ``budget`` samples are drawn round-robin over the knob combinations
    selected by ``csc`` / ``distributive`` / ``traversal`` (each
    ``both`` or one side); per-sample seeds derive deterministically
    from ``seed``, so a campaign is reproducible bit-for-bit.
    """

    seed: int = 0
    budget: int = 100
    signals: int = 8
    csc: str = "both"
    distributive: str = "both"
    traversal: str = "both"
    jobs: int = 1
    flow_timeout: float | None = 20.0
    retries: int = 0
    oracle_runs: int = 2
    minimize: bool = True
    shrink_evals: int = 200

    def combinations(self) -> list[SpecKnobs]:
        return knob_combinations(
            self.signals,
            csc=self.csc,
            distributive=self.distributive,
            traversal=self.traversal,
        )


def run_fuzz(config: FuzzConfig) -> "FuzzReport":
    """Execute a campaign; returns the structured report.

    Executor-level failures (a worker OOM-killed mid-sample, a sample
    exceeding the outer deadline) are recorded as synthetic
    ``flow-crash`` / ``flow-timeout`` disagreements against the
    harness itself — by the campaign's own rule, nothing is allowed to
    be an uncontained crash.
    """
    from .report import FuzzReport
    from .shrink import shrink_disagreement

    tracer = get_tracer()
    combos = config.combinations()
    payloads = []
    for i in range(config.budget):
        knobs = combos[i % len(combos)]
        payloads.append(
            (
                derive_seed(config.seed, i),
                knobs,
                config.flow_timeout,
                config.oracle_runs,
                tracer.enabled,
            )
        )

    # outer deadline: the whole sample (every flow + oracle runs) —
    # generous so the per-flow SIGALRM guard inside the worker fires
    # first and the kill-based pool deadline is the backstop
    outer = None
    if config.flow_timeout:
        outer = config.flow_timeout * (len(FLOW_NAMES) + max(config.oracle_runs, 1) + 2)
    policy = ExecutorPolicy(
        jobs=config.jobs,
        task_timeout=outer if config.jobs > 1 else None,
        retries=config.retries,
    )

    report = FuzzReport(config=config)
    t0 = _time.perf_counter()
    with trace_span(
        "fuzz-campaign", seed=config.seed, budget=config.budget, jobs=config.jobs
    ) as sp:
        batch = run_tasks(run_fuzz_unit, payloads, policy)
        report.truncated = batch.truncated
        for tr in batch.results:
            if tr.ok:
                result, trace_export, metrics_export = tr.value
                tracer.adopt(trace_export, parent_id=sp.id)
                get_metrics().merge(metrics_export)
                report.samples.append(result)
                continue
            if tr.status == "cancelled":
                continue
            seed, knobs = payloads[tr.index][0], payloads[tr.index][1]
            kind = "flow-timeout" if tr.status == "timeout" else "flow-crash"
            synthetic = SpecResult(seed=seed, knobs=knobs)
            synthetic.disagreements.append(
                Disagreement(
                    kind=kind,
                    flow="harness",
                    seed=seed,
                    knobs=knobs,
                    detail=f"executor: {tr.status}: {tr.detail}",
                    spec_text="",
                )
            )
            report.samples.append(synthetic)

        for sample in report.samples:
            for d in sample.disagreements:
                report.add_disagreement(d)

        if config.minimize:
            for d in report.unique_disagreements():
                if d.kind == "flow-timeout" or not d.spec_text:
                    continue
                shrink_disagreement(d, max_evals=config.shrink_evals)
        sp.set(
            samples=len(report.samples),
            disagreements=len(report.disagreements),
            unique=len(report.unique_disagreements()),
        )
    report.runtime = _time.perf_counter() - t0
    metrics = get_metrics()
    metrics.counter("fuzz.samples").add(len(report.samples))
    metrics.counter("fuzz.disagreements").add(len(report.disagreements))
    return report
