"""Delta-debugging minimizer for fuzz disagreements.

A raw counterexample from the generator has dozens of states; the bug
it witnesses usually needs a handful.  :func:`shrink_disagreement`
re-derives the disagreement as an executable predicate and then
greedily removes **states** (ddmin over chunks, reachability-restricted)
and **arcs** (single sweep) while two invariants hold:

1. the classifier labels the judges read (consistency, CSC,
   semi-modularity, distributivity) stay exactly what they were — the
   capability-matrix expectation must not drift mid-shrink;
2. the disagreement predicate still fires — same kind, same flow, same
   error type.

Every candidate is evaluated by actually re-running the flow (or lint,
or oracle), so the budget ``max_evals`` bounds the wall-clock cost; the
result is the smallest witness found within budget, not a global
minimum.
"""

from __future__ import annotations

from typing import Callable

from ..sg.graph import StateGraph
from ..sg.sgformat import parse_sg, write_sg
from .differential import Disagreement, run_flow
from .generator import classify

__all__ = ["shrink_sg", "shrink_disagreement", "disagreement_predicate"]


def _label_key(sg: StateGraph) -> tuple[bool, bool, bool, bool]:
    labels = classify(sg)
    return (
        labels.consistent,
        labels.csc,
        labels.semimodular,
        labels.distributive,
    )


def disagreement_predicate(d: Disagreement) -> Callable[[StateGraph], bool] | None:
    """The disagreement as a re-runnable check, or None if not shrinkable.

    The predicate never raises: a candidate that explodes in a new way
    simply does not reproduce *this* disagreement.
    """
    kind, flow = d.kind, d.flow

    if kind == "flow-crash" and flow != "harness":
        etype = d.detail.split(":", 1)[0].strip() if d.detail else ""

        def crash_pred(sg: StateGraph) -> bool:
            o = run_flow(flow, sg, name="shrink", timeout=10.0)
            return o.status == "crashed" and (not etype or o.error_type == etype)

        return crash_pred

    if kind == "unexpected-refusal":
        etype = d.detail.split(":", 1)[0].strip()

        def refusal_pred(sg: StateGraph) -> bool:
            o = run_flow(flow, sg, name="shrink", timeout=10.0)
            return o.status == "refused" and o.error_type == etype

        return refusal_pred

    if kind == "unexpected-success":

        def success_pred(sg: StateGraph) -> bool:
            o = run_flow(flow, sg, name="shrink", timeout=10.0)
            return o.status == "ok"

        return success_pred

    if kind == "oracle-violation":
        from .differential import _oracle_outcome

        def oracle_pred(sg: StateGraph) -> bool:
            o = run_flow("nshot", sg, name="shrink", timeout=10.0)
            if o.status != "ok":
                return False
            try:
                from ..core.synthesizer import synthesize

                circuit = synthesize(sg, name="shrink")
            except Exception:
                return False
            _, findings = _oracle_outcome(
                circuit, sg, runs=1, base_seed=d.seed, timeout=10.0
            )
            return bool(findings)

        return oracle_pred

    if kind in ("lint-mismatch", "lint-crash"):
        from .differential import _lint_findings

        def lint_pred(sg: StateGraph) -> bool:
            try:
                labels = classify(sg)
            except Exception:
                return False
            return any(k == kind for k, _, _ in _lint_findings(sg, labels, "shrink"))

        return lint_pred

    return None  # flow-timeout, generator-error, harness: not shrinkable


def shrink_sg(
    sg: StateGraph,
    keep: Callable[[StateGraph], bool],
    max_evals: int = 200,
) -> tuple[StateGraph, int]:
    """ddmin over states, then an arc sweep, under an eval budget.

    ``keep(candidate)`` must return True when the candidate still
    witnesses the bug; it is assumed (and not re-checked) to hold for
    ``sg`` itself.  Returns the smallest passing SG and the number of
    evaluations spent.
    """
    evals = 0

    def check(candidate: StateGraph) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        if candidate.initial is None or candidate.num_states < 1:
            return False
        try:
            return keep(candidate)
        except Exception:
            return False

    # --- phase 1: ddmin on the state set (always keeping the initial)
    current = sg
    chunk = max(1, current.num_states // 2)
    while chunk >= 1 and evals < max_evals:
        states = [s for s in current.states() if s != current.initial]
        shrunk = False
        i = 0
        while i < len(states) and evals < max_evals:
            drop = set(states[i : i + chunk])
            candidate = current.subgraph(
                set(current.states()) - drop
            ).restrict_to_reachable()
            if candidate.num_states < current.num_states and check(candidate):
                current = candidate
                states = [s for s in current.states() if s != current.initial]
                shrunk = True
                # stay at the same position: the list shifted under us
            else:
                i += chunk
        if not shrunk:
            chunk //= 2

    # --- phase 2: one sweep of single-arc removals
    for src, t in [
        (s, t) for s in current.states() for t, _ in current.successors(s)
    ]:
        if evals >= max_evals:
            break
        # the arc (or its source) may be gone after an earlier removal
        if src not in set(current.states()) or current.succ(src, t) is None:
            continue
        candidate = current.without_arc(src, t).restrict_to_reachable()
        if check(candidate):
            current = candidate

    return current, evals


def shrink_disagreement(d: Disagreement, max_evals: int = 200) -> Disagreement:
    """Minimize one disagreement in place (fills ``minimized_*``).

    A disagreement whose kind is not shrinkable, whose spec no longer
    parses, or whose predicate does not reproduce on the original spec
    is returned untouched (``minimized_text`` stays None) — the raw
    spec is still archivable.
    """
    pred = disagreement_predicate(d)
    if pred is None or not d.spec_text:
        return d
    try:
        sg = parse_sg(d.spec_text)
    except Exception:
        return d
    try:
        base_labels = _label_key(sg)
        if not pred(sg):
            return d  # does not reproduce — leave the raw witness alone
    except Exception:
        return d

    def keep(candidate: StateGraph) -> bool:
        if _label_key(candidate) != base_labels:
            return False
        return pred(candidate)

    minimized, evals = shrink_sg(sg, keep, max_evals=max_evals)
    d.original_states = sg.num_states
    d.minimized_states = minimized.num_states
    d.minimized_text = write_sg(minimized, f"min_{d.kind.replace('-', '_')}")
    d.shrink_evals = evals
    return d
