"""Structured results of a differential fuzz campaign.

``FuzzReport.to_json`` emits the versioned ``repro-fuzz/1`` document
the CLI writes with ``--format json`` and the CI smoke job uploads as
an artifact; ``render_text`` is the human summary.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from .differential import DISAGREEMENT_KINDS, Disagreement, FuzzConfig, SpecResult

__all__ = ["SCHEMA", "FuzzReport"]

SCHEMA = "repro-fuzz/1"


@dataclass
class FuzzReport:
    """Everything one campaign produced."""

    config: FuzzConfig
    samples: list[SpecResult] = field(default_factory=list)
    #: every disagreement, one per (sample, finding)
    disagreements: list[Disagreement] = field(default_factory=list)
    #: the campaign was interrupted; trailing samples are missing
    truncated: bool = False
    runtime: float = 0.0
    _by_signature: dict[str, Disagreement] = field(default_factory=dict)

    def add_disagreement(self, d: Disagreement) -> None:
        self.disagreements.append(d)
        self._by_signature.setdefault(d.signature, d)

    def unique_disagreements(self) -> list[Disagreement]:
        """First witness per signature — what gets minimized/archived."""
        return list(self._by_signature.values())

    @property
    def clean(self) -> bool:
        return not self.disagreements

    def counts(self) -> dict[str, int]:
        out = {k: 0 for k in DISAGREEMENT_KINDS}
        for d in self.disagreements:
            out[d.kind] = out.get(d.kind, 0) + 1
        return {k: v for k, v in out.items() if v}

    def flow_table(self) -> dict[str, dict[str, int]]:
        """Per-flow outcome histogram across all samples."""
        table: dict[str, dict[str, int]] = {}
        for s in self.samples:
            for o in s.outcomes:
                row = table.setdefault(o.flow, {})
                row[o.status] = row.get(o.status, 0) + 1
        return table

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "config": asdict(self.config),
            "summary": {
                "samples": len(self.samples),
                "disagreements": len(self.disagreements),
                "unique_signatures": len(self._by_signature),
                "kinds": self.counts(),
                "flows": self.flow_table(),
                "truncated": self.truncated,
                "runtime": round(self.runtime, 3),
            },
            "samples": [s.to_json() for s in self.samples],
            "disagreements": [d.to_json() for d in self.unique_disagreements()],
        }

    def render_text(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.config.seed} budget={self.config.budget} "
            f"signals={self.config.signals} "
            f"(csc={self.config.csc} distributive={self.config.distributive} "
            f"traversal={self.config.traversal})",
            f"  samples:       {len(self.samples)}"
            + ("  [TRUNCATED]" if self.truncated else ""),
        ]
        table = self.flow_table()
        for flow in sorted(table):
            row = table[flow]
            cells = "  ".join(f"{k}={row[k]}" for k in sorted(row))
            lines.append(f"  {flow:<16} {cells}")
        if self.clean:
            lines.append("  disagreements: none — all flows agree with the matrix")
        else:
            lines.append(
                f"  disagreements: {len(self.disagreements)} "
                f"({len(self._by_signature)} unique)"
            )
            for d in self.unique_disagreements():
                size = ""
                if d.minimized_text is not None:
                    size = (
                        f" [minimized {d.original_states}→{d.minimized_states} "
                        f"states in {d.shrink_evals} evals]"
                    )
                lines.append(f"    {d.signature}: seed={d.seed} {d.detail}{size}")
        lines.append(f"  runtime: {self.runtime:.1f}s")
        return "\n".join(lines)
