"""Differential fuzzing subsystem.

Property-controlled spec generation (:mod:`~repro.fuzz.generator`),
crash-contained cross-synthesis (:mod:`~repro.fuzz.differential`) over
the shared watchdog-guarded pool (:mod:`~repro.fuzz.executor`),
delta-debugging minimization (:mod:`~repro.fuzz.shrink`) and the
reproducer corpus (:mod:`~repro.fuzz.corpus`).  Entry point:
:func:`run_fuzz` / the ``repro fuzz`` CLI.
"""

from .corpus import CorpusEntry, archive_reproducer, load_corpus, replay_entry
from .differential import (
    DISAGREEMENT_KINDS,
    FLOW_NAMES,
    Disagreement,
    FlowOutcome,
    FuzzConfig,
    SpecResult,
    judge,
    run_flow,
    run_fuzz,
)
from .executor import (
    ExecutorPolicy,
    ExecutorReport,
    TaskResult,
    WallClockTimeout,
    run_tasks,
    wall_clock_guard,
)
from .generator import (
    GeneratedSpec,
    GenerationError,
    SpecKnobs,
    SpecLabels,
    classify,
    derive_seed,
    generate_spec,
    knob_combinations,
)
from .report import SCHEMA, FuzzReport
from .shrink import disagreement_predicate, shrink_disagreement, shrink_sg

__all__ = [
    "CorpusEntry",
    "archive_reproducer",
    "load_corpus",
    "replay_entry",
    "DISAGREEMENT_KINDS",
    "FLOW_NAMES",
    "Disagreement",
    "FlowOutcome",
    "FuzzConfig",
    "SpecResult",
    "judge",
    "run_flow",
    "run_fuzz",
    "ExecutorPolicy",
    "ExecutorReport",
    "TaskResult",
    "WallClockTimeout",
    "run_tasks",
    "wall_clock_guard",
    "GeneratedSpec",
    "GenerationError",
    "SpecKnobs",
    "SpecLabels",
    "classify",
    "derive_seed",
    "generate_spec",
    "knob_combinations",
    "SCHEMA",
    "FuzzReport",
    "disagreement_predicate",
    "shrink_disagreement",
    "shrink_sg",
]
