"""Reproducer corpus: minimized fuzz findings as forever-regression tests.

Every unique disagreement a campaign finds is archived as a ``.g`` file
under ``examples/fuzz-corpus/`` — the minimized SG (when the shrinker
succeeded, the raw witness otherwise) preceded by ``#`` header comments
carrying the finding's metadata.  The files are plain SG dialect (the
parser strips comments), so ``repro lint`` / ``repro explain`` work on
them directly, and the default test run replays each entry through the
full differential harness to pin the containment behaviour down.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from ..sg.graph import StateGraph
from ..sg.sgformat import parse_sg

__all__ = ["CorpusEntry", "archive_reproducer", "load_corpus", "replay_entry"]

#: default corpus location, relative to the repository root
DEFAULT_CORPUS = Path("examples") / "fuzz-corpus"


@dataclass
class CorpusEntry:
    """One archived reproducer: its SG plus the recorded finding."""

    path: Path
    meta: dict = field(default_factory=dict)
    text: str = ""

    @property
    def signature(self) -> str:
        return self.meta.get("signature", "")

    def sg(self) -> StateGraph:
        return parse_sg(self.text)


def _slug(signature: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "_", signature).strip("_").lower()


def _existing_signatures(corpus_dir: Path) -> set[str]:
    out = set()
    if not corpus_dir.is_dir():
        return out
    for p in sorted(corpus_dir.glob("*.g")):
        for line in p.read_text().splitlines():
            if line.startswith("# signature:"):
                out.add(line.split(":", 1)[1].strip())
                break
    return out


def archive_reproducer(d, corpus_dir: Path | str = DEFAULT_CORPUS) -> Path | None:
    """Write one disagreement's reproducer; returns the path.

    Dedupes by signature against the existing corpus (None = already
    archived or nothing to archive — e.g. a harness-level finding with
    no spec).  The minimized spec is preferred; the raw witness is the
    fallback so an unshrinkable finding is still pinned.
    """
    corpus_dir = Path(corpus_dir)
    spec_text = d.minimized_text or d.spec_text
    if not spec_text:
        return None
    if d.signature in _existing_signatures(corpus_dir):
        return None
    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = f"{_slug(d.signature)}_s{d.seed}.g"
    path = corpus_dir / name
    detail = " ".join(d.detail.split())
    header = [
        "# repro-fuzz reproducer (minimized counterexample; do not edit)",
        f"# signature: {d.signature}",
        f"# kind: {d.kind}",
        f"# flow: {d.flow}",
        f"# seed: {d.seed}",
        f"# knobs: {json.dumps(d.knobs.to_json(), sort_keys=True)}",
        f"# labels: {json.dumps(d.labels, sort_keys=True)}",
        f"# detail: {detail}",
        f"# states: {d.minimized_states or d.original_states}",
        "",
    ]
    path.write_text("\n".join(header) + spec_text)
    return path


def load_corpus(corpus_dir: Path | str = DEFAULT_CORPUS) -> list[CorpusEntry]:
    """Every archived reproducer, metadata parsed from the header."""
    corpus_dir = Path(corpus_dir)
    entries: list[CorpusEntry] = []
    if not corpus_dir.is_dir():
        return entries
    for p in sorted(corpus_dir.glob("*.g")):
        raw = p.read_text()
        meta: dict = {}
        for line in raw.splitlines():
            if not line.startswith("# "):
                continue
            body = line[2:]
            if ":" not in body:
                continue
            key, _, value = body.partition(":")
            key = key.strip()
            value = value.strip()
            if key in ("knobs", "labels"):
                try:
                    meta[key] = json.loads(value)
                except json.JSONDecodeError:
                    meta[key] = value
            elif key in ("seed", "states"):
                try:
                    meta[key] = int(value)
                except ValueError:
                    meta[key] = value
            elif key in ("signature", "kind", "flow", "detail"):
                meta[key] = value
        entries.append(CorpusEntry(path=p, meta=meta, text=raw))
    return entries


def replay_entry(entry: CorpusEntry, *, timeout: float | None = 10.0) -> list:
    """Push one reproducer through every flow, crash-contained.

    Returns the :class:`~repro.fuzz.differential.FlowOutcome` list.
    The regression guarantee the corpus test asserts is *containment*:
    whatever the reproducer provokes, every flow answers with a
    structured verdict — the campaign-killing behaviour it once
    witnessed must never come back.
    """
    from .differential import FLOW_NAMES, run_flow

    sg = entry.sg()
    return [
        run_flow(flow, sg, name=entry.path.stem, timeout=timeout)
        for flow in FLOW_NAMES
    ]
