"""Property-controlled random specification generator.

Emits semi-modular-with-input-choice state graphs whose paper
properties are *chosen*, not discovered: each knob of
:class:`SpecKnobs` selects one side of a dividing line from the paper —
CSC (Definition 1), distributivity (Definition 4), single traversal
(Definition 9) — and the construction below guarantees the requested
side, which the real classifiers (:mod:`repro.sg.properties`,
:mod:`repro.sg.distributivity`, :mod:`repro.sg.regions`) then confirm
on every sample.  A sample whose classifier labels disagree with its
knobs raises :class:`GenerationError` — the generator never silently
mislabels a spec, because the labels are the differential harness's
ground truth.

Construction: a random **cycle of episodes** over pairwise-disjoint
signal sets.  Every episode starts and ends in an all-signals-zero
boundary state and keeps at least one of its own signals high in every
interior state, so interiors never collide across episodes and the
whole cycle is consistent and semi-modular by composition.  The motifs:

* ``hs`` — a sequential handshake ``x+ k+ x- k-`` (input x, output k);
* ``fork`` — inputs rise concurrently, an output acknowledges, inputs
  fall concurrently (distributive concurrency, singleton triggers);
* ``choice`` — an input choice ``r1+|r2+ → g+ → ri- → g-`` rejoining
  before the grant falls (Definition 2's input-choice allowance); the
  grant is OR-caused by the competing requests, so the boundary state
  is detonant w.r.t. it — a *non-distributive* motif;
* ``orfork`` — the OR-causality element: an output rises once *any* of
  ``k ≥ 2`` inputs is up, so the boundary state is detonant w.r.t. it
  (Definition 3) — the other non-distributive construction;
* ``outfirst`` — an output-led episode ``c+ … c-``: its boundary
  excites a non-input, so two distinct boundary states (all coded
  zero) carry different excited non-input sets — a CSC violation by
  construction.

Multi-traversal specs are produced by a final product transform with a
free-running input (the device of the paper's Figure 7(b)): crossing
every state with a toggling clock preserves consistency,
semi-modularity, CSC and distributivity status, while making every
trigger region at least two states wide.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from ..sg.distributivity import detonant_states, is_distributive
from ..sg.graph import StateGraph, Transition
from ..sg.properties import (
    check_consistency,
    is_semimodular_with_input_choices,
    satisfies_csc,
    usc_violations,
)
from ..sg.regions import is_single_traversal

__all__ = [
    "GenerationError",
    "SpecKnobs",
    "SpecLabels",
    "GeneratedSpec",
    "classify",
    "generate_spec",
    "knob_combinations",
    "derive_seed",
]


class GenerationError(RuntimeError):
    """A generated sample's classifier labels contradict its knobs."""


@dataclass(frozen=True)
class SpecKnobs:
    """The requested properties of one generated specification.

    ``signals`` is a budget, not an exact count — motifs are packed
    into it (and it is raised to the minimum the requested properties
    need, e.g. a non-distributive spec needs the 4-signal ``orfork``).
    """

    signals: int = 8
    csc: bool = True
    distributive: bool = True
    single_traversal: bool = True

    def short(self) -> str:
        """Compact tag used in spec names: e.g. ``cds`` / ``nom``."""
        return (
            ("c" if self.csc else "n")
            + ("d" if self.distributive else "o")
            + ("s" if self.single_traversal else "m")
        )

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class SpecLabels:
    """Ground-truth classifier labels of one sample."""

    states: int
    signals: int
    inputs: int
    consistent: bool
    csc: bool
    usc: bool
    semimodular: bool
    distributive: bool
    detonant_count: int
    single_traversal: bool

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class GeneratedSpec:
    """One labeled sample: the SG plus its provenance and labels."""

    name: str
    seed: int
    knobs: SpecKnobs
    sg: StateGraph
    labels: SpecLabels


def classify(sg: StateGraph) -> SpecLabels:
    """Run the real property classifiers over an SG."""
    detonant = sum(len(detonant_states(sg, a)) for a in sg.non_inputs)
    return SpecLabels(
        states=sg.num_states,
        signals=sg.num_signals,
        inputs=len(sg.inputs),
        consistent=not check_consistency(sg),
        csc=satisfies_csc(sg),
        usc=not usc_violations(sg),
        semimodular=is_semimodular_with_input_choices(sg),
        distributive=is_distributive(sg),
        detonant_count=detonant,
        single_traversal=is_single_traversal(sg),
    )


# ----------------------------------------------------------------------
# episode motifs
# ----------------------------------------------------------------------
# Each motif emits arcs from an entry boundary state to an exit boundary
# state (both all-zero), over signal indices allocated to it alone.  The
# `tag` disambiguates interior state ids across episodes.


def _ep_hs(sg: StateGraph, entry, exit_, tag: int, x: int, k: int) -> None:
    """x+ k+ x- k-  (input x, output k)."""
    bx, bk = 1 << x, 1 << k
    s1 = sg.add_state((tag, 1), bx)
    s2 = sg.add_state((tag, 2), bx | bk)
    s3 = sg.add_state((tag, 3), bk)
    sg.add_arc(entry, Transition(x, 1), s1)
    sg.add_arc(s1, Transition(k, 1), s2)
    sg.add_arc(s2, Transition(x, -1), s3)
    sg.add_arc(s3, Transition(k, -1), exit_)


def _ep_outfirst(
    sg: StateGraph, entry, exit_, tag: int, c: int, x: int | None
) -> None:
    """c+ [x+] c- [x-]  (output-led: the boundary excites non-input c)."""
    bc = 1 << c
    if x is None:
        s1 = sg.add_state((tag, 1), bc)
        sg.add_arc(entry, Transition(c, 1), s1)
        sg.add_arc(s1, Transition(c, -1), exit_)
        return
    bx = 1 << x
    s1 = sg.add_state((tag, 1), bc)
    s2 = sg.add_state((tag, 2), bc | bx)
    s3 = sg.add_state((tag, 3), bx)
    sg.add_arc(entry, Transition(c, 1), s1)
    sg.add_arc(s1, Transition(x, 1), s2)
    sg.add_arc(s2, Transition(c, -1), s3)
    sg.add_arc(s3, Transition(x, -1), exit_)


def _mask(xs: tuple[int, ...]) -> int:
    m = 0
    for x in xs:
        m |= 1 << x
    return m


def _ep_fork(sg: StateGraph, entry, exit_, tag: int, xs: tuple[int, ...], k: int) -> None:
    """Inputs rise concurrently, k acknowledges, inputs fall, k resets."""
    bk = 1 << k
    full = frozenset(xs)

    def rise(sub: frozenset) -> object:
        return entry if not sub else sg.add_state((tag, "r", sub), _mask(tuple(sub)))

    def fall(sub: frozenset) -> object:
        return sg.add_state((tag, "f", sub), _mask(tuple(sub)) | bk)

    subsets = [frozenset(s) for s in _powerset(xs)]
    for sub in subsets:
        rise(sub)
    for sub in subsets:
        fall(sub)
    for sub in subsets:
        for x in xs:
            if x not in sub:
                sg.add_arc(rise(sub), Transition(x, 1), rise(sub | {x}))
        for x in sub:
            sg.add_arc(fall(sub), Transition(x, -1), fall(sub - {x}))
    sg.add_arc(rise(full), Transition(k, 1), fall(full))
    sg.add_arc(fall(frozenset()), Transition(k, -1), exit_)


def _ep_choice(sg: StateGraph, entry, exit_, tag: int, rs: tuple[int, ...], g: int) -> None:
    """Input choice: ri+ g+ ri- …merge… g-  (Definition 2 allowance).

    The grant is excited in *every* ``+ri`` successor of the entry
    boundary while stable in the boundary itself, so the boundary is a
    detonant state w.r.t. ``g`` (OR-causality through the choice) —
    this motif is non-distributive, like ``orfork``.
    """
    bg = 1 << g
    merge = sg.add_state((tag, "m"), bg)
    for r in rs:
        br = 1 << r
        s1 = sg.add_state((tag, "c", r), br)
        s2 = sg.add_state((tag, "d", r), br | bg)
        sg.add_arc(entry, Transition(r, 1), s1)
        sg.add_arc(s1, Transition(g, 1), s2)
        sg.add_arc(s2, Transition(r, -1), merge)
    sg.add_arc(merge, Transition(g, -1), exit_)


def _ep_orfork(
    sg: StateGraph, entry, exit_, tag: int, xs: tuple[int, ...], c: int, d: int
) -> None:
    """OR-causality: c rises once *any* input is up; d phases the reset.

    The entry boundary is detonant w.r.t. ``c`` (stable there, excited
    in every +xi successor) — Definition 3's OR-causality witness.  All
    trigger regions stay singletons, so non-distributivity is obtained
    without giving up single traversal.
    """
    bc, bd = 1 << c, 1 << d
    full = frozenset(xs)
    subsets = [frozenset(s) for s in _powerset(xs)]

    def up(sub: frozenset, cv: int) -> object:
        if not sub and not cv:
            return entry
        return sg.add_state((tag, "u", sub, cv), _mask(tuple(sub)) | (bc if cv else 0))

    def down(sub: frozenset) -> object:
        return sg.add_state((tag, "w", sub), _mask(tuple(sub)) | bc | bd)

    for sub in subsets:
        up(sub, 0)
        if sub:
            up(sub, 1)
    for sub in subsets:
        down(sub)
    tail = sg.add_state((tag, "t"), bd)
    for sub in subsets:
        for x in xs:
            if x not in sub:
                sg.add_arc(up(sub, 0), Transition(x, 1), up(sub | {x}, 0))
                if sub:
                    sg.add_arc(up(sub, 1), Transition(x, 1), up(sub | {x}, 1))
        if sub:
            sg.add_arc(up(sub, 0), Transition(c, 1), up(sub, 1))
        for x in sub:
            sg.add_arc(down(sub), Transition(x, -1), down(sub - {x}))
    sg.add_arc(up(full, 1), Transition(d, 1), down(full))
    sg.add_arc(down(frozenset()), Transition(c, -1), tail)
    sg.add_arc(tail, Transition(d, -1), exit_)


def _powerset(xs: tuple[int, ...]):
    out = [()]
    for x in xs:
        out.extend(s + (x,) for s in list(out))
    return out


# ----------------------------------------------------------------------
# cycle assembly
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Plan:
    motif: str
    n_inputs: int
    n_outputs: int

    @property
    def cost(self) -> int:
        return self.n_inputs + self.n_outputs


def _emit(plan: _Plan, sg: StateGraph, entry, exit_, tag: int, ins, outs) -> None:
    if plan.motif == "hs":
        _ep_hs(sg, entry, exit_, tag, ins[0], outs[0])
    elif plan.motif == "outfirst":
        _ep_outfirst(sg, entry, exit_, tag, outs[0], ins[0] if ins else None)
    elif plan.motif == "fork":
        _ep_fork(sg, entry, exit_, tag, tuple(ins), outs[0])
    elif plan.motif == "choice":
        _ep_choice(sg, entry, exit_, tag, tuple(ins), outs[0])
    elif plan.motif == "orfork":
        _ep_orfork(sg, entry, exit_, tag, tuple(ins), outs[0], outs[1])
    else:  # pragma: no cover - plan construction is closed
        raise GenerationError(f"unknown motif {plan.motif!r}")


def _with_free_running_input(sg: StateGraph, clk: str = "clk") -> StateGraph:
    """Product with a toggling input — the Figure 7(b) device.

    Preserves consistency, semi-modularity, CSC and distributivity
    status; makes every trigger region of every non-input at least two
    states wide (the clock toggle never leaves an excitation region),
    i.e. the result is multi-traversal.
    """
    idx = sg.num_signals
    bclk = 1 << idx
    out = StateGraph(
        list(sg.signals) + [clk],
        [sg.signals[i] for i in sorted(sg.inputs)] + [clk],
    )
    for s in sg.states():
        out.add_state((s, 0), sg.code(s))
        out.add_state((s, 1), sg.code(s) | bclk)
    assert sg.initial is not None
    out.set_initial((sg.initial, 0))
    for s in sg.states():
        for t, dst in sg.successors(s):
            out.add_arc((s, 0), t, (dst, 0))
            out.add_arc((s, 1), t, (dst, 1))
        out.add_arc((s, 0), Transition(idx, 1), (s, 1))
        out.add_arc((s, 1), Transition(idx, -1), (s, 0))
    return out


def _make_plans(rng: random.Random, knobs: SpecKnobs, budget: int) -> list[_Plan]:
    plans: list[_Plan] = []
    if not knobs.distributive:
        # mandatory OR-causality: `choice` (cost 3) or `orfork` (cost 4+)
        if budget >= 4 and rng.random() < 0.5:
            k = 3 if budget >= 9 and rng.random() < 0.4 else 2
            plans.append(_Plan("orfork", k, 2))
        else:
            plans.append(_Plan("choice", 2, 1))
    if not knobs.csc:
        plans.append(_Plan("outfirst", rng.choice((0, 1)), 1))
    spent = sum(p.cost for p in plans)
    # fill the remaining budget; choice/orfork are detonant (OR-causal)
    # so they may only appear when non-distributivity was requested
    pool = ["hs", "hs", "fork"]
    if not knobs.csc:
        pool.append("outfirst")
    if not knobs.distributive:
        pool.extend(["choice", "orfork"])
    while budget - spent >= 2:
        motif = rng.choice(pool)
        if motif == "hs":
            plan = _Plan("hs", 1, 1)
        elif motif == "outfirst":
            plan = _Plan("outfirst", rng.choice((0, 1)), 1)
        else:
            n_outs = 2 if motif == "orfork" else 1
            width = min(3, budget - spent - n_outs)
            if width < 2:
                plan = _Plan("hs", 1, 1)
            else:
                k = rng.randint(2, width)
                plan = _Plan(motif, k, n_outs)
        if plan.cost > budget - spent:
            break
        plans.append(plan)
        spent += plan.cost
        if len(plans) >= 2 and rng.random() < 0.25:
            break
    # a CSC violation needs two all-zero boundaries with different
    # excited non-input sets — i.e. at least two episodes
    if not knobs.csc and len(plans) < 2:
        plans.append(_Plan("outfirst", 0, 1))
    if not plans:  # pragma: no cover - budget floor prevents this
        plans.append(_Plan("hs", 1, 1))
    rng.shuffle(plans)
    return plans


def _min_budget(knobs: SpecKnobs) -> int:
    need = 2  # at least one handshake
    if not knobs.distributive:
        need = 3  # the input-choice motif is the cheapest detonant one
    if not knobs.csc:
        need += 1
    return need


def derive_seed(seed: int, index: int) -> int:
    """Per-spec seed of campaign spec ``index`` (stable, collision-free)."""
    return (seed * 1_000_003 + index) & 0x7FFFFFFF


def generate_spec(seed: int, knobs: SpecKnobs | None = None) -> GeneratedSpec:
    """Generate one labeled sample (deterministic in ``(seed, knobs)``)."""
    knobs = knobs or SpecKnobs()
    rng = random.Random(f"{seed}/{knobs.short()}/{knobs.signals}")
    budget = max(knobs.signals, _min_budget(knobs))
    if not knobs.single_traversal:
        budget = max(budget - 1, _min_budget(knobs))  # reserve the clock signal
    plans = _make_plans(rng, knobs, budget)

    signals: list[str] = []
    inputs: list[str] = []
    alloc: list[tuple[list[int], list[int]]] = []
    for plan in plans:
        ins, outs = [], []
        for _ in range(plan.n_inputs):
            ins.append(len(signals))
            inputs.append(f"x{len(signals)}")
            signals.append(f"x{len(signals)}")
        for _ in range(plan.n_outputs):
            outs.append(len(signals))
            signals.append(f"y{len(signals)}")
        alloc.append((ins, outs))

    sg = StateGraph(signals, inputs)
    n_ep = len(plans)
    for i in range(n_ep):
        sg.add_state(("b", i), 0)
    sg.set_initial(("b", 0))
    for i, plan in enumerate(plans):
        ins, outs = alloc[i]
        _emit(plan, sg, ("b", i), ("b", (i + 1) % n_ep), i, ins, outs)

    if not knobs.single_traversal:
        sg = _with_free_running_input(sg)

    labels = classify(sg)
    want = {
        "consistent": True,
        "semimodular": True,
        "csc": knobs.csc,
        "distributive": knobs.distributive,
        "single_traversal": knobs.single_traversal,
    }
    got = {k: getattr(labels, k) for k in want}
    if got != want:
        bad = {k: (want[k], got[k]) for k in want if want[k] != got[k]}
        raise GenerationError(
            f"sample (seed={seed}, knobs={knobs.short()}) label mismatch "
            f"(want, got): {bad}"
        )
    name = f"fuzz_s{seed}_{knobs.short()}"
    return GeneratedSpec(name=name, seed=seed, knobs=knobs, sg=sg, labels=labels)


def knob_combinations(
    signals: int = 8,
    csc: str = "both",
    distributive: str = "both",
    traversal: str = "both",
) -> list[SpecKnobs]:
    """The knob sweep of a campaign, from per-axis mode selectors.

    Each selector is ``"both"`` or one of its sides (``"on"``/``"off"``
    for csc and distributivity, ``"single"``/``"multi"`` for
    traversal).  A campaign cycles through the cartesian product.
    """

    def sides(mode: str, on: str, off: str, axis: str) -> list[bool]:
        if mode == "both":
            return [True, False]
        if mode == on:
            return [True]
        if mode == off:
            return [False]
        raise ValueError(f"bad {axis} mode {mode!r} (expected both/{on}/{off})")

    return [
        SpecKnobs(signals=signals, csc=c, distributive=d, single_traversal=t)
        for c in sides(csc, "on", "off", "csc")
        for d in sides(distributive, "on", "off", "distributive")
        for t in sides(traversal, "single", "multi", "traversal")
    ]
