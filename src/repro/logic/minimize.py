"""Top-level minimization API used by the synthesis flows.

``minimize()`` is the single entry point the N-SHOT synthesizer and the
baseline flows call.  It accepts an (ON, DC, OFF) triple — exactly the
``(F, D, R)`` the paper's Section IV-A procedure constructs from the
excitation/quiescent regions — and dispatches to the heuristic
ESPRESSO loop or the exact minimizer.

It also provides :func:`verify_cover`, the sanity oracle asserting the
fundamental containment ``F ⊆ result ⊆ F ∪ D`` that any sound
minimizer must satisfy.  Tests and the synthesis flow both lean on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import get_metrics, trace_span
from .cover import Cover
from .espresso import espresso
from .exact import exact_minimize
from .tautology import cover_covers_cube_multi, covers_cover

__all__ = ["minimize", "verify_cover", "MinimizationError"]


class MinimizationError(ValueError):
    """Raised when the (F, D, R) specification is inconsistent."""


def minimize(
    on: Cover,
    dc: Cover | None = None,
    off: Cover | None = None,
    method: str = "espresso",
) -> Cover:
    """Minimize a multi-output incompletely-specified function.

    Parameters
    ----------
    on, dc, off:
        The ON-set, don't-care-set and OFF-set covers.  ``off`` may be
        omitted, in which case it is computed by complementation of
        ``on ∪ dc``.
    method:
        ``"espresso"`` (heuristic, default — what the paper used) or
        ``"exact"`` (Quine–McCluskey + covering, footnote 6; only for
        single-output covers, multi-output covers are minimized
        per-output and re-merged).

    Returns
    -------
    Cover
        A prime irredundant cover ``C`` with ``F ⊆ C ⊆ F ∪ D``.
    """
    if off is not None and _overlaps(on, off):
        raise MinimizationError("ON-set and OFF-set overlap")
    with trace_span("minimize", method=method, outputs=on.num_outputs) as sp:
        result = _dispatch(on, dc, off, method)
        cubes, literals = len(result), result.num_literals()
        sp.set(cubes=cubes, literals=literals)
    metrics = get_metrics()
    metrics.gauge("minimize.cubes").set(cubes)
    metrics.gauge("minimize.literals").set(literals)
    return result


def _dispatch(
    on: Cover, dc: Cover | None, off: Cover | None, method: str
) -> Cover:
    if method == "espresso":
        return espresso(on, dc, off)
    if method == "exact":
        if on.num_outputs == 1:
            return exact_minimize(on, dc)
        merged = Cover.empty(on.num_inputs, on.num_outputs)
        for o in range(on.num_outputs):
            sub = exact_minimize(
                on.projection(o), dc.projection(o) if dc is not None else None
            )
            for c in sub.cubes:
                merged.add(c.with_outputs(1 << o))
        return merged.single_cube_containment()
    raise ValueError(f"unknown minimization method {method!r}")


def _overlaps(a: Cover, b: Cover) -> bool:
    for ca in a.cubes:
        for cb in b.cubes:
            if ca.intersects(cb):
                return True
    return False


@dataclass
class CoverCheck:
    """Result of :func:`verify_cover`."""

    covers_on: bool
    within_on_dc: bool
    disjoint_from_off: bool

    @property
    def ok(self) -> bool:
        return self.covers_on and self.within_on_dc and self.disjoint_from_off


def verify_cover(
    result: Cover,
    on: Cover,
    dc: Cover | None = None,
    off: Cover | None = None,
) -> CoverCheck:
    """Check the fundamental soundness conditions of a minimized cover.

    * ``covers_on`` — every ON-set cube is covered by the result,
    * ``within_on_dc`` — every result cube lies inside ``F ∪ D``,
    * ``disjoint_from_off`` — no result cube intersects the OFF-set
      (trivially true when ``off`` is None).
    """
    covers_on = covers_cover(result, on)

    fd = Cover(
        on.num_inputs,
        on.num_outputs,
        on.cubes + (dc.cubes if dc is not None else []),
    )
    within = all(cover_covers_cube_multi(fd, c) for c in result.cubes)

    disjoint = True
    if off is not None:
        disjoint = not _overlaps(result, off)
    return CoverCheck(covers_on, within, disjoint)
