"""Covers: sets of cubes representing multi-output two-level logic.

A :class:`Cover` is an ordered collection of :class:`~repro.logic.cube.Cube`
objects sharing the same number of input variables and output
functions.  It provides the set-algebraic operations that the
minimization algorithms (tautology, complement, ESPRESSO loop, exact
covering) are built on.

Multi-output semantics follow ESPRESSO: a cube with output part
``outputs`` asserts its product term for every output whose bit is
set.  A cover *covers* a (cube, output) pair when the projection of the
cover onto that output covers the cube's input part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..obs import get_metrics
from .cube import LIT_DC, LIT_ONE, LIT_ZERO, Cube, supercube_of

__all__ = ["Cover", "compact_minterm_cover"]


@dataclass
class Cover:
    """An ordered set of cubes over a common input/output signature."""

    num_inputs: int
    num_outputs: int = 1
    cubes: list[Cube] = field(default_factory=list)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty(num_inputs: int, num_outputs: int = 1) -> "Cover":
        """The empty cover (constant 0 for every output)."""
        return Cover(num_inputs, num_outputs, [])

    @staticmethod
    def universe(num_inputs: int, num_outputs: int = 1) -> "Cover":
        """The tautology cover (constant 1 for every output)."""
        all_out = (1 << num_outputs) - 1
        return Cover(num_inputs, num_outputs, [Cube.full(num_inputs, all_out)])

    @staticmethod
    def from_cubes(cubes: Iterable[Cube], num_inputs: int, num_outputs: int = 1) -> "Cover":
        """Build a cover from an iterable of cubes (shared signature)."""
        return Cover(num_inputs, num_outputs, list(cubes))

    @staticmethod
    def from_strings(rows: Iterable[str], num_outputs: int = 1) -> "Cover":
        """Build a cover from ESPRESSO-style rows.

        Each row is either just an input part (``"1-0"``, single
        output) or input and output parts separated by whitespace
        (``"1-0 10"``).
        """
        cubes: list[Cube] = []
        num_inputs = 0
        for row in rows:
            parts = row.split()
            if not parts:
                continue
            inp = parts[0]
            num_inputs = len(inp)
            if len(parts) > 1:
                out_bits = 0
                for o, ch in enumerate(parts[1]):
                    if ch in "14":
                        out_bits |= 1 << o
                cubes.append(Cube.from_string(inp, out_bits))
            else:
                cubes.append(Cube.from_string(inp, 1))
        return Cover(num_inputs, num_outputs, cubes)

    @staticmethod
    def from_minterms(minterms: Iterable[int], num_inputs: int, outputs: int = 1,
                      num_outputs: int = 1) -> "Cover":
        """Build a cover of single-minterm cubes."""
        cubes = [Cube.from_minterm(m, num_inputs, outputs) for m in minterms]
        return Cover(num_inputs, num_outputs, cubes)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __getitem__(self, i: int) -> Cube:
        return self.cubes[i]

    def copy(self) -> "Cover":
        """Shallow copy (cubes are immutable, so this is sufficient)."""
        return Cover(self.num_inputs, self.num_outputs, list(self.cubes))

    def add(self, cube: Cube) -> None:
        """Append a cube to the cover."""
        self.cubes.append(cube)

    def is_empty(self) -> bool:
        """True when the cover contains no non-empty cube."""
        return all(c.is_empty() for c in self.cubes)

    # ------------------------------------------------------------------
    # cost metrics
    # ------------------------------------------------------------------
    def num_literals(self) -> int:
        """Total number of input literals over all cubes."""
        return sum(c.num_literals() for c in self.cubes)

    def cost(self) -> tuple[int, int]:
        """Minimization cost: (number of cubes, number of literals)."""
        return (len(self.cubes), self.num_literals())

    # ------------------------------------------------------------------
    # projections and simple rewrites
    # ------------------------------------------------------------------
    def projection(self, output: int) -> "Cover":
        """Single-output projection: cubes feeding ``output``."""
        bit = 1 << output
        cubes = [c.with_outputs(1) for c in self.cubes if c.outputs & bit]
        return Cover(self.num_inputs, 1, cubes)

    def restrict_outputs(self, mask: int) -> "Cover":
        """Keep only the output-part bits in ``mask``; drop empty cubes."""
        cubes = []
        for c in self.cubes:
            o = c.outputs & mask
            if o:
                cubes.append(c.with_outputs(o))
        return Cover(self.num_inputs, self.num_outputs, cubes)

    def drop_empty(self) -> "Cover":
        """Remove empty cubes."""
        return Cover(
            self.num_inputs, self.num_outputs, [c for c in self.cubes if not c.is_empty()]
        )

    def single_cube_containment(self) -> "Cover":
        """Remove cubes contained in another single cube of the cover.

        This is the cheap ``sccc`` cleanup pass of ESPRESSO, not the
        full irredundant computation.
        """
        get_metrics().counter("cover.cube_ops").add(len(self.cubes))
        kept: list[Cube] = []
        # Sort by decreasing size so that big cubes absorb small ones.
        order = sorted(self.cubes, key=lambda c: (-len(c.free_vars()), -c.outputs.bit_count()))
        for c in order:
            if c.is_empty():
                continue
            container = None
            for k in kept:
                if k.contains(c):
                    container = k
                    break
            if container is None:
                # c may still be partially absorbed on the output part
                kept.append(c)
        return Cover(self.num_inputs, self.num_outputs, kept)

    # ------------------------------------------------------------------
    # semantic queries
    # ------------------------------------------------------------------
    def evaluate(self, minterm: int) -> int:
        """Output bitmask produced by the cover for an input minterm."""
        get_metrics().counter("cover.cube_ops").add(len(self.cubes))
        result = 0
        for c in self.cubes:
            if c.contains_minterm(minterm):
                result |= c.outputs
        return result

    def contains_minterm(self, minterm: int, output: int = 0) -> bool:
        """True when some cube feeding ``output`` covers the minterm."""
        bit = 1 << output
        return any(
            (c.outputs & bit) and c.contains_minterm(minterm) for c in self.cubes
        )

    def cofactor(self, cube: Cube) -> "Cover":
        """Input-part cofactor of the whole cover w.r.t. ``cube``.

        Only cubes whose input parts intersect ``cube`` survive.  The
        output parts are preserved; callers project per output when
        multi-output semantics are needed.
        """
        get_metrics().counter("cover.cube_ops").add(len(self.cubes))
        out = []
        for c in self.cubes:
            cf = c.cofactor(cube)
            if cf is not None:
                out.append(cf)
        return Cover(self.num_inputs, self.num_outputs, out)

    def intersect_cube(self, cube: Cube) -> "Cover":
        """Cover of the intersections of every cube with ``cube``."""
        get_metrics().counter("cover.cube_ops").add(len(self.cubes))
        out = []
        for c in self.cubes:
            i = c.intersect(cube)
            if i is not None:
                out.append(i)
        return Cover(self.num_inputs, self.num_outputs, out)

    def intersects_cube(self, cube: Cube) -> bool:
        """True when any cube of the cover intersects ``cube``."""
        return any(c.intersects(cube) for c in self.cubes)

    def supercube(self) -> Cube | None:
        """Smallest cube containing the whole cover (``None`` if empty)."""
        return supercube_of(self.cubes)

    def minterms(self, output: int = 0) -> set[int]:
        """Explicit minterm set of one output (exponential; small covers)."""
        bit = 1 << output
        out: set[int] = set()
        for c in self.cubes:
            if c.outputs & bit:
                out.update(c.minterms())
        return out

    # ------------------------------------------------------------------
    # unateness
    # ------------------------------------------------------------------
    def var_usage(self, var: int) -> tuple[int, int]:
        """Count (negative, positive) literal occurrences of variable."""
        neg = pos = 0
        for c in self.cubes:
            f = c.literal(var)
            if f == 0b01:
                neg += 1
            elif f == 0b10:
                pos += 1
        return neg, pos

    def is_unate_in(self, var: int) -> bool:
        """True when the cover is unate in the given variable."""
        neg, pos = self.var_usage(var)
        return neg == 0 or pos == 0

    def is_unate(self) -> bool:
        """True when the cover is unate in every input variable."""
        return all(self.is_unate_in(v) for v in range(self.num_inputs))

    def most_binate_var(self) -> int | None:
        """Select the best splitting variable for unate recursion.

        Returns the variable that appears in both phases in the most
        cubes (ties broken by total occurrences), or ``None`` when the
        cover is unate.
        """
        best_var = None
        best_key = None
        for var in range(self.num_inputs):
            neg, pos = self.var_usage(var)
            if neg and pos:
                key = (min(neg, pos), neg + pos)
                if best_key is None or key > best_key:
                    best_key = key
                    best_var = var
        return best_var

    def most_used_var(self) -> int | None:
        """The variable with the most literal occurrences (any phase)."""
        best_var = None
        best = 0
        for var in range(self.num_inputs):
            neg, pos = self.var_usage(var)
            if neg + pos > best:
                best = neg + pos
                best_var = var
        return best_var

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def to_strings(self) -> list[str]:
        """ESPRESSO-style rows (input part, space, output part)."""
        return [
            f"{c.input_string()} {c.output_string(self.num_outputs)}" for c in self.cubes
        ]

    def to_expression(self, names: Sequence[str] | None = None, output: int = 0) -> str:
        """Human-readable SOP expression for one output."""
        bit = 1 << output
        terms = [c.to_expression(names) for c in self.cubes if c.outputs & bit]
        if not terms:
            return "0"
        return " + ".join(terms)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(self.to_strings())


def compact_minterm_cover(minterms: set[int], num_inputs: int,
                          outputs: int = 1, num_outputs: int = 1) -> Cover:
    """Build a compact (not minimal) cube cover of a minterm set.

    Recursive Shannon construction: a sub-space entirely inside the set
    becomes one cube; otherwise split on the next variable.  Exact and
    fast — used to keep region covers small before minimization when
    state graphs have thousands of states.
    """
    cubes: list[Cube] = []

    def rec(prefix_mask: int, var: int, members: set[int]) -> None:
        """Split on variable ``var`` downward (MSB first, which aligns
        with how state codes cluster) with remaining free variables
        ``0..var``."""
        if not members:
            return
        space = 1 << (var + 1)
        if len(members) == space:
            # full subcube: variables 0..var are don't care
            mask = prefix_mask
            for v in range(var + 1):
                mask |= LIT_DC << (2 * v)
            cubes.append(Cube(num_inputs, mask, outputs))
            return
        bit = 1 << var
        lo = {m for m in members if not m & bit}
        hi = {m & ~bit for m in members if m & bit}
        rec(prefix_mask | (LIT_ZERO << (2 * var)), var - 1, lo)
        rec(prefix_mask | (LIT_ONE << (2 * var)), var - 1, hi)

    rec(0, num_inputs - 1, set(minterms))

    # Quine–McCluskey style merge pass: cubes identical except for one
    # variable held in complementary phases fuse into one cube with the
    # variable raised.  Repairs patterns misaligned with the recursion
    # order (e.g. parity-like sets aligned on low-order variables).
    work = {c.inputs for c in cubes}
    changed = True
    while changed:
        changed = False
        for var in range(num_inputs):
            shift = 2 * var
            by_rest: dict[int, int] = {}
            for mask in work:
                rest = mask & ~(0b11 << shift)
                by_rest[rest] = by_rest.get(rest, 0) | ((mask >> shift) & 0b11)
            for rest, phases in by_rest.items():
                if phases == 0b11:
                    lo = rest | (LIT_ZERO << shift)
                    hi = rest | (LIT_ONE << shift)
                    if lo in work and hi in work:
                        work.discard(lo)
                        work.discard(hi)
                        work.add(rest | (LIT_DC << shift))
                        changed = True
    return Cover(
        num_inputs, num_outputs, [Cube(num_inputs, m, outputs) for m in sorted(work)]
    )
