"""Exact two-level minimization (Quine–McCluskey + unate covering).

The paper's footnote 6 notes that improved results can be obtained by
running ESPRESSO-EXACT instead of the heuristic minimizer.  This module
provides that exact mode for single-output functions of modest size:

1. **Prime generation** by iterated consensus over the ON ∪ DC cubes
   (equivalently Quine–McCluskey when starting from minterms).
2. **Unate covering** of the ON-set minterms by primes, solved with
   essential-column extraction, row/column dominance reduction, and a
   depth-first branch-and-bound with a greedy incumbent.

Sizes beyond ``max_minterms`` fall back to the heuristic loop — the
classic practical compromise.
"""

from __future__ import annotations

from .cover import Cover
from .cube import Cube
from .espresso import espresso

__all__ = ["generate_primes", "exact_minimize", "unate_cover"]


def generate_primes(on: Cover, dc: Cover | None = None, limit: int = 20000) -> list[Cube]:
    """All prime implicants of ``F ∪ D`` by iterated consensus.

    Starts from the given cubes (single-output), repeatedly adds
    consensus cubes, and removes cubes contained in others.  ``limit``
    bounds the working set to keep the worst case in check.
    """
    pool: set[tuple[int, int]] = set()
    n = on.num_inputs
    for c in on.cubes:
        if not c.is_empty():
            pool.add((c.inputs, 1))
    if dc is not None:
        for c in dc.cubes:
            if not c.is_empty():
                pool.add((c.inputs, 1))
    cubes = [Cube(n, i, o) for i, o in pool]

    changed = True
    while changed:
        changed = False
        # absorb contained cubes
        cubes.sort(key=lambda c: -len(c.free_vars()))
        kept: list[Cube] = []
        for c in cubes:
            if not any(k.contains(c) for k in kept):
                kept.append(c)
        cubes = kept
        existing = {c.inputs for c in cubes}
        new: list[Cube] = []
        for i in range(len(cubes)):
            for j in range(i + 1, len(cubes)):
                cons = cubes[i].consensus(cubes[j])
                if cons is None or cons.inputs in existing:
                    continue
                if any(k.contains(cons) for k in cubes):
                    continue
                existing.add(cons.inputs)
                new.append(cons)
                if len(cubes) + len(new) > limit:
                    raise RuntimeError("prime generation exceeded limit")
        if new:
            cubes.extend(new)
            changed = True
    # final absorption
    cubes.sort(key=lambda c: -len(c.free_vars()))
    primes: list[Cube] = []
    for c in cubes:
        if not any(p.contains(c) for p in primes):
            primes.append(c)
    return primes


def unate_cover(rows: list[set[int]], costs: list[int], num_cols: int) -> list[int]:
    """Solve a unate covering problem.

    ``rows[i]`` is the set of columns that cover row ``i``; every row
    must be covered; ``costs[j]`` is the cost of selecting column ``j``.
    Returns the selected column indices.  Exact branch-and-bound for
    small instances with dominance reductions; falls back to pure
    greedy beyond a work budget.
    """
    # --- reductions -------------------------------------------------
    selected: set[int] = set()
    active_rows = [set(r) for r in rows]
    alive = [True] * len(active_rows)

    def reduce_once() -> bool:
        changed = False
        # essential columns: a row coverable by exactly one column
        for i, r in enumerate(active_rows):
            if not alive[i]:
                continue
            if len(r) == 0:
                raise ValueError("infeasible covering problem")
            if len(r) == 1:
                col = next(iter(r))
                selected.add(col)
                for k, rr in enumerate(active_rows):
                    if alive[k] and col in rr:
                        alive[k] = False
                changed = True
        # row dominance: drop rows that are supersets of other rows
        live = [i for i in range(len(active_rows)) if alive[i]]
        for a in live:
            if not alive[a]:
                continue
            for b in live:
                if a != b and alive[a] and alive[b] and active_rows[b] <= active_rows[a]:
                    alive[a] = False
                    changed = True
                    break
        # column dominance: drop column c if some d covers a superset
        # of c's rows at no greater cost
        live = [i for i in range(len(active_rows)) if alive[i]]
        col_rows: dict[int, set[int]] = {}
        for i in live:
            for c in active_rows[i]:
                col_rows.setdefault(c, set()).add(i)
        cols = list(col_rows)
        dominated: set[int] = set()
        for c in cols:
            for d in cols:
                if c == d or d in dominated or c in dominated:
                    continue
                if col_rows[c] <= col_rows[d] and costs[d] <= costs[c]:
                    if col_rows[c] == col_rows[d] and costs[c] == costs[d] and c < d:
                        continue  # symmetric tie: keep the lower index
                    dominated.add(c)
                    break
        if dominated:
            changed = True
            for i in live:
                active_rows[i] -= dominated
        return changed

    while True:
        live = [i for i in range(len(active_rows)) if alive[i]]
        if not live:
            return sorted(selected)
        if not reduce_once():
            break

    live_rows = [active_rows[i] for i in range(len(active_rows)) if alive[i]]
    if not live_rows:
        return sorted(selected)

    # --- greedy incumbent -------------------------------------------
    def greedy(rows_left: list[set[int]]) -> list[int]:
        chosen: list[int] = []
        remaining = [set(r) for r in rows_left]
        while remaining:
            score: dict[int, int] = {}
            for r in remaining:
                for c in r:
                    score[c] = score.get(c, 0) + 1
            best = max(score, key=lambda c: (score[c] / max(costs[c], 1), -costs[c]))
            chosen.append(best)
            remaining = [r for r in remaining if best not in r]
        return chosen

    incumbent = greedy(live_rows)
    incumbent_cost = sum(costs[c] for c in incumbent)
    budget = [200000]

    # --- branch and bound -------------------------------------------
    def bb(rows_left: list[set[int]], chosen: list[int], cost: int) -> None:
        nonlocal incumbent, incumbent_cost
        if budget[0] <= 0:
            return
        budget[0] -= 1
        if not rows_left:
            if cost < incumbent_cost:
                incumbent, incumbent_cost = list(chosen), cost
            return
        if cost >= incumbent_cost:
            return
        # branch on the hardest row (fewest covering columns)
        row = min(rows_left, key=len)
        for col in sorted(row, key=lambda c: costs[c]):
            rest = [r for r in rows_left if col not in r]
            bb(rest, chosen + [col], cost + costs[col])

    bb(live_rows, [], 0)
    return sorted(selected | set(incumbent))


def exact_minimize(
    on: Cover,
    dc: Cover | None = None,
    max_minterms: int = 4096,
) -> Cover:
    """Exact single-output minimization; heuristic fallback when large.

    The cost function is (cubes, literals): primes are selected to
    minimize cube count, ties broken toward fewer literals via the
    column costs.
    """
    if on.num_outputs != 1:
        raise ValueError("exact_minimize handles single-output covers")
    on_minterms = sorted(on.minterms(0))
    if not on_minterms:
        return Cover.empty(on.num_inputs, 1)
    if len(on_minterms) > max_minterms:
        return espresso(on, dc)
    try:
        primes = generate_primes(on, dc)
    except RuntimeError:
        return espresso(on, dc)

    rows: list[set[int]] = []
    for m in on_minterms:
        cols = {j for j, p in enumerate(primes) if p.contains_minterm(m)}
        rows.append(cols)
    # cost: dominate on cube count; add literal count as a small tiebreak
    costs = [1000 + p.num_literals() for p in primes]
    chosen = unate_cover(rows, costs, len(primes))
    return Cover(on.num_inputs, 1, [primes[j] for j in chosen])
