"""ESPRESSO-style heuristic two-level minimization.

This is a from-scratch implementation of the heuristic loop of
ESPRESSO-II [Brayton et al. 84] sufficient for the circuits of the
paper: multi-output EXPAND against the OFF-set, IRREDUNDANT,
relatively-essential extraction, and REDUCE, iterated until the cost
function (cube count, then literal count) stops improving.

The paper's synthesis procedure (Section IV-A) explicitly allows *any*
conventional multi-output two-level minimizer because the N-SHOT
architecture tolerates hazards in the SOP planes.  This module plays
the role of the ``espresso`` command the authors invoked from SIS.

Multi-output semantics: cubes carry an output bitmask; a raise of the
output part corresponds to sharing a product term between functions
(e.g. between the set network of one signal and the reset network of
another), exactly the sharing the paper permits.
"""

from __future__ import annotations

from ..obs import get_metrics, trace_span
from .complement import complement, cube_sharp
from .cover import Cover
from .cube import Cube
from .tautology import cover_covers_cube_multi

__all__ = [
    "expand",
    "irredundant",
    "reduce_cover",
    "relatively_essential",
    "espresso",
    "make_offset",
]


def make_offset(on: Cover, dc: Cover | None = None) -> Cover:
    """Compute the multi-output OFF-set cover ``R = complement(F ∪ D)``.

    Complements are taken per output and assembled back into one
    multi-output cover.  Cubes with identical input parts are merged by
    OR-ing their output parts, which keeps EXPAND's feasibility checks
    cheap.
    """
    n, m = on.num_inputs, on.num_outputs
    merged: dict[int, int] = {}
    for o in range(m):
        fo = on.projection(o)
        if dc is not None:
            for c in dc.projection(o).cubes:
                fo.add(c)
        for c in complement(fo).cubes:
            merged[c.inputs] = merged.get(c.inputs, 0) | (1 << o)
    out = Cover.empty(n, m)
    for inputs, outputs in merged.items():
        out.add(Cube(n, inputs, outputs))
    return out


def _raise_feasible(cube: Cube, off: Cover) -> bool:
    """True when ``cube`` (already raised) stays disjoint from the OFF-set."""
    return not off.intersects_cube(cube)


def expand(on: Cover, off: Cover) -> Cover:
    """EXPAND: grow every cube into a prime against the OFF-set.

    Each cube's bound input literals are raised one at a time while the
    cube remains disjoint from ``off``; afterwards output-part bits are
    raised the same way (term sharing).  Cubes that become single-cube
    contained in an already-expanded cube are dropped.

    The per-cube raise order prefers literals that conflict with few
    OFF-set cubes, a cheap stand-in for ESPRESSO's blocking-matrix
    heuristic.
    """
    n, m = on.num_inputs, on.num_outputs
    # literal conflict frequency in the OFF-set, per (var, phase)
    freq = [[0, 0] for _ in range(n)]
    for r in off.cubes:
        for var in range(n):
            f = r.literal(var)
            if f == 0b01:
                freq[var][0] += 1
            elif f == 0b10:
                freq[var][1] += 1

    # expand small cubes first so they are absorbed by big primes
    order = sorted(range(len(on.cubes)), key=lambda i: len(on.cubes[i].free_vars()))
    expanded: list[Cube] = []
    for idx in order:
        c = on.cubes[idx]
        if c.is_empty():
            continue
        if any(e.contains(c) for e in expanded):
            continue
        # raise input literals
        progress = True
        while progress:
            progress = False
            cands = [v for v in c.fixed_vars()]
            # a raise of var v can only be blocked by OFF cubes that
            # bind v to the opposite phase: try low-conflict vars first
            cands.sort(key=lambda v: freq[v][0] + freq[v][1])
            for var in cands:
                raised = c.raise_var(var)
                if _raise_feasible(raised, off):
                    c = raised
                    progress = True
        # raise output parts (product-term sharing between functions)
        for o in range(m):
            bit = 1 << o
            if c.outputs & bit:
                continue
            raised = c.with_outputs(c.outputs | bit)
            if _raise_feasible(raised, off):
                c = raised
        if not any(e.contains(c) for e in expanded):
            expanded = [e for e in expanded if not c.contains(e)]
            expanded.append(c)
    return Cover(n, m, expanded)


def relatively_essential(on: Cover, dc: Cover | None = None) -> list[int]:
    """Indices of cubes not covered by the rest of the cover plus DC."""
    out = []
    for i, c in enumerate(on.cubes):
        rest = Cover(
            on.num_inputs,
            on.num_outputs,
            [x for j, x in enumerate(on.cubes) if j != i]
            + (dc.cubes if dc is not None else []),
        )
        if not cover_covers_cube_multi(rest, c):
            out.append(i)
    return out


def irredundant(on: Cover, dc: Cover | None = None) -> Cover:
    """IRREDUNDANT: extract a minimal (not minimum) subset covering F.

    Relatively essential cubes are always kept; the remaining cubes are
    dropped greedily (largest literal count first) whenever the rest of
    the cover still covers them.
    """
    essential = set(relatively_essential(on, dc))
    keep = list(on.cubes)
    # candidates for removal, worst (most literals, fewest outputs) first
    cand = sorted(
        (i for i in range(len(keep)) if i not in essential),
        key=lambda i: (-keep[i].num_literals(), keep[i].outputs.bit_count()),
    )
    removed: set[int] = set()
    for i in cand:
        rest = Cover(
            on.num_inputs,
            on.num_outputs,
            [x for j, x in enumerate(keep) if j != i and j not in removed]
            + (dc.cubes if dc is not None else []),
        )
        if cover_covers_cube_multi(rest, keep[i]):
            removed.add(i)
    return Cover(
        on.num_inputs,
        on.num_outputs,
        [x for j, x in enumerate(keep) if j not in removed],
    )


def reduce_cover(on: Cover, dc: Cover | None = None) -> Cover:
    """REDUCE: shrink each cube to the smallest cube still needed.

    Every cube is replaced, per output, by the supercube of the part of
    it not covered by the other cubes plus the don't-care set; the
    replacement is the supercube over the cube's outputs, so the result
    still covers the ON-set.  Reduction unlocks better EXPAND moves on
    the next iteration.
    """
    n, m = on.num_inputs, on.num_outputs
    cubes = list(on.cubes)
    order = sorted(range(len(cubes)), key=lambda i: -len(cubes[i].free_vars()))
    for i in order:
        c = cubes[i]
        if c.is_empty():
            continue
        others = [x for j, x in enumerate(cubes) if j != i] + (
            dc.cubes if dc is not None else []
        )
        others_cover = Cover(n, m, others)
        new_inputs: int | None = None
        new_outputs = 0
        for o in c.output_list():
            proj = others_cover.projection(o)
            residue = cube_sharp(c.with_outputs(1), proj)
            if residue.is_empty():
                continue  # output o fully covered by others: drop bit
            sc = residue.supercube()
            assert sc is not None
            new_outputs |= 1 << o
            new_inputs = sc.inputs if new_inputs is None else (new_inputs | sc.inputs)
        if new_outputs == 0:
            cubes[i] = Cube(n, 0, 0)  # fully redundant, empty it
        else:
            cubes[i] = Cube(n, new_inputs if new_inputs is not None else c.inputs, new_outputs)
    return Cover(n, m, [c for c in cubes if not c.is_empty()])


def espresso(
    on: Cover,
    dc: Cover | None = None,
    off: Cover | None = None,
    max_iterations: int = 20,
) -> Cover:
    """Heuristic multi-output two-level minimization.

    Parameters
    ----------
    on:
        ON-set cover (multi-output).
    dc:
        Optional don't-care cover; used freely, as the paper's
        procedure step 3 prescribes.
    off:
        Optional OFF-set cover; computed by complementation when
        absent.  Supplying it (as region-derived covers do) avoids the
        complementation cost and — more importantly — pins down
        the function when ``F ∪ D ∪ R`` is not the whole space.
    max_iterations:
        Safety bound on the improve loop.

    Returns
    -------
    Cover
        A prime, irredundant multi-output cover of the interval
        ``[F, F ∪ D]``.
    """
    with trace_span("espresso", inputs=on.num_inputs, outputs=on.num_outputs) as sp:
        result, iterations = _espresso_loop(on, dc, off, max_iterations)
        sp.set(iterations=iterations, cubes=len(result))
    get_metrics().counter("espresso.iterations").add(iterations)
    return result


def _espresso_loop(
    on: Cover,
    dc: Cover | None,
    off: Cover | None,
    max_iterations: int,
) -> tuple[Cover, int]:
    """The EXPAND/IRREDUNDANT/REDUCE loop; returns (cover, iterations)."""
    if off is None:
        off = make_offset(on, dc)
    work = on.drop_empty().single_cube_containment()
    if not work.cubes:
        return work, 0
    work = expand(work, off)
    work = irredundant(work, dc)

    # Lock relatively-essential primes: move them into the DC set for the
    # inner loop (they are guaranteed to be in the final cover anyway).
    ess_idx = set(relatively_essential(work, dc))
    essential = [c for i, c in enumerate(work.cubes) if i in ess_idx]
    work = Cover(
        work.num_inputs,
        work.num_outputs,
        [c for i, c in enumerate(work.cubes) if i not in ess_idx],
    )
    dc_aug = Cover(
        on.num_inputs,
        on.num_outputs,
        (dc.cubes if dc is not None else []) + essential,
    )

    best = work.copy()
    best_cost = _loop_cost(best, essential)
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        work = reduce_cover(work, dc_aug)
        work = expand(work, off) if work.cubes else work
        work = irredundant(work, dc_aug)
        cost = _loop_cost(work, essential)
        if cost < best_cost:
            best, best_cost = work.copy(), cost
        else:
            break

    final = Cover(on.num_inputs, on.num_outputs, essential + best.cubes)
    return final.single_cube_containment(), iterations


def _loop_cost(cover: Cover, essential: list[Cube]) -> tuple[int, int]:
    total = Cover(cover.num_inputs, cover.num_outputs, cover.cubes + essential)
    return total.cost()
