"""Tautology checking and cover containment via unate recursion.

The tautology check is the workhorse predicate of two-level
minimization: *is this cover identically 1?*  ESPRESSO reduces both
redundancy detection and cube-covering queries to tautology of a
cofactored cover.  We implement the classic unate recursive paradigm
[Brayton et al. 84, Rudell 89]:

* **Unate leaf rule** — a unate cover is a tautology iff it contains a
  row of all don't cares.
* **Speedups** — a cover with an all-don't-care row is a tautology; a
  cover with fewer than ``2**n / max_cube_size`` coverage cannot be; a
  variable appearing in only one phase can be cofactored away for free
  (unate reduction).
* **Binate splitting** — recurse on the most binate variable.

All functions here treat covers as *single-output* (the input parts
only).  Multi-output queries project per output first; see
:func:`covers_cube` and :func:`cover_covers_cube_multi`.
"""

from __future__ import annotations

from .cube import LIT_DC, LIT_ONE, LIT_ZERO, Cube
from .cover import Cover

__all__ = ["is_tautology", "covers_cube", "cover_covers_cube_multi", "covers_cover"]


def _unate_reduced(cover: Cover) -> Cover:
    """Drop unate variables' literals (monotone reduction).

    If a variable appears only in one phase, rows containing that
    literal can only help cover the half-space they sit in; for the
    tautology question, the cover is a tautology iff the cofactor
    against the *opposing* half-space is — which equals dropping the
    rows that contain the literal.  Equivalently: taut(F) iff
    taut(F cofactored by the phase where those literals are absent).
    We implement the standard reduction: remove every row containing a
    unate literal, because those rows cannot cover the opposite
    half-space which must be covered anyway.
    """
    cubes = cover.cubes
    changed = True
    while changed:
        changed = False
        for var in range(cover.num_inputs):
            neg = pos = 0
            for c in cubes:
                f = c.literal(var)
                if f == LIT_ZERO:
                    neg += 1
                elif f == LIT_ONE:
                    pos += 1
            if neg and pos:
                continue
            if not neg and not pos:
                continue
            # unate in `var`: rows with the literal cannot cover the
            # opposite half-space; the cover is a tautology iff the
            # sub-cover of rows with var = don't care is.
            new = [c for c in cubes if c.literal(var) == LIT_DC]
            if len(new) != len(cubes):
                cubes = new
                changed = True
        if not cubes:
            break
    return Cover(cover.num_inputs, cover.num_outputs, list(cubes))


def is_tautology(cover: Cover) -> bool:
    """True when the union of the cover's cubes is the whole space.

    Operates on input parts only (single-output semantics).
    """
    cubes = [c for c in cover.cubes if not c.is_empty()]
    if not cubes:
        # The empty cover is the constant-0 function.  This holds even
        # over zero variables: the space still has exactly one minterm
        # (the empty assignment), and nothing covers it.  Planes that
        # degenerate to CONST-0 gates land here.
        return False
    # quick accept: a universal row.  Over zero variables every
    # non-empty cube *is* the universal row, so a non-empty cover of a
    # zero-variable space (a CONST-1 plane) is always accepted here and
    # the recursion below never sees num_inputs == 0.
    for c in cubes:
        if c.is_full_inputs():
            return True
    # quick reject: total size bound
    total = 0
    space = 1 << cover.num_inputs
    for c in cubes:
        total += c.size()
        if total >= space:
            break
    if total < space:
        return False

    work = Cover(cover.num_inputs, 1, cubes)
    work = _unate_reduced(work)
    if not work.cubes:
        return False
    for c in work.cubes:
        if c.is_full_inputs():
            return True

    var = work.most_binate_var()
    if var is None:
        # unate cover: tautology iff it has a universal row (checked above)
        return False
    pos_half = Cube.full(cover.num_inputs).with_literal(var, LIT_ONE)
    neg_half = Cube.full(cover.num_inputs).with_literal(var, LIT_ZERO)
    return is_tautology(work.cofactor(pos_half)) and is_tautology(
        work.cofactor(neg_half)
    )


def covers_cube(cover: Cover, cube: Cube) -> bool:
    """True when ``cover`` covers every minterm of ``cube`` (input parts).

    Classic reduction: ``cover ⊇ cube`` iff ``cofactor(cover, cube)``
    is a tautology.
    """
    if cube.is_empty():
        return True
    return is_tautology(cover.cofactor(cube))


def cover_covers_cube_multi(cover: Cover, cube: Cube) -> bool:
    """Multi-output covering: every (minterm, output) of ``cube`` covered.

    For each output bit in ``cube.outputs``, the projection of
    ``cover`` onto that output must cover the cube's input part.
    """
    o = cube.outputs
    idx = 0
    while o:
        if o & 1:
            if not covers_cube(cover.projection(idx), cube.with_outputs(1)):
                return False
        o >>= 1
        idx += 1
    return True


def covers_cover(big: Cover, small: Cover) -> bool:
    """True when ``big`` covers every cube of ``small`` (multi-output)."""
    return all(cover_covers_cube_multi(big, c) for c in small.cubes)
