"""Two-level logic minimization substrate.

This package is a from-scratch reimplementation of the combinational
logic machinery the paper borrows from SIS/ESPRESSO: positional-cube
covers, the unate-recursive tautology and complement operators, the
heuristic ESPRESSO loop (EXPAND / IRREDUNDANT / REDUCE) with
multi-output term sharing, an exact Quine–McCluskey + unate-covering
minimizer (footnote 6 of the paper), and PLA text I/O.
"""

from .cube import Cube, supercube_of
from .cover import Cover
from .tautology import is_tautology, covers_cube, cover_covers_cube_multi, covers_cover
from .complement import complement, complement_cube, cube_sharp
from .espresso import espresso, expand, irredundant, reduce_cover, make_offset
from .exact import exact_minimize, generate_primes, unate_cover
from .minimize import minimize, verify_cover, MinimizationError
from .pla import Pla, parse_pla, write_pla

__all__ = [
    "Cube",
    "Cover",
    "supercube_of",
    "is_tautology",
    "covers_cube",
    "cover_covers_cube_multi",
    "covers_cover",
    "complement",
    "complement_cube",
    "cube_sharp",
    "espresso",
    "expand",
    "irredundant",
    "reduce_cover",
    "make_offset",
    "exact_minimize",
    "generate_primes",
    "unate_cover",
    "minimize",
    "verify_cover",
    "MinimizationError",
    "Pla",
    "parse_pla",
    "write_pla",
]
