"""Positional-cube representation for multi-output two-level logic.

A *cube* is a product term over ``n`` binary input variables together
with a multi-output part.  We use the classical positional-cube
notation of ESPRESSO [Rudell 89]:

* each input variable occupies a 2-bit field inside a single Python
  integer bitmask (``inputs``):

  ====== ================== =========================
  field  literal             meaning
  ====== ================== =========================
  ``01``  ``x'``             variable must be 0
  ``10``  ``x``              variable must be 1
  ``11``  (absent)           don't care / full
  ``00``  (empty)            contradictory — empty cube
  ====== ================== =========================

* the output part (``outputs``) has one bit per output function;
  bit ``o`` set means the product term feeds output ``o``.

This encoding makes the core cube operations cheap bit twiddles:

* containment      — ``a ⊆ b`` iff ``a & b == a`` field-wise,
* intersection     — bitwise AND (empty if any input field becomes
  ``00`` or the output part becomes ``0``),
* supercube        — bitwise OR.

All cubes are immutable; operations return new cubes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Cube",
    "full_input_mask",
    "input_field",
    "LIT_ZERO",
    "LIT_ONE",
    "LIT_DC",
    "LIT_EMPTY",
]

#: 2-bit field values for one input variable.
LIT_ZERO = 0b01   # literal x' : variable fixed to 0
LIT_ONE = 0b10    # literal x  : variable fixed to 1
LIT_DC = 0b11     # don't care : variable absent from the product
LIT_EMPTY = 0b00  # contradiction : empty cube

_FIELD_CHARS = {LIT_EMPTY: "#", LIT_ZERO: "0", LIT_ONE: "1", LIT_DC: "-"}
_CHAR_FIELDS = {"0": LIT_ZERO, "1": LIT_ONE, "-": LIT_DC, "2": LIT_DC, "x": LIT_DC, "#": LIT_EMPTY}


def full_input_mask(num_inputs: int) -> int:
    """Bitmask with every input field set to don't-care (``11``)."""
    return (1 << (2 * num_inputs)) - 1


def input_field(mask: int, var: int) -> int:
    """Extract the 2-bit field of variable ``var`` from ``mask``."""
    return (mask >> (2 * var)) & 0b11


@dataclass(frozen=True, slots=True)
class Cube:
    """An immutable product term with a multi-output part.

    Attributes
    ----------
    num_inputs:
        Number of binary input variables.
    inputs:
        Positional bitmask, 2 bits per variable (see module docstring).
    outputs:
        Output-part bitmask, one bit per output function.  For
        single-output covers this is simply ``1``.
    """

    num_inputs: int
    inputs: int
    outputs: int = 1

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def full(num_inputs: int, outputs: int = 1) -> "Cube":
        """The universal cube (tautology product) over ``num_inputs``."""
        return Cube(num_inputs, full_input_mask(num_inputs), outputs)

    @staticmethod
    def from_string(text: str, outputs: int = 1) -> "Cube":
        """Parse a cube from an ESPRESSO-style string such as ``"1-0"``.

        ``1`` means positive literal, ``0`` negative literal and ``-``
        (or ``2``/``x``) don't care.
        """
        mask = 0
        for var, ch in enumerate(text.strip()):
            try:
                field = _CHAR_FIELDS[ch]
            except KeyError:
                raise ValueError(f"bad cube character {ch!r} in {text!r}") from None
            mask |= field << (2 * var)
        return Cube(len(text.strip()), mask, outputs)

    @staticmethod
    def from_assignment(values: Sequence[int], outputs: int = 1) -> "Cube":
        """Build a minterm cube from a 0/1 assignment vector.

        Values other than 0/1 (e.g. ``None`` or ``2``) become don't
        cares.
        """
        mask = 0
        for var, v in enumerate(values):
            if v == 0:
                field = LIT_ZERO
            elif v == 1:
                field = LIT_ONE
            else:
                field = LIT_DC
            mask |= field << (2 * var)
        return Cube(len(values), mask, outputs)

    @staticmethod
    def from_minterm(minterm: int, num_inputs: int, outputs: int = 1) -> "Cube":
        """Build the cube of a single minterm given as an integer.

        Bit ``i`` of ``minterm`` is the value of variable ``i``.
        """
        mask = 0
        for var in range(num_inputs):
            field = LIT_ONE if (minterm >> var) & 1 else LIT_ZERO
            mask |= field << (2 * var)
        return Cube(num_inputs, mask, outputs)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def literal(self, var: int) -> int:
        """The 2-bit field of input variable ``var``."""
        return input_field(self.inputs, var)

    def is_empty(self) -> bool:
        """True when the cube denotes no minterm/output pair at all."""
        if self.outputs == 0:
            return True
        m = self.inputs
        for _ in range(self.num_inputs):
            if m & 0b11 == LIT_EMPTY:
                return True
            m >>= 2
        return False

    def is_full_inputs(self) -> bool:
        """True when every input variable is don't care."""
        return self.inputs == full_input_mask(self.num_inputs)

    def num_literals(self) -> int:
        """Number of input literals (variables not don't care)."""
        count = 0
        m = self.inputs
        for _ in range(self.num_inputs):
            if m & 0b11 in (LIT_ZERO, LIT_ONE):
                count += 1
            m >>= 2
        return count

    def fixed_vars(self) -> list[int]:
        """Indices of input variables bound to a value in this cube."""
        out = []
        m = self.inputs
        for var in range(self.num_inputs):
            if m & 0b11 in (LIT_ZERO, LIT_ONE):
                out.append(var)
            m >>= 2
        return out

    def free_vars(self) -> list[int]:
        """Indices of input variables that are don't care."""
        out = []
        m = self.inputs
        for var in range(self.num_inputs):
            if m & 0b11 == LIT_DC:
                out.append(var)
            m >>= 2
        return out

    def output_list(self) -> list[int]:
        """Indices of outputs this cube feeds."""
        out = []
        o, i = self.outputs, 0
        while o:
            if o & 1:
                out.append(i)
            o >>= 1
            i += 1
        return out

    def size(self) -> int:
        """Number of minterms covered in the input space (per output)."""
        return 1 << len(self.free_vars())

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------
    def contains(self, other: "Cube") -> bool:
        """True when this cube covers ``other`` entirely (inputs and outputs)."""
        return (
            (other.inputs & self.inputs) == other.inputs
            and (other.outputs & self.outputs) == other.outputs
        )

    def contains_minterm(self, minterm: int) -> bool:
        """True when the cube covers the integer-encoded minterm."""
        m = self.inputs
        for var in range(self.num_inputs):
            bit = (minterm >> var) & 1
            field = m & 0b11
            if not (field >> bit) & 1:
                return False
            m >>= 2
        return True

    def intersect(self, other: "Cube") -> "Cube | None":
        """Cube intersection; ``None`` when the cubes are disjoint."""
        inputs = self.inputs & other.inputs
        outputs = self.outputs & other.outputs
        c = Cube(self.num_inputs, inputs, outputs)
        return None if c.is_empty() else c

    def intersects(self, other: "Cube") -> bool:
        """True when the cubes share at least one minterm/output pair."""
        if not (self.outputs & other.outputs):
            return False
        m = self.inputs & other.inputs
        for _ in range(self.num_inputs):
            if m & 0b11 == LIT_EMPTY:
                return False
            m >>= 2
        return True

    def distance(self, other: "Cube") -> int:
        """Number of input variables in which the cubes conflict.

        Distance 0 means the input parts intersect; distance 1 enables
        consensus.
        """
        m = self.inputs & other.inputs
        d = 0
        for _ in range(self.num_inputs):
            if m & 0b11 == LIT_EMPTY:
                d += 1
            m >>= 2
        return d

    # ------------------------------------------------------------------
    # construction of derived cubes
    # ------------------------------------------------------------------
    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both operands."""
        return Cube(
            self.num_inputs, self.inputs | other.inputs, self.outputs | other.outputs
        )

    def with_literal(self, var: int, field: int) -> "Cube":
        """Return a copy with variable ``var`` set to the given 2-bit field."""
        shift = 2 * var
        cleared = self.inputs & ~(0b11 << shift)
        return Cube(self.num_inputs, cleared | (field << shift), self.outputs)

    def raise_var(self, var: int) -> "Cube":
        """Return a copy with variable ``var`` raised to don't care."""
        return self.with_literal(var, LIT_DC)

    def with_outputs(self, outputs: int) -> "Cube":
        """Return a copy with the given output part."""
        return Cube(self.num_inputs, self.inputs, outputs)

    def cofactor(self, other: "Cube") -> "Cube | None":
        """Input-part Shannon cofactor of this cube w.r.t. ``other``.

        Implements the ESPRESSO cofactor on the input part: ``None``
        when the input parts do not intersect, otherwise every variable
        bound in ``other`` becomes don't care in the result while the
        remaining fields of ``self`` are kept.  The output part of
        ``self`` is preserved unchanged — callers that need multi-output
        semantics filter/project by output first (see
        :mod:`repro.logic.cover`).
        """
        m = self.inputs & other.inputs
        probe = m
        for _ in range(self.num_inputs):
            if probe & 0b11 == LIT_EMPTY:
                return None
            probe >>= 2
        result = 0
        sm, om = self.inputs, other.inputs
        for var in range(self.num_inputs):
            sfield = sm & 0b11
            ofield = om & 0b11
            result |= (LIT_DC if ofield != LIT_DC else sfield) << (2 * var)
            sm >>= 2
            om >>= 2
        return Cube(self.num_inputs, result, self.outputs)

    def consensus(self, other: "Cube") -> "Cube | None":
        """Consensus (resolvent) of two cubes, ``None`` when undefined.

        Defined for input distance exactly 1 (classic single-variable
        consensus) with overlapping output parts, or distance 0 where it
        degenerates to the intersection-like merge used by iterated
        consensus prime generation.
        """
        outputs = self.outputs & other.outputs
        if not outputs:
            return None
        d = self.distance(other)
        if d > 1:
            return None
        if d == 0:
            c = Cube(self.num_inputs, self.inputs & other.inputs, outputs)
            return None if c.is_empty() else c
        # distance 1: raise the single conflicting variable
        merged = self.inputs & other.inputs
        result = 0
        sm, om, mm = self.inputs, other.inputs, merged
        for var in range(self.num_inputs):
            if mm & 0b11 == LIT_EMPTY:
                field = LIT_DC
            else:
                field = (sm & 0b11) & (om & 0b11)
            result |= field << (2 * var)
            sm >>= 2
            om >>= 2
            mm >>= 2
        c = Cube(self.num_inputs, result, outputs)
        return None if c.is_empty() else c

    def minterms(self) -> Iterator[int]:
        """Yield the integer-encoded input minterms covered by the cube."""
        free = self.free_vars()
        base = 0
        m = self.inputs
        for var in range(self.num_inputs):
            if m & 0b11 == LIT_ONE:
                base |= 1 << var
            m >>= 2
        for combo in range(1 << len(free)):
            mt = base
            for i, var in enumerate(free):
                if (combo >> i) & 1:
                    mt |= 1 << var
            yield mt

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def input_string(self) -> str:
        """ESPRESSO-style input-part string, e.g. ``"1-0"``."""
        chars = []
        m = self.inputs
        for _ in range(self.num_inputs):
            chars.append(_FIELD_CHARS[m & 0b11])
            m >>= 2
        return "".join(chars)

    def output_string(self, num_outputs: int) -> str:
        """ESPRESSO-style output-part string, e.g. ``"101"``."""
        return "".join(
            "1" if (self.outputs >> o) & 1 else "0" for o in range(num_outputs)
        )

    def to_expression(self, names: Sequence[str] | None = None) -> str:
        """Human-readable product term such as ``"a b' c"``.

        The universal cube renders as ``"1"``.
        """
        if names is None:
            names = [f"x{i}" for i in range(self.num_inputs)]
        parts = []
        m = self.inputs
        for var in range(self.num_inputs):
            field = m & 0b11
            if field == LIT_ONE:
                parts.append(names[var])
            elif field == LIT_ZERO:
                parts.append(names[var] + "'")
            elif field == LIT_EMPTY:
                return "0"
            m >>= 2
        return " ".join(parts) if parts else "1"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.input_string()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cube({self.input_string()!r}, outputs={bin(self.outputs)})"


def supercube_of(cubes: Iterable[Cube]) -> Cube | None:
    """Smallest cube containing all the given cubes; ``None`` if empty."""
    result: Cube | None = None
    for c in cubes:
        result = c if result is None else result.supercube(c)
    return result
