"""PLA text format I/O (Berkeley ESPRESSO ``.pla`` dialect).

Supports the subset of the format needed here: ``.i``, ``.o``, ``.ilb``,
``.ob``, ``.p``, ``.type fr``, product-term rows with ``0/1/-`` input
parts and ``0/1/-~`` output parts, and ``.e``.  The ON/DC/OFF split of
an ``fr``-type PLA maps exactly onto the (F, D, R) triples the
region-derivation procedure produces, so this module doubles as the
interchange format between the synthesis flow and external tools or
test fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cover import Cover
from .cube import Cube

__all__ = ["Pla", "parse_pla", "write_pla"]


@dataclass
class Pla:
    """A parsed PLA: ON/DC/OFF covers plus port names."""

    num_inputs: int
    num_outputs: int
    on: Cover = field(default=None)  # type: ignore[assignment]
    dc: Cover = field(default=None)  # type: ignore[assignment]
    off: Cover = field(default=None)  # type: ignore[assignment]
    input_names: list[str] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.on is None:
            self.on = Cover.empty(self.num_inputs, self.num_outputs)
        if self.dc is None:
            self.dc = Cover.empty(self.num_inputs, self.num_outputs)
        if self.off is None:
            self.off = Cover.empty(self.num_inputs, self.num_outputs)
        if not self.input_names:
            self.input_names = [f"x{i}" for i in range(self.num_inputs)]
        if not self.output_names:
            self.output_names = [f"f{i}" for i in range(self.num_outputs)]


def parse_pla(text: str) -> Pla:
    """Parse PLA text into ON/DC/OFF covers.

    Output-part characters: ``1`` (or ``4``) ON, ``0`` OFF-by-default
    (ignored for the row), ``-``/``2`` don't care, ``~`` not specified.
    Rows therefore contribute, per output, to the cover named by the
    character — exactly the ``fr``/``fd`` semantics of ESPRESSO.
    """
    num_inputs = num_outputs = None
    input_names: list[str] = []
    output_names: list[str] = []
    rows: list[tuple[str, str]] = []
    pla_type = "fd"
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key == ".i":
                num_inputs = int(parts[1])
            elif key == ".o":
                num_outputs = int(parts[1])
            elif key == ".ilb":
                input_names = parts[1:]
            elif key == ".ob":
                output_names = parts[1:]
            elif key == ".type":
                pla_type = parts[1]
            elif key in (".p", ".e", ".end"):
                continue
            continue
        parts = line.split()
        if len(parts) == 2:
            rows.append((parts[0], parts[1]))
        elif len(parts) == 1 and num_inputs is not None:
            rows.append((parts[0][:num_inputs], parts[0][num_inputs:]))
    if num_inputs is None or num_outputs is None:
        raise ValueError("PLA text missing .i/.o declarations")

    pla = Pla(num_inputs, num_outputs, input_names=input_names, output_names=output_names)
    for inp, outp in rows:
        on_bits = dc_bits = off_bits = 0
        for o, ch in enumerate(outp):
            if ch in "14":
                on_bits |= 1 << o
            elif ch in "-2":
                dc_bits |= 1 << o
            elif ch == "0":
                if pla_type in ("fr", "f"):
                    off_bits |= 1 << o
        if on_bits:
            pla.on.add(Cube.from_string(inp, on_bits))
        if dc_bits:
            pla.dc.add(Cube.from_string(inp, dc_bits))
        if off_bits:
            pla.off.add(Cube.from_string(inp, off_bits))
    return pla


def write_pla(
    on: Cover,
    dc: Cover | None = None,
    input_names: list[str] | None = None,
    output_names: list[str] | None = None,
) -> str:
    """Serialize covers as ``fd``-type PLA text."""
    n, m = on.num_inputs, on.num_outputs
    lines = [f".i {n}", f".o {m}"]
    if input_names:
        lines.append(".ilb " + " ".join(input_names))
    if output_names:
        lines.append(".ob " + " ".join(output_names))
    lines.append(".type fd")
    body: list[str] = []
    for c in on.cubes:
        body.append(f"{c.input_string()} {c.output_string(m)}")
    if dc is not None:
        for c in dc.cubes:
            out = "".join("-" if (c.outputs >> o) & 1 else "0" for o in range(m))
            body.append(f"{c.input_string()} {out}")
    lines.append(f".p {len(body)}")
    lines.extend(body)
    lines.append(".e")
    return "\n".join(lines) + "\n"
