"""Cover complementation via Shannon/unate recursion.

Computes a sum-of-products cover of the Boolean complement of a
(single-output) cover.  Used by:

* ``minimize(F, D)`` when the OFF-set ``R`` is not supplied explicitly,
* the REDUCE step of the ESPRESSO loop (smallest cube containing the
  part of a cube not covered by the rest of the cover),
* validity checks in the exact minimizer.

The recursion is the textbook one:

``comp(F) = x' · comp(F|x=0)  +  x · comp(F|x=1)``

with three base cases (empty cover, universal row, single cube — De
Morgan) and a merge step that applies single-cube containment to keep
intermediate covers small.
"""

from __future__ import annotations

from .cube import LIT_ONE, LIT_ZERO, Cube
from .cover import Cover

__all__ = ["complement", "complement_cube", "cube_sharp"]


def complement_cube(cube: Cube) -> Cover:
    """De Morgan complement of a single cube (input part).

    The complement of ``x1 x2' x3`` is ``x1' + x2 + x3'``: one cube per
    bound literal, with the literal flipped and everything else don't
    care.
    """
    n = cube.num_inputs
    out = Cover.empty(n, 1)
    # A cube with no bound literals (including every cube over zero
    # variables) is the universal cube; its complement is the empty
    # cover (constant 0) — the loop below adds nothing, which is right.
    for var in range(n):
        f = cube.literal(var)
        if f == LIT_ONE:
            out.add(Cube.full(n).with_literal(var, LIT_ZERO))
        elif f == LIT_ZERO:
            out.add(Cube.full(n).with_literal(var, LIT_ONE))
    return out


def complement(cover: Cover) -> Cover:
    """SOP cover of the complement of ``cover`` (input parts only)."""
    n = cover.num_inputs
    cubes = [c for c in cover.cubes if not c.is_empty()]
    if not cubes:
        # constant 0 complements to constant 1 — also over zero
        # variables, where Cover.universe(0, 1) is the one-minterm
        # space (the CONST-0 plane case the certifier probes).
        return Cover.universe(n, 1)
    for c in cubes:
        if c.is_full_inputs():
            # any universal row (every non-empty cube when n == 0)
            # makes the cover constant 1; complement is constant 0.
            return Cover.empty(n, 1)
    if len(cubes) == 1:
        return complement_cube(cubes[0])

    work = Cover(n, 1, cubes)
    var = work.most_binate_var()
    if var is None:
        var = work.most_used_var()
    if var is None:  # all cubes universal was handled; defensive
        return Cover.empty(n, 1)

    pos_half = Cube.full(n).with_literal(var, LIT_ONE)
    neg_half = Cube.full(n).with_literal(var, LIT_ZERO)
    comp_pos = complement(work.cofactor(pos_half))
    comp_neg = complement(work.cofactor(neg_half))

    merged = Cover.empty(n, 1)
    for c in comp_pos.cubes:
        merged.add(c.with_literal(var, _and_field(c.literal(var), LIT_ONE)))
    for c in comp_neg.cubes:
        merged.add(c.with_literal(var, _and_field(c.literal(var), LIT_ZERO)))
    return merged.drop_empty().single_cube_containment()


def _and_field(a: int, b: int) -> int:
    """AND two 2-bit literal fields (used to re-attach the split literal)."""
    return a & b


def cube_sharp(cube: Cube, cover: Cover) -> Cover:
    """The sharp product ``cube # cover`` as a cover (input parts).

    Returns a cover of the minterms of ``cube`` *not* covered by
    ``cover``.  Implemented as ``cube ∩ complement(cofactor(cover, cube))``
    which keeps the recursion over the small cofactored space.
    """
    remainder = complement(cover.cofactor(cube))
    out = Cover.empty(cube.num_inputs, 1)
    for c in remainder.cubes:
        i = c.intersect(cube.with_outputs(c.outputs))
        if i is not None:
            out.add(i)
    return out
