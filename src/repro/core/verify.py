"""Closed-loop hazard-freeness verification (Monte-Carlo).

Stands in for the authors' VERILOG/SPICE validation: the synthesized
netlist runs against an SG-driven environment under randomized gate
delays.  Per Theorem 2, a correct N-SHOT circuit must

* conform — every observable non-input transition is one the SG
  enables at that point (no spurious firings, no glitches at the
  flip-flop outputs);
* progress — the circuit never deadlocks while the SG expects a
  non-input transition (the trigger requirement's teeth);
* keep set/reset exclusivity at every MHS flip-flop.

Internal SOP nets are *expected* to glitch; the verification reports
how much they did, demonstrating the paper's core claim: internal
hazards, externally hazard-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import SGEnvironment, SimConfig, Simulator, analyze_hazards
from ..sim.hazards import HazardReport
from .synthesizer import NShotCircuit

__all__ = ["VerificationRun", "VerificationSummary", "verify_hazard_freeness"]


@dataclass
class VerificationRun:
    """One Monte-Carlo run's outcome."""

    seed: int
    ok: bool
    transitions: int
    internal_glitches: int
    observable_glitches: int
    errors: list[str] = field(default_factory=list)


@dataclass
class VerificationSummary:
    """Aggregate over all runs."""

    runs: list[VerificationRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.runs)

    @property
    def total_transitions(self) -> int:
        return sum(r.transitions for r in self.runs)

    @property
    def total_internal_glitches(self) -> int:
        return sum(r.internal_glitches for r in self.runs)

    @property
    def total_observable_glitches(self) -> int:
        return sum(r.observable_glitches for r in self.runs)

    def summary(self) -> str:
        status = "HAZARD-FREE" if self.ok else "VIOLATIONS"
        return (
            f"{status}: {len(self.runs)} runs, {self.total_transitions} observable "
            f"transitions, {self.total_internal_glitches} internal glitch pulses "
            f"(tolerated), {self.total_observable_glitches} observable glitches"
        )


def verify_hazard_freeness(
    circuit: NShotCircuit,
    runs: int = 5,
    jitter: float | None = None,
    max_transitions: int = 200,
    max_time: float = 4000.0,
    base_seed: int = 0,
    input_delay: tuple[float, float] = (0.1, 6.0),
) -> VerificationSummary:
    """Monte-Carlo closed-loop verification of a synthesized circuit.

    Each run draws fresh per-gate delays (±``jitter`` relative spread)
    and fresh environment timing, then simulates until
    ``max_transitions`` observable transitions or ``max_time`` ns.

    ``jitter`` defaults to the delay uncertainty the circuit was
    *designed for* (``circuit.designed_spread``): Theorem 2 guarantees
    hazard-freeness only under the delay bounds Equation (1) was
    evaluated with — verifying under wider variation than designed is
    testing a different (unsupported) operating condition.
    """
    if jitter is None:
        jitter = circuit.designed_spread
    summary = VerificationSummary()
    sg = circuit.sg
    observable = [sg.signals[a] for a in sg.non_inputs]
    for k in range(runs):
        seed = base_seed + k
        sim = Simulator(
            circuit.netlist,
            SimConfig(jitter=jitter, seed=seed),
        )
        env = SGEnvironment(sg, sim, seed=seed ^ 0x5EED, input_delay=input_delay)
        report = env.run(max_time=max_time, max_transitions=max_transitions)
        hazards: HazardReport = analyze_hazards(
            sim.traces,
            observable_nets=observable,
            internal_nets=circuit.architecture.sop_nets,
        )
        errors = (
            report.conformance_errors + report.progress_errors + report.mhs_errors
        )
        summary.runs.append(
            VerificationRun(
                seed=seed,
                ok=report.ok and hazards.externally_hazard_free,
                transitions=report.transitions_observed,
                internal_glitches=hazards.internal_total,
                observable_glitches=hazards.observable_total,
                errors=errors,
            )
        )
    return summary
