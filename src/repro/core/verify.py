"""Closed-loop hazard-freeness verification (Monte-Carlo).

Stands in for the authors' VERILOG/SPICE validation: the synthesized
netlist runs against an SG-driven environment under randomized gate
delays.  Per Theorem 2, a correct N-SHOT circuit must

* conform — every observable non-input transition is one the SG
  enables at that point (no spurious firings, no glitches at the
  flip-flop outputs);
* progress — the circuit never deadlocks while the SG expects a
  non-input transition (the trigger requirement's teeth);
* keep set/reset exclusivity at every MHS flip-flop.

Internal SOP nets are *expected* to glitch; the verification reports
how much they did, demonstrating the paper's core claim: internal
hazards, externally hazard-free.

:func:`run_oracle` is the single-run core used by both the Monte-Carlo
sweep and the fault campaign: it never raises — a crashing or
livelocking simulation becomes a structured :class:`OracleVerdict`
(``timeout`` / ``error``) instead of an exception, so a sweep over
thousands of (circuit × fault × seed) points degrades gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..netlist.netlist import Netlist
from ..obs import get_metrics, trace_span
from ..sg.graph import StateGraph
from ..sim import (
    SGEnvironment,
    SimConfig,
    SimulationError,
    SimulationLimitError,
    Simulator,
    analyze_hazards,
)
from ..sim.hazards import HazardReport
from ..sim.waveform import TraceSet
from .synthesizer import NShotCircuit

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..obs.causality import FlightRecorder
    from ..obs.coverage import CoverageMap
    from ..obs.telemetry import HazardTelemetry

__all__ = [
    "OracleVerdict",
    "VerificationRun",
    "VerificationSummary",
    "run_oracle",
    "verify_hazard_freeness",
    "verify_static_first",
]


@dataclass
class OracleVerdict:
    """Structured outcome of one closed-loop oracle run.

    ``status`` is one of:

    * ``"clean"`` — the run completed and conformed to the SG with no
      observable hazards;
    * ``"violation"`` — the run completed but the oracle found
      conformance/progress/MHS errors or observable glitch pulses;
    * ``"timeout"`` — a watchdog budget tripped
      (:class:`~repro.sim.SimulationLimitError`): the circuit
      livelocked or ran away;
    * ``"error"`` — the simulation itself failed
      (:class:`~repro.sim.SimulationError` or an unexpected exception).
    """

    status: str
    seed: int
    errors: list[str] = field(default_factory=list)
    transitions: int = 0
    internal_glitches: int = 0
    observable_glitches: int = 0
    final_time: float = 0.0
    events: int = 0
    #: ``repro-causality/1`` chain documents for the run's violations,
    #: populated when a flight recorder was attached (``observe`` hook)
    causes: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "clean"

    @property
    def anomalous(self) -> bool:
        """True for any non-clean outcome (what a fault campaign counts
        as a *detection* of the injected fault)."""
        return self.status != "clean"

    def describe(self) -> str:
        head = f"seed {self.seed}: {self.status}"
        if self.errors:
            head += f" ({self.errors[0]}"
            if len(self.errors) > 1:
                head += f" +{len(self.errors) - 1} more"
            head += ")"
        return head


def run_oracle(
    netlist: Netlist,
    sg: StateGraph,
    config: SimConfig,
    *,
    env_seed: int | None = None,
    max_time: float = 2000.0,
    max_transitions: int = 200,
    input_delay: tuple[float, float] = (0.1, 6.0),
    internal_nets: list[str] | None = None,
    arm=None,
    observe=None,
) -> OracleVerdict:
    """One closed-loop conformance run, returned as a structured verdict.

    Never raises for in-simulation failures: watchdog trips map to
    ``timeout`` and simulation errors to ``error`` verdicts, each with
    the structured diagnostics attached.  ``arm`` is an optional
    callback invoked with the freshly built :class:`Simulator` before
    the run starts — the hook transient-fault models use to schedule
    their mid-traversal injections.  ``observe`` is invoked with
    ``(sim, env)`` after ``arm`` — the hook for strictly observational
    collectors that need the environment too (coverage maps register an
    SG-advance observer, flight recorders attach to the simulator).
    When a flight recorder is attached, any violation verdict carries
    causal chains (``repro-causality/1`` documents) for its offending
    events in :attr:`OracleVerdict.causes`.
    """
    seed = config.seed if config.seed is not None else 0
    with trace_span("oracle", circuit=netlist.name, seed=seed) as sp:
        verdict, filtered = _run_oracle_inner(
            netlist,
            sg,
            config,
            seed,
            env_seed=env_seed,
            max_time=max_time,
            max_transitions=max_transitions,
            input_delay=input_delay,
            internal_nets=internal_nets,
            arm=arm,
            observe=observe,
        )
        sp.set(
            status=verdict.status,
            events=verdict.events,
            transitions=verdict.transitions,
            mhs_filtered=filtered,
        )
    metrics = get_metrics()
    metrics.counter("sim.runs").add(1)
    metrics.counter("sim.events").add(verdict.events)
    metrics.counter("sim.transitions").add(verdict.transitions)
    metrics.counter("mhs.pulses_filtered").add(filtered)
    return verdict


def _run_oracle_inner(
    netlist: Netlist,
    sg: StateGraph,
    config: SimConfig,
    seed: int,
    *,
    env_seed: int | None,
    max_time: float,
    max_transitions: int,
    input_delay: tuple[float, float],
    internal_nets: list[str] | None,
    arm,
    observe=None,
) -> tuple[OracleVerdict, int]:
    """The oracle body; returns (verdict, MHS pulses filtered)."""
    sim = Simulator(netlist, config)
    env = SGEnvironment(
        sg,
        sim,
        seed=env_seed if env_seed is not None else seed ^ 0x5EED,
        input_delay=input_delay,
    )
    if arm is not None:
        arm(sim)
    if observe is not None:
        observe(sim, env)
    observable = [sg.signals[a] for a in sg.non_inputs]
    try:
        report = env.run(max_time=max_time, max_transitions=max_transitions)
    except SimulationLimitError as e:
        return OracleVerdict(
            status="timeout",
            seed=seed,
            errors=[e.describe()],
            transitions=env.report.transitions_observed,
            final_time=sim.now,
            events=sim.events_processed,
        ), sim.mhs_pulses_filtered
    except SimulationError as e:
        return OracleVerdict(
            status="error",
            seed=seed,
            errors=[e.describe()],
            transitions=env.report.transitions_observed,
            final_time=sim.now,
            events=sim.events_processed,
        ), sim.mhs_pulses_filtered
    except Exception as e:  # graceful degradation: record, don't abort
        return OracleVerdict(
            status="error",
            seed=seed,
            errors=[f"{type(e).__name__}: {e}"],
            transitions=env.report.transitions_observed,
            final_time=sim.now,
            events=sim.events_processed,
        ), sim.mhs_pulses_filtered
    hazards: HazardReport = analyze_hazards(
        sim.traces,
        observable_nets=observable,
        internal_nets=internal_nets,
    )
    errors = report.conformance_errors + report.progress_errors + report.mhs_errors
    clean = report.ok and hazards.externally_hazard_free
    return OracleVerdict(
        status="clean" if clean else "violation",
        seed=seed,
        errors=errors
        + (
            []
            if hazards.externally_hazard_free
            else [f"{hazards.observable_total} observable glitch pulses"]
        ),
        transitions=report.transitions_observed,
        internal_glitches=hazards.internal_total,
        observable_glitches=hazards.observable_total,
        final_time=report.final_time,
        events=sim.events_processed,
        causes=[] if clean else _violation_causes(sim, report, hazards),
    ), sim.mhs_pulses_filtered


def _violation_causes(sim, report, hazards: HazardReport) -> list[dict]:
    """Causal-chain documents for a violation verdict's offending events.

    Only meaningful when a flight recorder was attached (``observe``
    hook); returns ``[]`` otherwise.  Conformance violations are looked
    up by (net, time, value); observable glitch nets by their most
    recent recorded change.
    """
    recorder = getattr(sim, "_recorder", None)
    if recorder is None:
        return []
    causes: list[dict] = []
    for net, time, value in report.conformance_events:
        ev = recorder.find_net_event(net, at=time, value=value)
        if ev is not None:
            causes.append(recorder.explain(ev).to_json_doc())
    for net in sorted(hazards.observable_glitches):
        ev = recorder.find_net_event(net)
        if ev is not None:
            causes.append(recorder.explain(ev).to_json_doc())
    return causes


@dataclass
class VerificationRun:
    """One Monte-Carlo run's outcome."""

    seed: int
    ok: bool
    transitions: int
    internal_glitches: int
    observable_glitches: int
    errors: list[str] = field(default_factory=list)
    #: causal chains of this run's violations (flight recorder attached)
    causes: list[dict] = field(default_factory=list)


@dataclass
class VerificationSummary:
    """Aggregate over all runs.

    ``telemetry`` is the ``repro-telemetry/1`` summary block when the
    sweep ran with a :class:`~repro.obs.telemetry.HazardTelemetry`
    collector attached; ``coverage`` is the ``repro-coverage/1``
    document when a :class:`~repro.obs.coverage.CoverageMap` was
    attached; ``traces`` is the last run's
    :class:`~repro.sim.waveform.TraceSet` when trace capture was
    requested (the ``--vcd`` export path).
    """

    runs: list[VerificationRun] = field(default_factory=list)
    telemetry: dict | None = None
    coverage: dict | None = None
    traces: "TraceSet | None" = None
    #: the ``repro-certificate/1`` document when the static certifier
    #: ran first (``--static-first``); present whether or not the
    #: Monte-Carlo phase was subsequently skipped
    certificate: dict | None = None
    #: True when the certificate was fully proved and the Monte-Carlo
    #: sweep was skipped entirely (``runs`` is then empty)
    static_skip: bool = False

    @property
    def ok(self) -> bool:
        if self.static_skip:
            return True
        return all(r.ok for r in self.runs)

    @property
    def total_transitions(self) -> int:
        return sum(r.transitions for r in self.runs)

    @property
    def total_internal_glitches(self) -> int:
        return sum(r.internal_glitches for r in self.runs)

    @property
    def total_observable_glitches(self) -> int:
        return sum(r.observable_glitches for r in self.runs)

    def summary(self) -> str:
        if self.static_skip:
            n = len((self.certificate or {}).get("obligations", []))
            return (
                f"HAZARD-FREE (statically certified): {n} obligations "
                f"proved, Monte-Carlo skipped"
            )
        status = "HAZARD-FREE" if self.ok else "VIOLATIONS"
        return (
            f"{status}: {len(self.runs)} runs, {self.total_transitions} observable "
            f"transitions, {self.total_internal_glitches} internal glitch pulses "
            f"(tolerated), {self.total_observable_glitches} observable glitches"
        )


def verify_hazard_freeness(
    circuit: NShotCircuit,
    runs: int = 5,
    jitter: float | None = None,
    max_transitions: int = 200,
    max_time: float = 4000.0,
    base_seed: int = 0,
    input_delay: tuple[float, float] = (0.1, 6.0),
    max_events: int | None = 500_000,
    telemetry: "HazardTelemetry | None" = None,
    keep_traces: bool = False,
    coverage: "CoverageMap | None" = None,
    recorder: "FlightRecorder | None" = None,
) -> VerificationSummary:
    """Monte-Carlo closed-loop verification of a synthesized circuit.

    Each run draws fresh per-gate delays (±``jitter`` relative spread)
    and fresh environment timing, then simulates until
    ``max_transitions`` observable transitions or ``max_time`` ns.
    A run that trips the ``max_events`` watchdog or crashes is recorded
    as a failing run with the structured diagnostic — the sweep itself
    never aborts.

    ``jitter`` defaults to the delay uncertainty the circuit was
    *designed for* (``circuit.designed_spread``): Theorem 2 guarantees
    hazard-freeness only under the delay bounds Equation (1) was
    evaluated with — verifying under wider variation than designed is
    testing a different (unsupported) operating condition.

    An optional ``telemetry`` collector is attached to every run's
    simulator through the ``arm`` hook (samples accumulate across the
    sweep; the summary block lands in ``summary.telemetry``), and
    ``keep_traces`` retains the last run's :class:`TraceSet` for VCD
    export — both strictly observational.

    A ``coverage`` map accumulates SG state/region/trigger-cube
    coverage across the sweep (document in ``summary.coverage``); a
    ``recorder`` flight recorder makes every violating run carry causal
    chains for its offending events (``VerificationRun.causes``).
    """
    if jitter is None:
        jitter = circuit.designed_spread
    summary = VerificationSummary()
    sg = circuit.sg
    sims: list = []
    arm = None
    observe = None
    if telemetry is not None or keep_traces:

        def arm(sim) -> None:
            if telemetry is not None:
                telemetry.attach(sim)
            if keep_traces:
                sims[:] = [sim]

    if coverage is not None or recorder is not None:

        def observe(sim, env) -> None:
            if coverage is not None:
                coverage.attach(env)
            if recorder is not None:
                recorder.attach(sim)

    with trace_span(
        "verify", circuit=circuit.netlist.name, runs=runs, jitter=jitter
    ) as sp:
        for k in range(runs):
            seed = base_seed + k
            verdict = run_oracle(
                circuit.netlist,
                sg,
                SimConfig(jitter=jitter, seed=seed, max_events=max_events),
                max_time=max_time,
                max_transitions=max_transitions,
                input_delay=input_delay,
                internal_nets=circuit.architecture.sop_nets,
                arm=arm,
                observe=observe,
            )
            summary.runs.append(
                VerificationRun(
                    seed=seed,
                    ok=verdict.ok,
                    transitions=verdict.transitions,
                    internal_glitches=verdict.internal_glitches,
                    observable_glitches=verdict.observable_glitches,
                    errors=verdict.errors,
                    causes=verdict.causes,
                )
            )
        sp.set(ok=summary.ok, transitions=summary.total_transitions)
    if telemetry is not None:
        summary.telemetry = telemetry.summary()
    if coverage is not None:
        summary.coverage = coverage.summary()
    if sims:
        summary.traces = sims[-1].traces
    return summary


def verify_static_first(
    circuit: NShotCircuit, **kwargs: object
) -> VerificationSummary:
    """Static certification first, Monte-Carlo only as the fallback.

    Discharges the symbolic hazard certificate
    (:func:`repro.analysis.certify.certify_circuit`); when every
    obligation is ``proved`` the Monte-Carlo sweep is skipped entirely
    and the summary carries the certificate instead of runs.  Any
    ``refuted``/``unknown`` obligation falls back to the full
    :func:`verify_hazard_freeness` sweep (same keyword arguments), with
    the certificate still attached for reporting.

    Soundness: skipping is only licensed by ``fully_proved``, and the
    differential harness (certifier vs oracle over the suite + fuzz
    corpus) enforces that ``proved`` never contradicts the oracle.
    """
    from ..analysis.certify import certify_circuit

    cert = certify_circuit(circuit)
    if cert.fully_proved:
        return VerificationSummary(
            certificate=cert.to_json(), static_skip=True
        )
    summary = verify_hazard_freeness(circuit, **kwargs)  # type: ignore[arg-type]
    summary.certificate = cert.to_json()
    return summary
