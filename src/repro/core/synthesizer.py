"""Top-level N-SHOT synthesis — the ASSASSIN flow of the paper.

:func:`synthesize` runs the full Section IV-E procedure:

1. validate the SG (consistency, CSC, semi-modularity with input
   choices) — the Theorem 2 preconditions;
2. derive the multi-output (F, D, R) from the excitation/quiescent
   regions (Section IV-A);
3. minimize with a conventional two-level minimizer — heuristic
   ESPRESSO loop or exact, entirely unconstrained by hazards;
4. audit/enforce the trigger requirement (Theorem 1; automatic for
   single-traversal SGs per Corollary 1);
5. evaluate the delay requirement, Equation (1);
6. map into the N-SHOT netlist (Figure 3) and analyze flip-flop
   initialization (Section IV-F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.engine import run_preflight
from ..logic import Cover, minimize, verify_cover
from ..netlist import DEFAULT_LIBRARY, Library, Netlist, NetlistStats
from ..obs import trace_span
from ..sg.graph import StateGraph
from ..sg.regions import is_single_traversal
from .architecture import ArchitectureResult, build_nshot_netlist
from .delays import DelayRequirement, compute_delay_requirement
from .initialization import InitDecision, analyze_initialization
from .sop_derivation import SopSpec, derive_sop_spec
from .trigger import check_trigger_cubes, enforce_trigger_cubes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.diagnostics import Diagnostic
    from ..pipeline.store import ArtifactStore

__all__ = [
    "NShotCircuit",
    "SynthesisError",
    "apply_trigger_requirement",
    "build_architecture",
    "finalize_circuit",
    "minimize_cover",
    "preflight_or_raise",
    "synthesize",
]


class SynthesisError(ValueError):
    """Raised when an SG violates the Theorem 2 preconditions.

    When raised by the pre-flight pass, ``diagnostics`` carries the
    structured findings of the static-analysis rule engine (the same
    objects ``repro lint`` reports), so callers can render rule ids,
    locations and hints instead of one opaque string.
    """

    def __init__(
        self, message: str, diagnostics: "list[Diagnostic] | None" = None
    ) -> None:
        super().__init__(message)
        self.diagnostics: "list[Diagnostic]" = diagnostics or []


@dataclass
class NShotCircuit:
    """The complete synthesis result for one specification."""

    sg: StateGraph
    spec: SopSpec
    cover: Cover
    netlist: Netlist
    architecture: ArchitectureResult
    delay_requirements: dict[int, DelayRequirement]
    initialization: dict[int, InitDecision]
    single_traversal: bool
    trigger_cubes_added: int
    method: str
    #: relative gate-delay uncertainty Equation (1) was evaluated for
    designed_spread: float = 0.0

    def stats(self, library: Library = DEFAULT_LIBRARY) -> NetlistStats:
        """Area/delay summary — one Table 2 row."""
        return self.netlist.stats(library)

    @property
    def compensation_required(self) -> bool:
        """True when any signal needs the Equation (1) delay line."""
        return any(r.compensation_required for r in self.delay_requirements.values())

    def describe(self) -> str:
        s = self.stats()
        lines = [
            f"N-SHOT circuit for {self.netlist.name}: "
            f"{self.sg.num_states} states, {len(self.sg.non_inputs)} non-input signals",
            f"  method: {self.method}, cover: {len(self.cover)} cubes / "
            f"{self.cover.num_literals()} literals",
            f"  single traversal: {self.single_traversal}, "
            f"trigger cubes added: {self.trigger_cubes_added}",
            f"  area {s.area:.0f}, delay {s.delay:.1f} ns, {s.num_gates} gates",
        ]
        for r in self.delay_requirements.values():
            lines.append("  delay req: " + r.describe())
        for d in self.initialization.values():
            lines.append("  init: " + d.describe())
        return "\n".join(lines)


def preflight_or_raise(sg: StateGraph, name: str = "nshot") -> None:
    """Run the Theorem-2 precondition rules; raise :class:`SynthesisError`
    carrying the engine's structured diagnostics on any violation."""
    with trace_span("validate"):
        preflight = run_preflight(sg, name=name)
    if not preflight.ok:
        detail = "; ".join(
            f"[{rid}] {len(ds)} finding(s), e.g. {ds[0].message}"
            for rid, ds in preflight.by_rule().items()
        )
        raise SynthesisError(
            f"SG fails the Theorem 2 preconditions: {detail}",
            diagnostics=preflight.diagnostics,
        )


def minimize_cover(
    spec: SopSpec,
    method: str = "espresso",
    share_products: bool = True,
    name: str = "nshot",
) -> Cover:
    """Step 3: unconstrained two-level minimization of (F, D, R), plus
    the soundness audit of the result."""
    if share_products:
        cover = minimize(spec.on, spec.dc, spec.off, method=method)
    else:
        # per-function minimization: no multi-output term sharing
        cover = Cover.empty(spec.sg.num_signals, spec.num_outputs)
        for o in range(spec.num_outputs):
            sub = minimize(
                spec.on.projection(o),
                spec.dc.projection(o),
                spec.off.projection(o),
                method=method,
            )
            for c in sub.cubes:
                cover.add(c.with_outputs(1 << o))
    with trace_span("cover-audit"):
        check = verify_cover(cover, spec.on, spec.dc, spec.off)
    if not check.ok:
        raise SynthesisError(
            f"minimizer produced an unsound cover for {name}: {check}"
        )
    return cover


def apply_trigger_requirement(
    sg: StateGraph, spec: SopSpec, cover: Cover
) -> tuple[Cover, bool, int]:
    """Step 4 (Theorem 1): returns ``(cover, single_traversal, added)``."""
    with trace_span("trigger-enforcement") as sp_t:
        single = is_single_traversal(sg)
        added = 0
        if not single:
            cover, added = enforce_trigger_cubes(spec, cover)
        else:
            # Corollary 1: nothing to do, but assert it for defence in depth
            audits = check_trigger_cubes(spec, cover)
            bad = [a for a in audits if not a.ok]
            if bad:  # pragma: no cover - Corollary 1 guarantees this branch is dead
                raise SynthesisError("single-traversal SG failed trigger audit")
        sp_t.set(single_traversal=single, cubes_added=added)
    return cover, single, added


def build_architecture(
    spec: SopSpec, cover: Cover, name: str = "nshot"
) -> ArchitectureResult:
    """First-pass N-SHOT netlist (Figure 3), before Equation (1)."""
    with trace_span("netlist-build"):
        return build_nshot_netlist(spec, cover, name=name)


def finalize_circuit(
    sg: StateGraph,
    spec: SopSpec,
    cover: Cover,
    arch: ArchitectureResult,
    *,
    name: str = "nshot",
    method: str = "espresso",
    library: Library = DEFAULT_LIBRARY,
    mhs_tau: float = 1.2,
    delay_spread: float = 0.0,
    single_traversal: bool = True,
    trigger_cubes_added: int = 0,
) -> NShotCircuit:
    """Steps 5–6: evaluate Equation (1) per signal, analyze flip-flop
    initialization, rebuild the netlist if compensation is required,
    and assemble the :class:`NShotCircuit`."""
    with trace_span("delay-eval", spread=delay_spread) as sp_d:
        reqs: dict[int, DelayRequirement] = {}
        for a in sg.non_inputs:
            reqs[a] = compute_delay_requirement(
                sg.signals[a],
                arch.set_timing[a],
                arch.reset_timing[a],
                library=library,
                mhs_tau=mhs_tau,
                spread=delay_spread,
            )
        sp_d.set(
            compensated=sum(1 for r in reqs.values() if r.compensation_required)
        )
    with trace_span("initialization"):
        init = analyze_initialization(spec, cover)
    if any(r.compensation_required for r in reqs.values()):
        with trace_span("netlist-build", rebuild=True):
            arch = build_nshot_netlist(
                spec,
                cover,
                delay_requirements=reqs,
                init_values={a: d.initial_value for a, d in init.items()},
                name=name,
            )
    problems = arch.netlist.validate()
    if problems:  # pragma: no cover - structural invariant of the builder
        raise SynthesisError(f"malformed netlist for {name}: {problems[:3]}")
    return NShotCircuit(
        sg=sg,
        spec=spec,
        cover=cover,
        netlist=arch.netlist,
        architecture=arch,
        delay_requirements=reqs,
        initialization=init,
        single_traversal=single_traversal,
        trigger_cubes_added=trigger_cubes_added,
        method=method,
        designed_spread=delay_spread,
    )


def synthesize(
    sg: StateGraph,
    name: str = "nshot",
    method: str = "espresso",
    library: Library = DEFAULT_LIBRARY,
    mhs_tau: float = 1.2,
    delay_spread: float = 0.0,
    share_products: bool = True,
    validate: bool = True,
    cache: "ArtifactStore | None" = None,
) -> NShotCircuit:
    """Synthesize an SG into an externally hazard-free N-SHOT circuit.

    Parameters
    ----------
    sg:
        The specification; must be consistent, CSC and semi-modular
        with input choices (checked unless ``validate=False``).
    method:
        ``"espresso"`` or ``"exact"`` two-level minimization.
    delay_spread:
        Assumed relative gate-delay uncertainty (±40% → 0.4) fed into
        Equation (1); determines whether a local delay line is needed
        and how long it must be.  0 = the nominal equal-delay bound.
    share_products:
        When True (default, the paper's setting) all set/reset
        functions are minimized together as one multi-output problem so
        AND gates can be shared between functions; False minimizes each
        function separately (the ablation knob).
    cache:
        An optional :class:`~repro.pipeline.store.ArtifactStore`; when
        given, the flow is pulled through the content-addressed
        pipeline DAG so previously computed stage artifacts are reused.
        ``None`` (the default) runs the hermetic in-process flow.

    Raises
    ------
    SynthesisError
        When validation fails.
    TriggerRequirementError
        When a non-single-traversal SG cannot satisfy Theorem 1.
    """
    if cache is not None:
        from ..pipeline import PipelineRun

        run = PipelineRun.from_sg(
            sg,
            name=name,
            store=cache,
            method=method,
            library=library,
            mhs_tau=mhs_tau,
            delay_spread=delay_spread,
            share_products=share_products,
        )
        return run.synthesize(validate=validate)

    with trace_span("synthesize", circuit=name, method=method) as sp:
        if validate:
            # pre-flight: the Theorem-2 precondition rules of the
            # static-analysis engine (consistency, CSC, semi-modularity)
            # — the same registry `repro lint` runs
            preflight_or_raise(sg, name=name)

        spec = derive_sop_spec(sg)
        cover = minimize_cover(
            spec, method=method, share_products=share_products, name=name
        )
        cover, single, added = apply_trigger_requirement(sg, spec, cover)
        # first pass netlist to get plane structure, then Equation (1)
        arch = build_architecture(spec, cover, name=name)
        circuit = finalize_circuit(
            sg,
            spec,
            cover,
            arch,
            name=name,
            method=method,
            library=library,
            mhs_tau=mhs_tau,
            delay_spread=delay_spread,
            single_traversal=single,
            trigger_cubes_added=added,
        )
        sp.set(
            states=sg.num_states,
            cubes=len(circuit.cover),
            gates=len(circuit.netlist.gates),
        )
    return circuit
