"""The N-SHOT architecture synthesis flow (the paper's contribution).

``synthesize()`` turns a validated state graph into an externally
hazard-free gate-level circuit: region-derived set/reset SOPs minimized
without hazard constraints, trigger-cube enforcement (Theorem 1), the
Equation (1) delay requirement, the Figure 3 architecture with MHS
flip-flops, and Section IV-F initialization analysis.
``verify_hazard_freeness()`` closes the loop in simulation.
"""

from .sop_derivation import (
    FunctionSpec,
    SopSpec,
    derive_sop_spec,
    region_mode_table,
    ModeRow,
)
from .trigger import (
    TriggerCheck,
    check_trigger_cubes,
    enforce_trigger_cubes,
    TriggerRequirementError,
)
from .delays import PlaneTiming, DelayRequirement, compute_delay_requirement
from .architecture import ArchitectureResult, build_nshot_netlist
from .initialization import InitDecision, analyze_initialization
from .synthesizer import NShotCircuit, SynthesisError, synthesize
from .verify import (
    OracleVerdict,
    VerificationRun,
    VerificationSummary,
    run_oracle,
    verify_hazard_freeness,
)
from .report import format_mode_table, format_results_table

__all__ = [
    "FunctionSpec",
    "SopSpec",
    "derive_sop_spec",
    "region_mode_table",
    "ModeRow",
    "TriggerCheck",
    "check_trigger_cubes",
    "enforce_trigger_cubes",
    "TriggerRequirementError",
    "PlaneTiming",
    "DelayRequirement",
    "compute_delay_requirement",
    "ArchitectureResult",
    "build_nshot_netlist",
    "InitDecision",
    "analyze_initialization",
    "NShotCircuit",
    "SynthesisError",
    "synthesize",
    "OracleVerdict",
    "VerificationRun",
    "VerificationSummary",
    "run_oracle",
    "verify_hazard_freeness",
    "format_mode_table",
    "format_results_table",
]
