"""Reporting helpers: Table 1 / Table 2 style formatting."""

from __future__ import annotations

from typing import Sequence

from ..sg.graph import StateGraph
from .sop_derivation import ModeRow

__all__ = ["format_mode_table", "format_results_table"]


def format_mode_table(sg: StateGraph, rows: Sequence[ModeRow]) -> str:
    """Render the Table 1 correspondence for concrete states."""
    lines = [
        f"{'state':<16} {'region':<10} {'SET':^4} {'RESET':^6} mode",
        "-" * 48,
    ]
    for r in rows:
        label = sg.state_label(r.state)
        lines.append(
            f"{label:<16} {r.region:<10} {r.set_value:^4} {r.reset_value:^6} {r.mode}"
        )
    return "\n".join(lines)


def format_results_table(
    rows: Sequence[tuple[str, int, str, str, str]],
    headers: tuple[str, ...] = ("Circuit", "states", "SIS", "SYN", "ASSASSIN"),
) -> str:
    """Render a Table 2 style comparison.

    Each row is ``(name, states, sis_cell, syn_cell, assassin_cell)``
    where a cell is an ``area/delay`` string or a ``(k)`` failure code.
    """
    widths = [max(len(headers[0]), *(len(r[0]) for r in rows)) if rows else len(headers[0])]
    lines = []
    header = (
        f"{headers[0]:<{widths[0]}}  {headers[1]:>6}  "
        f"{headers[2]:>12}  {headers[3]:>12}  {headers[4]:>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, states, sis, syn, ours in rows:
        lines.append(
            f"{name:<{widths[0]}}  {states:>6}  {sis:>12}  {syn:>12}  {ours:>12}"
        )
    return "\n".join(lines)
