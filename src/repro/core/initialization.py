"""MHS flip-flop initialization analysis — Section IV-F.

For each non-input signal ``a`` with initial state ``s0``:

* ``s0 ∈ ER(+a) ∪ QR(+a)`` → the flip-flop must start (or will
  immediately drive itself) at 1; an explicit reset term is needed
  only when ``s0 ∈ QR(+a)`` **and** the set function evaluates to 0 at
  ``s0`` (the don't-care was resolved to 0, so nothing would restore
  the value after power-up);
* symmetric for the reset side;
* otherwise the flip-flop initializes automatically through the
  normal set/reset planes.

The analysis yields, per signal, the initial value and whether an
explicit initialization input ("reset product term at one output of
the master RS latch") is required.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic import Cover
from .sop_derivation import SopSpec

__all__ = ["InitDecision", "analyze_initialization"]


@dataclass(frozen=True)
class InitDecision:
    """Initialization verdict for one non-input signal."""

    signal: int
    name: str
    initial_value: int
    region: str  # which region s0 lies in, for diagnostics
    explicit_reset_required: bool
    reason: str

    def describe(self) -> str:
        need = "explicit init required" if self.explicit_reset_required else "auto"
        return f"{self.name}: init={self.initial_value} (s0 in {self.region}; {need} — {self.reason})"


def analyze_initialization(spec: SopSpec, cover: Cover) -> dict[int, InitDecision]:
    """Classify every non-input signal per Section IV-F.

    ``cover`` is the final minimized multi-output cover (the analysis
    must look at the *implemented* set/reset functions, since don't
    cares may have been resolved either way).
    """
    sg = spec.sg
    s0 = sg.initial
    code0 = sg.code(s0)
    out: dict[int, InitDecision] = {}
    for a in sg.non_inputs:
        name = sg.signals[a]
        sr = spec.regions[a]
        init_val = sg.value(s0, a)
        set_o = spec.output_index(a, "set")
        reset_o = spec.output_index(a, "reset")
        set_val = int(cover.contains_minterm(code0, set_o))
        reset_val = int(cover.contains_minterm(code0, reset_o))

        if s0 in sr.union_states("ER", 1):
            region, required, why = "ER(+a)", False, "set plane drives 1 at power-up"
        elif s0 in sr.union_states("ER", -1):
            region, required, why = "ER(-a)", False, "reset plane drives 0 at power-up"
        elif s0 in sr.union_states("QR", 1):
            region = "QR(+a)"
            required = set_val == 0
            why = (
                "set(s0)=0: nothing restores q=1"
                if required
                else "set(s0)=1 restores q=1 automatically"
            )
        elif s0 in sr.union_states("QR", -1):
            region = "QR(-a)"
            required = reset_val == 0
            why = (
                "reset(s0)=0: nothing restores q=0"
                if required
                else "reset(s0)=1 restores q=0 automatically"
            )
        else:
            # signal never transitions from s0's side; hold its value
            region, required = "none", True
            why = "signal has no regions containing s0; hold by explicit init"
        out[a] = InitDecision(a, name, init_val, region, required, why)
    return out
