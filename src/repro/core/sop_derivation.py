"""Deriving set/reset SOP specifications from SG regions.

Implements the five-step procedure of Section IV-A.  For a non-input
signal ``a``:

* **Set function**: ON-set ``F = ∪ ER(+a_i)``, don't-care set
  ``D = ∪ QR(+a_i) ∪ unreachable codes``, OFF-set
  ``R = ∪ ER(-a_i) ∪ ∪ QR(-a_i)``.
* **Reset function**: the mirror image.

The correspondence with the MHS flip-flop's operation modes is the
paper's Table 1, reproduced by :func:`region_mode_table`.

All set and reset functions of all non-input signals are packed into a
single multi-output cover, so the minimizer may share product terms
between them ("including the sharing of product terms (AND-gates)
between different functions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import Cover
from ..obs import trace_span
from ..sg.encoding import states_to_cover, unreachable_cover
from ..sg.graph import StateGraph
from ..sg.regions import SignalRegions, signal_regions

__all__ = [
    "FunctionSpec",
    "SopSpec",
    "derive_sop_spec",
    "region_mode_table",
    "ModeRow",
]


@dataclass
class FunctionSpec:
    """(F, D, R) triple of one set or reset function (single-output)."""

    signal: int
    kind: str  # "set" or "reset"
    on: Cover
    dc: Cover
    off: Cover


@dataclass
class SopSpec:
    """The complete multi-output minimization problem of an SG.

    Output order: ``set(a0), reset(a0), set(a1), reset(a1), …`` over
    the non-input signals in index order.  ``regions`` keeps the
    per-signal region decomposition for later trigger-cube checks and
    initialization analysis.
    """

    sg: StateGraph
    on: Cover
    dc: Cover
    off: Cover
    functions: list[FunctionSpec] = field(default_factory=list)
    regions: dict[int, SignalRegions] = field(default_factory=dict)

    @property
    def num_outputs(self) -> int:
        return 2 * len(self.sg.non_inputs)

    def output_index(self, signal: int, kind: str) -> int:
        """Column of one function in the multi-output cover."""
        pos = self.sg.non_inputs.index(signal)
        return 2 * pos + (0 if kind == "set" else 1)

    def output_name(self, index: int) -> str:
        signal = self.sg.non_inputs[index // 2]
        kind = "set" if index % 2 == 0 else "reset"
        return f"{kind}_{self.sg.signals[signal]}"


def derive_sop_spec(
    sg: StateGraph, regions: dict[int, SignalRegions] | None = None
) -> SopSpec:
    """Build the multi-output (F, D, R) problem for a whole SG.

    Follows Section IV-A exactly; the unreachable binary codes join
    every function's don't-care set (step 3).  ``regions`` may supply
    precomputed per-signal region decompositions (the pipeline's
    ``regions`` stage artifact); missing signals are derived here.
    """
    non_inputs = sg.non_inputs
    m = 2 * len(non_inputs)
    n = sg.num_signals
    on = Cover.empty(n, m)
    dc = Cover.empty(n, m)
    off = Cover.empty(n, m)
    spec = SopSpec(sg, on, dc, off)

    with trace_span("sop-derivation", signals=len(non_inputs), outputs=m) as _sp:
        unreachable = unreachable_cover(sg)
        _derive_functions(sg, spec, unreachable, regions or {})
        _sp.set(on_cubes=len(on), dc_cubes=len(dc), off_cubes=len(off))
    return spec


def _derive_functions(
    sg: StateGraph,
    spec: SopSpec,
    unreachable: Cover,
    regions: dict[int, SignalRegions],
) -> None:
    non_inputs = sg.non_inputs
    n = sg.num_signals
    on, dc, off = spec.on, spec.dc, spec.off
    for signal in non_inputs:
        sr = regions.get(signal) or signal_regions(sg, signal)
        spec.regions[signal] = sr
        up_er = sr.union_states("ER", 1)
        up_qr = sr.union_states("QR", 1)
        dn_er = sr.union_states("ER", -1)
        dn_qr = sr.union_states("QR", -1)

        for kind, f_states, d_states, r_states in (
            ("set", up_er, up_qr, dn_er | dn_qr),
            ("reset", dn_er, dn_qr, up_er | up_qr),
        ):
            o = spec.output_index(signal, kind)
            bit = 1 << o
            f_cover = states_to_cover(sg, f_states, outputs=1)
            d_cover = states_to_cover(sg, d_states, outputs=1)
            r_cover = states_to_cover(sg, r_states, outputs=1)
            for c in f_cover.cubes:
                on.add(c.with_outputs(bit))
            for c in d_cover.cubes:
                dc.add(c.with_outputs(bit))
            for c in unreachable.cubes:
                dc.add(c.with_outputs(bit))
            for c in r_cover.cubes:
                off.add(c.with_outputs(bit))
            spec.functions.append(
                FunctionSpec(
                    signal,
                    kind,
                    Cover(n, 1, f_cover.cubes),
                    Cover(n, 1, d_cover.cubes + [c.with_outputs(1) for c in unreachable.cubes]),
                    Cover(n, 1, r_cover.cubes),
                )
            )


@dataclass(frozen=True)
class ModeRow:
    """One row of the paper's Table 1 for a concrete state."""

    state: object
    region: str  # "ER(+a)", "QR(+a)", "ER(-a)", "QR(-a)", "unreachable"
    set_value: str  # "0", "1" or "*"
    reset_value: str
    mode: str  # "+a", "a = 1", "-a", "a = 0", "memory"


def region_mode_table(sg: StateGraph, signal: int) -> list[ModeRow]:
    """Reproduce Table 1: region ↔ SET/RESET levels ↔ MHS mode.

    Enumerates every reachable state of the SG, classifies it into the
    signal's region structure and emits the specified SET/RESET values
    and the flip-flop operation mode.
    """
    name = sg.signals[signal]
    sr = signal_regions(sg, signal)
    up_er = sr.union_states("ER", 1)
    up_qr = sr.union_states("QR", 1)
    dn_er = sr.union_states("ER", -1)
    dn_qr = sr.union_states("QR", -1)
    rows: list[ModeRow] = []
    for s in sg.states():
        if s in up_er:
            rows.append(ModeRow(s, f"ER(+{name})", "1", "0", f"+{name}"))
        elif s in up_qr:
            rows.append(ModeRow(s, f"QR(+{name})", "*", "0", f"{name} = 1"))
        elif s in dn_er:
            rows.append(ModeRow(s, f"ER(-{name})", "0", "1", f"-{name}"))
        elif s in dn_qr:
            rows.append(ModeRow(s, f"QR(-{name})", "0", "*", f"{name} = 0"))
        else:
            rows.append(ModeRow(s, "unreachable", "*", "*", "memory"))
    return rows
