"""N-SHOT architecture assembly — Figure 3 at the netlist level.

For every non-input signal ``a`` the architecture instantiates:

* the **set plane**: one AND gate per cube of the set function (cubes
  shared between functions are instantiated once), an OR gate when the
  plane has several cubes;
* the **reset plane**, symmetric;
* the **acknowledgement scheme**: the set plane is gated by
  ``enable_set`` — the flip-flop's ``qn`` rail, through a local delay
  line when Equation (1) requires one — and the reset plane by ``q``;
* the **MHS flip-flop**, dual-rail (``a`` / ``a_n``), so non-input
  literals never need inverters; input-signal literals use the AND
  gates' input-inversion bubbles (footnote 2 of the paper).

Single-cube planes are folded into the acknowledgement AND gate (one
gate computes ``cube ∧ enable``), which is what makes the shortest
benchmarks come out at 2 levels like the paper's fastest entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import Cover, Cube
from ..netlist import Gate, GateType, Netlist, Pin
from ..netlist.trees import build_gate_tree
from ..sg.graph import StateGraph
from .delays import DelayRequirement, PlaneTiming
from .sop_derivation import SopSpec

__all__ = ["ArchitectureResult", "build_nshot_netlist"]


@dataclass
class ArchitectureResult:
    """Netlist plus per-signal plane structure information."""

    netlist: Netlist
    set_timing: dict[int, PlaneTiming] = field(default_factory=dict)
    reset_timing: dict[int, PlaneTiming] = field(default_factory=dict)
    plane_nets: dict[tuple[int, str], str] = field(default_factory=dict)
    sop_nets: list[str] = field(default_factory=list)


def _literal_pins(
    sg: StateGraph, cube: Cube, rails: dict[int, tuple[str, str]]
) -> list[Pin]:
    """Input pins of a product term.

    Input signals use the single-rail primary input with an inversion
    bubble for negative literals; non-input signals use the flip-flop's
    dual rails directly.
    """
    pins: list[Pin] = []
    for var in cube.fixed_vars():
        positive = cube.literal(var) == 0b10
        if sg.is_input(var):
            pins.append(Pin(sg.signals[var], inverted=not positive))
        else:
            q, qn = rails[var]
            pins.append(Pin(q if positive else qn, inverted=False))
    return pins


def build_nshot_netlist(
    spec: SopSpec,
    cover: Cover,
    delay_requirements: dict[int, DelayRequirement] | None = None,
    init_values: dict[int, int] | None = None,
    name: str = "nshot",
) -> ArchitectureResult:
    """Map a minimized multi-output cover into the N-SHOT structure.

    Parameters
    ----------
    spec:
        The SOP specification (provides SG, output indexing).
    cover:
        Minimized multi-output cover (set/reset columns per signal).
    delay_requirements:
        Per-signal evaluated Equation (1); a positive ``t_del`` inserts
        a delay line on the corresponding enable rail.
    init_values:
        Initial flip-flop values per signal (defaults to the SG initial
        state's code).
    """
    sg = spec.sg
    nl = Netlist(name)
    result = ArchitectureResult(nl)

    for i in sorted(sg.inputs):
        nl.add_input(sg.signals[i])

    # dual rails for every non-input signal
    rails: dict[int, tuple[str, str]] = {}
    for a in sg.non_inputs:
        rails[a] = (sg.signals[a], sg.signals[a] + "_n")
        nl.add_output(sg.signals[a])

    # shared product terms: one AND gate per cube used by >1 output or
    # by a multi-cube plane; single-cube/single-user planes fold into
    # the acknowledgement gate below
    cube_net: dict[int, str] = {}  # index in cover -> net

    def column(o: int) -> list[int]:
        bit = 1 << o
        return [i for i, c in enumerate(cover.cubes) if c.outputs & bit]

    usage: dict[int, int] = {}
    for o in range(spec.num_outputs):
        for i in column(o):
            usage[i] = usage.get(i, 0) + 1

    def cube_pins(i: int) -> list[Pin]:
        return _literal_pins(sg, cover.cubes[i], rails)

    cube_depth: dict[int, int] = {}

    def materialize_cube(i: int, label: str) -> str:
        if i in cube_net:
            return cube_net[i]
        pins = cube_pins(i)
        if len(pins) == 1 and not pins[0].inverted:
            cube_net[i] = pins[0].net  # a bare literal is just a wire
            cube_depth[i] = 0
            return cube_net[i]
        net = nl.fresh_net(f"p_{label}_")
        cube_depth[i] = build_gate_tree(nl, GateType.AND, pins, net, f"and_{label}")
        cube_net[i] = net
        return net

    for a in sg.non_inputs:
        sig_name = sg.signals[a]
        q, qn = rails[a]
        req = (delay_requirements or {}).get(a)
        init = (init_values or {}).get(a, sg.value(sg.initial, a))

        gated: dict[str, str] = {}
        for kind in ("set", "reset"):
            o = spec.output_index(a, kind)
            col = column(o)
            enable_rail = qn if kind == "set" else q
            # optional local delay compensation on the enable rail
            if req is not None and req.compensation_required:
                dnet = nl.fresh_net(f"en_{kind}_{sig_name}_")
                nl.add(
                    Gate(
                        f"del_{kind}_{sig_name}",
                        GateType.DELAY,
                        [Pin(enable_rail)],
                        dnet,
                        delay=req.t_del,
                    )
                )
                enable = dnet
            else:
                enable = enable_rail

            gate_out = nl.fresh_net(f"{kind}_{sig_name}_g")
            if not col:
                # function is constant 0: the plane never excites
                nl.add(
                    Gate(
                        f"const0_{kind}_{sig_name}",
                        GateType.CONST,
                        [],
                        gate_out,
                        attrs={"value": 0},
                    )
                )
                result.plane_nets[(a, kind)] = gate_out
                timing = PlaneTiming(0, 0)
            elif (
                len(col) == 1
                and usage[col[0]] == 1
                and len(cube_pins(col[0])) < 8
            ):
                # fold the single cube into the acknowledgement gate
                pins = cube_pins(col[0]) + [Pin(enable)]
                nl.add(Gate(f"ack_{kind}_{sig_name}", GateType.AND, pins, gate_out))
                result.plane_nets[(a, kind)] = gate_out
                timing = PlaneTiming(1, 1)
            else:
                cube_nets = [materialize_cube(i, kind[0] + sig_name) for i in col]
                depths = [cube_depth[i] for i in col]
                if len(cube_nets) == 1:
                    plane_out = cube_nets[0]
                    plane_levels = max(1, depths[0])
                else:
                    plane_out = nl.fresh_net(f"{kind}_{sig_name}_or")
                    or_depth = build_gate_tree(
                        nl,
                        GateType.OR,
                        [Pin(nta) for nta in cube_nets],
                        plane_out,
                        f"or_{kind}_{sig_name}",
                    )
                    plane_levels = max(depths) + or_depth
                result.sop_nets.extend(cube_nets)
                result.sop_nets.append(plane_out)
                nl.add(
                    Gate(
                        f"ack_{kind}_{sig_name}",
                        GateType.AND,
                        [Pin(plane_out), Pin(enable)],
                        gate_out,
                    )
                )
                result.plane_nets[(a, kind)] = plane_out
                timing = PlaneTiming(plane_levels, 1)
            gated[kind] = gate_out
            if kind == "set":
                result.set_timing[a] = timing
            else:
                result.reset_timing[a] = timing

        nl.add(
            Gate(
                f"mhs_{sig_name}",
                GateType.MHSFF,
                [Pin(gated["set"]), Pin(gated["reset"])],
                q,
                output_n=qn,
                attrs={"init": init},
            )
        )
    return result
