"""Delay requirement — Equation (1) of Section IV-C.

The acknowledgement scheme must guarantee that pulse streams from one
SOP plane cannot "trespass" into the opposite operation phase: after
``-a`` fires, the enable-set signal may only open once the set plane
has fully settled to 0 (and symmetrically).  The required local delay
compensation is::

    t_del ≥ max( t_set0_w − t_res1_f − t_mhs− ,
                 t_res0_w − t_set1_f − t_mhs+ )

where ``t_set0_w`` is the worst-case settling propagation of the set
plane, ``t_res1_f`` the fastest excitation propagation of the reset
plane, and ``t_mhs±`` the flip-flop response.  The delay line (placed
in parallel with the planes, off the critical path) is only needed
when the max is positive; the paper reports it was *never* required on
any benchmark — a claim the reproduction bench re-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.library import DEFAULT_LIBRARY, Library
from ..obs import get_metrics

__all__ = ["PlaneTiming", "DelayRequirement", "compute_delay_requirement"]


@dataclass(frozen=True)
class PlaneTiming:
    """Timing levels of one SOP plane (set or reset).

    ``worst_levels`` / ``best_levels`` — number of gate levels on the
    slowest and fastest input-to-plane-output paths.  A two-level SOP
    has worst 2 (AND→OR); a single-cube plane 1; a plane degenerated to
    a wire 0.
    """

    worst_levels: int
    best_levels: int

    def worst(self, library: Library = DEFAULT_LIBRARY, spread: float = 0.0) -> float:
        """Slowest settle time under a ±``spread`` relative delay bound."""
        return self.worst_levels * library.level_delay * (1.0 + spread)

    def best(self, library: Library = DEFAULT_LIBRARY, spread: float = 0.0) -> float:
        """Fastest excitation time under the same bound."""
        return self.best_levels * library.level_delay * (1.0 - spread)


@dataclass(frozen=True)
class DelayRequirement:
    """Evaluated Equation (1) for one non-input signal."""

    signal_name: str
    t_set0_w: float
    t_res1_f: float
    t_res0_w: float
    t_set1_f: float
    t_mhs_minus: float
    t_mhs_plus: float

    @property
    def bound(self) -> float:
        """The right-hand side of Equation (1)."""
        return max(
            self.t_set0_w - self.t_res1_f - self.t_mhs_minus,
            self.t_res0_w - self.t_set1_f - self.t_mhs_plus,
        )

    @property
    def t_del(self) -> float:
        """Required delay-line value (0 when no compensation needed)."""
        return max(0.0, self.bound)

    @property
    def compensation_required(self) -> bool:
        return self.bound > 1e-9

    def describe(self) -> str:
        state = (
            f"t_del = {self.t_del:.2f} ns"
            if self.compensation_required
            else "no compensation required"
        )
        return (
            f"{self.signal_name}: max({self.t_set0_w:.2f} − {self.t_res1_f:.2f} − "
            f"{self.t_mhs_minus:.2f}, {self.t_res0_w:.2f} − {self.t_set1_f:.2f} − "
            f"{self.t_mhs_plus:.2f}) = {self.bound:.2f} → {state}"
        )


def compute_delay_requirement(
    signal_name: str,
    set_plane: PlaneTiming,
    reset_plane: PlaneTiming,
    library: Library = DEFAULT_LIBRARY,
    mhs_tau: float = 1.2,
    spread: float = 0.0,
) -> DelayRequirement:
    """Evaluate Equation (1) from plane structure and library timing.

    ``spread`` is the assumed relative gate-delay uncertainty (±40% →
    0.4): worst-case settle paths scale by ``1+spread``, best-case
    excitation paths by ``1-spread``.  The paper's "delay compensation
    was never required" observation holds at the nominal bound
    (``spread = 0``, all gates one level); under loose bounds Equation
    (1) can go positive for circuits with asymmetric plane depths, and
    the architecture then inserts the parallel delay line.
    """
    req = DelayRequirement(
        signal_name=signal_name,
        t_set0_w=set_plane.worst(library, spread),
        t_res1_f=reset_plane.best(library, spread),
        t_res0_w=reset_plane.worst(library, spread),
        t_set1_f=set_plane.best(library, spread),
        t_mhs_minus=mhs_tau,
        t_mhs_plus=mhs_tau,
    )
    metrics = get_metrics()
    metrics.counter("delays.evaluated").add(1)
    if req.compensation_required:
        metrics.counter("delays.compensated").add(1)
    return req
