"""Trigger requirement — Theorem 1 and its enforcement.

Requirement 1 demands that for every transition ``*a`` a pulse exists
that reliably fires the MHS flip-flop.  Theorem 1 reduces this to a
purely combinational condition: **every trigger region must be covered
by a single cube** of the corresponding SOP (a *trigger cube*).
Because a trigger region traps the system until ``*a`` fires, its
trigger cube stays asserted long enough to commit the master latch no
matter how fast the region's states are traversed.

For *single-traversal* SGs (Definition 9 — every trigger region is one
state) the requirement holds for free: a singleton region is an ON-set
minterm, and any cover contains a cube over it (Corollary 1).  For
non-single-traversal SGs, :func:`enforce_trigger_cubes` repairs a
minimized cover by inserting the supercube of each uncovered trigger
region, expanded to a prime against the OFF-set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import Cover, Cube, supercube_of
from ..logic.espresso import expand as espresso_expand
from ..sg.graph import StateGraph
from ..sg.regions import Region, trigger_regions
from .sop_derivation import SopSpec

__all__ = [
    "TriggerCheck",
    "check_trigger_cubes",
    "enforce_trigger_cubes",
    "trigger_infeasibilities",
    "TriggerRequirementError",
]


class TriggerRequirementError(ValueError):
    """The SG cannot satisfy the trigger requirement with this cover.

    Raised when a trigger region's supercube intersects the function's
    OFF-set — no single cube can cover the region, so by Theorem 1 no
    hazard-free N-SHOT implementation exists without transforming the
    SG (e.g. inserting state signals).
    """


@dataclass
class TriggerCheck:
    """Outcome of a trigger-cube audit for one function."""

    signal: int
    kind: str  # "set" / "reset"
    regions_checked: int = 0
    uncovered: list[Region] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.uncovered


def _region_supercube(sg: StateGraph, region: Region) -> Cube:
    sc = supercube_of(
        Cube.from_minterm(sg.code(s), sg.num_signals) for s in region.states
    )
    assert sc is not None
    return sc


def _cube_covers_region(sg: StateGraph, cube: Cube, region: Region) -> bool:
    return all(cube.contains_minterm(sg.code(s)) for s in region.states)


def check_trigger_cubes(
    spec: SopSpec, cover: Cover
) -> list[TriggerCheck]:
    """Audit Theorem 1 on a minimized multi-output cover.

    For every non-input signal and every trigger region of each of its
    excitation regions, verify some cube of the corresponding output
    column covers the whole region.
    """
    sg = spec.sg
    out: list[TriggerCheck] = []
    for signal in sg.non_inputs:
        sr = spec.regions[signal]
        for kind in ("set", "reset"):
            o = spec.output_index(signal, kind)
            bit = 1 << o
            col = [c for c in cover.cubes if c.outputs & bit]
            chk = TriggerCheck(signal, kind)
            direction = 1 if kind == "set" else -1
            for er in sr.excitation:
                if er.direction != direction:
                    continue
                for tr in trigger_regions(sg, er):
                    chk.regions_checked += 1
                    if not any(_cube_covers_region(sg, c, tr) for c in col):
                        chk.uncovered.append(tr)
            out.append(chk)
    return out


def trigger_infeasibilities(spec: SopSpec) -> list[tuple[int, str, Region]]:
    """Trigger regions that can never satisfy Theorem 1, cover-independent.

    Returns ``(signal, kind, region)`` triples whose state-set
    supercube intersects the corresponding OFF-set: by Theorem 1 no
    single cube can cover such a region, so no hazard-free N-SHOT
    implementation exists without transforming the SG.  This predicate
    is shared by :func:`enforce_trigger_cubes` (which raises on it) and
    the static-analysis rule ``TR001`` (which reports it).
    """
    sg = spec.sg
    out: list[tuple[int, str, Region]] = []
    for signal in sg.non_inputs:
        for er in spec.regions[signal].excitation:
            kind = "set" if er.rising else "reset"
            o = spec.output_index(signal, kind)
            bit = 1 << o
            off_col = spec.off.restrict_outputs(bit)
            for tr in trigger_regions(sg, er):
                sc = _region_supercube(sg, tr).with_outputs(bit)
                if off_col.intersects_cube(sc):
                    out.append((signal, kind, tr))
    return out


def enforce_trigger_cubes(spec: SopSpec, cover: Cover) -> tuple[Cover, int]:
    """Repair a cover so every trigger region has a trigger cube.

    Returns the repaired cover and the number of cubes added.  Each
    uncovered trigger region contributes its state-set supercube
    (checked against the OFF-set, then expanded to a prime).  Raises
    :class:`TriggerRequirementError` when a supercube overlaps the
    OFF-set — the Theorem 1 "no implementation" case.
    """
    sg = spec.sg
    added = 0
    work = cover.copy()
    for chk in check_trigger_cubes(spec, work):
        for tr in chk.uncovered:
            o = spec.output_index(chk.signal, chk.kind)
            bit = 1 << o
            sc = _region_supercube(sg, tr).with_outputs(bit)
            off_col = spec.off.restrict_outputs(bit)
            if off_col.intersects_cube(sc):
                raise TriggerRequirementError(
                    f"trigger region of {chk.kind}({sg.signals[chk.signal]}) "
                    f"spans OFF-set points; no trigger cube exists "
                    f"(states {sorted(map(str, tr.states))[:4]}…)"
                )
            # expand the supercube into a prime against the OFF-set so
            # the repair costs as few literals as possible
            prime = espresso_expand(
                Cover(sg.num_signals, cover.num_outputs, [sc]), spec.off
            ).cubes[0]
            work.add(prime)
            added += 1
    if added:
        work = work.single_cube_containment()
    return work, added
