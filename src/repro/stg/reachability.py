"""Token-flow reachability: elaborate an STG into its state graph.

Each reachable (marking, signal-vector) pair becomes one SG state; the
SG arcs are the enabled net transitions.  Two markings with equal
signal vectors stay distinct SG states — exactly the situation the CSC
property (Definition 1) talks about.

Initial signal values are taken from explicit declarations when given,
otherwise inferred from the net: a signal whose first transition along
every firing path is ``x+`` starts at 0, one whose first is ``x-``
starts at 1.  Contradictory evidence (some path sees ``x+`` first,
another ``x-``) is reported as an inconsistency.
"""

from __future__ import annotations

from ..obs import get_metrics, trace_span
from ..sg.graph import StateGraph, Transition
from .petrinet import Stg, StgError

__all__ = ["infer_initial_values", "elaborate", "ElaborationError"]


class ElaborationError(StgError):
    """Raised when the STG has no consistent state-graph semantics."""


def infer_initial_values(stg: Stg, max_markings: int = 200000) -> dict[str, int]:
    """Infer each signal's initial value from first-transition polarity.

    Explores markings (ignoring signal values) recording, per signal,
    which polarity can occur first.  Mixed first polarities mean the
    STG has no consistent coding from any initial vector.
    """
    values = dict(stg.initial_values)
    # first polarity seen per signal along each path
    first: dict[str, set[int]] = {s: set() for s in stg.signals}
    m0 = frozenset(stg.initial_marking)
    # state: (marking, frozenset of signals already transitioned)
    seen: set[tuple[frozenset[str], frozenset[str]]] = set()
    stack: list[tuple[frozenset[str], frozenset[str]]] = [(m0, frozenset())]
    seen.add((m0, frozenset()))
    while stack:
        marking, done = stack.pop()
        if len(seen) > max_markings:
            raise ElaborationError("initial-value inference exceeded marking budget")
        for t in stg.enabled(marking):
            if t.signal not in done:
                first[t.signal].add(t.direction)
            nxt = (stg.fire(marking, t), done | {t.signal})
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    for s in stg.signals:
        if s in values:
            continue
        pol = first[s]
        if not pol:
            values[s] = 0  # signal never transitions: constant 0
        elif pol == {1}:
            values[s] = 0
        elif pol == {-1}:
            values[s] = 1
        else:
            raise ElaborationError(
                f"signal {s!r} has mixed first-transition polarity; "
                "declare its initial value explicitly"
            )
    return values


def elaborate(stg: Stg, max_states: int = 200000) -> StateGraph:
    """Build the state graph of an STG by token flow.

    Raises :class:`ElaborationError` on unsafe nets, inconsistent
    codings (``x+`` enabled while ``x = 1``) or state explosion beyond
    ``max_states``.
    """
    with trace_span("reachability", stg=getattr(stg, "name", "?")) as sp:
        sg = _elaborate_traced(stg, max_states, sp)
    return sg


def _elaborate_traced(stg: Stg, max_states: int, sp) -> StateGraph:
    with trace_span("initial-values"):
        values = infer_initial_values(stg)
    signals = stg.signals
    sig_index = {s: i for i, s in enumerate(signals)}
    sg = StateGraph(signals, stg.input_signals)

    def vector_code(vec: dict[str, int]) -> int:
        code = 0
        for s, v in vec.items():
            code |= v << sig_index[s]
        return code

    m0 = frozenset(stg.initial_marking)
    init_code = vector_code(values)
    start = (m0, init_code)
    sg.add_state(start, init_code)
    sg.set_initial(start)
    stack = [start]
    visited = {start}
    arcs = 0
    while stack:
        marking, code = state = stack.pop()
        for t in stg.enabled(marking):
            idx = sig_index[t.signal]
            cur = (code >> idx) & 1
            if t.rising and cur == 1:
                raise ElaborationError(
                    f"inconsistent STG: {t} enabled while {t.signal}=1"
                )
            if not t.rising and cur == 0:
                raise ElaborationError(
                    f"inconsistent STG: {t} enabled while {t.signal}=0"
                )
            new_code = code ^ (1 << idx)
            nxt = (stg.fire(marking, t), new_code)
            if nxt not in visited:
                if len(visited) >= max_states:
                    raise ElaborationError("state graph exceeded max_states")
                visited.add(nxt)
                sg.add_state(nxt, new_code)
                stack.append(nxt)
            else:
                sg.add_state(nxt, new_code)
            sg.add_arc(state, Transition(idx, t.direction), nxt)
            arcs += 1
    sp.set(states=len(visited), arcs=arcs)
    get_metrics().gauge("reachability.states").set(len(visited))
    get_metrics().counter("reachability.arcs").add(arcs)
    return sg
