"""Signal Transition Graphs as labelled Petri nets.

An STG [Chu 87] is a Petri net whose transitions are labelled with
signal transitions ``x+`` / ``x-``.  It is the "widely used" high-level
formalism the paper's framework accepts (Section I): the semantics is
the state graph obtained by token-flow reachability
(:mod:`repro.stg.reachability`).

We support the structure found in the classic asynchronous benchmark
suite: safe (1-bounded) nets, free choice between input transitions,
multiple instances of the same signal transition (``a+/1``, ``a+/2``),
and implicit places (an arc drawn directly between two transitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["StgTransition", "Stg", "StgError"]


class StgError(ValueError):
    """Raised on malformed STGs (unsafe markings, bad labels, …)."""


@dataclass(frozen=True, slots=True, order=True)
class StgTransition:
    """A labelled Petri-net transition such as ``a+`` or ``b-/2``.

    ``instance`` distinguishes multiple occurrences of the same signal
    transition in the net (the ``/k`` suffix of the astg format).
    """

    signal: str
    direction: int  # +1 or -1
    instance: int = 0

    @property
    def rising(self) -> bool:
        return self.direction == 1

    @staticmethod
    def parse(text: str) -> "StgTransition":
        """Parse ``a+``, ``b-``, ``c+/2`` style labels."""
        body, _, inst = text.partition("/")
        instance = int(inst) if inst else 0
        body = body.strip()
        if body.endswith("+"):
            return StgTransition(body[:-1], 1, instance)
        if body.endswith("-"):
            return StgTransition(body[:-1], -1, instance)
        raise StgError(f"bad transition label {text!r} (need trailing + or -)")

    def __str__(self) -> str:
        base = f"{self.signal}{'+' if self.rising else '-'}"
        return f"{base}/{self.instance}" if self.instance else base


class Stg:
    """A safe Petri net with signal-transition labels.

    Places are referred to by name; the implicit place between
    transitions ``t`` and ``u`` is auto-named ``<t,u>``.  The marking
    is a frozenset of marked place names (safety is enforced during
    token flow).
    """

    def __init__(
        self,
        inputs: Sequence[str],
        outputs: Sequence[str],
        internal: Sequence[str] = (),
        name: str = "stg",
    ) -> None:
        dup = set(inputs) & set(outputs) | set(inputs) & set(internal) | set(outputs) & set(internal)
        if dup:
            raise StgError(f"signals declared in several classes: {sorted(dup)}")
        self.name = name
        self.input_signals: list[str] = list(inputs)
        self.output_signals: list[str] = list(outputs)
        self.internal_signals: list[str] = list(internal)
        self.transitions: list[StgTransition] = []
        self._tset: set[StgTransition] = set()
        self.pre: dict[StgTransition, set[str]] = {}
        self.post: dict[StgTransition, set[str]] = {}
        self.place_pre: dict[str, set[StgTransition]] = {}
        self.place_post: dict[str, set[StgTransition]] = {}
        self.initial_marking: set[str] = set()
        self.initial_values: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def signals(self) -> list[str]:
        """All signals, inputs first (the SG signal order)."""
        return self.input_signals + self.output_signals + self.internal_signals

    @property
    def non_input_signals(self) -> list[str]:
        return self.output_signals + self.internal_signals

    def is_input(self, signal: str) -> bool:
        return signal in self.input_signals

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_transition(self, t: StgTransition | str) -> StgTransition:
        """Register a transition (idempotent); returns the instance."""
        if isinstance(t, str):
            t = StgTransition.parse(t)
        if t.signal not in self.signals:
            raise StgError(f"transition {t} names undeclared signal {t.signal!r}")
        if t not in self._tset:
            self._tset.add(t)
            self.transitions.append(t)
            self.pre[t] = set()
            self.post[t] = set()
        return t

    def add_place(self, name: str) -> str:
        """Register an explicit place (idempotent)."""
        self.place_pre.setdefault(name, set())
        self.place_post.setdefault(name, set())
        return name

    def connect(self, src: StgTransition | str, dst: StgTransition | str) -> str:
        """Arc between two transitions through an implicit place.

        Returns the implicit place's name.
        """
        s = self.add_transition(src)
        d = self.add_transition(dst)
        place = f"<{s},{d}>"
        self.add_place(place)
        self.post[s].add(place)
        self.place_pre[place].add(s)
        self.pre[d].add(place)
        self.place_post[place].add(d)
        return place

    def arc_tp(self, t: StgTransition | str, place: str) -> None:
        """Arc transition → explicit place."""
        tt = self.add_transition(t)
        self.add_place(place)
        self.post[tt].add(place)
        self.place_pre[place].add(tt)

    def arc_pt(self, place: str, t: StgTransition | str) -> None:
        """Arc explicit place → transition."""
        tt = self.add_transition(t)
        self.add_place(place)
        self.pre[tt].add(place)
        self.place_post[place].add(tt)

    def mark(self, *places: str) -> None:
        """Add tokens to the initial marking."""
        for p in places:
            if p not in self.place_pre:
                raise StgError(f"marking names unknown place {p!r}")
            self.initial_marking.add(p)

    def mark_between(self, src: StgTransition | str, dst: StgTransition | str) -> None:
        """Mark the implicit place between two transitions (``<t,u>``)."""
        s = StgTransition.parse(src) if isinstance(src, str) else src
        d = StgTransition.parse(dst) if isinstance(dst, str) else dst
        place = f"<{s},{d}>"
        self.mark(place)

    def set_initial_value(self, signal: str, value: int) -> None:
        """Pin a signal's initial value (otherwise inferred)."""
        if signal not in self.signals:
            raise StgError(f"unknown signal {signal!r}")
        self.initial_values[signal] = value

    # ------------------------------------------------------------------
    # token flow
    # ------------------------------------------------------------------
    def enabled(self, marking: frozenset[str]) -> list[StgTransition]:
        """Transitions whose presets are fully marked."""
        return [t for t in self.transitions if self.pre[t] <= marking]

    def fire(self, marking: frozenset[str], t: StgTransition) -> frozenset[str]:
        """Fire one transition; enforces 1-safety."""
        if not self.pre[t] <= marking:
            raise StgError(f"{t} not enabled")
        after = set(marking) - self.pre[t]
        gain = self.post[t]
        if gain & after:
            raise StgError(f"net not safe: firing {t} double-marks {sorted(gain & after)}")
        return frozenset(after | gain)

    def places(self) -> Iterator[str]:
        return iter(self.place_pre)

    def describe(self) -> str:
        """Human-readable dump (for examples and debugging)."""
        lines = [
            f"STG {self.name}: {len(self.transitions)} transitions, "
            f"{len(self.place_pre)} places",
            f"  inputs:  {', '.join(self.input_signals)}",
            f"  outputs: {', '.join(self.output_signals)}",
        ]
        if self.internal_signals:
            lines.append(f"  internal: {', '.join(self.internal_signals)}")
        for t in self.transitions:
            posts = sorted(
                str(u) for p in self.post[t] for u in self.place_post[p]
            )
            lines.append(f"  {t} -> {', '.join(posts)}")
        lines.append(f"  marking: {sorted(self.initial_marking)}")
        return "\n".join(lines)
