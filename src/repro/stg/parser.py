"""Parser/writer for the astg ``.g`` text format.

This is the interchange format of SIS-era asynchronous tools (petrify,
assassin, syn): a ``.graph`` section lists arcs between transitions
(implicit places) or between transitions and explicit places, and
``.marking`` gives the initial tokens.  Example::

    .model chu133-like
    .inputs a b
    .outputs c
    .graph
    a+ c+
    b+ c+
    c+ a- b-
    a- c-
    b- c-
    c- a+ b+
    .marking { <c-,a+> <c-,b+> }
    .end

Supported directives: ``.model``, ``.name``, ``.inputs``, ``.outputs``,
``.internal``, ``.dummy`` (rejected — dummies have no SG semantics
here), ``.graph``, ``.marking``, ``.initial`` (non-standard: explicit
initial signal values), ``.end``.
"""

from __future__ import annotations

import re

from .petrinet import Stg, StgError, StgTransition

__all__ = ["parse_g", "write_g"]

_TRANSITION_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\[\]]*[+-](/\d+)?$")


def _is_transition(token: str) -> bool:
    return bool(_TRANSITION_RE.match(token))


def parse_g(text: str) -> Stg:
    """Parse ``.g`` text into an :class:`~repro.stg.petrinet.Stg`."""
    inputs: list[str] = []
    outputs: list[str] = []
    internal: list[str] = []
    name = "stg"
    graph_lines: list[str] = []
    marking_tokens: list[str] = []
    initial_values: dict[str, int] = {}
    in_graph = False

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key in (".model", ".name"):
                name = parts[1] if len(parts) > 1 else name
                in_graph = False
            elif key == ".inputs":
                inputs.extend(parts[1:])
                in_graph = False
            elif key == ".outputs":
                outputs.extend(parts[1:])
                in_graph = False
            elif key == ".internal":
                internal.extend(parts[1:])
                in_graph = False
            elif key == ".dummy":
                raise StgError(".dummy transitions are not supported")
            elif key == ".graph":
                in_graph = True
            elif key == ".marking":
                in_graph = False
                body = line[len(".marking"):].strip()
                body = body.strip("{} \t")
                marking_tokens.extend(_split_marking(body))
            elif key == ".initial":
                # non-standard: ".initial a=1 b=0"
                for assign in parts[1:]:
                    sig, _, val = assign.partition("=")
                    initial_values[sig] = int(val)
                in_graph = False
            elif key in (".end",):
                in_graph = False
            else:
                raise StgError(f"unknown directive {key!r}")
            continue
        if in_graph:
            graph_lines.append(line)

    stg = Stg(inputs, outputs, internal, name=name)
    explicit_places: set[str] = set()
    # first pass: discover explicit place names (tokens that are not
    # transition-shaped)
    for line in graph_lines:
        for tok in line.split():
            if not _is_transition(tok):
                explicit_places.add(tok)
    for p in explicit_places:
        stg.add_place(p)

    for line in graph_lines:
        tokens = line.split()
        src, dsts = tokens[0], tokens[1:]
        if _is_transition(src):
            t = stg.add_transition(StgTransition.parse(src))
            for d in dsts:
                if _is_transition(d):
                    stg.connect(t, StgTransition.parse(d))
                else:
                    stg.arc_tp(t, d)
        else:
            for d in dsts:
                if not _is_transition(d):
                    raise StgError(f"place-to-place arc {src!r} -> {d!r}")
                stg.arc_pt(src, StgTransition.parse(d))

    for tok in marking_tokens:
        if tok.startswith("<"):
            inner = tok.strip("<>")
            a, b = inner.split(",")
            stg.mark_between(a.strip(), b.strip())
        else:
            stg.mark(tok)
    for sig, val in initial_values.items():
        stg.set_initial_value(sig, val)
    return stg


def _split_marking(body: str) -> list[str]:
    """Split a marking body into tokens, keeping ``<a+,b+>`` together."""
    tokens = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "<":
            j = body.index(">", i)
            tokens.append(body[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < len(body) and not body[j].isspace():
                j += 1
            tokens.append(body[i:j])
            i = j
    return tokens


def write_g(stg: Stg) -> str:
    """Serialize an STG back to ``.g`` text."""
    lines = [f".model {stg.name}"]
    if stg.input_signals:
        lines.append(".inputs " + " ".join(stg.input_signals))
    if stg.output_signals:
        lines.append(".outputs " + " ".join(stg.output_signals))
    if stg.internal_signals:
        lines.append(".internal " + " ".join(stg.internal_signals))
    lines.append(".graph")
    for t in stg.transitions:
        direct: list[str] = []
        for p in sorted(stg.post[t]):
            if p.startswith("<"):
                direct.extend(str(u) for u in sorted(stg.place_post[p], key=str))
            else:
                direct.append(p)
        if direct:
            lines.append(f"{t} " + " ".join(direct))
    # explicit place arcs
    for p in sorted(stg.place_pre):
        if p.startswith("<"):
            continue
        posts = sorted(stg.place_post[p], key=str)
        if posts:
            lines.append(f"{p} " + " ".join(str(u) for u in posts))
    marking = []
    for p in sorted(stg.initial_marking):
        marking.append(p)
    lines.append(".marking { " + " ".join(marking) + " }")
    if stg.initial_values:
        lines.append(
            ".initial " + " ".join(f"{s}={v}" for s, v in sorted(stg.initial_values.items()))
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"
