"""Structural and behavioural STG checks.

Pre-synthesis sanity the SIS-era tools performed on specifications
before attempting logic derivation:

* :func:`is_live` — every transition can always fire again (the
  elaborated SG is one strongly connected component and every
  transition labels some arc); dead or dying specifications make the
  cyclic region structure of Section IV meaningless;
* :func:`is_safe` — token flow never double-marks a place (checked
  during elaboration; this wrapper reports instead of raising);
* :func:`free_choice_conflicts` — places feeding several transitions
  must be *free choice* (the transitions share all their input
  places) and, per the paper's input-choice restriction, only input
  transitions may be in conflict;
* :func:`classify` — one structured report for an STG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sg.graph import StateGraph
from .petrinet import Stg, StgTransition
from .reachability import ElaborationError, elaborate

__all__ = ["StgReport", "is_live", "is_safe", "free_choice_conflicts", "classify"]


def _strongly_connected(sg: StateGraph) -> bool:
    states = list(sg.states())
    if not states:
        return False
    # forward reachability
    fwd = sg.reachable()
    if len(fwd) != len(states):
        return False
    # backward reachability from the initial state
    preds: dict = {s: [p for p, _ in sg.predecessors(s)] for s in states}
    seen = {sg.initial}
    stack = [sg.initial]
    while stack:
        s = stack.pop()
        for p in preds[s]:
            if p not in seen:
                seen.add(p)
                stack.append(p)
    return len(seen) == len(states)


def is_live(stg: Stg, sg: StateGraph | None = None) -> bool:
    """Every transition stays fireable forever (cyclic behaviour).

    Checked on the elaborated SG: it must be one strongly connected
    component and every net transition must label at least one arc.
    """
    if sg is None:
        sg = elaborate(stg)
    if not _strongly_connected(sg):
        return False
    fired: set[tuple[str, int]] = set()
    for s in sg.states():
        for t, _ in sg.successors(s):
            fired.add((sg.signals[t.signal], t.direction))
    for t in stg.transitions:
        if (t.signal, t.direction) not in fired:
            return False
    return True


def is_safe(stg: Stg) -> bool:
    """1-safety of the net under token flow from the initial marking."""
    try:
        elaborate(stg)
        return True
    except ElaborationError:
        return False
    except Exception:
        return False


def free_choice_conflicts(stg: Stg) -> list[str]:
    """Violations of the free-choice / input-choice discipline.

    Returns human-readable problems: conflict places whose competing
    transitions have differing presets (not free choice), or conflicts
    involving non-input transitions (the SG would not be semi-modular
    with *input* choices).
    """
    problems: list[str] = []
    for place in stg.places():
        consumers: list[StgTransition] = sorted(stg.place_post[place], key=str)
        if len(consumers) <= 1:
            continue
        presets = [frozenset(map(str, stg.pre[t])) for t in consumers]
        if len(set(presets)) != 1:
            problems.append(
                f"place {place!r}: conflict between {', '.join(map(str, consumers))} "
                "is not free choice (differing presets)"
            )
        non_inputs = [t for t in consumers if not stg.is_input(t.signal)]
        if non_inputs:
            problems.append(
                f"place {place!r}: non-input transition(s) "
                f"{', '.join(map(str, non_inputs))} in conflict — the SG "
                "cannot be semi-modular with input choices"
            )
    return problems


@dataclass
class StgReport:
    """Aggregate pre-synthesis report for an STG."""

    safe: bool
    live: bool
    choice_problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.safe and self.live and not self.choice_problems

    def summary(self) -> str:
        if self.ok:
            return "STG well-formed: safe, live, free input choices only"
        bits = []
        if not self.safe:
            bits.append("unsafe/inconsistent token flow")
        if not self.live:
            bits.append("not live")
        bits.extend(self.choice_problems)
        return "STG problems: " + "; ".join(bits)


def classify(stg: Stg) -> StgReport:
    """Run all structural checks on one STG."""
    safe = is_safe(stg)
    live = is_live(stg) if safe else False
    return StgReport(
        safe=safe,
        live=live,
        choice_problems=free_choice_conflicts(stg),
    )
