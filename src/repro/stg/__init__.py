"""Signal Transition Graph front-end.

STGs (labelled safe Petri nets) are the high-level formalism the
benchmark circuits are specified in; token-flow reachability produces
the state graphs the N-SHOT synthesizer consumes.
"""

from .petrinet import Stg, StgTransition, StgError
from .parser import parse_g, write_g
from .reachability import elaborate, infer_initial_values, ElaborationError
from .analysis import StgReport, is_live, is_safe, free_choice_conflicts, classify

__all__ = [
    "Stg",
    "StgTransition",
    "StgError",
    "parse_g",
    "write_g",
    "elaborate",
    "infer_initial_values",
    "ElaborationError",
    "StgReport",
    "is_live",
    "is_safe",
    "free_choice_conflicts",
    "classify",
]
