"""Content-addressed execution of the stage DAG.

A :class:`PipelineRun` is one specification's session with the
pipeline: it canonicalizes the spec text into a root digest
(:func:`repro.sg.sgformat.spec_digest`), derives one sha256 cache key
per stage by hashing ::

    {schema, stage, STAGE_VERSIONS[stage], root digest,
     env fingerprint digest, stage params, upstream stage keys}

and pulls artifacts demand-driven: memoized in-process, then the
:class:`~repro.pipeline.store.ArtifactStore` (when one is attached),
then a real computation whose result is written back.  Because every
key chains the keys of its dependencies, editing the spec, bumping a
stage version or moving to a different machine invalidates exactly the
downstream cone and nothing upstream.

Every stage resolution emits one ``pipeline.stage`` span (attrs:
``stage``, ``circuit``, ``outcome`` = ``hit``/``miss``) through
``obs/trace.py``; the store emits ``cache.hit``/``cache.miss``/
``cache.evict``/``cache.quarantine`` counters through ``obs/metrics.py``.

:func:`cache_bypass` suspends store traffic on the current thread —
the differential fuzzer wraps crash-contained flows in it so an
outcome produced moments before a crash (or under a watchdog) is never
recorded as cached truth.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from ..netlist import DEFAULT_LIBRARY, Library
from ..obs import trace_span
from ..obs.registry import fingerprint_digest
from ..sg.graph import StateGraph
from ..sg.sgformat import canonicalize_spec, write_sg
from .stages import STAGES, STAGE_VERSIONS
from .store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.certify import Certificate
    from ..core.synthesizer import NShotCircuit
    from ..core.verify import VerificationSummary

__all__ = [
    "KEY_SCHEMA",
    "PipelineRun",
    "cache_bypass",
    "cache_bypassed",
    "resolve_store",
]

KEY_SCHEMA = "repro-pipeline/1"

_BYPASS = threading.local()

#: the machine's fingerprint digest, computed once per process.
#: ``fingerprint_digest`` keys on machine identity only, so the git
#: sha (a subprocess) and argv of the full ``environment_fingerprint``
#: are skipped — they are deliberately excluded from the digest anyway
_ENV_DIGEST: str | None = None


def default_env_digest() -> str:
    global _ENV_DIGEST
    if _ENV_DIGEST is None:
        import platform

        _ENV_DIGEST = fingerprint_digest(
            {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "platform": platform.platform(),
                "machine": platform.machine(),
                "cpu_count": os.cpu_count() or 1,
            }
        )
    return _ENV_DIGEST


@contextmanager
def cache_bypass() -> Iterator[None]:
    """Suspend artifact-store reads *and* writes on this thread.

    Used by crash-contained flows (differential fuzzing, fault
    campaigns): computations that may be killed mid-flight must never
    publish partial conclusions into a shared cache.
    """
    prev = getattr(_BYPASS, "on", False)
    _BYPASS.on = True
    try:
        yield
    finally:
        _BYPASS.on = prev


def cache_bypassed() -> bool:
    return getattr(_BYPASS, "on", False)


def resolve_store(
    cache_dir: str | None = None, no_cache: bool = False
) -> ArtifactStore | None:
    """CLI policy: ``--no-cache`` wins, then ``--cache-dir``, then the
    ``REPRO_CACHE_DIR`` environment variable, else no cache."""
    if no_cache:
        return None
    root = cache_dir or os.environ.get("REPRO_CACHE_DIR")
    return ArtifactStore(root) if root else None


class PipelineRun:
    """One spec's demand-driven walk of the stage DAG.

    Construct with :meth:`from_file`, :meth:`from_text` or
    :meth:`from_sg`; pull artifacts with :meth:`artifact` or the named
    conveniences (:meth:`sg`, :meth:`synthesize`, :meth:`verify`, …).
    Artifacts are memoized per run, so e.g. ``repro compare`` sharing
    one run between six flows parses and builds the SG exactly once.
    """

    def __init__(
        self,
        text: str,
        *,
        name: str = "nshot",
        store: ArtifactStore | None = None,
        dialect: str | None = None,
        source_sg: StateGraph | None = None,
        method: str = "espresso",
        library: Library = DEFAULT_LIBRARY,
        mhs_tau: float = 1.2,
        delay_spread: float = 0.0,
        share_products: bool = True,
        env_digest: str | None = None,
    ) -> None:
        self.root_text = text
        self.canonical_text = canonicalize_spec(text)
        self.root_digest = hashlib.sha256(
            self.canonical_text.encode()
        ).hexdigest()
        self.dialect = dialect or (
            "sg" if ".state graph" in text else "g"
        )
        self.name = name
        self.store = store
        #: in-memory SG (from_sg); content-addressed by its .sg rendering
        self.source_sg = source_sg
        self.params: dict[str, Any] = {
            "name": name,
            "method": method,
            "share_products": bool(share_products),
            "spread": float(delay_spread),
            "mhs_tau": float(mhs_tau),
            "library": {
                "level_delay": library.level_delay,
                "pair_area": library.pair_area,
            },
        }
        self.env_digest = env_digest or default_env_digest()
        self.verify_params: dict[str, Any] | None = None
        self._memo: dict[str, Any] = {}
        self._outcomes: dict[str, str] = {}  # memo key -> "hit" | "miss"
        #: stage names actually computed (cache misses), in order — the
        #: invalidation tests spy on this
        self.executed: list[str] = []

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str, **kw: Any) -> "PipelineRun":
        return cls(text, **kw)

    @classmethod
    def from_file(cls, path: str, **kw: Any) -> "PipelineRun":
        with open(path) as f:
            text = f.read()
        if "dialect" not in kw:
            kw["dialect"] = (
                "sg"
                if path.endswith(".sg") or ".state graph" in text
                else "g"
            )
        if "name" not in kw:
            # same naming the CLI always used: .sg files go by filename,
            # .g files by their .model/.name directive
            if kw["dialect"] == "sg":
                kw["name"] = os.path.splitext(os.path.basename(path))[0]
            else:
                kw["name"] = "stg"
                for raw in text.splitlines():
                    parts = raw.split("#", 1)[0].split()
                    if parts and parts[0] in (".model", ".name") and len(parts) > 1:
                        kw["name"] = parts[1]
                        break
        return cls(text, **kw)

    @classmethod
    def from_sg(cls, sg: StateGraph, *, name: str = "nshot", **kw: Any) -> "PipelineRun":
        """Root a run at an already-built in-memory SG.

        The SG's ``.sg`` serialization is the content address; the
        in-memory object itself is what a cold ``sg-build`` returns, so
        no parse round-trip perturbs the artifacts.
        """
        return cls(
            write_sg(sg, name),
            name=name,
            dialect="sg",
            source_sg=sg,
            **kw,
        )

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def key_of(self, stage: str, extra: dict[str, Any] | None = None) -> str:
        """The content-addressed cache key of one stage's artifact."""
        sdef = STAGES[stage]
        doc = {
            "schema": KEY_SCHEMA,
            "stage": stage,
            "version": STAGE_VERSIONS[stage],
            "root": self.root_digest,
            "env": self.env_digest,
            "deps": [self.key_of(d) for d in sdef.deps],
            "params": {
                **{k: self.params[k] for k in sdef.params},
                **(extra or {}),
            },
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def artifact(self, stage: str, extra: dict[str, Any] | None = None) -> Any:
        """Resolve one stage: memo, then store, then compute-and-publish."""
        memo_key = stage if extra is None else stage + "?" + json.dumps(
            extra, sort_keys=True
        )
        if memo_key in self._memo:
            return self._memo[memo_key]
        store = None if cache_bypassed() else self.store
        key = self.key_of(stage, extra) if store is not None else ""
        with trace_span("pipeline.stage", stage=stage, circuit=self.name) as sp:
            found = False
            value: Any = None
            if store is not None:
                found, value = store.get(key)
            if not found:
                value = STAGES[stage].fn(self)
                self.executed.append(stage)
                if store is not None:
                    store.put(
                        key,
                        value,
                        meta={
                            "stage": stage,
                            "version": STAGE_VERSIONS[stage],
                            "name": self.name,
                            "root": self.root_digest,
                            "env": self.env_digest,
                        },
                    )
            sp.set(outcome="hit" if found else "miss")
        self._outcomes[memo_key] = "hit" if found else "miss"
        self._memo[memo_key] = value
        return value

    # ------------------------------------------------------------------
    # named pulls
    # ------------------------------------------------------------------
    def sg(self) -> StateGraph:
        return self.artifact("sg-build")

    def classification(self):
        return self.artifact("classify")

    def regions(self):
        return self.artifact("regions")

    def sop(self):
        return self.artifact("sop-derivation")

    def covers(self):
        return self.artifact("covers")

    def architecture(self):
        return self.artifact("netlist")

    def certify(self) -> "Certificate":
        """The circuit's static hazard certificate (``certify`` stage)."""
        return self.artifact("certify")

    def ensure_valid(self) -> None:
        """Raise the same :class:`SynthesisError` ``synthesize`` would."""
        cls = self.classification()
        if not cls.ok:
            from ..core.synthesizer import SynthesisError

            raise SynthesisError(cls.message, diagnostics=cls.diagnostics)

    def circuit(self) -> "NShotCircuit":
        """The final :class:`NShotCircuit` (no Theorem-2 gate)."""
        if "delays" in self._memo:
            return self._memo["delays"]
        with trace_span(
            "synthesize", circuit=self.name, method=self.params["method"]
        ) as sp:
            c = self.artifact("delays")
            sp.set(
                states=c.sg.num_states,
                cubes=len(c.cover),
                gates=len(c.netlist.gates),
            )
        return c

    def synthesize(self, validate: bool = True) -> "NShotCircuit":
        if validate:
            self.ensure_valid()
        return self.circuit()

    def verify(
        self,
        runs: int = 5,
        jitter: float | None = None,
        max_transitions: int = 200,
        max_time: float = 4000.0,
        base_seed: int = 0,
        input_delay: tuple[float, float] = (0.1, 6.0),
        max_events: int = 500_000,
        static_first: bool = False,
        **probes: Any,
    ) -> "VerificationSummary":
        """Monte-Carlo hazard verification through the ``verify`` stage.

        Instrumented requests (``telemetry=``, ``coverage=``,
        ``recorder=``, ``keep_traces=``) carry run-local probe objects
        whose observations are the point, so they bypass the cache and
        call the verifier directly on the (possibly cached) circuit.

        ``static_first`` pulls the content-addressed ``certify``
        artifact first: a fully-proved certificate licenses skipping
        the Monte-Carlo sweep entirely (the returned summary carries
        the certificate and ``static_skip=True``); otherwise the sweep
        runs as usual with the certificate attached.
        """
        cert = None
        if static_first:
            cert = self.certify()
            if cert.fully_proved:
                from ..core.verify import VerificationSummary

                return VerificationSummary(
                    certificate=cert.to_json(), static_skip=True
                )
        if any(probes.values()):
            from ..core.verify import verify_hazard_freeness

            summary = verify_hazard_freeness(
                self.circuit(),
                runs=runs,
                jitter=jitter,
                max_transitions=max_transitions,
                max_time=max_time,
                base_seed=base_seed,
                input_delay=input_delay,
                max_events=max_events,
                **probes,
            )
        else:
            params = {
                "runs": runs,
                "jitter": jitter,
                "max_transitions": max_transitions,
                "max_time": max_time,
                "base_seed": base_seed,
                "input_delay": list(input_delay),
                "max_events": max_events,
            }
            self.verify_params = params
            summary = self.artifact("verify", extra=params)
        if cert is not None and summary.certificate is None:
            summary.certificate = cert.to_json()
        return summary

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """Per-run cache behavior: totals plus per-stage outcomes."""
        hits = sum(1 for o in self._outcomes.values() if o == "hit")
        misses = len(self._outcomes) - hits
        stages = {
            k.split("?", 1)[0]: v for k, v in sorted(self._outcomes.items())
        }
        return {
            "hits": hits,
            "misses": misses,
            "stages": stages,
            "executed": list(self.executed),
        }
