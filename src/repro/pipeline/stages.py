"""The stage catalog of the synthesis pipeline DAG.

Each :class:`StageDef` names one step of the paper's flow (Section IV:
semi-modular SG → excitation regions → hazard-free covers → MHS
netlist → delay check), declares its upstream dependencies and which
run parameters feed its cache key, and provides the function that
computes the stage artifact from a :class:`~repro.pipeline.dag.PipelineRun`.

Versions live in the module-level :data:`STAGE_VERSIONS` dict, *not*
inside the defs, so tests (and maintainers bumping a stage after a
code change) have one obvious switchboard.  Bumping a version changes
that stage's cache key and therefore the keys of its whole downstream
cone — the content-addressed equivalent of "rebuild from here".

The DAG::

    parse ──► sg-build ──► classify          (lint gate; off the synthesis cone)
                 │
                 ├──► regions ──► sop-derivation ──► covers ──► netlist
                 │                     │                │          │
                 └─────────────────────┴────────────────┴──────────┴─► delays ─► verify
                                                                          └────► certify
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..analysis.engine import run_preflight
from ..core.synthesizer import (
    apply_trigger_requirement,
    build_architecture,
    finalize_circuit,
    minimize_cover,
)
from ..core.sop_derivation import derive_sop_spec
from ..core.verify import verify_hazard_freeness
from ..netlist import Library
from ..sg.graph import StateGraph
from ..sg.regions import SignalRegions, is_single_traversal, signal_regions
from ..sg.sgformat import parse_sg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.diagnostics import Diagnostic
    from ..logic import Cover
    from .dag import PipelineRun

__all__ = [
    "STAGES",
    "STAGE_VERSIONS",
    "Classification",
    "CoverBundle",
    "StageDef",
]


#: Stage-code versions.  Bump a stage's number whenever its code (or the
#: code it calls) changes meaning; the bump invalidates exactly that
#: stage and its downstream cone in every cache.
STAGE_VERSIONS: dict[str, int] = {
    "parse": 1,
    "sg-build": 1,
    "classify": 1,
    "regions": 1,
    "sop-derivation": 1,
    "covers": 1,
    "netlist": 1,
    "delays": 1,
    "verify": 1,
    "certify": 1,
}


@dataclass(frozen=True)
class Classification:
    """The ``classify`` stage artifact: the Theorem-2 preflight verdict."""

    ok: bool
    #: the exact message :func:`repro.core.synthesizer.synthesize` raises
    message: str
    diagnostics: "list[Diagnostic]" = field(default_factory=list)
    num_states: int = 0
    single_traversal: bool = True


@dataclass(frozen=True)
class CoverBundle:
    """The ``covers`` stage artifact.

    ``minimized`` is the raw two-level minimizer output (what lint's
    cover-scope rules inspect); ``cover`` is the final cover after
    Theorem 1 trigger-cube enforcement (what the netlist is built from).
    """

    minimized: "Cover"
    cover: "Cover"
    single_traversal: bool
    trigger_cubes_added: int


@dataclass(frozen=True)
class StageDef:
    """One node of the DAG: dependencies, key parameters, compute fn."""

    name: str
    deps: tuple[str, ...]
    #: names of :attr:`PipelineRun.params` entries hashed into the key
    params: tuple[str, ...]
    fn: Callable[["PipelineRun"], Any]


def _stage_parse(run: "PipelineRun") -> dict:
    return {
        "dialect": run.dialect,
        "canonical": run.canonical_text,
        "digest": run.root_digest,
    }


def _stage_sg_build(run: "PipelineRun") -> StateGraph:
    if run.source_sg is not None:
        return run.source_sg
    run.artifact("parse")
    if run.dialect == "sg":
        return parse_sg(run.root_text)
    from ..stg import elaborate, parse_g

    return elaborate(parse_g(run.root_text))


def _stage_classify(run: "PipelineRun") -> Classification:
    sg = run.artifact("sg-build")
    preflight = run_preflight(sg, name=run.name)
    message = ""
    if not preflight.ok:
        detail = "; ".join(
            f"[{rid}] {len(ds)} finding(s), e.g. {ds[0].message}"
            for rid, ds in preflight.by_rule().items()
        )
        message = f"SG fails the Theorem 2 preconditions: {detail}"
    return Classification(
        ok=preflight.ok,
        message=message,
        diagnostics=list(preflight.diagnostics),
        num_states=sg.num_states,
        single_traversal=is_single_traversal(sg),
    )


def _stage_regions(run: "PipelineRun") -> dict[int, SignalRegions]:
    sg = run.artifact("sg-build")
    return {a: signal_regions(sg, a) for a in sg.non_inputs}


def _stage_sop(run: "PipelineRun"):
    sg = run.artifact("sg-build")
    return derive_sop_spec(sg, regions=run.artifact("regions"))


def _stage_covers(run: "PipelineRun") -> CoverBundle:
    sg = run.artifact("sg-build")
    spec = run.artifact("sop-derivation")
    minimized = minimize_cover(
        spec,
        method=run.params["method"],
        share_products=run.params["share_products"],
        name=run.name,
    )
    cover, single, added = apply_trigger_requirement(sg, spec, minimized)
    return CoverBundle(
        minimized=minimized,
        cover=cover,
        single_traversal=single,
        trigger_cubes_added=added,
    )


def _stage_netlist(run: "PipelineRun"):
    spec = run.artifact("sop-derivation")
    bundle: CoverBundle = run.artifact("covers")
    return build_architecture(spec, bundle.cover, name=run.name)


def _stage_delays(run: "PipelineRun"):
    sg = run.artifact("sg-build")
    spec = run.artifact("sop-derivation")
    bundle: CoverBundle = run.artifact("covers")
    arch = run.artifact("netlist")
    lib = run.params["library"]
    return finalize_circuit(
        sg,
        spec,
        bundle.cover,
        arch,
        name=run.name,
        method=run.params["method"],
        library=Library(
            level_delay=lib["level_delay"], pair_area=lib["pair_area"]
        ),
        mhs_tau=run.params["mhs_tau"],
        delay_spread=run.params["spread"],
        single_traversal=bundle.single_traversal,
        trigger_cubes_added=bundle.trigger_cubes_added,
    )


def _stage_verify(run: "PipelineRun"):
    circuit = run.artifact("delays")
    params = dict(run.verify_params or {})
    params["input_delay"] = tuple(params.get("input_delay", (0.1, 6.0)))
    return verify_hazard_freeness(circuit, **params)


def _stage_certify(run: "PipelineRun"):
    from ..analysis.certify import certify_circuit

    circuit = run.artifact("delays")
    lib = run.params["library"]
    return certify_circuit(
        circuit,
        library=Library(
            level_delay=lib["level_delay"], pair_area=lib["pair_area"]
        ),
        name=run.name,
    )


#: The catalog, in topological order.
STAGES: dict[str, StageDef] = {
    s.name: s
    for s in (
        StageDef("parse", (), (), _stage_parse),
        StageDef("sg-build", ("parse",), (), _stage_sg_build),
        StageDef("classify", ("sg-build",), ("name",), _stage_classify),
        StageDef("regions", ("sg-build",), (), _stage_regions),
        StageDef(
            "sop-derivation", ("sg-build", "regions"), (), _stage_sop
        ),
        StageDef(
            "covers",
            ("sg-build", "sop-derivation"),
            ("method", "share_products"),
            _stage_covers,
        ),
        StageDef(
            "netlist", ("sop-derivation", "covers"), ("name",), _stage_netlist
        ),
        StageDef(
            "delays",
            ("sg-build", "sop-derivation", "covers", "netlist"),
            ("name", "method", "spread", "mhs_tau", "library"),
            _stage_delays,
        ),
        StageDef("verify", ("delays",), (), _stage_verify),
        StageDef(
            "certify",
            ("covers", "delays"),
            ("name", "method", "spread", "mhs_tau", "library"),
            _stage_certify,
        ),
    )
}
