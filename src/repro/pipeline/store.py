"""Persistent content-addressed artifact store.

One entry per stage output, keyed by the 64-hex sha256 the DAG derives
(:mod:`repro.pipeline.dag`).  Layout under the store root::

    objects/<key[:2]>/<key>.json   # metadata envelope (stage, deps, …)
    objects/<key[:2]>/<key>.pkl    # pickled stage artifact
    quarantine/                    # corrupt entries, moved aside
    tmp/                           # staging area for atomic writes
    gc.lock                        # mutual exclusion for gc/clear

Concurrency discipline:

* **writes are atomic renames** — payload and metadata are staged under
  ``tmp/`` and ``os.replace``d into place (payload first, metadata
  last, so a visible metadata file implies a complete payload).  Two
  processes racing on the same key both write the same content; last
  rename wins and nothing tears;
* **reads never crash the pipeline** — a corrupt, truncated or
  checksum-mismatching entry is *quarantined* (moved under
  ``quarantine/``) and reported as a miss, so one bad byte on disk
  costs a recompute, not a traceback;
* **gc holds a lock file** — eviction is the only multi-file mutation,
  guarded by an ``O_EXCL`` lock with stale-lock takeover so a crashed
  collector cannot wedge the store.

The store counts its own session traffic (``hits``/``misses``/
``evictions``/``quarantined``) and mirrors the counts into the ambient
:mod:`repro.obs.metrics` registry as ``cache.hit`` / ``cache.miss`` /
``cache.evict`` / ``cache.quarantine``.
"""

from __future__ import annotations

import json
import os
import pickle
import time
import uuid
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Iterator

from ..obs import get_metrics

__all__ = ["ArtifactStore", "CacheEntry", "GcReport", "parse_age", "parse_size"]

#: metadata envelope version (bump on layout changes; old entries are
#: quarantined as unreadable rather than misinterpreted)
META_SCHEMA = "repro-artifact/1"

#: seconds after which another process's gc.lock is presumed dead
_LOCK_STALE_S = 300.0


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact, as seen by ``repro cache ls``."""

    key: str
    stage: str
    version: int
    name: str
    root: str
    size: int
    created_utc: str
    mtime: float

    def describe(self) -> str:
        return (
            f"{self.key[:12]}  {self.stage:<14} v{self.version}  "
            f"{self.size:>8}B  {self.name}"
        )


@dataclass
class GcReport:
    """What one collection pass removed and why."""

    scanned: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "scanned": self.scanned,
            "evicted": self.evicted,
            "evicted_bytes": self.evicted_bytes,
            "kept": self.kept,
            "kept_bytes": self.kept_bytes,
            "by_reason": dict(self.by_reason),
        }


def parse_size(text: str | int) -> int:
    """``"500M"``/``"2G"``/``"64k"``/plain bytes → bytes."""
    if isinstance(text, int):
        return text
    s = text.strip().lower()
    mult = 1
    for suffix, m in (("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30)):
        if s.endswith(suffix + "b"):
            s, mult = s[:-2], m
            break
        if s.endswith(suffix):
            s, mult = s[:-1], m
            break
    return int(float(s) * mult)


def parse_age(text: str | float | int) -> float:
    """``"7d"``/``"12h"``/``"30m"``/``"45s"``/plain seconds → seconds."""
    if isinstance(text, (int, float)):
        return float(text)
    s = text.strip().lower()
    mult = 1.0
    for suffix, m in (("d", 86400.0), ("h", 3600.0), ("m", 60.0), ("s", 1.0)):
        if s.endswith(suffix):
            s, mult = s[:-1], m
            break
    return float(s) * mult


class ArtifactStore:
    """The on-disk cache rooted at one directory (created lazily)."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _shard(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2])

    def _meta_path(self, key: str) -> str:
        return os.path.join(self._shard(key), key + ".json")

    def _payload_path(self, key: str) -> str:
        return os.path.join(self._shard(key), key + ".pkl")

    def _tmp_path(self) -> str:
        tmp_dir = os.path.join(self.root, "tmp")
        os.makedirs(tmp_dir, exist_ok=True)
        return os.path.join(tmp_dir, uuid.uuid4().hex)

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, artifact)`` on a sound hit, else ``(False, None)``.

        Any defect — missing payload, torn JSON, checksum mismatch,
        unpicklable bytes — quarantines the entry and reports a miss.
        """
        meta_path = self._meta_path(key)
        try:
            with open(meta_path) as f:
                meta = json.load(f)
            if meta.get("schema") != META_SCHEMA or meta.get("key") != key:
                raise ValueError("bad envelope")
            with open(self._payload_path(key), "rb") as f:
                blob = f.read()
            if sha256(blob).hexdigest() != meta.get("payload_sha256"):
                raise ValueError("payload checksum mismatch")
            value = pickle.loads(blob)
        except FileNotFoundError:
            self.misses += 1
            get_metrics().counter("cache.miss").add(1)
            return False, None
        except Exception:
            self.quarantine(key)
            self.misses += 1
            get_metrics().counter("cache.miss").add(1)
            return False, None
        # LRU timestamp for gc: a hit refreshes the entry's age
        now = time.time()
        for path in (self._payload_path(key), meta_path):
            try:
                os.utime(path, (now, now))
            except OSError:
                pass
        self.hits += 1
        get_metrics().counter("cache.hit").add(1)
        return True, value

    def put(self, key: str, value: Any, meta: dict | None = None) -> None:
        """Store one artifact atomically; concurrent same-key writers
        are benign (identical content, last rename wins)."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = dict(meta or {})
        envelope.update(
            schema=META_SCHEMA,
            key=key,
            payload_sha256=sha256(blob).hexdigest(),
            size=len(blob),
            created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        )
        os.makedirs(self._shard(key), exist_ok=True)
        # payload first, metadata last: metadata visibility implies a
        # complete payload for every reader ordering
        tmp = self._tmp_path()
        with open(tmp, "wb") as f:
            f.write(blob)
        os.replace(tmp, self._payload_path(key))
        tmp = self._tmp_path()
        with open(tmp, "w") as f:
            json.dump(envelope, f, indent=1)
            f.write("\n")
        os.replace(tmp, self._meta_path(key))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._meta_path(key))

    def quarantine(self, key: str) -> None:
        """Move a defective entry aside (never delete: the bytes are
        evidence) and count it."""
        qdir = os.path.join(self.root, "quarantine")
        os.makedirs(qdir, exist_ok=True)
        moved = False
        for path in (self._meta_path(key), self._payload_path(key)):
            if os.path.exists(path):
                dest = os.path.join(
                    qdir, f"{uuid.uuid4().hex[:8]}-{os.path.basename(path)}"
                )
                try:
                    os.replace(path, dest)
                    moved = True
                except OSError:
                    pass
        if moved:
            self.quarantined += 1
            get_metrics().counter("cache.quarantine").add(1)

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[CacheEntry]:
        """Sound entries on disk (defective ones are quarantined as
        they are encountered)."""
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for fname in sorted(os.listdir(shard_dir)):
                if not fname.endswith(".json"):
                    continue
                key = fname[:-5]
                meta_path = os.path.join(shard_dir, fname)
                payload_path = os.path.join(shard_dir, key + ".pkl")
                try:
                    with open(meta_path) as f:
                        meta = json.load(f)
                    if meta.get("schema") != META_SCHEMA:
                        raise ValueError("bad envelope")
                    size = os.path.getsize(payload_path)
                    mtime = os.path.getmtime(payload_path)
                except Exception:
                    self.quarantine(key)
                    continue
                yield CacheEntry(
                    key=key,
                    stage=str(meta.get("stage", "?")),
                    version=int(meta.get("version", 0)),
                    name=str(meta.get("name", "")),
                    root=str(meta.get("root", "")),
                    size=size,
                    created_utc=str(meta.get("created_utc", "")),
                    mtime=mtime,
                )

    def stats(self) -> dict:
        """Disk inventory plus this process's session counters."""
        by_stage: dict[str, dict] = {}
        count = 0
        total = 0
        oldest = newest = None
        for e in self.entries():
            count += 1
            total += e.size
            agg = by_stage.setdefault(e.stage, {"count": 0, "bytes": 0})
            agg["count"] += 1
            agg["bytes"] += e.size
            oldest = e.mtime if oldest is None else min(oldest, e.mtime)
            newest = e.mtime if newest is None else max(newest, e.mtime)
        qdir = os.path.join(self.root, "quarantine")
        quarantine_files = (
            len(os.listdir(qdir)) if os.path.isdir(qdir) else 0
        )
        return {
            "root": self.root,
            "entries": count,
            "bytes": total,
            "by_stage": {k: by_stage[k] for k in sorted(by_stage)},
            "quarantine_files": quarantine_files,
            "age_span_s": round(newest - oldest, 3) if count else 0.0,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
            },
        }

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _evict(self, entry: CacheEntry, report: GcReport, reason: str) -> None:
        for path in (self._payload_path(entry.key), self._meta_path(entry.key)):
            try:
                os.remove(path)
            except OSError:
                pass
        report.evicted += 1
        report.evicted_bytes += entry.size
        report.by_reason[reason] = report.by_reason.get(reason, 0) + 1
        self.evictions += 1
        get_metrics().counter("cache.evict").add(1)

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        now: float | None = None,
    ) -> GcReport:
        """Evict expired entries, then oldest-first down to the size
        bound.  Holds the gc lock; leftover ``tmp/`` staging files older
        than the stale window are swept too."""
        report = GcReport()
        now = time.time() if now is None else now
        with self._gc_lock():
            live = sorted(self.entries(), key=lambda e: e.mtime)
            report.scanned = len(live)
            kept: list[CacheEntry] = []
            for e in live:
                if max_age_s is not None and now - e.mtime > max_age_s:
                    self._evict(e, report, "expired")
                else:
                    kept.append(e)
            if max_bytes is not None:
                total = sum(e.size for e in kept)
                # oldest first: kept is already mtime-sorted
                idx = 0
                while total > max_bytes and idx < len(kept):
                    e = kept[idx]
                    self._evict(e, report, "size")
                    total -= e.size
                    idx += 1
                kept = kept[idx:]
            report.kept = len(kept)
            report.kept_bytes = sum(e.size for e in kept)
            tmp_dir = os.path.join(self.root, "tmp")
            if os.path.isdir(tmp_dir):
                for fname in os.listdir(tmp_dir):
                    path = os.path.join(tmp_dir, fname)
                    try:
                        if now - os.path.getmtime(path) > _LOCK_STALE_S:
                            os.remove(path)
                    except OSError:
                        pass
        return report

    def clear(self) -> int:
        """Remove every entry (objects + quarantine); returns the
        number of entries removed."""
        removed = 0
        with self._gc_lock():
            report = GcReport()
            for e in list(self.entries()):
                self._evict(e, report, "clear")
                removed += 1
            qdir = os.path.join(self.root, "quarantine")
            if os.path.isdir(qdir):
                for fname in os.listdir(qdir):
                    try:
                        os.remove(os.path.join(qdir, fname))
                    except OSError:
                        pass
        return removed

    # ------------------------------------------------------------------
    # lock
    # ------------------------------------------------------------------
    def _gc_lock(self) -> "_LockGuard":
        return _LockGuard(os.path.join(self.root, "gc.lock"))


class _LockGuard:
    """``O_EXCL`` lock file with stale-lock takeover."""

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self.path = path
        self.timeout = timeout

    def __enter__(self) -> "_LockGuard":
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, f"{os.getpid()} {time.time()}\n".encode())
                os.close(fd)
                return self
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(self.path)
                except OSError:
                    continue  # raced with the release: retry at once
                if age > _LOCK_STALE_S:
                    try:  # takeover: the owner is presumed dead
                        os.remove(self.path)
                    except OSError:
                        pass
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"gc lock {self.path} held for {age:.0f}s"
                    ) from None
                time.sleep(0.05)

    def __exit__(self, *exc) -> None:
        try:
            os.remove(self.path)
        except OSError:
            pass
