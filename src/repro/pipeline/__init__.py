"""Content-addressed pipeline DAG with a persistent artifact cache.

The synthesis flow is modeled as an explicit DAG of stages (``parse →
sg-build → classify / regions → sop-derivation → covers → netlist →
delays → verify``), each keyed on
``sha256(spec canonical digest + upstream artifact keys + stage
version + env fingerprint)`` and serialized to an on-disk
:class:`ArtifactStore` with atomic rename writes, corrupt-entry
quarantine and lock-safe garbage collection.

See ``docs/PIPELINE.md`` for the model, key derivation, cache layout
and the ``repro cache`` CLI.
"""

from .dag import (
    KEY_SCHEMA,
    PipelineRun,
    cache_bypass,
    cache_bypassed,
    resolve_store,
)
from .stages import STAGES, STAGE_VERSIONS, Classification, CoverBundle, StageDef
from .store import (
    ArtifactStore,
    CacheEntry,
    GcReport,
    parse_age,
    parse_size,
)

__all__ = [
    "ArtifactStore",
    "CacheEntry",
    "Classification",
    "CoverBundle",
    "GcReport",
    "KEY_SCHEMA",
    "PipelineRun",
    "STAGES",
    "STAGE_VERSIONS",
    "StageDef",
    "cache_bypass",
    "cache_bypassed",
    "parse_age",
    "parse_size",
    "resolve_store",
]
