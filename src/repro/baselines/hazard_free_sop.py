"""Hazard-aware two-level synthesis helpers for the baseline flows.

The existing methods the paper compares against must keep their
combinational logic hazard-free — the very constraint the N-SHOT
architecture removes.  This module provides the shared machinery:

* :func:`next_state_function` — the classical next-state spec of a
  non-input signal: ``f_a = 1`` on ``ER(+a) ∪ QR(+a)``
  (up-excitation: drive toward 1; up-quiescent: hold 1);
* :func:`static_one_hazard_pairs` — SG arcs along which the function
  holds 1 while an input changes; each pair must be covered by a
  single cube or the AND-OR plane can emit a 1-0-1 glitch;
* :func:`add_hazard_cover_cubes` — the classical fix: add consensus
  cubes so every such transition pair is single-cube covered (the
  hazard-free-cover condition of Eggan/Unger/Nowick, as used by
  Lavagno's bounded-delay flow);
* :func:`function_hazard_states` — states where ≥2 concurrently
  enabled transitions both affect the function: a *function* hazard no
  combinational fix can remove — the bounded-delay flow masks these
  with delay padding instead;
* :func:`synthesize_hazard_free_sop` — the helpers as a flow of their
  own: a *purely combinational* hazard-free SOP implementation (no
  storage, no delay padding).  It refuses any spec with function
  hazards (:class:`UnmaskableHazardError`) — the strictest baseline in
  the differential bench, exhibiting exactly the failure mode the
  bounded-delay and N-SHOT methods exist to remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import Cover, Cube, minimize
from ..logic.espresso import expand as espresso_expand
from ..netlist import Gate, GateType, Netlist, Pin
from ..netlist.trees import build_gate_tree
from ..sg.encoding import states_to_cover, unreachable_cover
from ..sg.graph import StateGraph, StateId
from ..sg.regions import signal_regions
from .errors import BaselineRefusal, refusal_diagnostic, require_valid_spec

__all__ = [
    "NextStateSpec",
    "next_state_function",
    "static_one_hazard_pairs",
    "add_hazard_cover_cubes",
    "function_hazard_states",
    "UnmaskableHazardError",
    "HazardFreeSopResult",
    "synthesize_hazard_free_sop",
]


class UnmaskableHazardError(BaselineRefusal):
    """Failure code (fh): function hazards need delay masking.

    A purely combinational AND-OR plane cannot be glitch-free across a
    multi-input change that moves the function non-monotonically —
    only delay padding (Lavagno) or the MHS flip-flop (N-SHOT) absorbs
    those, and this flow has neither.
    """

    code = "(fh)"


@dataclass
class NextStateSpec:
    """(F, D, R) of one signal's next-state function (single output)."""

    signal: int
    on: Cover
    dc: Cover
    off: Cover
    on_states: set[StateId]
    off_states: set[StateId]


def next_state_function(sg: StateGraph, signal: int) -> NextStateSpec:
    """The classical next-state spec of a non-input signal.

    ``f = 1`` where the signal is 1-and-stable or excited toward 1
    (``ER(+a) ∪ QR(+a)``); ``f = 0`` on ``ER(-a) ∪ QR(-a)``;
    unreachable codes are don't care.
    """
    sr = signal_regions(sg, signal)
    on_states = sr.union_states("ER", 1) | sr.union_states("QR", 1)
    off_states = sr.union_states("ER", -1) | sr.union_states("QR", -1)
    n = sg.num_signals
    return NextStateSpec(
        signal=signal,
        on=states_to_cover(sg, on_states),
        dc=unreachable_cover(sg),
        off=states_to_cover(sg, off_states),
        on_states=on_states,
        off_states=off_states,
    )


def static_one_hazard_pairs(
    sg: StateGraph, spec: NextStateSpec
) -> list[tuple[StateId, StateId]]:
    """SG arcs where the function stays 1 while another signal flips.

    In a two-level AND-OR plane a single-variable change between two
    ON minterms glitches unless one cube covers both (static-1 hazard).
    0-1-0 static hazards do not occur in AND-OR SOP with input
    inversions (the paper makes the same observation in Section IV-A).
    """
    out = []
    for s in spec.on_states:
        for t, d in sg.successors(s):
            if t.signal == spec.signal:
                continue
            if d in spec.on_states:
                out.append((s, d))
    return out


def add_hazard_cover_cubes(
    sg: StateGraph, spec: NextStateSpec, cover: Cover
) -> tuple[Cover, int]:
    """Make a cover hazard-free for all static-1 transition pairs.

    For every required pair not covered by a single cube, the pair's
    supercube (always inside the ON-set, hence never touching R) is
    expanded to a prime and added.  Returns the repaired cover and the
    number of cubes added — the area overhead that hazard-freedom
    costs the baseline flows.
    """
    added = 0
    work = cover.copy()
    for s, d in static_one_hazard_pairs(sg, spec):
        cs = Cube.from_minterm(sg.code(s), sg.num_signals)
        cd = Cube.from_minterm(sg.code(d), sg.num_signals)
        pair = cs.supercube(cd)
        if any(c.contains(pair) for c in work.cubes):
            continue
        prime = espresso_expand(
            Cover(sg.num_signals, 1, [pair]), spec.off
        ).cubes[0]
        work.add(prime)
        added += 1
    if added:
        work = work.single_cube_containment()
    return work, added


def function_hazard_states(sg: StateGraph, spec: NextStateSpec) -> list[StateId]:
    """States exposing a function hazard of the next-state function.

    A state where two concurrently enabled transitions (neither being
    the signal's own) lead through a diamond whose corners give the
    function a non-monotonic course: combinational logic cannot be
    glitch-free across it, whatever the cover.  The bounded-delay flow
    must mask such hazards with delay lines.
    """
    out: list[StateId] = []

    def f(state: StateId) -> int | None:
        if state in spec.on_states:
            return 1
        if state in spec.off_states:
            return 0
        return None

    for s in sg.states():
        enabled = [t for t in sg.enabled(s) if t.signal != spec.signal]
        exposed = False
        for i in range(len(enabled)):
            for j in range(i + 1, len(enabled)):
                t1, t2 = enabled[i], enabled[j]
                s1, s2 = sg.succ(s, t1), sg.succ(s, t2)
                s12 = sg.succ(s1, t2) if s1 is not None else None
                corners = [f(x) for x in (s, s1, s2, s12) if x is not None]
                vals = [v for v in corners if v is not None]
                if len(set(vals)) > 1:
                    # the function changes across a multi-input change:
                    # under the bounded-delay model the AND-OR plane can
                    # glitch during the transition however it is covered
                    exposed = True
        if exposed:
            out.append(s)
    return out


@dataclass
class HazardFreeSopResult:
    """Outcome of the purely combinational hazard-free SOP flow."""

    sg: StateGraph
    netlist: Netlist
    covers: dict[int, Cover]
    hazard_cubes_added: int
    padded_signals: list[str] = field(default_factory=list)

    def stats(self):
        return self.netlist.stats()


def synthesize_hazard_free_sop(
    sg: StateGraph,
    name: str = "hfsop",
    method: str = "espresso",
    validate: bool = True,
) -> HazardFreeSopResult:
    """Purely combinational hazard-free SOP flow (no storage, no delays).

    Each non-input signal becomes a feedback SOP of its next-state
    function, repaired by :func:`add_hazard_cover_cubes` until every
    static-1 transition pair is single-cube covered.  Function hazards
    have no combinational fix, so any spec exposing one is refused with
    :class:`UnmaskableHazardError` — the Lavagno flow continues from
    here by padding delay lines; this flow deliberately does not.
    """
    if validate:
        require_valid_spec(sg, name)

    for a in sg.non_inputs:
        spec = next_state_function(sg, a)
        exposed = function_hazard_states(sg, spec)
        if exposed:
            sig = sg.signals[a]
            states = ", ".join(str(s) for s in exposed[:4])
            more = "" if len(exposed) <= 4 else f" (+{len(exposed) - 4} more)"
            raise UnmaskableHazardError(
                f"(fh) function hazard on {sig}: combinational SOP cannot "
                f"be glitch-free at states {states}{more}",
                diagnostics=refusal_diagnostic(
                    "BL002",
                    f"signal {sig} has function hazards at "
                    f"{len(exposed)} state(s): {states}{more}",
                    name,
                    hint="use the bounded-delay (lavagno) flow, which masks "
                    "function hazards with delay lines, or the N-SHOT flow",
                ),
            )

    nl = Netlist(name)
    for i in sorted(sg.inputs):
        nl.add_input(sg.signals[i])
    for a in sg.non_inputs:
        nl.add_output(sg.signals[a])

    covers: dict[int, Cover] = {}
    hazard_added = 0

    for a in sg.non_inputs:
        spec = next_state_function(sg, a)
        cover = minimize(spec.on, spec.dc, spec.off, method=method)
        cover, added = add_hazard_cover_cubes(sg, spec, cover)
        hazard_added += added
        covers[a] = cover
        sig = sg.signals[a]

        cube_nets: list[str] = []
        for k, cube in enumerate(cover.cubes):
            pins = []
            for var in cube.fixed_vars():
                positive = cube.literal(var) == 0b10
                pins.append(Pin(sg.signals[var], inverted=not positive))
            if not pins:
                # tautology cube: constant-1 next-state function
                # (fuzz corpus: flow_crash_hazard_free_sop_valueerror)
                net = nl.fresh_net(f"p_{sig}_")
                nl.add(
                    Gate(f"c1_{sig}{k}", GateType.CONST, [], net, attrs={"value": 1})
                )
                cube_nets.append(net)
                continue
            if len(pins) == 1 and not pins[0].inverted:
                cube_nets.append(pins[0].net)
                continue
            net = nl.fresh_net(f"p_{sig}_")
            build_gate_tree(nl, GateType.AND, pins, net, f"and_{sig}{k}")
            cube_nets.append(net)
        plane = nl.fresh_net(f"f_{sig}_")
        if not cube_nets:
            nl.add(
                Gate(f"c0_{sig}", GateType.CONST, [], plane, attrs={"value": 0})
            )
        elif len(cube_nets) == 1:
            nl.add(Gate(f"buf_{sig}", GateType.BUF, [Pin(cube_nets[0])], plane))
        else:
            build_gate_tree(
                nl, GateType.OR, [Pin(c) for c in cube_nets], plane, f"or_{sig}"
            )
        nl.add(
            Gate(
                f"out_{sig}",
                GateType.BUF,
                [Pin(plane)],
                sig,
                attrs={"cut": True},
            )
        )

    return HazardFreeSopResult(
        sg=sg,
        netlist=nl,
        covers=covers,
        hazard_cubes_added=hazard_added,
    )
