"""Hazard-aware two-level synthesis helpers for the baseline flows.

The existing methods the paper compares against must keep their
combinational logic hazard-free — the very constraint the N-SHOT
architecture removes.  This module provides the shared machinery:

* :func:`next_state_function` — the classical next-state spec of a
  non-input signal: ``f_a = 1`` on ``ER(+a) ∪ QR(+a)``
  (up-excitation: drive toward 1; up-quiescent: hold 1);
* :func:`static_one_hazard_pairs` — SG arcs along which the function
  holds 1 while an input changes; each pair must be covered by a
  single cube or the AND-OR plane can emit a 1-0-1 glitch;
* :func:`add_hazard_cover_cubes` — the classical fix: add consensus
  cubes so every such transition pair is single-cube covered (the
  hazard-free-cover condition of Eggan/Unger/Nowick, as used by
  Lavagno's bounded-delay flow);
* :func:`function_hazard_states` — states where ≥2 concurrently
  enabled transitions both affect the function: a *function* hazard no
  combinational fix can remove — the bounded-delay flow masks these
  with delay padding instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic import Cover, Cube
from ..logic.espresso import expand as espresso_expand
from ..sg.encoding import states_to_cover, unreachable_cover
from ..sg.graph import StateGraph, StateId
from ..sg.regions import signal_regions

__all__ = [
    "NextStateSpec",
    "next_state_function",
    "static_one_hazard_pairs",
    "add_hazard_cover_cubes",
    "function_hazard_states",
]


@dataclass
class NextStateSpec:
    """(F, D, R) of one signal's next-state function (single output)."""

    signal: int
    on: Cover
    dc: Cover
    off: Cover
    on_states: set[StateId]
    off_states: set[StateId]


def next_state_function(sg: StateGraph, signal: int) -> NextStateSpec:
    """The classical next-state spec of a non-input signal.

    ``f = 1`` where the signal is 1-and-stable or excited toward 1
    (``ER(+a) ∪ QR(+a)``); ``f = 0`` on ``ER(-a) ∪ QR(-a)``;
    unreachable codes are don't care.
    """
    sr = signal_regions(sg, signal)
    on_states = sr.union_states("ER", 1) | sr.union_states("QR", 1)
    off_states = sr.union_states("ER", -1) | sr.union_states("QR", -1)
    n = sg.num_signals
    return NextStateSpec(
        signal=signal,
        on=states_to_cover(sg, on_states),
        dc=unreachable_cover(sg),
        off=states_to_cover(sg, off_states),
        on_states=on_states,
        off_states=off_states,
    )


def static_one_hazard_pairs(
    sg: StateGraph, spec: NextStateSpec
) -> list[tuple[StateId, StateId]]:
    """SG arcs where the function stays 1 while another signal flips.

    In a two-level AND-OR plane a single-variable change between two
    ON minterms glitches unless one cube covers both (static-1 hazard).
    0-1-0 static hazards do not occur in AND-OR SOP with input
    inversions (the paper makes the same observation in Section IV-A).
    """
    out = []
    for s in spec.on_states:
        for t, d in sg.successors(s):
            if t.signal == spec.signal:
                continue
            if d in spec.on_states:
                out.append((s, d))
    return out


def add_hazard_cover_cubes(
    sg: StateGraph, spec: NextStateSpec, cover: Cover
) -> tuple[Cover, int]:
    """Make a cover hazard-free for all static-1 transition pairs.

    For every required pair not covered by a single cube, the pair's
    supercube (always inside the ON-set, hence never touching R) is
    expanded to a prime and added.  Returns the repaired cover and the
    number of cubes added — the area overhead that hazard-freedom
    costs the baseline flows.
    """
    added = 0
    work = cover.copy()
    for s, d in static_one_hazard_pairs(sg, spec):
        cs = Cube.from_minterm(sg.code(s), sg.num_signals)
        cd = Cube.from_minterm(sg.code(d), sg.num_signals)
        pair = cs.supercube(cd)
        if any(c.contains(pair) for c in work.cubes):
            continue
        prime = espresso_expand(
            Cover(sg.num_signals, 1, [pair]), spec.off
        ).cubes[0]
        work.add(prime)
        added += 1
    if added:
        work = work.single_cube_containment()
    return work, added


def function_hazard_states(sg: StateGraph, spec: NextStateSpec) -> list[StateId]:
    """States exposing a function hazard of the next-state function.

    A state where two concurrently enabled transitions (neither being
    the signal's own) lead through a diamond whose corners give the
    function a non-monotonic course: combinational logic cannot be
    glitch-free across it, whatever the cover.  The bounded-delay flow
    must mask such hazards with delay lines.
    """
    out: list[StateId] = []

    def f(state: StateId) -> int | None:
        if state in spec.on_states:
            return 1
        if state in spec.off_states:
            return 0
        return None

    for s in sg.states():
        enabled = [t for t in sg.enabled(s) if t.signal != spec.signal]
        exposed = False
        for i in range(len(enabled)):
            for j in range(i + 1, len(enabled)):
                t1, t2 = enabled[i], enabled[j]
                s1, s2 = sg.succ(s, t1), sg.succ(s, t2)
                s12 = sg.succ(s1, t2) if s1 is not None else None
                corners = [f(x) for x in (s, s1, s2, s12) if x is not None]
                vals = [v for v in corners if v is not None]
                if len(set(vals)) > 1:
                    # the function changes across a multi-input change:
                    # under the bounded-delay model the AND-OR plane can
                    # glitch during the transition however it is covered
                    exposed = True
        if exposed:
            out.append(s)
    return out
