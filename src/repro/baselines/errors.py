"""Uniform structured error surfacing for the baseline flows.

Every baseline flow refuses specifications in two ways, and the
differential fuzzing harness must tell them apart from genuine
crashes:

* **invalid specification** — the Theorem-2 preconditions (consistency,
  CSC, semi-modularity) fail: :func:`require_valid_spec` raises
  :class:`~repro.core.synthesizer.SynthesisError` carrying the
  pre-flight rule engine's structured diagnostics, exactly like the
  N-SHOT synthesizer does;
* **refused by design** — the spec is valid but outside the flow's
  documented power (Table 2's failure codes): the flow raises a
  :class:`BaselineRefusal` subclass with a ``code`` and a diagnostic
  anchored at the offending signal/region.

Both are :class:`ValueError` subclasses (via ``SynthesisError``), so
pre-existing ``except ValueError`` callers keep working.
"""

from __future__ import annotations

from ..analysis.diagnostics import Diagnostic, Location, Severity
from ..core.synthesizer import SynthesisError
from ..sg.graph import StateGraph

__all__ = ["BaselineRefusal", "refusal_diagnostic", "require_valid_spec"]


class BaselineRefusal(SynthesisError):
    """A baseline flow declining a valid spec, by documented design.

    ``code`` is the flow's failure label (Table 2 uses ``(1)`` for
    "not distributive" and ``(2)`` for "state signals required").
    """

    code: str = ""


def refusal_diagnostic(
    rule_id: str, message: str, detail: str, hint: str | None = None
) -> list[Diagnostic]:
    """One structured finding for a refusal (``BL``-namespace ids)."""
    return [
        Diagnostic(
            rule_id=rule_id,
            severity=Severity.ERROR,
            message=message,
            location=Location("graph", detail),
            hint=hint,
        )
    ]


def require_valid_spec(sg: StateGraph, name: str) -> None:
    """Gate a baseline flow on the Theorem-2 precondition rules.

    Raises :class:`SynthesisError` with the pre-flight diagnostics
    attached — the same structured surface the N-SHOT synthesizer
    presents, so campaign harnesses see one error shape everywhere.
    """
    from ..analysis.engine import run_preflight

    report = run_preflight(sg, name=name)
    if not report.ok:
        detail = "; ".join(
            f"[{rid}] {len(ds)} finding(s), e.g. {ds[0].message}"
            for rid, ds in report.by_rule().items()
        )
        raise SynthesisError(
            f"SG fails the Theorem 2 preconditions: {detail}",
            diagnostics=report.diagnostics,
        )
