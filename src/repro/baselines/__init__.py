"""Baseline synthesis flows the paper compares against in Table 2.

* :mod:`repro.baselines.lavagno` — SIS bounded-delay hazard-free flow
  ([5]): hazard-free covers plus delay padding; distributive only.
* :mod:`repro.baselines.beerel` — SYN speed-independent flow ([1]):
  monotonous-cover set/reset planes into latches with explicit
  acknowledgement hardware; distributive only.
* :mod:`repro.baselines.complex_gate` — one-complex-gate-per-signal
  methods ([2, 17]); related-work reference point.
* :mod:`repro.baselines.qflop` — the locally-clocked Q-module approach
  ([9]): Q-flop synchronizers on every input and feedback signal, an
  N-way C-element rendezvous and a worst-case-delay local clock; the
  cost structure Section II argues against.
* :mod:`repro.baselines.hazard_free_sop` — shared hazard-aware SOP
  machinery, plus the purely combinational hazard-free SOP flow (the
  strictest baseline: refuses anything with function hazards).

All flows refuse bad input with a structured
:class:`~repro.core.synthesizer.SynthesisError` carrying machine-
readable diagnostics — :class:`~repro.baselines.errors.BaselineRefusal`
subclasses for the method-specific restrictions, so the differential
fuzzer (and callers generally) can tell a principled refusal from a
crash.
"""

from .errors import BaselineRefusal, require_valid_spec
from .hazard_free_sop import (
    NextStateSpec,
    next_state_function,
    static_one_hazard_pairs,
    add_hazard_cover_cubes,
    function_hazard_states,
    HazardFreeSopResult,
    UnmaskableHazardError,
    synthesize_hazard_free_sop,
)
from .lavagno import LavagnoResult, NotDistributiveError, synthesize_lavagno
from .beerel import BeerelResult, StateSignalsRequiredError, synthesize_beerel
from .complex_gate import ComplexGateResult, synthesize_complex_gate
from .qflop import QModuleResult, synthesize_qmodule

__all__ = [
    "BaselineRefusal",
    "require_valid_spec",
    "NextStateSpec",
    "next_state_function",
    "static_one_hazard_pairs",
    "add_hazard_cover_cubes",
    "function_hazard_states",
    "HazardFreeSopResult",
    "UnmaskableHazardError",
    "synthesize_hazard_free_sop",
    "LavagnoResult",
    "NotDistributiveError",
    "synthesize_lavagno",
    "BeerelResult",
    "StateSignalsRequiredError",
    "synthesize_beerel",
    "ComplexGateResult",
    "synthesize_complex_gate",
    "QModuleResult",
    "synthesize_qmodule",
]
