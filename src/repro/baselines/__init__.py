"""Baseline synthesis flows the paper compares against in Table 2.

* :mod:`repro.baselines.lavagno` — SIS bounded-delay hazard-free flow
  ([5]): hazard-free covers plus delay padding; distributive only.
* :mod:`repro.baselines.beerel` — SYN speed-independent flow ([1]):
  monotonous-cover set/reset planes into latches with explicit
  acknowledgement hardware; distributive only.
* :mod:`repro.baselines.complex_gate` — one-complex-gate-per-signal
  methods ([2, 17]); related-work reference point.
* :mod:`repro.baselines.qflop` — the locally-clocked Q-module approach
  ([9]): Q-flop synchronizers on every input and feedback signal, an
  N-way C-element rendezvous and a worst-case-delay local clock; the
  cost structure Section II argues against.
"""

from .hazard_free_sop import (
    NextStateSpec,
    next_state_function,
    static_one_hazard_pairs,
    add_hazard_cover_cubes,
    function_hazard_states,
)
from .lavagno import LavagnoResult, NotDistributiveError, synthesize_lavagno
from .beerel import BeerelResult, StateSignalsRequiredError, synthesize_beerel
from .complex_gate import ComplexGateResult, synthesize_complex_gate
from .qflop import QModuleResult, synthesize_qmodule

__all__ = [
    "NextStateSpec",
    "next_state_function",
    "static_one_hazard_pairs",
    "add_hazard_cover_cubes",
    "function_hazard_states",
    "LavagnoResult",
    "NotDistributiveError",
    "synthesize_lavagno",
    "BeerelResult",
    "StateSignalsRequiredError",
    "synthesize_beerel",
    "ComplexGateResult",
    "synthesize_complex_gate",
    "QModuleResult",
    "synthesize_qmodule",
]
