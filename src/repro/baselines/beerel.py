"""SYN/Beerel-style speed-independent baseline flow ([1] in the paper).

Algorithmic model of the flow Table 2's ``SYN`` column came from:

1. **Restricted to distributive SGs** — failure code ``(1)`` otherwise.
2. The architecture is set/reset SOP planes into a **C-element** per
   non-input signal — structurally close to N-SHOT, which is why the
   paper's numbers for SYN and ASSASSIN often match.
3. The covers must however be **speed-independent without hazard
   filtering**: each excitation region is implemented by a *monotonous*
   single cube (one AND gate per ER that covers the whole ER and may
   extend only into that ER's own quiescent region or unreachable
   codes — never into foreign don't-care territory the way the N-SHOT
   minimizer freely does).  When no such cube exists the flow needs
   additional state signals: failure code ``(2)``.
4. Cubes whose switch-off is *not acknowledged* by the output's own
   transition (cubes that persist into the quiescent region and are
   eventually turned off by a later input change) need **extra
   acknowledgement hardware** — modelled as one 2-input gate each.
   This is the "extra internal hardware to ensure proper
   acknowledgement" that makes SYN noticeably bigger on
   ``pe-send-ifc``/``wrdatab``/``sbuf-send-ctl``/``pr-rcv-ifc``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import Cover, Cube, supercube_of
from ..netlist import Gate, GateType, Netlist, Pin
from ..netlist.trees import build_gate_tree
from ..sg.distributivity import is_distributive, non_distributive_signals
from ..sg.encoding import unreachable_cover
from ..sg.graph import StateGraph
from ..sg.regions import signal_regions
from .errors import BaselineRefusal, refusal_diagnostic, require_valid_spec
from .lavagno import NotDistributiveError

__all__ = ["BeerelResult", "StateSignalsRequiredError", "synthesize_beerel"]


class StateSignalsRequiredError(BaselineRefusal):
    """Table 2 failure code (2): monotonous covers need new state signals."""

    code = "(2)"


@dataclass
class BeerelResult:
    """Outcome of the SYN-style flow."""

    sg: StateGraph
    netlist: Netlist
    covers: dict[tuple[int, str], Cover]
    ack_gates_added: int
    unacknowledged_cubes: list[str] = field(default_factory=list)

    def stats(self):
        return self.netlist.stats()


def _monotonous_cube(
    sg: StateGraph, er_states: set, allowed: set[int], name: str
) -> Cube:
    """A single cube covering an ER, confined to its allowed codes.

    ``allowed`` is the set of binary codes the cube may touch (the ER,
    its own QR, and unreachable codes).  The cube starts as the ER's
    supercube and greedily expands one variable at a time while staying
    inside ``allowed``.  Raises when even the supercube leaves the
    allowed set.
    """
    n = sg.num_signals
    sc = supercube_of(Cube.from_minterm(sg.code(s), n) for s in er_states)
    assert sc is not None

    def inside(cube: Cube) -> bool:
        return all(m in allowed for m in cube.minterms())

    if not inside(sc):
        raise StateSignalsRequiredError(
            f"(2) excitation region of {name} has no monotonous cover cube; "
            "state signals required"
        )
    improved = True
    while improved:
        improved = False
        for var in sc.fixed_vars():
            raised = sc.raise_var(var)
            if inside(raised):
                sc = raised
                improved = True
    return sc


def synthesize_beerel(
    sg: StateGraph,
    name: str = "syn",
    validate: bool = True,
) -> BeerelResult:
    """Run the standard-C monotonous-cover flow on a distributive SG."""
    if validate:
        require_valid_spec(sg, name)
    if not is_distributive(sg):
        bad = ", ".join(sg.signals[a] for a in non_distributive_signals(sg))
        raise NotDistributiveError(
            "(1) non-distributive SG: SYN/Beerel flow not applicable",
            diagnostics=refusal_diagnostic(
                "BL001",
                f"detonant (OR-caused) signals: {bad}",
                name,
                hint="only the N-SHOT/complex-gate/Q-module flows accept "
                "non-distributive specifications",
            ),
        )

    nl = Netlist(name)
    for i in sorted(sg.inputs):
        nl.add_input(sg.signals[i])
    for a in sg.non_inputs:
        nl.add_output(sg.signals[a])

    unreachable = {
        m for c in unreachable_cover(sg).cubes for m in c.minterms()
    } if sg.num_signals <= 16 else set()

    covers: dict[tuple[int, str], Cover] = {}
    ack_gates = 0
    unack: list[str] = []

    for a in sg.non_inputs:
        sig = sg.signals[a]
        sr = signal_regions(sg, a)
        plane_nets: dict[str, str] = {}
        local_unack: list[str] = []
        for kind, direction in (("set", 1), ("reset", -1)):
            cubes: list[Cube] = []
            for er in sr.excitation:
                if er.direction != direction:
                    continue
                qr = sr.quiescent_after(er)
                er_codes = {sg.code(s) for s in er.states}
                qr_codes = {sg.code(s) for s in qr.states}
                tag = f"{'+' if direction == 1 else '-'}{sig}"
                try:
                    # preferred: the cube stays inside the excitation
                    # region (plus unreachable codes) — its turn-off is
                    # acknowledged by the output's own firing
                    cube = _monotonous_cube(
                        sg, set(er.states), er_codes | unreachable, tag
                    )
                except StateSignalsRequiredError:
                    # the ER's supercube spills into its quiescent
                    # region: legal for a monotonous cover, but the
                    # cube's turn-off is no longer acknowledged by the
                    # output transition — extra completion hardware
                    cube = _monotonous_cube(
                        sg, set(er.states), er_codes | qr_codes | unreachable, tag
                    )
                    net_ok = f"ackh_{kind}_{sig}_{len(cubes)}"
                    local_unack.append(net_ok)
                    unack.append(net_ok)
                cubes.append(cube)
            covers[(a, kind)] = Cover(sg.num_signals, 1, cubes)

            # build the plane; the latch input is gated by the output's
            # own rail (the feedback acknowledgement of the standard-C
            # architecture — the same role the ack AND plays in N-SHOT)
            enable = Pin(sig, inverted=(kind == "set"))
            gate_out = nl.fresh_net(f"{kind}_{sig}_g")

            def cube_pins(cube) -> list[Pin]:
                pins = []
                for var in cube.fixed_vars():
                    positive = cube.literal(var) == 0b10
                    pins.append(Pin(sg.signals[var], inverted=not positive))
                return pins

            if not cubes:
                nl.add(
                    Gate(
                        f"const0_{kind}_{sig}",
                        GateType.CONST,
                        [],
                        gate_out,
                        attrs={"value": 0},
                    )
                )
            else:
                cube_nets: list[str] = []
                for k, cube in enumerate(cubes):
                    pins = cube_pins(cube)
                    if not pins:
                        # tautology cube (monotonous cover of an
                        # everywhere-excited region): constant 1
                        net = nl.fresh_net(f"p_{kind}_{sig}_")
                        nl.add(
                            Gate(
                                f"c1_{kind}_{sig}{k}",
                                GateType.CONST,
                                [],
                                net,
                                attrs={"value": 1},
                            )
                        )
                        cube_nets.append(net)
                        continue
                    if len(pins) == 1 and not pins[0].inverted:
                        cube_nets.append(pins[0].net)
                        continue
                    net = nl.fresh_net(f"p_{kind}_{sig}_")
                    build_gate_tree(
                        nl, GateType.AND, pins, net, f"and_{kind}_{sig}{k}"
                    )
                    cube_nets.append(net)
                if len(cube_nets) == 1:
                    plane = cube_nets[0]
                else:
                    plane = nl.fresh_net(f"{kind}_{sig}_or")
                    build_gate_tree(
                        nl,
                        GateType.OR,
                        [Pin(c) for c in cube_nets],
                        plane,
                        f"or_{kind}_{sig}",
                    )
                nl.add(
                    Gate(
                        f"ack_{kind}_{sig}",
                        GateType.AND,
                        [Pin(plane), enable],
                        gate_out,
                    )
                )
            plane_nets[kind] = gate_out

        # extra acknowledgement hardware: one completion gate per
        # unacknowledged cube (the cubes extending into the quiescent
        # region whose turn-off the output transition cannot observe)
        for net_ok in local_unack:
            dummy_out = nl.fresh_net("ackh")
            nl.add(
                Gate(
                    net_ok,
                    GateType.AND,
                    [Pin(plane_nets["set"]), Pin(plane_nets["reset"], inverted=True)],
                    dummy_out,
                    attrs={"ack_hardware": True},
                )
            )
            ack_gates += 1

        # storage element: C-element/RS latch per the standard-C scheme
        nl.add(
            Gate(
                f"cel_{sig}",
                GateType.RSLATCH,
                [Pin(plane_nets["set"]), Pin(plane_nets["reset"])],
                sig,
                output_n=sig + "_n",
                attrs={"init": sg.value(sg.initial, a)},
            )
        )
    return BeerelResult(
        sg=sg,
        netlist=nl,
        covers=covers,
        ack_gates_added=ack_gates,
        unacknowledged_cubes=unack,
    )
