"""SIS/Lavagno-style bounded-delay baseline flow ([5] in the paper).

Algorithmic model of the flow Table 2's ``SIS`` column came from:

1. **Restricted to distributive SGs** — non-distributive inputs are
   rejected with the paper's failure code ``(1)``.
2. Each non-input signal is implemented as a *combinational* next-state
   function with feedback (no storage element — the function covers
   ``ER(+a) ∪ QR(+a)`` and includes the signal's own literal where
   the cover needs it), minimized by ESPRESSO.
3. The cover is then made **hazard-free**: every static-1 transition
   pair gets a single-cube cover (extra consensus cubes → area).
4. Remaining *function* hazards (multi-signal concurrency across the
   function) cannot be fixed combinationally; the bounded-delay method
   masks them by **inserting delay lines** into the feedback path —
   the delay padding that "lengthen[s] the critical path" in the
   paper's discussion of Table 2.

The result mirrors the observed shape: competitive or smaller area on
simple sequential circuits (no latch cells at all), but slower on
concurrent circuits because of the inserted delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import Cover, minimize
from ..netlist import Gate, GateType, Netlist, Pin
from ..netlist.trees import build_gate_tree
from ..sg.distributivity import is_distributive, non_distributive_signals
from ..sg.graph import StateGraph
from .errors import BaselineRefusal, refusal_diagnostic, require_valid_spec
from .hazard_free_sop import (
    add_hazard_cover_cubes,
    function_hazard_states,
    next_state_function,
)

__all__ = ["LavagnoResult", "NotDistributiveError", "synthesize_lavagno"]


class NotDistributiveError(BaselineRefusal):
    """Table 2 failure code (1): the flow handles only distributive SGs."""

    code = "(1)"


@dataclass
class LavagnoResult:
    """Outcome of the SIS-style flow."""

    sg: StateGraph
    netlist: Netlist
    covers: dict[int, Cover]
    hazard_cubes_added: int
    delay_lines_inserted: int
    padded_signals: list[str] = field(default_factory=list)

    def stats(self):
        return self.netlist.stats()


def synthesize_lavagno(
    sg: StateGraph,
    name: str = "sis",
    method: str = "espresso",
    pad_levels: int = 3,
    validate: bool = True,
) -> LavagnoResult:
    """Run the bounded-delay hazard-free flow on a distributive SG.

    ``pad_levels`` sizes each inserted delay line in gate levels (the
    bounded-delay analysis would compute this from the longest
    combinational path; two levels — one AND, one OR — is the plane
    depth being masked plus margin).
    """
    if validate:
        require_valid_spec(sg, name)
    if not is_distributive(sg):
        bad = ", ".join(sg.signals[a] for a in non_distributive_signals(sg))
        raise NotDistributiveError(
            "(1) non-distributive SG: SIS/Lavagno flow not applicable",
            diagnostics=refusal_diagnostic(
                "BL001",
                f"detonant (OR-caused) signals: {bad}",
                name,
                hint="only the N-SHOT/complex-gate/Q-module flows accept "
                "non-distributive specifications",
            ),
        )

    nl = Netlist(name)
    for i in sorted(sg.inputs):
        nl.add_input(sg.signals[i])
    for a in sg.non_inputs:
        nl.add_output(sg.signals[a])

    covers: dict[int, Cover] = {}
    hazard_added = 0
    delay_lines = 0
    padded: list[str] = []

    for a in sg.non_inputs:
        spec = next_state_function(sg, a)
        cover = minimize(spec.on, spec.dc, spec.off, method=method)
        cover, added = add_hazard_cover_cubes(sg, spec, cover)
        hazard_added += added
        covers[a] = cover
        sig = sg.signals[a]

        # literal pins: the function may read its own output (feedback)
        def pins_of(cube) -> list[Pin]:
            pins = []
            for var in cube.fixed_vars():
                positive = cube.literal(var) == 0b10
                pins.append(Pin(sg.signals[var], inverted=not positive))
            return pins

        cube_nets = []
        for k, cube in enumerate(cover.cubes):
            pins = pins_of(cube)
            if not pins:
                # tautology cube: the next-state function is constant 1
                # (fuzz corpus: flow_crash_lavagno_valueerror)
                net = nl.fresh_net(f"p_{sig}_")
                nl.add(
                    Gate(f"c1_{sig}{k}", GateType.CONST, [], net, attrs={"value": 1})
                )
                cube_nets.append(net)
                continue
            if len(pins) == 1 and not pins[0].inverted:
                cube_nets.append(pins[0].net)
                continue
            net = nl.fresh_net(f"p_{sig}_")
            build_gate_tree(nl, GateType.AND, pins, net, f"and_{sig}{k}")
            cube_nets.append(net)
        plane = nl.fresh_net(f"f_{sig}_")
        if not cube_nets:
            # empty cover: the signal never rises — constant 0
            nl.add(Gate(f"c0_{sig}", GateType.CONST, [], plane, attrs={"value": 0}))
        elif len(cube_nets) == 1:
            nl.add(Gate(f"buf_{sig}", GateType.BUF, [Pin(cube_nets[0])], plane))
        else:
            build_gate_tree(
                nl, GateType.OR, [Pin(c) for c in cube_nets], plane, f"or_{sig}"
            )

        exposed = function_hazard_states(sg, spec)
        if exposed:
            # mask function hazards with a delay line in the output path
            delay_lines += 1
            padded.append(sig)
            nl.add(
                Gate(
                    f"pad_{sig}",
                    GateType.DELAY,
                    [Pin(plane)],
                    sig,
                    delay=pad_levels * 1.2,
                    attrs={"cut": True},
                )
            )
        else:
            nl.add(
                Gate(
                    f"out_{sig}",
                    GateType.BUF,
                    [Pin(plane)],
                    sig,
                    attrs={"cut": True},
                )
            )

    return LavagnoResult(
        sg=sg,
        netlist=nl,
        covers=covers,
        hazard_cubes_added=hazard_added,
        delay_lines_inserted=delay_lines,
        padded_signals=padded,
    )
