"""Single-complex-gate baseline ([2, 17] in the related work).

The earliest speed-independent methods assume every non-input signal
can be realized as *one* hazard-free complex gate computing the
next-state function with internal feedback.  The assumption sidesteps
the hazard problem entirely (a single gate has no internal races by
fiat) but is unrealistic for large fan-in functions — which is exactly
why the SOP-based architectures (SYN, N-SHOT) exist.

Provided for the related-work comparison bench: it gives the area a
method would report if arbitrarily complex AOI cells were available.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic import Cover, minimize
from ..netlist import Gate, GateType, Netlist, Pin
from ..sg.graph import StateGraph
from .errors import require_valid_spec
from .hazard_free_sop import next_state_function

__all__ = ["ComplexGateResult", "synthesize_complex_gate"]


@dataclass
class ComplexGateResult:
    """Outcome of the complex-gate flow."""

    sg: StateGraph
    netlist: Netlist
    covers: dict[int, Cover]
    max_fanin: int

    def stats(self):
        return self.netlist.stats()


def synthesize_complex_gate(
    sg: StateGraph,
    name: str = "cg",
    method: str = "espresso",
    validate: bool = True,
) -> ComplexGateResult:
    """One complex gate per non-input signal (next-state function).

    The gate is modelled as a single AND-OR-invert style cell whose
    area is the series-transistor count of the SOP (literals + cubes)
    and whose delay is one level regardless of complexity — the
    complex-gate assumption taken at face value.
    """
    if validate:
        require_valid_spec(sg, name)

    nl = Netlist(name)
    for i in sorted(sg.inputs):
        nl.add_input(sg.signals[i])
    for a in sg.non_inputs:
        nl.add_output(sg.signals[a])

    covers: dict[int, Cover] = {}
    worst_fanin = 0
    for a in sg.non_inputs:
        spec = next_state_function(sg, a)
        cover = minimize(spec.on, spec.dc, spec.off, method=method)
        covers[a] = cover
        sig = sg.signals[a]
        pins = []
        seen: set[tuple[str, bool]] = set()
        for cube in cover.cubes:
            for var in cube.fixed_vars():
                positive = cube.literal(var) == 0b10
                key = (sg.signals[var], not positive)
                if key not in seen:
                    seen.add(key)
                    pins.append(Pin(*key))
        worst_fanin = max(worst_fanin, len(pins))
        if not pins:
            # constant next-state function (a tautological cover is
            # constant 1, an empty one constant 0): no cell inputs
            nl.add(
                Gate(
                    f"cplx_{sig}",
                    GateType.CONST,
                    [],
                    sig,
                    attrs={
                        "cut": True,
                        "complex": True,
                        "value": 1 if cover.cubes else 0,
                    },
                )
            )
            continue
        # single complex cell: modelled as one wide AND for area/delay
        # accounting (area ≈ literal count, delay = 1 level); marked as
        # a cut since it latches through internal feedback
        nl.add(
            Gate(
                f"cplx_{sig}",
                GateType.AND,
                pins,
                sig,
                attrs={"cut": True, "complex": True, "cubes": len(cover.cubes)},
            )
        )
    return ComplexGateResult(sg=sg, netlist=nl, covers=covers, max_fanin=worst_fanin)
