"""Q-module / locally-clocked baseline (Rosenberger et al. [9]).

Section II of the paper devotes a full paragraph to why this approach
is expensive, and every cost it lists is structural:

1. **every external input and every feedback state signal is bounded
   by a Q-flop synchronizer** — N memory elements where N = #inputs +
   #non-input signals, "typically much more" than the latch count of
   the SOP architectures;
2. an **N-way rendezvous implemented as a tree of C-elements**
   generates the local clock — N−1 extra cells plus ⌈log₂N⌉ levels in
   the cycle;
3. the local clock needs a **delay line at least as long as the
   longest path through the combinational circuit**, so "the circuit
   has to operate in steps that are at least as slow as the worst-case
   delay through the combinational logic".

This module models the flow faithfully enough to regenerate those
claims: the combinational core is the same next-state SOP used by the
other baselines; the synchronizers, the rendezvous tree and the delay
line are added structurally; the reported delay is the local clock
period (combinational worst path + rendezvous + Q-flop response).
Unlike SIS/SYN, the Q-module approach has no distributivity
restriction — its costs are what rule it out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic import Cover, minimize
from ..netlist import DEFAULT_LIBRARY, Gate, GateType, Netlist, Pin
from ..netlist.trees import build_gate_tree
from ..sg.graph import StateGraph
from .errors import require_valid_spec
from .hazard_free_sop import next_state_function

__all__ = ["QModuleResult", "synthesize_qmodule"]


@dataclass
class QModuleResult:
    """Outcome of the Q-module flow."""

    sg: StateGraph
    netlist: Netlist
    covers: dict[int, Cover]
    num_qflops: int
    rendezvous_cells: int
    clock_delay_line: float

    def stats(self):
        return self.netlist.stats()


def synthesize_qmodule(
    sg: StateGraph,
    name: str = "qmod",
    method: str = "espresso",
    validate: bool = True,
) -> QModuleResult:
    """Synthesize with the locally-clocked Q-module architecture of [9]."""
    if validate:
        require_valid_spec(sg, name)

    nl = Netlist(name)
    for i in sorted(sg.inputs):
        nl.add_input(sg.signals[i])
    for a in sg.non_inputs:
        nl.add_output(sg.signals[a])

    # 1. Q-flop synchronizers on every input and every feedback signal
    clock = "lclk"
    sampled: dict[int, str] = {}
    qflops = 0
    for idx in range(sg.num_signals):
        src = sg.signals[idx] if sg.is_input(idx) else sg.signals[idx] + "_fb"
        out = nl.fresh_net(f"q_{sg.signals[idx]}_")
        nl.add(
            Gate(
                f"qflop_{sg.signals[idx]}",
                GateType.QFLOP,
                [Pin(src), Pin(clock)],
                out,
                output_n=out + "_n",
                attrs={"sync": True},
            )
        )
        sampled[idx] = out
        qflops += 1

    # 2. the combinational next-state core over the sampled values
    covers: dict[int, Cover] = {}
    done_nets: list[str] = []
    for a in sg.non_inputs:
        spec = next_state_function(sg, a)
        cover = minimize(spec.on, spec.dc, spec.off, method=method)
        covers[a] = cover
        sig = sg.signals[a]
        cube_nets: list[str] = []
        for k, cube in enumerate(cover.cubes):
            pins = []
            for var in cube.fixed_vars():
                positive = cube.literal(var) == 0b10
                pins.append(Pin(sampled[var], inverted=not positive))
            if not pins:
                # tautology cube: constant-1 next-state function
                # (fuzz corpus: flow_crash_qflop_valueerror)
                net = nl.fresh_net(f"p_{sig}_")
                nl.add(
                    Gate(f"c1_{sig}{k}", GateType.CONST, [], net, attrs={"value": 1})
                )
                cube_nets.append(net)
                continue
            if len(pins) == 1 and not pins[0].inverted:
                cube_nets.append(pins[0].net)
                continue
            net = nl.fresh_net(f"p_{sig}_")
            build_gate_tree(nl, GateType.AND, pins, net, f"and_{sig}{k}")
            cube_nets.append(net)
        if not cube_nets:
            z = nl.fresh_net(f"z_{sig}_")
            nl.add(Gate(f"c0_{sig}", GateType.CONST, [], z, attrs={"value": 0}))
            cube_nets = [z]
        if len(cube_nets) == 1:
            plane = cube_nets[0]
        else:
            plane = nl.fresh_net(f"f_{sig}_")
            build_gate_tree(
                nl, GateType.OR, [Pin(c) for c in cube_nets], plane, f"or_{sig}"
            )
        # output register clocked by the local clock; also the feedback
        nl.add(
            Gate(
                f"reg_{sig}",
                GateType.RSLATCH,
                [Pin(plane), Pin(plane, inverted=True)],
                sig,
                output_n=sig + "_fb",
                attrs={"init": sg.value(sg.initial, a)},
            )
        )
        done_nets.append(sig)

    # 3. the N-way rendezvous: a tree of C-elements over the Q-flop
    #    completion signals generates the local clock
    completion = [sampled[idx] for idx in range(sg.num_signals)]
    rendezvous_cells = 0
    level = completion
    while len(level) > 1:
        nxt: list[str] = []
        for k in range(0, len(level) - 1, 2):
            out = nl.fresh_net("rdv_")
            nl.add(
                Gate(
                    f"cel_rdv_{out}",
                    GateType.CEL,
                    [Pin(level[k]), Pin(level[k + 1])],
                    out,
                    attrs={"rendezvous": True},
                )
            )
            rendezvous_cells += 1
            nxt.append(out)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt

    # 4. the local clock: delay line at least as long as the longest
    #    path through the combinational circuit
    comb_levels = 0
    for a in sg.non_inputs:
        cover = covers[a]
        has_or = len(cover.cubes) > 1
        comb_levels = max(comb_levels, (1 if cover.cubes else 0) + (1 if has_or else 0))
    clock_delay = max(1, comb_levels) * DEFAULT_LIBRARY.level_delay
    nl.add(
        Gate(
            "clk_delay",
            GateType.DELAY,
            [Pin(level[0])],
            clock,
            delay=clock_delay,
            attrs={"clock": True},
        )
    )
    return QModuleResult(
        sg=sg,
        netlist=nl,
        covers=covers,
        num_qflops=qflops,
        rendezvous_cells=rendezvous_cells,
        clock_delay_line=clock_delay,
    )
