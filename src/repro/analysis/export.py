"""Diagnostic exporters: terminal text, ``repro-lint/1`` JSON, SARIF.

All three render the same :class:`~repro.analysis.engine.AnalysisResult`
objects; a lint run over several targets produces one document with
one entry (text section / JSON target / SARIF result set) per target.

The SARIF export targets 2.1.0 with the fields CI code-scanning
uploads require: ``version``, ``$schema``, one run with a tool driver
carrying the full rule catalog (id, description, default level), and
per-result ``ruleId``/``ruleIndex``/``level``/``message`` plus a
physical location when the target came from a spec file (logical
location otherwise).
"""

from __future__ import annotations

import json

from .diagnostics import Diagnostic, Severity
from .engine import AnalysisResult
from .registry import RuleRegistry, default_registry

__all__ = [
    "LINT_SCHEMA",
    "SARIF_VERSION",
    "render_text",
    "render_json",
    "render_sarif",
]

LINT_SCHEMA = "repro-lint/1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


# ----------------------------------------------------------------------
# text
# ----------------------------------------------------------------------
def render_text(
    results: list[AnalysisResult], *, verbose: bool = False
) -> str:
    """Human-readable report: per-target findings plus a summary."""
    lines: list[str] = []
    for r in results:
        if r.diagnostics or verbose:
            lines.append(f"── {r.name} ──")
        for d in sorted(
            r.diagnostics, key=lambda d: (-d.severity.rank, d.rule_id)
        ):
            lines.append(d.render())
    lines.extend(r.summary() for r in results)
    total_err = sum(r.errors for r in results)
    total_warn = sum(r.warnings for r in results)
    total_int = sum(r.internal_errors for r in results)
    if len(results) > 1:
        lines.append(
            f"total: {total_err} error(s), {total_warn} warning(s) "
            f"over {len(results)} target(s)"
            + (f", {total_int} internal" if total_int else "")
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repro-lint/1 JSON
# ----------------------------------------------------------------------
def _diag_dict(d: Diagnostic) -> dict[str, object]:
    out: dict[str, object] = {
        "rule": d.rule_id,
        "severity": d.severity.value,
        "message": d.message,
        "location": {
            "kind": d.location.kind,
            "detail": d.location.detail,
            "path": d.location.path,
        },
    }
    if d.hint:
        out["hint"] = d.hint
    return out


def render_json(
    results: list[AnalysisResult],
    registry: RuleRegistry | None = None,
) -> str:
    """Machine-readable ``repro-lint/1`` document."""
    reg = registry if registry is not None else default_registry()
    doc: dict[str, object] = {
        "schema": LINT_SCHEMA,
        "targets": [
            {
                "name": r.name,
                "summary": {
                    "errors": r.errors,
                    "warnings": r.warnings,
                    "infos": r.infos,
                    "internal_errors": r.internal_errors,
                    "suppressed": r.suppressed,
                },
                "scopes_run": r.scopes_run,
                "scopes_skipped": r.scopes_skipped,
                "diagnostics": [_diag_dict(d) for d in r.diagnostics],
            }
            for r in results
        ],
        "totals": {
            "targets": len(results),
            "errors": sum(r.errors for r in results),
            "warnings": sum(r.warnings for r in results),
            "infos": sum(r.infos for r in results),
            "internal_errors": sum(r.internal_errors for r in results),
        },
        "rules": [
            {
                "id": rule.meta.id,
                "title": rule.meta.title,
                "severity": rule.meta.severity.value,
                "scope": rule.meta.scope.value,
                "preflight": rule.meta.preflight,
                "paper": rule.meta.paper,
            }
            for rule in reg.all()
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
def _sarif_location(r: AnalysisResult, d: Diagnostic) -> dict[str, object]:
    logical: dict[str, object] = {
        "logicalLocations": [
            {
                "name": d.location.detail,
                "kind": d.location.kind,
                "fullyQualifiedName": f"{r.name}::{d.location.detail}",
            }
        ]
    }
    if d.location.path:
        logical["physicalLocation"] = {
            "artifactLocation": {"uri": d.location.path}
        }
    return logical


def render_sarif(
    results: list[AnalysisResult],
    registry: RuleRegistry | None = None,
    *,
    tool_version: str = "1.0.0",
) -> str:
    """SARIF 2.1.0 document over all targets (one run)."""
    reg = registry if registry is not None else default_registry()
    rules = reg.all()
    rule_index = {rule.meta.id: i for i, rule in enumerate(rules)}
    sarif_results: list[dict[str, object]] = []
    for r in results:
        for d in r.diagnostics:
            entry: dict[str, object] = {
                "ruleId": d.rule_id,
                "level": d.severity.sarif_level,
                "message": {"text": f"{r.name}: {d.message}"},
                "locations": [_sarif_location(r, d)],
            }
            if d.rule_id in rule_index:
                entry["ruleIndex"] = rule_index[d.rule_id]
            sarif_results.append(entry)
    doc = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": tool_version,
                        "informationUri": (
                            "https://github.com/example/repro#static-analysis"
                        ),
                        "rules": [
                            {
                                "id": rule.meta.id,
                                "shortDescription": {"text": rule.meta.title},
                                "fullDescription": {
                                    "text": rule.meta.description
                                    or rule.meta.title
                                },
                                "help": {
                                    "text": rule.meta.paper
                                    or rule.meta.title
                                },
                                "defaultConfiguration": {
                                    "level": rule.meta.severity.sarif_level
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": sarif_results,
            }
        ],
    }
    return json.dumps(doc, indent=2)
