"""Pluggable rule registry for the static-analysis engine.

A rule is a generator over a :class:`~repro.analysis.context.LintContext`
registered with the :func:`rule` decorator::

    @rule(
        "SG002",
        title="Complete State Coding conflict",
        severity=Severity.ERROR,
        scope=Scope.SG,
        preflight=True,
        paper="Definition 1",
    )
    def check_csc(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
        ...
        yield meta.diagnostic("...", ctx.location("state-pair", "..."))

``scope`` phases execution (SG-level rules run before anything is
minimized; cover rules before the netlist is built) and ``preflight``
marks the Theorem-2 preconditions that gate synthesis — the
synthesizer's pre-flight pass runs exactly the ``preflight`` subset of
the same registry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from .diagnostics import Diagnostic, Location, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .context import LintContext

__all__ = ["Scope", "RuleMeta", "Rule", "RuleRegistry", "rule", "default_registry"]


class Scope(enum.Enum):
    """Execution phase of a rule (what inputs it needs)."""

    SG = "sg"  # the state graph alone
    COVER = "cover"  # derived SOP spec + minimized cover
    NETLIST = "netlist"  # the mapped N-SHOT netlist


RuleBody = Callable[["LintContext", "RuleMeta"], Iterator[Diagnostic]]


@dataclass(frozen=True)
class RuleMeta:
    """Static metadata of one registered rule."""

    id: str
    title: str
    severity: Severity
    scope: Scope
    preflight: bool = False
    paper: str = ""  # paper reference (definition / theorem / equation)
    description: str = ""

    def diagnostic(
        self,
        message: str,
        location: Location,
        hint: str | None = None,
        severity: Severity | None = None,
        **data: object,
    ) -> Diagnostic:
        """Build a diagnostic stamped with this rule's id and severity."""
        return Diagnostic(
            rule_id=self.id,
            severity=severity if severity is not None else self.severity,
            message=message,
            location=location,
            hint=hint,
            data=data,
        )


@dataclass(frozen=True)
class Rule:
    """A registered rule: metadata plus its body."""

    meta: RuleMeta
    body: RuleBody

    def run(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        return self.body(ctx, self.meta)


class RuleRegistry:
    """Ordered collection of rules, keyed by stable rule id."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, r: Rule) -> None:
        if r.meta.id in self._rules:
            raise ValueError(f"rule id {r.meta.id!r} registered twice")
        self._rules[r.meta.id] = r

    def get(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def all(self) -> list[Rule]:
        """Every rule, in id order (deterministic execution order)."""
        return [self._rules[i] for i in sorted(self._rules)]

    def by_scope(self, scope: Scope) -> list[Rule]:
        return [r for r in self.all() if r.meta.scope is scope]

    def preflight_rules(self) -> list[Rule]:
        return [r for r in self.all() if r.meta.preflight]

    def select(
        self,
        select: set[str] | None = None,
        ignore: set[str] | None = None,
    ) -> list[Rule]:
        """Rules filtered by explicit select/ignore id sets."""
        out = []
        for r in self.all():
            if select is not None and r.meta.id not in select:
                continue
            if ignore is not None and r.meta.id in ignore:
                continue
            out.append(r)
        return out


_DEFAULT = RuleRegistry()


def default_registry() -> RuleRegistry:
    """The process-wide registry the built-in rules register into."""
    return _DEFAULT


def rule(
    rule_id: str,
    *,
    title: str,
    severity: Severity,
    scope: Scope,
    preflight: bool = False,
    paper: str = "",
    registry: RuleRegistry | None = None,
) -> Callable[[RuleBody], RuleBody]:
    """Register a rule body under a stable id (decorator)."""

    def wrap(fn: RuleBody) -> RuleBody:
        meta = RuleMeta(
            id=rule_id,
            title=title,
            severity=severity,
            scope=scope,
            preflight=preflight,
            paper=paper,
            description=(fn.__doc__ or "").strip().splitlines()[0]
            if fn.__doc__
            else title,
        )
        (registry if registry is not None else _DEFAULT).register(Rule(meta, fn))
        return fn

    return wrap
