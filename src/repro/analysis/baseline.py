"""Baseline suppression: accept today's findings, gate tomorrow's.

A baseline file (``repro-lint-baseline/1`` JSON) records the
fingerprints of known findings so ``repro lint --baseline`` only fails
on *new* diagnostics — the standard way to adopt a linter on a
codebase with existing debt.  Fingerprints hash the target name, rule
id, location and message, so a finding moving to a different state or
gate counts as new.
"""

from __future__ import annotations

import hashlib
import json

from .engine import AnalysisResult

__all__ = [
    "BASELINE_SCHEMA",
    "fingerprint",
    "build_baseline",
    "baseline_fingerprints",
    "load_baseline",
    "apply_baseline",
]

BASELINE_SCHEMA = "repro-lint-baseline/1"


def fingerprint(target: str, key: str) -> str:
    """Stable hash of one diagnostic's identity within one target."""
    return hashlib.sha1(f"{target}|{key}".encode()).hexdigest()[:16]


def build_baseline(results: list[AnalysisResult]) -> dict[str, object]:
    """Baseline document accepting every current finding."""
    entries: dict[str, dict[str, str]] = {}
    for r in results:
        for d in r.diagnostics:
            fp = fingerprint(r.name, d.fingerprint_key())
            entries[fp] = {
                "target": r.name,
                "rule": d.rule_id,
                "location": d.location.render(),
                "message": d.message,
            }
    return {"schema": BASELINE_SCHEMA, "entries": entries}


def baseline_fingerprints(doc: dict[str, object]) -> set[str]:
    """The suppressed fingerprint set of a baseline document."""
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a {BASELINE_SCHEMA} document (schema={doc.get('schema')!r})"
        )
    entries = doc.get("entries")
    if not isinstance(entries, dict):
        raise ValueError("baseline document has no entries mapping")
    return set(entries)


def load_baseline(path: str) -> set[str]:
    """Read a baseline file into a fingerprint set."""
    with open(path) as f:
        doc = json.load(f)
    return baseline_fingerprints(doc)


def apply_baseline(
    results: list[AnalysisResult], fingerprints: set[str]
) -> list[AnalysisResult]:
    """Filter every result against the suppressed fingerprint set."""
    out: list[AnalysisResult] = []
    for r in results:
        suppressed_keys = {
            d.fingerprint_key()
            for d in r.diagnostics
            if fingerprint(r.name, d.fingerprint_key()) in fingerprints
        }
        out.append(r.suppress(suppressed_keys))
    return out
