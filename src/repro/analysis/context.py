"""Analysis context: the inputs a lint run works over.

A :class:`LintContext` wraps the specification (state graph) and/or a
netlist plus the derived products the deeper rule scopes need — the
SOP spec, the minimized cover, and the mapped N-SHOT circuit.  All
derivations are lazy and cached so an SG-scope-only run (the
synthesizer pre-flight) never pays for minimization, and tests can
inject a hand-built cover or netlist to seed violations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..netlist.netlist import Netlist
from ..sg.graph import StateGraph
from .diagnostics import Location

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..core.sop_derivation import SopSpec
    from ..core.synthesizer import NShotCircuit
    from ..logic.cover import Cover
    from ..pipeline.dag import PipelineRun
    from .certify import Certificate

__all__ = ["LintContext"]


class LintContext:
    """Everything one analysis run may look at.

    Parameters
    ----------
    sg:
        The specification state graph (None for netlist-only lints).
    netlist:
        A pre-built netlist to analyze; when None and ``sg`` is given,
        the netlist scope synthesizes one on demand.
    name:
        Circuit name used in messages and synthesized netlists.
    source:
        Path of the spec file the SG came from (drives SARIF physical
        locations); None for programmatic graphs.
    spread / method / mhs_tau:
        Synthesis knobs forwarded to the on-demand pipeline (Equation
        (1) is evaluated at ``spread``).
    cover:
        Optional pre-minimized cover (tests seed fragmented covers
        here); when None the context minimizes on demand.
    pipeline:
        Optional content-addressed :class:`~repro.pipeline.dag.PipelineRun`
        (constructed with matching knobs); when given, the lazy
        derivations pull stage artifacts through it so a warm cache
        serves lint without re-minimizing or re-mapping anything.
    """

    def __init__(
        self,
        sg: StateGraph | None = None,
        netlist: Netlist | None = None,
        *,
        name: str = "spec",
        source: str | None = None,
        spread: float = 0.0,
        method: str = "espresso",
        mhs_tau: float = 1.2,
        cover: "Cover | None" = None,
        fanout_limit: int = 32,
        pipeline: "PipelineRun | None" = None,
    ) -> None:
        if sg is None and netlist is None:
            raise ValueError("LintContext needs a state graph or a netlist")
        self.sg = sg
        self.name = name
        self.source = source
        self.spread = spread
        self.method = method
        self.mhs_tau = mhs_tau
        self.fanout_limit = fanout_limit
        self.pipeline = pipeline
        self._netlist = netlist
        self._spec: "SopSpec | None" = None
        self._cover: "Cover | None" = cover
        self._injected_cover = cover is not None
        self._circuit: "NShotCircuit | None" = None
        self._certificate: "Certificate | None" = None

    # ------------------------------------------------------------------
    # lazy derived products
    # ------------------------------------------------------------------
    def require_sg(self) -> StateGraph:
        if self.sg is None:
            raise ValueError("rule needs a state graph but none was provided")
        return self.sg

    def require_spec(self) -> "SopSpec":
        """The derived multi-output (F, D, R) problem (Section IV-A)."""
        if self._spec is None:
            if self.pipeline is not None:
                self._spec = self.pipeline.sop()
            else:
                from ..core.sop_derivation import derive_sop_spec

                self._spec = derive_sop_spec(self.require_sg())
        return self._spec

    def require_cover(self) -> "Cover":
        """A minimized cover for the spec (unconstrained by hazards)."""
        if self._cover is None:
            if self.pipeline is not None:
                # the raw minimizer output, before Theorem 1 enforcement
                self._cover = self.pipeline.covers().minimized
            else:
                from ..logic import minimize

                spec = self.require_spec()
                self._cover = minimize(
                    spec.on, spec.dc, spec.off, method=self.method
                )
        return self._cover

    def require_circuit(self) -> "NShotCircuit":
        """The fully synthesized N-SHOT circuit (validation skipped —
        the engine has already run the pre-flight rules by the time a
        netlist-scope rule asks for this)."""
        if self._circuit is None:
            if self.pipeline is not None:
                self._circuit = self.pipeline.circuit()
            else:
                from ..core.synthesizer import synthesize

                self._circuit = synthesize(
                    self.require_sg(),
                    name=self.name,
                    method=self.method,
                    mhs_tau=self.mhs_tau,
                    delay_spread=self.spread,
                    validate=False,
                )
        return self._circuit

    def require_certificate(self) -> "Certificate":
        """The circuit's hazard certificate (the HZ rules' substrate),
        discharged once and shared across all five rule bodies.  When
        the run has a pipeline, the content-addressed ``certify`` stage
        serves it from the artifact store."""
        if self._certificate is None:
            if self.pipeline is not None:
                self._certificate = self.pipeline.certify()
            else:
                from .certify import certify_circuit

                self._certificate = certify_circuit(
                    self.require_circuit(), name=self.name
                )
        return self._certificate

    def require_netlist(self) -> Netlist:
        if self._netlist is None:
            self._netlist = self.require_circuit().netlist
        return self._netlist

    @property
    def has_own_netlist(self) -> bool:
        """True when the context was created over a pre-built netlist."""
        return self._netlist is not None

    @property
    def has_own_cover(self) -> bool:
        """True when a pre-minimized cover was injected at construction
        (tests seed fragmented/mutated covers this way); the hazard
        rules then certify that cover instead of the synthesized one."""
        return self._injected_cover

    # ------------------------------------------------------------------
    # location helpers
    # ------------------------------------------------------------------
    def location(self, kind: str, detail: str) -> Location:
        return Location(kind=kind, detail=detail, path=self.source)

    def graph_location(self) -> Location:
        return self.location("graph", self.name)
