"""State-graph rules: the Theorem-2 preconditions and SG hygiene.

These port the checks that used to live as ad-hoc string lists in
``sg/properties.py`` into registry rules with locations, severities
and fix-it hints.  The ``preflight=True`` subset (SG001/SG002/SG004)
is exactly what Theorem 2 requires before synthesis; the rest are
advisory diagnostics (``repro lint`` only).

The rule bodies call the same primitive check functions the rest of
the library uses (``consistency_witnesses``, ``code_conflicts``,
``semimodularity_violations``, region checkers) — the engine is an
aggregation layer, not a reimplementation.
"""

from __future__ import annotations

from typing import Iterator

from ..sg.properties import (
    code_conflicts,
    consistency_witnesses,
    semimodularity_violations,
)
from ..sg.regions import check_output_trapping, excitation_regions
from .context import LintContext
from .diagnostics import Diagnostic, Severity
from .registry import RuleMeta, Scope, rule

__all__: list[str] = []


def _signal_names(ctx: LintContext, indices: frozenset[int]) -> str:
    sg = ctx.require_sg()
    return "{" + ", ".join(sg.signals[i] for i in sorted(indices)) + "}"


@rule(
    "SG001",
    title="Inconsistent state assignment",
    severity=Severity.ERROR,
    scope=Scope.SG,
    preflight=True,
    paper="Section III-A (consistent state assignment)",
)
def check_consistency_rule(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """An arc violates the coding rules (``+x`` must flip exactly bit
    ``x`` from 0 to 1, ``-x`` from 1 to 0)."""
    sg = ctx.require_sg()
    for w in consistency_witnesses(sg):
        yield meta.diagnostic(
            w.message,
            ctx.location("state", repr(w.state)),
            hint=(
                "the state codes disagree with the arc label; graphs built "
                "through StateGraph.add_arc cannot reach this — re-derive "
                "the codes or fix the deserialized input"
            ),
            witness_message=w.message,
            witness=w,
        )


@rule(
    "SG002",
    title="Complete State Coding conflict",
    severity=Severity.ERROR,
    scope=Scope.SG,
    preflight=True,
    paper="Definition 1 (CSC)",
)
def check_csc_rule(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
    """Two states share a binary code but excite different non-input
    signals, so no combinational function can tell them apart."""
    sg = ctx.require_sg()
    for c in code_conflicts(sg):
        if not c.csc:
            continue
        yield meta.diagnostic(
            f"states {c.state_a!r} and {c.state_b!r} share code "
            f"{c.code:0{sg.num_signals}b} but excite "
            f"{_signal_names(ctx, c.excited_a)} vs "
            f"{_signal_names(ctx, c.excited_b)}",
            ctx.location("state-pair", f"{c.state_a!r} / {c.state_b!r}"),
            hint=(
                "insert an internal state signal separating the regions "
                "(repro.sg.insert_state_signal), the classic CSC repair"
            ),
            pair=(c.state_a, c.state_b),
            conflict=c,
        )


@rule(
    "SG003",
    title="Unique State Coding violation",
    severity=Severity.INFO,
    scope=Scope.SG,
    paper="Definition 1 (USC is strictly stronger than CSC)",
)
def check_usc_rule(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
    """Two states share a binary code with identical excitation — USC
    fails while CSC still holds (synthesizable, reported for
    awareness).  Pairs that also break CSC are reported by SG002 only.
    """
    sg = ctx.require_sg()
    for c in code_conflicts(sg):
        if c.csc:
            continue  # already an SG002 error
        yield meta.diagnostic(
            f"states {c.state_a!r} and {c.state_b!r} share code "
            f"{c.code:0{sg.num_signals}b} (identical excitation — CSC holds)",
            ctx.location("state-pair", f"{c.state_a!r} / {c.state_b!r}"),
            pair=(c.state_a, c.state_b),
        )


@rule(
    "SG004",
    title="Semi-modularity violation",
    severity=Severity.ERROR,
    scope=Scope.SG,
    preflight=True,
    paper="Definition 2 (semi-modular with input choices)",
)
def check_semimodularity_rule(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """An enabled non-input transition can be disabled by another
    transition (or the two interleavings do not close a diamond)."""
    sg = ctx.require_sg()
    for v in semimodularity_violations(sg):
        what = (
            "is disabled by"
            if v.kind == "disabled"
            else "does not commute (no diamond) with"
        )
        yield meta.diagnostic(
            f"at state {v.state!r}, non-input transition "
            f"{v.t1.label(sg.signals)} {what} {v.t2.label(sg.signals)}",
            ctx.location("state", repr(v.state)),
            hint=(
                "only input transitions may disable each other (input "
                "choice); restructure the specification so the output "
                "transition stays enabled"
            ),
            violation=v,
        )


@rule(
    "SG005",
    title="Unreachable states",
    severity=Severity.WARNING,
    scope=Scope.SG,
    paper="Section III-A (SG semantics)",
)
def check_reachability_rule(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """States unreachable from the initial state: dead specification
    weight that silently widens the don't-care set."""
    sg = ctx.require_sg()
    reachable = sg.reachable()
    dead = [s for s in sg.states() if s not in reachable]
    if dead:
        shown = ", ".join(sorted(repr(s) for s in dead)[:4])
        if len(dead) > 4:
            shown += ", …"
        yield meta.diagnostic(
            f"{len(dead)} of {sg.num_states} states unreachable from "
            f"initial {sg.initial!r}: {shown}",
            ctx.graph_location(),
            hint="drop them with StateGraph.restrict_to_reachable()",
            states=tuple(dead),
        )


@rule(
    "SG006",
    title="Excitation region not output-trapping",
    severity=Severity.WARNING,
    scope=Scope.SG,
    paper="Property 1 (output trapping)",
)
def check_output_trapping_rule(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """A transition of another signal escapes an excitation region —
    Property 1 fails (always accompanied by a semi-modularity error,
    but localized to the region here)."""
    sg = ctx.require_sg()
    for a in sg.non_inputs:
        for er in excitation_regions(sg, a):
            for state, escaped_to in check_output_trapping(sg, er):
                yield meta.diagnostic(
                    f"{er.label(sg)} can be left from state {state!r} to "
                    f"{escaped_to!r} without firing "
                    f"{'+' if er.rising else '-'}{sg.signals[a]}",
                    ctx.location("region", er.label(sg)),
                    escape=(state, escaped_to),
                )
