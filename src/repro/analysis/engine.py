"""The analysis engine: phased rule execution over one context.

Rules run in scope order — ``SG`` first, then ``COVER`` (which pays
for SOP derivation and minimization), then ``NETLIST`` (which pays for
synthesis).  A scope only runs when every earlier scope finished
without error-severity findings: there is no point minimizing a graph
that is not even consistent, and no netlist exists for a spec whose
trigger requirement is unsatisfiable.  Skipped scopes are recorded on
the result so exporters can say the analysis was partial.

A rule body that raises does not abort the run: the exception becomes
an ``ENGINE`` internal-error diagnostic and maps to exit code 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..netlist.netlist import Netlist
from ..obs import get_metrics, trace_span
from ..sg.graph import StateGraph
from .context import LintContext
from .diagnostics import Diagnostic, Location, Severity
from .registry import Rule, RuleRegistry, Scope, default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ..pipeline.dag import PipelineRun

__all__ = ["AnalysisResult", "run_rules", "analyze", "run_preflight"]

#: scope execution order
_SCOPE_ORDER = (Scope.SG, Scope.COVER, Scope.NETLIST)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2


@dataclass
class AnalysisResult:
    """Everything one lint run produced."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    scopes_run: list[str] = field(default_factory=list)
    scopes_skipped: list[str] = field(default_factory=list)
    rules_run: int = 0
    internal_errors: int = 0
    suppressed: int = 0

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def infos(self) -> int:
        return self.count(Severity.INFO)

    @property
    def ok(self) -> bool:
        """No error-severity findings and no internal failures."""
        return self.errors == 0 and self.internal_errors == 0

    def exit_code(self, strict: bool = False) -> int:
        """CLI contract: 0 clean, 1 findings, 2 internal error.

        ``strict`` promotes warnings to findings.
        """
        if self.internal_errors:
            return EXIT_INTERNAL
        if self.errors or (strict and self.warnings):
            return EXIT_FINDINGS
        return EXIT_CLEAN

    def by_rule(self) -> dict[str, list[Diagnostic]]:
        out: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule_id, []).append(d)
        return out

    def summary(self) -> str:
        if not self.diagnostics and not self.internal_errors and not self.suppressed:
            return f"{self.name}: clean ({self.rules_run} rules)"
        parts = []
        if self.errors:
            parts.append(f"{self.errors} error(s)")
        if self.warnings:
            parts.append(f"{self.warnings} warning(s)")
        if self.infos:
            parts.append(f"{self.infos} info(s)")
        if self.internal_errors:
            parts.append(f"{self.internal_errors} internal error(s)")
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed")
        skipped = (
            f" [scopes skipped: {', '.join(self.scopes_skipped)}]"
            if self.scopes_skipped
            else ""
        )
        return f"{self.name}: " + ", ".join(parts) + skipped

    def suppress(self, fingerprints: set[str]) -> "AnalysisResult":
        """A copy with baseline-suppressed diagnostics removed."""
        kept = [
            d for d in self.diagnostics if d.fingerprint_key() not in fingerprints
        ]
        out = AnalysisResult(
            name=self.name,
            diagnostics=kept,
            scopes_run=list(self.scopes_run),
            scopes_skipped=list(self.scopes_skipped),
            rules_run=self.rules_run,
            internal_errors=self.internal_errors,
            suppressed=self.suppressed + len(self.diagnostics) - len(kept),
        )
        return out


def _run_one(rule: Rule, ctx: LintContext, result: AnalysisResult) -> None:
    with trace_span("lint.rule", rule=rule.meta.id) as sp:
        try:
            found = list(rule.run(ctx))
        except Exception as exc:  # noqa: BLE001 - rule crashes become diagnostics
            result.internal_errors += 1
            result.diagnostics.append(
                Diagnostic(
                    rule_id="ENGINE",
                    severity=Severity.ERROR,
                    message=(
                        f"rule {rule.meta.id} crashed: "
                        f"{type(exc).__name__}: {exc}"
                    ),
                    location=Location("graph", ctx.name, ctx.source),
                )
            )
            sp.set(crashed=True)
            return
        result.rules_run += 1
        result.diagnostics.extend(found)
        sp.set(findings=len(found))


def run_rules(
    ctx: LintContext,
    registry: RuleRegistry | None = None,
    *,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    preflight_only: bool = False,
) -> AnalysisResult:
    """Run (a selection of) the registry's rules over one context.

    Scopes execute in order and a scope is skipped — recorded in
    ``scopes_skipped`` — once any earlier scope produced an error.
    Contexts without a state graph run only ``NETLIST``-scope rules;
    contexts with a graph and a pre-built netlist run every scope but
    the netlist rules see the provided netlist.
    """
    reg = registry if registry is not None else default_registry()
    rules = reg.select(select, ignore)
    if preflight_only:
        rules = [r for r in rules if r.meta.preflight]
    result = AnalysisResult(name=ctx.name)
    metrics = get_metrics()
    with trace_span("lint", circuit=ctx.name) as sp:
        abort = False
        for scope in _SCOPE_ORDER:
            in_scope = [r for r in rules if r.meta.scope is scope]
            if not in_scope:
                continue
            if scope is not Scope.NETLIST and ctx.sg is None:
                continue  # netlist-only context: nothing to run here
            if abort:
                result.scopes_skipped.append(scope.value)
                continue
            result.scopes_run.append(scope.value)
            for rule in in_scope:
                _run_one(rule, ctx, result)
            if result.errors or result.internal_errors:
                abort = True
        sp.set(
            rules=result.rules_run,
            findings=len(result.diagnostics),
            errors=result.errors,
        )
    metrics.counter("lint.runs").add(1)
    metrics.counter("lint.diagnostics").add(len(result.diagnostics))
    return result


def analyze(
    sg: StateGraph | None = None,
    netlist: Netlist | None = None,
    *,
    name: str = "spec",
    source: str | None = None,
    spread: float = 0.0,
    method: str = "espresso",
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    registry: RuleRegistry | None = None,
    fanout_limit: int = 32,
    pipeline: PipelineRun | None = None,
) -> AnalysisResult:
    """Convenience wrapper: build a context and run every rule."""
    ctx = LintContext(
        sg,
        netlist,
        name=name,
        source=source,
        spread=spread,
        method=method,
        fanout_limit=fanout_limit,
        pipeline=pipeline,
    )
    return run_rules(ctx, registry, select=select, ignore=ignore)


def run_preflight(sg: StateGraph, name: str = "spec") -> AnalysisResult:
    """The synthesizer's pre-flight pass: only the Theorem-2
    precondition rules (``preflight=True``), all SG-scope, so nothing
    is minimized or mapped."""
    ctx = LintContext(sg, name=name)
    return run_rules(ctx, preflight_only=True)
