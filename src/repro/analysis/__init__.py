"""Static analysis: the N-SHOT lint engine.

Theorem 2 reduces hazard-freeness of an N-SHOT implementation to
statically checkable preconditions — semi-modularity with input
choices, CSC, the single-cube trigger requirement (Theorem 1) and the
delay requirement (Equation (1)).  This package turns those checks
(plus netlist-level structural audits) into a first-class diagnostics
engine:

* :mod:`repro.analysis.diagnostics` — :class:`Diagnostic` /
  :class:`Severity` / :class:`Location`;
* :mod:`repro.analysis.registry` — the ``@rule(...)`` registry;
* :mod:`repro.analysis.rules_sg` / ``rules_trigger`` /
  ``rules_netlist`` / ``rules_hazard`` — the built-in rule catalog
  (see docs/ANALYSIS.md);
* :mod:`repro.analysis.certify` — the symbolic hazard certifier the
  HZ rules surface (proof obligations, ``repro-certificate/1``
  documents, differential soundness harness);
* :mod:`repro.analysis.engine` — phased execution
  (:func:`run_rules`, :func:`analyze`, :func:`run_preflight`);
* :mod:`repro.analysis.export` — text / ``repro-lint/1`` JSON /
  SARIF 2.1.0 renderers;
* :mod:`repro.analysis.baseline` — baseline suppression files.

The synthesizer's pre-flight validation and the ``repro lint`` CLI
both consume this engine — there is no second validation path.
"""

from .baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    build_baseline,
    load_baseline,
)
from .context import LintContext
from .diagnostics import Diagnostic, Location, Severity
from .engine import AnalysisResult, analyze, run_preflight, run_rules
from .export import LINT_SCHEMA, render_json, render_sarif, render_text
from .registry import Rule, RuleMeta, RuleRegistry, Scope, default_registry, rule

# importing the rule modules registers the built-in catalog
from . import rules_sg as _rules_sg  # noqa: F401  (registration side effect)
from . import rules_trigger as _rules_trigger  # noqa: F401
from . import rules_netlist as _rules_netlist  # noqa: F401
from . import rules_hazard as _rules_hazard  # noqa: F401

__all__ = [
    "Diagnostic",
    "Location",
    "Severity",
    "Rule",
    "RuleMeta",
    "RuleRegistry",
    "Scope",
    "rule",
    "default_registry",
    "LintContext",
    "AnalysisResult",
    "analyze",
    "run_rules",
    "run_preflight",
    "LINT_SCHEMA",
    "render_text",
    "render_json",
    "render_sarif",
    "BASELINE_SCHEMA",
    "build_baseline",
    "load_baseline",
    "apply_baseline",
]
