"""Netlist-level structural rules and the static Equation-(1) audit.

These run in the ``NETLIST`` scope, over either a netlist synthesized
on demand from the context's SG (the ``repro lint`` flow) or a
pre-built netlist handed to the context directly (post-hoc audits,
tests).

* **NL001** — combinational loops outside the sanctioned feedback:
  every feedback path of the N-SHOT architecture (plane → MHS
  flip-flop → enable rail → plane) crosses a sequential cell or an
  explicit ``cut`` buffer, so any purely combinational cycle is a
  wiring bug that would also break the delay model.
* **NL002/NL003** — dangling-net audit: undriven gate inputs and
  primary outputs (errors), driven nets nobody reads (warnings).
* **NL004/NL005** — MHS wiring and acknowledgement-scheme shape: the
  flip-flop must be dual-rail with exactly ``[set, reset]`` inputs and
  a 0/1 ``init``; each plane's ack gate must be gated by the correct
  enable rail (``qn`` for set, ``q`` for reset), possibly through the
  Equation-(1) delay line.
* **NL006** — fanout audit beyond the context's ``fanout_limit``.
* **DL001** — Equation (1) evaluated at the context's delay spread:
  a positive bound means the architecture needs the local delay line.
"""

from __future__ import annotations

from typing import Iterator

from ..netlist.gates import Gate, GateType
from ..netlist.netlist import Netlist
from .context import LintContext
from .diagnostics import Diagnostic, Severity
from .registry import RuleMeta, Scope, rule

__all__: list[str] = []


def _is_path_break(g: Gate) -> bool:
    """True for cells that legitimately break combinational paths."""
    return g.is_sequential or bool(g.attrs.get("cut"))


@rule(
    "NL001",
    title="Combinational loop",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Figure 3 (all feedback crosses the MHS flip-flop)",
)
def check_combinational_loops(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """A cycle of combinational gates with no sequential cell or cut
    buffer on it — outside the sanctioned MHS/ack feedback."""
    nl = ctx.require_netlist()
    # DFS over combinational gates; an edge runs from the driver of a
    # gate's input net to the gate itself.
    color: dict[int, int] = {}  # gate index -> 0 visiting / 1 done
    index = {id(g): i for i, g in enumerate(nl.gates)}
    reported: set[frozenset[str]] = set()

    def comb_preds(g: Gate) -> list[Gate]:
        out = []
        for p in g.inputs:
            drv = nl.driver(p.net)
            if drv is not None and not _is_path_break(drv):
                out.append(drv)
        return out

    stack_names: list[str] = []

    def visit(g: Gate) -> Iterator[frozenset[str]]:
        i = index[id(g)]
        if color.get(i) == 1:
            return
        if color.get(i) == 0:
            cycle = frozenset(stack_names[stack_names.index(g.name) :])
            yield cycle
            return
        color[i] = 0
        stack_names.append(g.name)
        for pred in comb_preds(g):
            yield from visit(pred)
        stack_names.pop()
        color[i] = 1

    for g in nl.gates:
        if _is_path_break(g):
            continue
        for cycle in visit(g):
            if cycle in reported:
                continue
            reported.add(cycle)
            yield meta.diagnostic(
                f"combinational cycle through gates "
                f"{{{', '.join(sorted(cycle))}}} with no sequential cell "
                f"or cut buffer on the path",
                ctx.location("gate", sorted(cycle)[0]),
                hint=(
                    "feedback must cross the MHS flip-flop (or carry an "
                    "explicit cut attribute, like baseline output buffers)"
                ),
                gates=tuple(sorted(cycle)),
            )


@rule(
    "NL002",
    title="Undriven net",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
)
def check_undriven_nets(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
    """A gate input or primary output with no driver."""
    nl = ctx.require_netlist()
    driven = set(nl.primary_inputs)
    driven.update(n for g in nl.gates for n in (g.output, g.output_n) if n)
    seen: set[str] = set()
    for g in nl.gates:
        for p in g.inputs:
            if p.net not in driven and p.net not in seen:
                seen.add(p.net)
                yield meta.diagnostic(
                    f"net {p.net!r} read by gate {g.name} has no driver",
                    ctx.location("net", p.net),
                    net=p.net,
                )
    for po in nl.primary_outputs:
        if po not in driven and po not in seen:
            seen.add(po)
            yield meta.diagnostic(
                f"primary output {po!r} has no driver",
                ctx.location("net", po),
                net=po,
            )


@rule(
    "NL003",
    title="Dangling net",
    severity=Severity.WARNING,
    scope=Scope.NETLIST,
)
def check_dangling_nets(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
    """A driven net that no gate reads and that is not a primary
    output: dead logic left behind by an incomplete edit."""
    nl = ctx.require_netlist()
    read = {p.net for g in nl.gates for p in g.inputs}
    read.update(nl.primary_outputs)
    for g in nl.gates:
        for net in (g.output, g.output_n):
            if net and net not in read:
                yield meta.diagnostic(
                    f"net {net!r} driven by gate {g.name} is never read",
                    ctx.location("net", net),
                    hint="remove the gate or connect its output",
                    net=net,
                )


@rule(
    "NL004",
    title="Malformed MHS flip-flop wiring",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Figure 5 (MHS flip-flop)",
)
def check_mhs_shape(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
    """An MHSFF cell without the ``[set, reset]`` input pair, the dual
    ``q``/``qn`` rails, or a binary ``init`` attribute."""
    nl = ctx.require_netlist()
    for g in nl.gates:
        if g.type is not GateType.MHSFF:
            continue
        loc = ctx.location("gate", g.name)
        if len(g.inputs) != 2:
            yield meta.diagnostic(
                f"MHS flip-flop {g.name} has {len(g.inputs)} inputs "
                f"(needs exactly [set, reset])",
                loc,
                gate=g.name,
            )
        if not g.output or not g.output_n:
            yield meta.diagnostic(
                f"MHS flip-flop {g.name} is not dual-rail "
                f"(q={g.output!r}, qn={g.output_n!r})",
                loc,
                gate=g.name,
            )
        elif g.output == g.output_n:
            yield meta.diagnostic(
                f"MHS flip-flop {g.name} drives the same net on both rails",
                loc,
                gate=g.name,
            )
        if g.attrs.get("init") not in (0, 1):
            yield meta.diagnostic(
                f"MHS flip-flop {g.name} has no binary init attribute "
                f"(got {g.attrs.get('init')!r})",
                loc,
                hint="analyze_initialization assigns the SG initial value",
                gate=g.name,
            )


def _enable_sources(nl: Netlist, net: str) -> set[str]:
    """Nets feeding ``net`` directly or through DELAY/BUF cells."""
    out = {net}
    drv = nl.driver(net)
    while drv is not None and drv.type in (GateType.DELAY, GateType.BUF):
        if not drv.inputs:
            break
        net = drv.inputs[0].net
        out.add(net)
        drv = nl.driver(net)
    return out


@rule(
    "NL005",
    title="Acknowledgement scheme shape",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Section IV-C (acknowledgement scheme)",
)
def check_ack_scheme(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
    """The set (reset) plane of an MHS flip-flop must be gated by the
    ``qn`` (``q``) enable rail, possibly through a delay line —
    otherwise pulses can trespass into the opposite operation phase."""
    nl = ctx.require_netlist()
    for g in nl.gates:
        if g.type is not GateType.MHSFF or len(g.inputs) != 2:
            continue
        rails = {"set": g.output_n, "reset": g.output}
        for pin, kind in zip(g.inputs, ("set", "reset")):
            drv = nl.driver(pin.net)
            if drv is None:
                continue  # NL002's problem
            if drv.type is GateType.CONST:
                continue  # constant-0 plane never excites: no ack needed
            rail = rails[kind]
            ok = drv.type is GateType.AND and any(
                rail in _enable_sources(nl, p.net) for p in drv.inputs
            )
            if not ok:
                yield meta.diagnostic(
                    f"{kind} input of {g.name} is driven by {drv.name} "
                    f"({drv.type.value}) without the {kind}-enable rail "
                    f"{rail!r} on the gate",
                    ctx.location("gate", g.name),
                    hint=(
                        "the plane output must pass through an AND gated "
                        "by the opposite-rail enable (Figure 3)"
                    ),
                    gate=g.name,
                    kind=kind,
                )


@rule(
    "NL006",
    title="Excessive fanout",
    severity=Severity.WARNING,
    scope=Scope.NETLIST,
)
def check_fanout(ctx: LintContext, meta: RuleMeta) -> Iterator[Diagnostic]:
    """A net fanning out to more gates than the context's limit —
    the equal-gate-delay model underlying Equation (1) stops being
    credible under heavy loading."""
    nl = ctx.require_netlist()
    readers: dict[str, int] = {}
    for g in nl.gates:
        for p in g.inputs:
            readers[p.net] = readers.get(p.net, 0) + 1
    for net, count in sorted(readers.items()):
        if count > ctx.fanout_limit:
            yield meta.diagnostic(
                f"net {net!r} fans out to {count} gate inputs "
                f"(limit {ctx.fanout_limit})",
                ctx.location("net", net),
                hint="buffer the net or raise the context's fanout_limit",
                net=net,
                fanout=count,
            )


@rule(
    "DL001",
    title="Delay compensation required",
    severity=Severity.WARNING,
    scope=Scope.NETLIST,
    paper="Equation (1), Section IV-C",
)
def check_delay_requirement(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """Equation (1) evaluated at the configured gate-delay spread is
    positive for a signal: the architecture must insert the parallel
    local delay line (the paper reports this never fired on its
    benchmarks at the nominal bound)."""
    if ctx.sg is None or ctx.has_own_netlist:
        return  # needs the synthesized plane timings
    circuit = ctx.require_circuit()
    for req in circuit.delay_requirements.values():
        if req.compensation_required:
            yield meta.diagnostic(
                f"Equation (1) positive at spread ±{ctx.spread:.0%}: "
                + req.describe(),
                ctx.location("signal", req.signal_name),
                hint=(
                    "the delay line sits off the critical path (Figure 3); "
                    "re-check the library spread assumption if unexpected"
                ),
                requirement=req,
            )
