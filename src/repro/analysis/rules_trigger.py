"""Trigger-requirement rules — Theorem 1 and Corollary 1, statically.

These rules run in the ``COVER`` scope: they need the derived SOP
specification and (for TR003) a minimized cover, but no netlist.

* **TR001** is the hard Theorem-1 infeasibility: a trigger region
  whose state-set supercube intersects the function's OFF-set, so *no*
  cover can satisfy the single-cube trigger requirement — the SG must
  be transformed before any hazard-free N-SHOT implementation exists.
  This is the same condition :func:`repro.core.trigger.enforce_trigger_cubes`
  raises :class:`~repro.core.trigger.TriggerRequirementError` for,
  surfaced as a diagnostic before synthesis is attempted.
* **TR002** classifies signals by Definition 9: non-single-traversal
  signals are legal but lose the Corollary-1 free pass, so trigger
  cubes may be inserted during synthesis (area cost).
* **TR003** audits a concrete minimized cover: an uncovered trigger
  region is repairable (the enforcement step adds a prime supercube),
  reported so the cost is visible up front.
"""

from __future__ import annotations

from typing import Iterator

from ..core.trigger import check_trigger_cubes, trigger_infeasibilities
from ..logic.cover import Cover
from ..sg.regions import (
    Region,
    excitation_regions,
    is_single_traversal_for,
    trigger_regions,
)
from .context import LintContext
from .diagnostics import Diagnostic, Severity
from .registry import RuleMeta, Scope, rule

__all__: list[str] = []


def _region_states(region: Region) -> str:
    shown = sorted(repr(s) for s in region.states)
    return "{" + ", ".join(shown[:4]) + (", …}" if len(shown) > 4 else "}")


@rule(
    "TR001",
    title="Trigger requirement unsatisfiable",
    severity=Severity.ERROR,
    scope=Scope.COVER,
    paper="Theorem 1 / Requirement 1",
)
def check_trigger_feasibility(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """A trigger region's supercube intersects the OFF-set: no single
    cube can cover the region, so no hazard-free N-SHOT implementation
    exists for this SG without state-signal insertion."""
    spec = ctx.require_spec()
    sg = spec.sg
    for signal, kind, tr in trigger_infeasibilities(spec):
        yield meta.diagnostic(
            f"trigger region of {kind}({sg.signals[signal]}) spans "
            f"OFF-set points; no trigger cube exists "
            f"(states {_region_states(tr)})",
            ctx.location("region", f"TR of {kind}({sg.signals[signal]})"),
            hint=(
                "transform the SG (e.g. insert a state signal serializing "
                "the region) so the trigger region fits one cube"
            ),
            region=tr,
        )


@rule(
    "TR002",
    title="Not single-traversal",
    severity=Severity.INFO,
    scope=Scope.COVER,
    paper="Definition 9 / Corollary 1",
)
def check_single_traversal(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """A signal has a multi-state trigger region: Corollary 1's free
    pass does not apply and synthesis may add trigger cubes."""
    sg = ctx.require_sg()
    for a in sg.non_inputs:
        if is_single_traversal_for(sg, a):
            continue
        widest = max(
            len(tr.states)
            for er in excitation_regions(sg, a)
            for tr in trigger_regions(sg, er)
        )
        yield meta.diagnostic(
            f"signal {sg.signals[a]} is not single-traversal (widest "
            f"trigger region has {widest} states); trigger-cube "
            f"enforcement may add cubes",
            ctx.location("signal", sg.signals[a]),
            signal=a,
        )


@rule(
    "TR003",
    title="Minimized cover misses a trigger cube",
    severity=Severity.WARNING,
    scope=Scope.COVER,
    paper="Theorem 1 (repairable case)",
)
def check_cover_trigger_cubes(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """The unconstrained minimized cover leaves a trigger region
    without a covering cube; enforcement will repair it by inserting
    the region's prime supercube (area cost)."""
    spec = ctx.require_spec()
    cover: Cover = ctx.require_cover()
    sg = spec.sg
    for chk in check_trigger_cubes(spec, cover):
        for tr in chk.uncovered:
            yield meta.diagnostic(
                f"no cube of {chk.kind}({sg.signals[chk.signal]}) covers "
                f"trigger region {_region_states(tr)}",
                ctx.location(
                    "region", f"TR of {chk.kind}({sg.signals[chk.signal]})"
                ),
                hint=(
                    "enforce_trigger_cubes adds the region's supercube "
                    "expanded to a prime (done automatically by synthesize)"
                ),
                region=tr,
            )
