"""Hazard-certification rules — the HZ family (symbolic certifier).

Each rule surfaces one obligation family of the static hazard
certifier (:mod:`repro.analysis.certify`) through the lint engine, so
refuted obligations flow into the same text/JSON/SARIF exporters,
baselines and CI gates as every other rule.  All five run in the
``NETLIST`` scope: they certify the *synthesized* circuit (final
cover, lowered architecture, inserted delay lines), not the raw
minimized cover TR003 audits.

Verdict mapping: ``refuted`` obligations are ERROR diagnostics,
``unknown`` obligations are WARNING diagnostics (statically
undecidable — fall back to simulation), ``proved`` obligations are
silent.  When a test injects a hand-built cover into the context, the
cover-level rules (HZ001–HZ003) certify that cover against the derived
spec instead — the seam the seeded-violation tests use.
"""

from __future__ import annotations

from typing import Iterator

from .certify.engine import (
    coverage_obligations,
    disjointness_obligations,
    trigger_obligations,
)
from .certify.obligations import Obligation
from .context import LintContext
from .diagnostics import Diagnostic, Severity
from .registry import RuleMeta, Scope, rule

__all__: list[str] = []


def _cover_family(ctx: LintContext, rule_id: str) -> list[Obligation]:
    """Obligations of one cover-level family (HZ001–HZ003).

    Injected covers (test seam) are certified directly; otherwise the
    synthesized circuit's certificate is shared across all HZ rules.
    """
    if ctx.has_own_cover and ctx.sg is not None:
        spec = ctx.require_spec()
        cover = ctx.require_cover()
        fn = {
            "HZ001": trigger_obligations,
            "HZ002": coverage_obligations,
            "HZ003": disjointness_obligations,
        }[rule_id]
        return fn(spec, cover)
    return _certified_family(ctx, rule_id)


def _certified_family(ctx: LintContext, rule_id: str) -> list[Obligation]:
    cert = ctx.require_certificate()
    return [ob for ob in cert.obligations if ob.rule == rule_id]


def _emit(
    ctx: LintContext, meta: RuleMeta, obligations: list[Obligation]
) -> Iterator[Diagnostic]:
    """Refuted → ERROR (rule default), unknown → WARNING, proved → silent."""
    for ob in obligations:
        if ob.proved:
            continue
        where = f"{ob.kind}({ob.signal})" if ob.kind else ob.signal
        yield meta.diagnostic(
            f"{ob.subject} — {ob.verdict}"
            + (f": {ob.detail}" if ob.detail else ""),
            ctx.location("obligation", f"{meta.id} {where}"),
            hint=(
                None
                if ob.refuted
                else "statically undecidable; verify by simulation"
            ),
            severity=None if ob.refuted else Severity.WARNING,
            witness=ob.witness,
        )


@rule(
    "HZ001",
    title="Trigger region not held by a single cube",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Theorem 1 / Requirement 1",
)
def check_trigger_containment(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """A trigger region of the final cover is not covered by any single
    product, so the trigger pulse can fragment below the MHS commit
    width — the Theorem 1 containment obligation is refuted."""
    yield from _emit(ctx, meta, _cover_family(ctx, "HZ001"))


@rule(
    "HZ002",
    title="ON-set transition cube not covered (static-1)",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Section IV-A (static-1 hazard condition)",
)
def check_required_cubes(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """An excited ON-set cube escapes every product of its cover
    column: the plane output can drop mid-transition (static-1
    hazard)."""
    yield from _emit(ctx, meta, _cover_family(ctx, "HZ002"))


@rule(
    "HZ003",
    title="Cover product intersects the OFF-set (static-0)",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Section IV-A (static-0 hazard condition)",
)
def check_off_disjointness(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """A product of a cover column intersects that function's OFF-set:
    the plane can excite in the opposite operation phase (static-0
    hazard)."""
    yield from _emit(ctx, meta, _cover_family(ctx, "HZ003"))


@rule(
    "HZ004",
    title="Equation (1) delay obligation unmet",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Equation (1) / Section IV-C",
)
def check_delay_inequalities(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """The per-signal trespass inequality, re-derived from the
    architecture's plane timings, is positive but the implementation
    carries no (or too short a) enable-rail delay line."""
    yield from _emit(ctx, meta, _certified_family(ctx, "HZ004"))


@rule(
    "HZ005",
    title="Theorem 2 ω-margin not established",
    severity=Severity.ERROR,
    scope=Scope.NETLIST,
    paper="Theorem 2 (ω < τ pulse-width condition)",
)
def check_omega_margin(
    ctx: LintContext, meta: RuleMeta
) -> Iterator[Diagnostic]:
    """The closed-form pulse-width bound ω < τ·(1−spread) fails —
    refuted when ω ≥ τ (the filter cannot work at all), unknown when
    only the derating margin is exhausted."""
    yield from _emit(ctx, meta, _certified_family(ctx, "HZ005"))
