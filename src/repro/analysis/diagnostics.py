"""Structured diagnostics for the static-analysis subsystem.

A :class:`Diagnostic` is one finding of one rule: a stable rule id, a
severity, a precise :class:`Location` (a state, a state pair, a
signal, an excitation/trigger region, a cube, or a netlist gate/net),
a human-readable message and an optional fix-it hint.  Diagnostics are
plain data — every exporter (text, ``repro-lint/1`` JSON, SARIF
2.1.0) and the baseline-suppression machinery renders the same
objects, and the ``data`` mapping carries the original witness objects
so legacy aggregate reports (``SGValidationReport``) can be rebuilt
from engine output without a second validation path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Severity", "Location", "Diagnostic"]


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    @property
    def sarif_level(self) -> str:
        """SARIF 2.1.0 ``level`` value for this severity."""
        return {"info": "note", "warning": "warning", "error": "error"}[self.value]


@dataclass(frozen=True)
class Location:
    """Where a diagnostic anchors.

    ``kind`` names the anchor class; ``detail`` is its human-readable
    identity (a state id repr, a region label, a gate name, …);
    ``path`` is the source spec file when the analysis target came from
    one (drives the SARIF physical location).
    """

    kind: str  # "state" | "state-pair" | "signal" | "region" | "cube" | "gate" | "net" | "graph"
    detail: str
    path: str | None = None

    def render(self) -> str:
        prefix = f"{self.path}: " if self.path else ""
        return f"{prefix}{self.kind} {self.detail}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule."""

    rule_id: str
    severity: Severity
    message: str
    location: Location
    hint: str | None = None
    #: original witness objects (rule-specific), excluded from equality
    data: Mapping[str, object] = field(default_factory=dict, compare=False)

    def fingerprint_key(self) -> str:
        """Stable identity used by the baseline-suppression file."""
        return "|".join(
            (self.rule_id, self.location.kind, self.location.detail, self.message)
        )

    def render(self) -> str:
        line = (
            f"{self.severity.value}[{self.rule_id}] "
            f"{self.location.render()}: {self.message}"
        )
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line
