"""Symbolic hazard certifier: static proofs of external hazard-freeness.

Public surface:

* :func:`certify_circuit` — discharge every obligation family over a
  synthesized circuit, returning a :class:`Certificate`.
* The per-family obligation functions (``trigger_obligations`` …) for
  obligation-level testing and the HZ lint rules.
* The differential soundness harness (:func:`cross_check`,
  :func:`differential_suite`, :func:`differential_corpus`).
"""

from .differential import (
    DifferentialOutcome,
    SoundnessError,
    archive_soundness_failure,
    cross_check,
    differential_corpus,
    differential_suite,
)
from .engine import (
    certify_circuit,
    certify_cover,
    coverage_obligations,
    delay_obligations,
    disjointness_obligations,
    omega_obligations,
    trigger_obligations,
)
from .obligations import (
    CERT_SCHEMA,
    PROVED,
    REFUTED,
    UNKNOWN,
    Certificate,
    Obligation,
)

__all__ = [
    "CERT_SCHEMA",
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "Certificate",
    "DifferentialOutcome",
    "Obligation",
    "SoundnessError",
    "archive_soundness_failure",
    "certify_circuit",
    "certify_cover",
    "coverage_obligations",
    "cross_check",
    "delay_obligations",
    "differential_corpus",
    "differential_suite",
    "disjointness_obligations",
    "omega_obligations",
    "trigger_obligations",
]
