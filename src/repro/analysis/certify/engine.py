"""Symbolic discharge of the hazard-freeness proof obligations.

The engine turns the paper's externally-hazard-free argument into five
obligation families, each discharged purely symbolically against the
synthesized SOP covers and the lowered architecture — no simulation:

``HZ001`` (Theorem 1)
    Every trigger region of every excitation region is covered by a
    *single* cube of the corresponding cover column.  Witness: the
    covering cube (or the uncovered states).
``HZ002`` (static-1 / required cubes)
    Every ON-set transition cube of every set/reset function is covered
    by its cover column — no required excitation can drop out
    mid-transition.  Discharged by cofactor tautology
    (:func:`~repro.logic.tautology.covers_cube`).  Witness: the covered
    cube (or the uncovered residue from the sharp product).
``HZ003`` (static-0)
    No product of a cover column intersects that function's OFF-set —
    the plane cannot excite in the opposite phase.  Witness: the
    product (or the intersecting OFF cube).
``HZ004`` (Equation (1))
    The per-signal trespass inequality, re-derived from the
    architecture's plane timings as an explicit per-path inequality
    instantiation; when the bound is positive, the netlist must carry
    the matching ``del_{kind}_{sig}`` delay line.  Witness: every term
    of the inequality.
``HZ005`` (Theorem 2 ω-margin)
    The closed-form pulse-width bound: a legitimate trigger pulse is
    held by acknowledgement for at least the flip-flop response τ
    (derated by the designed delay spread), so it commits the master
    latch iff ``ω < τ·(1−spread)``.  ``ω ≥ τ`` refutes (the filter
    cannot separate glitches from triggers); a non-positive derated
    margin is ``unknown`` — the static bound cannot decide and the
    Monte-Carlo histogram must.

Soundness over completeness: every discharge is wrapped so an engine
failure yields ``unknown``, never ``proved``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from ...core.delays import DelayRequirement
from ...logic.complement import cube_sharp
from ...logic.cover import Cover
from ...logic.tautology import covers_cube
from ...netlist.gates import GateType
from ...netlist.library import DEFAULT_LIBRARY, Library
from ...obs import get_metrics, trace_span
from ...sg.regions import Region, trigger_regions
from ...sim.mhs import MhsParams
from .obligations import PROVED, REFUTED, UNKNOWN, Certificate, Obligation

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from ...core.sop_derivation import SopSpec
    from ...core.synthesizer import NShotCircuit

__all__ = [
    "trigger_obligations",
    "coverage_obligations",
    "disjointness_obligations",
    "delay_obligations",
    "omega_obligations",
    "certify_cover",
    "certify_circuit",
]

#: witness-size cap: long cube lists are truncated to keep certificates
#: readable; the count always records what was dropped
_WITNESS_CUBES = 4

_TOL = 1e-9


def _states(region: Region) -> list[str]:
    return sorted(str(s) for s in region.states)


def _guarded(
    fn: Callable[[], Iterable[Obligation]],
    rule: str,
    signal: str,
    kind: str,
) -> list[Obligation]:
    """Discharge one family; a crash becomes ``unknown``, never silence.

    The soundness contract is one-directional: the engine may fail to
    decide, but it must never *claim* a proof it did not finish.
    """
    try:
        return list(fn())
    except Exception as exc:  # noqa: BLE001 - verdict, not crash
        return [
            Obligation(
                rule=rule,
                signal=signal,
                kind=kind,
                subject="obligation family discharge",
                verdict=UNKNOWN,
                witness={"error": f"{type(exc).__name__}: {exc}"},
                detail="engine failure during discharge; falling back to simulation",
            )
        ]


# ----------------------------------------------------------------------
# HZ001 — Theorem 1 trigger-region containment
# ----------------------------------------------------------------------
def trigger_obligations(spec: "SopSpec", cover: Cover) -> list[Obligation]:
    """One obligation per trigger region: covered by a single cube."""
    sg = spec.sg
    out: list[Obligation] = []
    for signal in sg.non_inputs:
        sig_name = sg.signals[signal]
        for kind in ("set", "reset"):
            o = spec.output_index(signal, kind)
            bit = 1 << o
            col = [c for c in cover.cubes if c.outputs & bit]
            direction = 1 if kind == "set" else -1
            for er in spec.regions[signal].excitation:
                if er.direction != direction:
                    continue
                for tr in trigger_regions(sg, er):
                    subject = f"trigger region {tr.label(sg)} held by one cube"
                    witness_cube = next(
                        (
                            c
                            for c in col
                            if all(
                                c.contains_minterm(sg.code(s))
                                for s in tr.states
                            )
                        ),
                        None,
                    )
                    if witness_cube is not None:
                        out.append(
                            Obligation(
                                rule="HZ001",
                                signal=sig_name,
                                kind=kind,
                                subject=subject,
                                verdict=PROVED,
                                witness={
                                    "region": tr.label(sg),
                                    "states": _states(tr)[:_WITNESS_CUBES],
                                    "cube": witness_cube.input_string(),
                                },
                            )
                        )
                    else:
                        uncovered = [
                            str(s)
                            for s in tr.states
                            if not any(
                                c.contains_minterm(sg.code(s)) for c in col
                            )
                        ]
                        out.append(
                            Obligation(
                                rule="HZ001",
                                signal=sig_name,
                                kind=kind,
                                subject=subject,
                                verdict=REFUTED,
                                witness={
                                    "region": tr.label(sg),
                                    "states": _states(tr)[:_WITNESS_CUBES],
                                    "uncovered_states": sorted(uncovered)[
                                        :_WITNESS_CUBES
                                    ],
                                },
                                detail=(
                                    "no single cube of the column covers the "
                                    "region; the trigger pulse may fragment"
                                ),
                            )
                        )
    return out


# ----------------------------------------------------------------------
# HZ002 — static-1 / required-cube coverage
# ----------------------------------------------------------------------
def coverage_obligations(spec: "SopSpec", cover: Cover) -> list[Obligation]:
    """One obligation per ON-set transition cube: held by the column."""
    sg = spec.sg
    out: list[Obligation] = []
    for f in spec.functions:
        sig_name = sg.signals[f.signal]
        o = spec.output_index(f.signal, f.kind)
        col = cover.projection(o)
        for cube in f.on.cubes:
            if cube.is_empty():
                continue
            subject = f"ON cube {cube.input_string()} covered by column"
            if covers_cube(col, cube):
                out.append(
                    Obligation(
                        rule="HZ002",
                        signal=sig_name,
                        kind=f.kind,
                        subject=subject,
                        verdict=PROVED,
                        witness={
                            "cube": cube.input_string(),
                            "column_products": len(col),
                        },
                    )
                )
            else:
                residue = cube_sharp(cube, col)
                out.append(
                    Obligation(
                        rule="HZ002",
                        signal=sig_name,
                        kind=f.kind,
                        subject=subject,
                        verdict=REFUTED,
                        witness={
                            "cube": cube.input_string(),
                            "uncovered": [
                                r.input_string()
                                for r in residue.cubes[:_WITNESS_CUBES]
                            ],
                            "uncovered_count": len(residue),
                        },
                        detail=(
                            "an excited minterm is outside every product; "
                            "the plane output can drop mid-transition "
                            "(static-1 hazard)"
                        ),
                    )
                )
    return out


# ----------------------------------------------------------------------
# HZ003 — static-0 / OFF-set disjointness
# ----------------------------------------------------------------------
def disjointness_obligations(
    spec: "SopSpec", cover: Cover
) -> list[Obligation]:
    """One obligation per cover product: disjoint from the OFF-set."""
    sg = spec.sg
    out: list[Obligation] = []
    for f in spec.functions:
        sig_name = sg.signals[f.signal]
        o = spec.output_index(f.signal, f.kind)
        col = cover.projection(o)
        for product in col.cubes:
            if product.is_empty():
                continue
            subject = (
                f"product {product.input_string()} disjoint from OFF-set"
            )
            clash = next(
                (r for r in f.off.cubes if product.intersects(r)), None
            )
            if clash is None:
                out.append(
                    Obligation(
                        rule="HZ003",
                        signal=sig_name,
                        kind=f.kind,
                        subject=subject,
                        verdict=PROVED,
                        witness={
                            "product": product.input_string(),
                            "off_cubes": len(f.off),
                        },
                    )
                )
            else:
                overlap = product.intersect(clash)
                out.append(
                    Obligation(
                        rule="HZ003",
                        signal=sig_name,
                        kind=f.kind,
                        subject=subject,
                        verdict=REFUTED,
                        witness={
                            "product": product.input_string(),
                            "off_cube": clash.input_string(),
                            "overlap": (
                                overlap.input_string()
                                if overlap is not None
                                else ""
                            ),
                        },
                        detail=(
                            "the product excites inside the OFF-set; the "
                            "plane can fire in the opposite phase "
                            "(static-0 hazard)"
                        ),
                    )
                )
    return out


# ----------------------------------------------------------------------
# HZ004 — Equation (1) per-path delay inequalities
# ----------------------------------------------------------------------
def delay_obligations(
    circuit: "NShotCircuit",
    *,
    library: Library = DEFAULT_LIBRARY,
    mhs_tau: float | None = None,
) -> list[Obligation]:
    """Re-derive Equation (1) per signal and check the implementation.

    The inequality is instantiated from the architecture's plane
    timings (not trusted from the synthesizer's own records); when the
    bound is positive, the netlist must carry ``del_set_…`` and
    ``del_reset_…`` delay lines of at least the required value.
    """
    sg = circuit.sg
    arch = circuit.architecture
    spread = circuit.designed_spread
    tau = mhs_tau if mhs_tau is not None else _design_tau(circuit)
    delay_gates = {
        g.name: g for g in circuit.netlist.gates if g.type is GateType.DELAY
    }
    out: list[Obligation] = []
    for a in sg.non_inputs:
        sig_name = sg.signals[a]
        set_t = arch.set_timing[a]
        reset_t = arch.reset_timing[a]
        req = DelayRequirement(
            signal_name=sig_name,
            t_set0_w=set_t.worst(library, spread),
            t_res1_f=reset_t.best(library, spread),
            t_res0_w=reset_t.worst(library, spread),
            t_set1_f=set_t.best(library, spread),
            t_mhs_minus=tau,
            t_mhs_plus=tau,
        )
        terms = {
            "t_set0_w": req.t_set0_w,
            "t_res1_f": req.t_res1_f,
            "t_res0_w": req.t_res0_w,
            "t_set1_f": req.t_set1_f,
            "t_mhs": tau,
            "spread": spread,
            "bound": req.bound,
        }
        subject = f"Equation (1): {req.describe()}"
        if not req.compensation_required:
            out.append(
                Obligation(
                    rule="HZ004",
                    signal=sig_name,
                    kind="",
                    subject=subject,
                    verdict=PROVED,
                    witness=dict(terms, compensation_required=False),
                )
            )
            continue
        # compensation required: both enable rails must carry a delay
        # line of at least the bound
        lines = {}
        deficient = []
        for kind in ("set", "reset"):
            gate = delay_gates.get(f"del_{kind}_{sig_name}")
            have = gate.delay if gate is not None and gate.delay else 0.0
            lines[f"del_{kind}"] = have
            if have + _TOL < req.t_del:
                deficient.append(kind)
        if not deficient:
            out.append(
                Obligation(
                    rule="HZ004",
                    signal=sig_name,
                    kind="",
                    subject=subject,
                    verdict=PROVED,
                    witness=dict(
                        terms,
                        compensation_required=True,
                        t_del=req.t_del,
                        **lines,
                    ),
                )
            )
        else:
            out.append(
                Obligation(
                    rule="HZ004",
                    signal=sig_name,
                    kind="",
                    subject=subject,
                    verdict=REFUTED,
                    witness=dict(
                        terms,
                        compensation_required=True,
                        t_del=req.t_del,
                        missing=deficient,
                        **lines,
                    ),
                    detail=(
                        "the trespass bound is positive but the enable "
                        "rail's delay line is missing or shorter than "
                        "required"
                    ),
                )
            )
    return out


# ----------------------------------------------------------------------
# HZ005 — Theorem 2 ω-margin closed form
# ----------------------------------------------------------------------
def omega_obligations(
    circuit: "NShotCircuit",
    *,
    omega: float | None = None,
    tau: float | None = None,
) -> list[Obligation]:
    """The closed-form pulse-width bound, one obligation per signal.

    A legitimate trigger pulse is held by the acknowledgement loop
    until the output fires — at least the flip-flop response τ, derated
    by the designed relative delay spread.  ``ω < τ·(1−spread)`` proves
    the commit; ``ω ≥ τ`` refutes the whole filtering scheme; anything
    between is ``unknown`` (only a measured histogram can decide).
    """
    params = MhsParams()
    w = omega if omega is not None else params.omega
    t = tau if tau is not None else params.tau
    spread = circuit.designed_spread
    held = t * (1.0 - spread)
    margin = held - w
    sg = circuit.sg
    out: list[Obligation] = []
    for a in sg.non_inputs:
        sig_name = sg.signals[a]
        subject = (
            f"ω-margin: ω={w:.2f} < τ·(1−spread)={held:.2f}"
        )
        witness = {
            "omega": w,
            "tau": t,
            "spread": spread,
            "held": held,
            "margin": margin,
        }
        if w >= t - _TOL:
            verdict, detail = REFUTED, (
                "ω ≥ τ: the MHS filter cannot separate glitch pulses "
                "from legitimate triggers (Theorem 2 precondition)"
            )
        elif margin > _TOL:
            verdict, detail = PROVED, ""
        else:
            verdict, detail = UNKNOWN, (
                "derated hold time does not clear ω statically; the "
                "measured pulse-width histogram must decide"
            )
        out.append(
            Obligation(
                rule="HZ005",
                signal=sig_name,
                kind="",
                subject=subject,
                verdict=verdict,
                witness=witness,
                detail=detail,
            )
        )
    return out


def _design_tau(circuit: "NShotCircuit") -> float:
    """The Equation-(1) τ the circuit was synthesized with, recovered
    from its recorded requirements (default when none exist)."""
    for req in circuit.delay_requirements.values():
        return req.t_mhs_minus
    return 1.2


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def certify_cover(spec: "SopSpec", cover: Cover) -> list[Obligation]:
    """The cover-level families (HZ001–HZ003) over one spec + cover."""
    out: list[Obligation] = []
    out.extend(_guarded(lambda: trigger_obligations(spec, cover), "HZ001", "", ""))
    out.extend(_guarded(lambda: coverage_obligations(spec, cover), "HZ002", "", ""))
    out.extend(
        _guarded(lambda: disjointness_obligations(spec, cover), "HZ003", "", "")
    )
    return out


def certify_circuit(
    circuit: "NShotCircuit",
    *,
    library: Library = DEFAULT_LIBRARY,
    name: str | None = None,
) -> Certificate:
    """Discharge every obligation family over one synthesized circuit.

    Returns the :class:`Certificate`; ``fully_proved`` on the result is
    the static verdict that licenses skipping Monte-Carlo verification.
    """
    cert = Certificate(
        name=name or circuit.netlist.name,
        method=circuit.method,
        spread=circuit.designed_spread,
        mhs_tau=_design_tau(circuit),
    )
    with trace_span("certify", circuit=cert.name) as sp:
        cert.obligations.extend(certify_cover(circuit.spec, circuit.cover))
        cert.obligations.extend(
            _guarded(
                lambda: delay_obligations(circuit, library=library),
                "HZ004",
                "",
                "",
            )
        )
        cert.obligations.extend(
            _guarded(lambda: omega_obligations(circuit), "HZ005", "", "")
        )
        counts = cert.counts
        sp.set(
            obligations=len(cert.obligations),
            proved=counts[PROVED],
            refuted=counts[REFUTED],
            unknown=counts[UNKNOWN],
        )
    metrics = get_metrics()
    metrics.counter("certify.runs").add(1)
    metrics.counter("certify.obligations").add(len(cert.obligations))
    metrics.counter("certify.refuted").add(cert.counts[REFUTED])
    return cert
