"""Proof-obligation and certificate records (``repro-certificate/1``).

An :class:`Obligation` is one statically dischargeable condition of the
paper's hazard-freeness argument — a Theorem 1 trigger-containment
query, a static-1/static-0 cover condition, an Equation (1) inequality
instantiation, or the Theorem 2 ω-margin bound — together with its
verdict and a machine-checkable witness (the cubes or inequality terms
that make the verdict reproducible without re-running the engine).

Verdict semantics are asymmetric by design:

* ``proved`` — the condition holds; the witness exhibits why.  A
  ``proved`` verdict must never contradict the Monte-Carlo oracle (the
  differential harness enforces this).
* ``refuted`` — the condition fails; the witness is a counterexample.
* ``unknown`` — the static bound cannot decide (e.g. the ω-margin
  under extreme delay derating).  Always sound to emit; callers fall
  back to simulation.

A :class:`Certificate` aggregates every obligation of one circuit and
serializes to the ``repro-certificate/1`` JSON document the CLI emits
and the pipeline store content-addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CERT_SCHEMA",
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "Obligation",
    "Certificate",
]

CERT_SCHEMA = "repro-certificate/1"

PROVED = "proved"
REFUTED = "refuted"
UNKNOWN = "unknown"


@dataclass
class Obligation:
    """One discharged (or not) proof obligation."""

    rule: str  # HZ001..HZ005
    signal: str  # signal name the obligation concerns ("" = circuit-wide)
    kind: str  # "set" / "reset" / ""
    subject: str  # human-readable statement of the condition
    verdict: str  # PROVED / REFUTED / UNKNOWN
    witness: dict[str, Any] = field(default_factory=dict)
    detail: str = ""  # one-line explanation of the verdict

    @property
    def proved(self) -> bool:
        return self.verdict == PROVED

    @property
    def refuted(self) -> bool:
        return self.verdict == REFUTED

    @property
    def unknown(self) -> bool:
        return self.verdict == UNKNOWN

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "signal": self.signal,
            "kind": self.kind,
            "subject": self.subject,
            "verdict": self.verdict,
            "witness": self.witness,
        }
        if self.detail:
            out["detail"] = self.detail
        return out

    def describe(self) -> str:
        where = f"{self.kind}({self.signal})" if self.signal else "circuit"
        return f"{self.rule} {where}: {self.subject} — {self.verdict}"


@dataclass
class Certificate:
    """Every obligation of one circuit, plus the synthesis knobs that
    scoped them (a certificate only speaks for the exact operating
    point it was discharged at)."""

    name: str
    method: str = "espresso"
    spread: float = 0.0
    mhs_tau: float = 1.2
    obligations: list[Obligation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.obligations)

    @property
    def counts(self) -> dict[str, int]:
        out = {PROVED: 0, REFUTED: 0, UNKNOWN: 0}
        for ob in self.obligations:
            out[ob.verdict] = out.get(ob.verdict, 0) + 1
        return out

    @property
    def fully_proved(self) -> bool:
        """True when *every* obligation is ``proved`` — the verdict that
        licenses skipping Monte-Carlo verification entirely."""
        return bool(self.obligations) and all(
            ob.proved for ob in self.obligations
        )

    def refuted(self) -> list[Obligation]:
        return [ob for ob in self.obligations if ob.refuted]

    def undecided(self) -> list[Obligation]:
        return [ob for ob in self.obligations if ob.unknown]

    def by_rule(self) -> dict[str, list[Obligation]]:
        out: dict[str, list[Obligation]] = {}
        for ob in self.obligations:
            out.setdefault(ob.rule, []).append(ob)
        return out

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": CERT_SCHEMA,
            "name": self.name,
            "method": self.method,
            "spread": self.spread,
            "mhs_tau": self.mhs_tau,
            "counts": self.counts,
            "fully_proved": self.fully_proved,
            "obligations": [ob.to_json() for ob in self.obligations],
        }

    def summary(self) -> str:
        c = self.counts
        status = (
            "CERTIFIED"
            if self.fully_proved
            else ("REFUTED" if c[REFUTED] else "UNDECIDED")
        )
        return (
            f"{self.name}: {status} — {c[PROVED]} proved, "
            f"{c[REFUTED]} refuted, {c[UNKNOWN]} unknown "
            f"over {len(self.obligations)} obligations"
        )
