"""Certifier-vs-oracle differential harness (the soundness enforcer).

The certifier's contract is one-directional: ``unknown`` is always
allowed, ``proved`` is never wrong.  This module enforces the second
half empirically — every spec is pushed through the symbolic certifier
*and* the Monte-Carlo oracle, and a circuit whose certificate is
``fully_proved`` while the oracle observes a violation is a
**soundness failure**: a hard error, archived as a reproducer in the
fuzz corpus so it becomes a forever-regression test.

Replayed populations: the 25-circuit paper suite
(:func:`differential_suite`) and the committed fuzz reproducer corpus
(:func:`differential_corpus`).  Corpus entries that do not synthesize
(that is what many of them are *for*) are recorded as
``synthesis-error`` outcomes — nothing was proved, so nothing can be
unsound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ...obs import trace_span
from .engine import certify_circuit
from .obligations import Certificate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.synthesizer import NShotCircuit
    from ...sg.graph import StateGraph

__all__ = [
    "DifferentialOutcome",
    "SoundnessError",
    "cross_check",
    "differential_suite",
    "differential_corpus",
    "archive_soundness_failure",
]


class SoundnessError(AssertionError):
    """A spec certified ``proved`` was violated by the oracle."""


@dataclass
class DifferentialOutcome:
    """One spec's paired verdicts."""

    name: str
    status: str  # "ok" | "unsound" | "synthesis-error"
    fully_proved: bool = False
    refuted: int = 0
    unknown: int = 0
    oracle_ok: bool | None = None  # None = oracle not run / not applicable
    detail: str = ""
    certificate: Certificate | None = field(default=None, repr=False)

    @property
    def sound(self) -> bool:
        """False only for the forbidden cell: proved yet violated."""
        return not (self.fully_proved and self.oracle_ok is False)

    def describe(self) -> str:
        cert = (
            "proved"
            if self.fully_proved
            else f"{self.refuted} refuted / {self.unknown} unknown"
        )
        oracle = (
            "skipped"
            if self.oracle_ok is None
            else ("clean" if self.oracle_ok else "VIOLATED")
        )
        return f"{self.name}: certifier {cert}, oracle {oracle} → {self.status}"


def cross_check(
    circuit: "NShotCircuit",
    *,
    name: str | None = None,
    runs: int = 3,
    max_transitions: int = 60,
    base_seed: int = 0,
) -> DifferentialOutcome:
    """Certify and simulate one circuit; flag the forbidden disagreement."""
    from ...core.verify import verify_hazard_freeness

    cname = name or circuit.netlist.name
    cert = certify_circuit(circuit, name=cname)
    summary = verify_hazard_freeness(
        circuit,
        runs=runs,
        max_transitions=max_transitions,
        base_seed=base_seed,
    )
    counts = cert.counts
    unsound = cert.fully_proved and not summary.ok
    return DifferentialOutcome(
        name=cname,
        status="unsound" if unsound else "ok",
        fully_proved=cert.fully_proved,
        refuted=counts["refuted"],
        unknown=counts["unknown"],
        oracle_ok=summary.ok,
        detail=(
            "; ".join(
                err for r in summary.runs if not r.ok for err in r.errors[:1]
            )
            if not summary.ok
            else ""
        ),
        certificate=cert,
    )


def differential_suite(
    names: list[str] | None = None,
    *,
    runs: int = 3,
    max_transitions: int = 60,
) -> list[DifferentialOutcome]:
    """Cross-check the paper suite (all 25 circuits by default)."""
    from ...bench import (
        DISTRIBUTIVE_BENCHMARKS,
        NONDISTRIBUTIVE_BENCHMARKS,
        sg_of,
    )
    from ...core.synthesizer import synthesize

    suite = names or (
        list(DISTRIBUTIVE_BENCHMARKS) + list(NONDISTRIBUTIVE_BENCHMARKS)
    )
    out: list[DifferentialOutcome] = []
    with trace_span("certify.differential", targets=len(suite)):
        for cname in suite:
            circuit = synthesize(sg_of(cname), name=cname)
            out.append(
                cross_check(
                    circuit,
                    name=cname,
                    runs=runs,
                    max_transitions=max_transitions,
                )
            )
    return out


def differential_corpus(
    corpus_dir: "Path | str | None" = None,
    *,
    runs: int = 2,
    max_transitions: int = 40,
) -> list[DifferentialOutcome]:
    """Cross-check every committed fuzz reproducer, crash-contained."""
    from ...fuzz.corpus import DEFAULT_CORPUS, load_corpus

    entries = load_corpus(corpus_dir if corpus_dir is not None else DEFAULT_CORPUS)
    out: list[DifferentialOutcome] = []
    for entry in entries:
        cname = entry.path.stem
        try:
            circuit = _synthesize_entry(entry.sg(), cname)
        except Exception as exc:  # noqa: BLE001 - corpus specs exist to fail
            out.append(
                DifferentialOutcome(
                    name=cname,
                    status="synthesis-error",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        out.append(
            cross_check(
                circuit,
                name=cname,
                runs=runs,
                max_transitions=max_transitions,
            )
        )
    return out


def _synthesize_entry(sg: "StateGraph", name: str) -> "NShotCircuit":
    from ...core.synthesizer import synthesize
    from ...pipeline.dag import cache_bypass

    with cache_bypass():  # never publish corpus replays as cached truth
        return synthesize(sg, name=name)


def archive_soundness_failure(
    outcome: DifferentialOutcome,
    spec_text: str,
    corpus_dir: "Path | str | None" = None,
) -> Path | None:
    """Pin a proved-but-violated spec as a fuzz-corpus reproducer.

    Same on-disk format as :func:`repro.fuzz.corpus.archive_reproducer`
    (header comments + plain SG dialect) so ``load_corpus`` replays it
    forever after; dedupes by signature.
    """
    from ...fuzz.corpus import DEFAULT_CORPUS, _existing_signatures

    corpus = Path(corpus_dir if corpus_dir is not None else DEFAULT_CORPUS)
    signature = f"certify-unsound:{outcome.name}"
    if signature in _existing_signatures(corpus):
        return None
    corpus.mkdir(parents=True, exist_ok=True)
    path = corpus / f"certify_unsound_{outcome.name}.g"
    counts = (
        outcome.certificate.counts
        if outcome.certificate is not None
        else {}
    )
    header = [
        "# repro-fuzz reproducer (certifier soundness failure; do not edit)",
        f"# signature: {signature}",
        "# kind: certify-unsound",
        "# flow: certify",
        "# seed: 0",
        f"# labels: {json.dumps({'counts': counts}, sort_keys=True)}",
        f"# detail: {' '.join(outcome.detail.split()) or 'proved statically, violated by oracle'}",
        "",
    ]
    path.write_text("\n".join(header) + spec_text)
    return path
