"""State graph (SG) model — Section III-A of the paper.

An SG is a finite automaton ``G = <X, S, T, δ, s0>`` where every state
carries a binary code over the signals ``X = X_I ∪ X_O`` and every arc
is the transition of exactly one signal (interleaved concurrency).

States are identified by arbitrary hashable ids; the binary code is a
separate labelling, because states with *identical* codes may coexist
(that is exactly what the CSC property of Definition 1 is about).

Transitions are :class:`Transition` values ``(signal index, direction)``
with direction ``+1`` for a ``+x`` (0→1) and ``-1`` for a ``-x`` (1→0)
transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

__all__ = ["Transition", "StateGraph", "SGError"]

StateId = Hashable


class SGError(ValueError):
    """Raised on malformed state graphs (inconsistent coding, etc.)."""


@dataclass(frozen=True, slots=True, order=True)
class Transition:
    """A signal transition ``+x`` or ``-x``.

    Attributes
    ----------
    signal:
        Index of the signal in the state graph's signal list.
    direction:
        ``+1`` for a rising (``+x``) and ``-1`` for a falling (``-x``)
        transition.
    """

    signal: int
    direction: int

    def __post_init__(self) -> None:
        if self.direction not in (1, -1):
            raise SGError(f"direction must be +1/-1, got {self.direction}")

    @property
    def rising(self) -> bool:
        return self.direction == 1

    def opposite(self) -> "Transition":
        """The transition of the same signal in the other direction."""
        return Transition(self.signal, -self.direction)

    def label(self, signals: Sequence[str]) -> str:
        return ("+" if self.rising else "-") + signals[self.signal]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return ("+" if self.rising else "-") + f"x{self.signal}"


class StateGraph:
    """A state graph with consistent binary state coding.

    Parameters
    ----------
    signals:
        Signal names; the position in this list is the signal index
        used everywhere (bit ``i`` of a state code is signal ``i``).
    inputs:
        Names (or indices) of the input signals; all others are
        non-input (output or internal state) signals.

    Notes
    -----
    States are added with :meth:`add_state` and arcs with
    :meth:`add_arc`; the class enforces the consistent state assignment
    rules of Section III-A at insertion time (a ``+x`` arc must go from
    a state with ``x = 0`` to an identically-coded state with ``x = 1``,
    and so on).
    """

    def __init__(self, signals: Sequence[str], inputs: Iterable[str | int]) -> None:
        if len(set(signals)) != len(signals):
            raise SGError("duplicate signal names")
        self.signals: list[str] = list(signals)
        self._index: dict[str, int] = {s: i for i, s in enumerate(self.signals)}
        self.inputs: frozenset[int] = frozenset(
            self._index[s] if isinstance(s, str) else int(s) for s in inputs
        )
        for i in self.inputs:
            if not 0 <= i < len(self.signals):
                raise SGError(f"input index {i} out of range")
        self._code: dict[StateId, int] = {}
        self._succ: dict[StateId, dict[Transition, StateId]] = {}
        self._pred: dict[StateId, list[tuple[StateId, Transition]]] = {}
        self.initial: StateId | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def signal_index(self, name: str) -> int:
        """Index of a signal by name."""
        return self._index[name]

    def transition(self, name: str, direction: int | str) -> Transition:
        """Build a transition from a signal name and ``+1``/``-1``/``'+'``/``'-'``."""
        if isinstance(direction, str):
            direction = 1 if direction == "+" else -1
        return Transition(self._index[name], direction)

    def add_state(self, state: StateId, code: int | Sequence[int]) -> StateId:
        """Add a state with the given binary code.

        ``code`` is either a bitmask (bit ``i`` = value of signal ``i``)
        or a sequence of 0/1 values indexed by signal.
        """
        if not isinstance(code, int):
            mask = 0
            for i, v in enumerate(code):
                if v not in (0, 1):
                    raise SGError(f"state code values must be 0/1, got {v}")
                mask |= v << i
            code = mask
        if code >> len(self.signals):
            raise SGError("state code wider than the signal set")
        if state in self._code:
            if self._code[state] != code:
                raise SGError(f"state {state!r} re-added with a different code")
            return state
        self._code[state] = code
        self._succ[state] = {}
        self._pred[state] = []
        if self.initial is None:
            self.initial = state
        return state

    def set_initial(self, state: StateId) -> None:
        """Designate the initial state ``s0``."""
        if state not in self._code:
            raise SGError(f"unknown state {state!r}")
        self.initial = state

    def add_arc(self, src: StateId, t: Transition, dst: StateId) -> None:
        """Add the arc ``src --t--> dst``, enforcing coding consistency."""
        if src not in self._code or dst not in self._code:
            raise SGError("arc endpoints must be added first")
        bit = 1 << t.signal
        sv = (self._code[src] >> t.signal) & 1
        dv = (self._code[dst] >> t.signal) & 1
        if t.rising and not (sv == 0 and dv == 1):
            raise SGError(
                f"+{self.signals[t.signal]} arc must go 0→1 "
                f"(state {src!r} → {dst!r})"
            )
        if not t.rising and not (sv == 1 and dv == 0):
            raise SGError(
                f"-{self.signals[t.signal]} arc must go 1→0 "
                f"(state {src!r} → {dst!r})"
            )
        if (self._code[src] ^ self._code[dst]) != bit:
            raise SGError(
                f"arc {t.label(self.signals)} changes more than its own signal "
                f"({src!r} → {dst!r})"
            )
        existing = self._succ[src].get(t)
        if existing is not None and existing != dst:
            raise SGError(f"transition {t.label(self.signals)} not deterministic at {src!r}")
        if existing is None:
            self._succ[src][t] = dst
            self._pred[dst].append((src, t))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_signals(self) -> int:
        return len(self.signals)

    @property
    def non_inputs(self) -> list[int]:
        """Indices of non-input (output and internal state) signals."""
        return [i for i in range(len(self.signals)) if i not in self.inputs]

    @property
    def input_names(self) -> list[str]:
        return [self.signals[i] for i in sorted(self.inputs)]

    @property
    def non_input_names(self) -> list[str]:
        return [self.signals[i] for i in self.non_inputs]

    def is_input(self, signal: int) -> bool:
        return signal in self.inputs

    def states(self) -> Iterator[StateId]:
        return iter(self._code)

    @property
    def num_states(self) -> int:
        return len(self._code)

    def code(self, state: StateId) -> int:
        """Binary code (bitmask) of a state."""
        return self._code[state]

    def code_vector(self, state: StateId) -> tuple[int, ...]:
        """Binary code as a tuple indexed by signal."""
        c = self._code[state]
        return tuple((c >> i) & 1 for i in range(len(self.signals)))

    def value(self, state: StateId, signal: int) -> int:
        """Value of one signal in a state."""
        return (self._code[state] >> signal) & 1

    def enabled(self, state: StateId) -> list[Transition]:
        """Transitions enabled in a state."""
        return list(self._succ[state])

    def succ(self, state: StateId, t: Transition) -> StateId | None:
        """Successor by one transition, or ``None`` if not enabled."""
        return self._succ[state].get(t)

    def successors(self, state: StateId) -> list[tuple[Transition, StateId]]:
        """All (transition, successor) pairs of a state."""
        return list(self._succ[state].items())

    def predecessors(self, state: StateId) -> list[tuple[StateId, Transition]]:
        """All (predecessor, transition) pairs leading to a state."""
        return list(self._pred[state])

    def is_excited(self, state: StateId, signal: int) -> bool:
        """True when some transition of ``signal`` is enabled in ``state``."""
        return any(t.signal == signal for t in self._succ[state])

    def excitation(self, state: StateId, signal: int) -> Transition | None:
        """The enabled transition of ``signal`` in ``state``, if any."""
        for t in self._succ[state]:
            if t.signal == signal:
                return t
        return None

    def excited_non_inputs(self, state: StateId) -> frozenset[int]:
        """Set of excited non-input signals (used by the CSC check)."""
        return frozenset(
            t.signal for t in self._succ[state] if t.signal not in self.inputs
        )

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def reachable(self, start: StateId | None = None) -> set[StateId]:
        """States reachable from ``start`` (default: the initial state)."""
        if start is None:
            start = self.initial
        if start is None:
            return set()
        seen = {start}
        stack = [start]
        while stack:
            s = stack.pop()
            for dst in self._succ[s].values():
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen

    def restrict_to_reachable(self) -> "StateGraph":
        """A copy containing only states reachable from the initial state."""
        keep = self.reachable()
        out = StateGraph(self.signals, [self.signals[i] for i in sorted(self.inputs)])
        for s in self._code:
            if s in keep:
                out.add_state(s, self._code[s])
        for s in keep:
            for t, d in self._succ[s].items():
                if d in keep:
                    out.add_arc(s, t, d)
        if self.initial is not None:
            out.set_initial(self.initial)
        return out

    def subgraph(self, keep: Iterable[StateId]) -> "StateGraph":
        """A copy containing only ``keep`` states and the arcs between
        them; the initial state carries over when kept.  The result may
        be unreachable or inconsistent — shrinkers deliberately produce
        such candidates and let the classifiers reject them."""
        keep = set(keep)
        out = StateGraph(self.signals, [self.signals[i] for i in sorted(self.inputs)])
        for s in self._code:
            if s in keep:
                out.add_state(s, self._code[s])
        for s in keep:
            for t, d in self._succ[s].items():
                if d in keep:
                    out.add_arc(s, t, d)
        if self.initial is not None and self.initial in keep:
            out.set_initial(self.initial)
        return out

    def without_arc(self, src: StateId, t: Transition) -> "StateGraph":
        """A copy with one arc removed (states untouched)."""
        out = StateGraph(self.signals, [self.signals[i] for i in sorted(self.inputs)])
        for s, c in self._code.items():
            out.add_state(s, c)
        for s in self._code:
            for tt, d in self._succ[s].items():
                if s == src and tt == t:
                    continue
                out.add_arc(s, tt, d)
        if self.initial is not None:
            out.set_initial(self.initial)
        return out

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def state_label(self, state: StateId) -> str:
        """Binary-code label with ``*`` marks on excited signals.

        Renders like the paper's Figure 1: e.g. ``0*0*0`` for a state
        coded 000 where the first two signals are excited.
        """
        parts = []
        for i in range(len(self.signals)):
            parts.append(str(self.value(state, i)))
            if self.is_excited(state, i):
                parts.append("*")
        return "".join(parts)

    def describe(self) -> str:
        """Multi-line human-readable dump of the state graph."""
        lines = [
            f"signals: {', '.join(self.signals)}",
            f"inputs:  {', '.join(self.input_names)}",
            f"states:  {self.num_states} (initial {self.initial!r})",
        ]
        for s in self._code:
            arcs = ", ".join(
                f"{t.label(self.signals)}→{d!r}" for t, d in self._succ[s].items()
            )
            lines.append(f"  {s!r} [{self.state_label(s)}]  {arcs}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateGraph({len(self.signals)} signals, {self.num_states} states, "
            f"initial={self.initial!r})"
        )
