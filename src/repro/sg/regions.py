"""Excitation, quiescent and trigger regions — Definitions 5–7.

These region objects are the bridge between the SG specification and
the set/reset SOP logic of the N-SHOT architecture:

* the union of up-excitation regions of ``a`` is the ON-set of the set
  function (Section IV-A step 2),
* the union of up-quiescent regions is its don't-care set (step 3),
* trigger regions (Definition 7) are the bottom strongly-connected
  components of an excitation region under the sub-relation that
  excludes the region's own signal transitions; Theorem 1 requires a
  single cube of the SOP to cover each of them.

Properties 1 (output trapping) and 2 (trigger-region reachability) get
explicit checkers here, used by tests and by the synthesizer's
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import get_metrics, trace_span
from .graph import StateGraph, StateId, Transition

__all__ = [
    "Region",
    "SignalRegions",
    "excitation_regions",
    "quiescent_region_of",
    "signal_regions",
    "trigger_regions",
    "check_output_trapping",
    "trigger_region_reachable_from_all",
    "is_single_traversal_for",
    "is_single_traversal",
]


@dataclass(frozen=True)
class Region:
    """A connected set of states associated with one signal transition.

    ``kind`` is ``"ER"`` or ``"QR"``; ``direction`` is ``+1`` for a
    region of a rising transition (``ER(+a)`` / ``QR(+a)``) and ``-1``
    for a falling one.  For an ER the signal's value inside is
    ``0`` if rising; for a QR it is the post-transition value
    (``1`` if rising).
    """

    signal: int
    direction: int
    kind: str
    states: frozenset[StateId]

    def __len__(self) -> int:
        return len(self.states)

    def __contains__(self, state: StateId) -> bool:
        return state in self.states

    @property
    def rising(self) -> bool:
        return self.direction == 1

    def label(self, sg: StateGraph) -> str:
        sign = "+" if self.rising else "-"
        return f"{self.kind}({sign}{sg.signals[self.signal]})"


def _weakly_connected_components(
    sg: StateGraph, members: set[StateId]
) -> list[set[StateId]]:
    """Weakly connected components of the subgraph induced by ``members``."""
    adj: dict[StateId, set[StateId]] = {s: set() for s in members}
    for s in members:
        for _, d in sg.successors(s):
            if d in members:
                adj[s].add(d)
                adj[d].add(s)
        for p, _ in sg.predecessors(s):
            if p in members:
                adj[s].add(p)
                adj[p].add(s)
    comps: list[set[StateId]] = []
    seen: set[StateId] = set()
    for s in members:
        if s in seen:
            continue
        comp = {s}
        stack = [s]
        seen.add(s)
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in seen:
                    seen.add(y)
                    comp.add(y)
                    stack.append(y)
        comps.append(comp)
    return comps


def excitation_regions(sg: StateGraph, signal: int) -> list[Region]:
    """All excitation regions of a signal (Definition 5).

    Maximal weakly-connected sets of states in which the signal has the
    same value and is excited.  Rising regions (value 0, ``+a``
    enabled) and falling regions are computed separately.
    """
    regions: list[Region] = []
    for direction in (1, -1):
        value = 0 if direction == 1 else 1
        members = {
            s
            for s in sg.states()
            if sg.value(s, signal) == value
            and any(t.signal == signal and t.direction == direction for t in sg.enabled(s))
        }
        for comp in _weakly_connected_components(sg, members):
            regions.append(Region(signal, direction, "ER", frozenset(comp)))
    return regions


def quiescent_region_of(sg: StateGraph, er: Region) -> Region:
    """The quiescent region following an excitation region (Definition 6).

    States reached by firing the region's transition from its ER, plus
    everything reachable from them while the signal stays stable at the
    post-transition value.  May be empty when the signal is immediately
    re-excited.
    """
    signal = er.signal
    t = Transition(signal, er.direction)
    post_value = 1 if er.rising else 0
    seeds = []
    for s in er.states:
        d = sg.succ(s, t)
        if d is not None:
            seeds.append(d)

    def quiescent(s: StateId) -> bool:
        return sg.value(s, signal) == post_value and not sg.is_excited(s, signal)

    members: set[StateId] = set()
    stack = [s for s in seeds if quiescent(s)]
    members.update(stack)
    while stack:
        s = stack.pop()
        for _, d in sg.successors(s):
            if d not in members and quiescent(d):
                members.add(d)
                stack.append(d)
    return Region(signal, er.direction, "QR", frozenset(members))


def trigger_regions(sg: StateGraph, er: Region) -> list[Region]:
    """Trigger regions of an excitation region (Definition 7).

    Minimal connected sets of states of the ER that, once entered, can
    only be left by firing the region's own transition.  These are the
    bottom strongly-connected components of the ER's subgraph under
    arcs labelled by *other* signals' transitions.
    """
    signal = er.signal
    states = er.states
    # successor relation inside the ER, excluding the region's own firing
    succ: dict[StateId, list[StateId]] = {}
    for s in states:
        succ[s] = [
            d for t, d in sg.successors(s) if t.signal != signal and d in states
        ]

    # Tarjan SCC (iterative)
    index: dict[StateId, int] = {}
    low: dict[StateId, int] = {}
    on_stack: set[StateId] = set()
    stack: list[StateId] = []
    sccs: list[set[StateId]] = []
    counter = [0]

    for root in states:
        if root in index:
            continue
        work: list[tuple[StateId, int]] = [(root, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = succ[node]
            while pi < len(children):
                child = children[pi]
                pi += 1
                if child not in index:
                    work[-1] = (node, pi)
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if recurse:
                continue
            work[-1] = (node, pi)
            if pi >= len(children):
                if low[node] == index[node]:
                    comp: set[StateId] = set()
                    while True:
                        x = stack.pop()
                        on_stack.discard(x)
                        comp.add(x)
                        if x == node:
                            break
                    sccs.append(comp)
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

    # bottom SCCs: no edge to a state outside the SCC
    out: list[Region] = []
    for comp in sccs:
        if all(d in comp for s in comp for d in succ[s]):
            out.append(Region(signal, er.direction, "ER", frozenset(comp)))
    return out


def check_output_trapping(sg: StateGraph, er: Region) -> list[tuple[StateId, StateId]]:
    """Violations of Property 1 for one ER (empty list when trapped).

    Returns (state, escaped-to) pairs where a transition of another
    signal leaves the excitation region.  Semi-modular SGs with input
    choices never have any.
    """
    bad = []
    for s in er.states:
        for t, d in sg.successors(s):
            if t.signal != er.signal and d not in er.states:
                bad.append((s, d))
    return bad


def trigger_region_reachable_from_all(sg: StateGraph, er: Region) -> bool:
    """Property 2: from every ER state some trigger region is reachable."""
    trs = trigger_regions(sg, er)
    tr_states = set().union(*(t.states for t in trs)) if trs else set()
    if not tr_states:
        return False
    # reverse reachability inside the ER via non-signal arcs
    reach = set(tr_states)
    changed = True
    while changed:
        changed = False
        for s in er.states:
            if s in reach:
                continue
            for t, d in sg.successors(s):
                if t.signal != er.signal and d in reach:
                    reach.add(s)
                    changed = True
                    break
    return er.states <= reach


@dataclass
class SignalRegions:
    """All regions of one non-input signal, paired ER→QR."""

    signal: int
    excitation: list[Region] = field(default_factory=list)
    quiescent: list[Region] = field(default_factory=list)  # parallel to excitation

    @property
    def up_excitation(self) -> list[Region]:
        return [r for r in self.excitation if r.rising]

    @property
    def down_excitation(self) -> list[Region]:
        return [r for r in self.excitation if not r.rising]

    def quiescent_after(self, er: Region) -> Region:
        return self.quiescent[self.excitation.index(er)]

    def union_states(self, kind: str, direction: int) -> set[StateId]:
        """Union of all region states of one kind and direction."""
        regions = self.excitation if kind == "ER" else self.quiescent
        out: set[StateId] = set()
        for r in regions:
            if r.direction == direction:
                out |= r.states
        return out


def signal_regions(sg: StateGraph, signal: int) -> SignalRegions:
    """Compute all ER/QR pairs of a non-input signal."""
    with trace_span("regions", signal=sg.signals[signal]) as sp:
        ers = excitation_regions(sg, signal)
        sr = SignalRegions(signal)
        for er in ers:
            sr.excitation.append(er)
            sr.quiescent.append(quiescent_region_of(sg, er))
        sp.set(excitation=len(sr.excitation))
    get_metrics().counter("regions.computed").add(len(sr.excitation))
    return sr


def is_single_traversal_for(sg: StateGraph, signal: int) -> bool:
    """Single-traversal check for one signal (Definition 9)."""
    for er in excitation_regions(sg, signal):
        for tr in trigger_regions(sg, er):
            if len(tr.states) != 1:
                return False
    return True


def is_single_traversal(sg: StateGraph) -> bool:
    """Definition 9: every trigger region of every non-input is a singleton."""
    return all(is_single_traversal_for(sg, a) for a in sg.non_inputs)
