"""CSC diagnostics and a simple state-signal insertion transformer.

The paper *requires* CSC (Definition 1) and assumes the benchmarks
already satisfy it; reference [6] (Lin/Ykman-Couvreur/Vanbekbergen,
EuroDAC-94) is cited for transformations that establish it.  This
module provides:

* :func:`csc_report` — structured diagnostics of conflicting state
  pairs (which signals would disambiguate them);
* :func:`insert_state_signal` — a simple, correct (not optimal)
  transformer that appends one internal signal toggling between two
  state sets, the classic way to separate CSC-conflicting regions.

The transformer covers the situations Table 2 marks as "(2) must add
state signals" for the SYN baseline, and lets the library demonstrate
the full pipeline on specifications that start without CSC.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import SGError, StateGraph, StateId, Transition
from .properties import code_conflicts

__all__ = ["CscConflict", "csc_report", "insert_state_signal"]


@dataclass(frozen=True)
class CscConflict:
    """One CSC conflict: equal codes, different non-input excitation."""

    state_a: StateId
    state_b: StateId
    code: int
    excited_a: frozenset[int]
    excited_b: frozenset[int]

    def describe(self, sg: StateGraph) -> str:
        names_a = ", ".join(sg.signals[i] for i in sorted(self.excited_a)) or "∅"
        names_b = ", ".join(sg.signals[i] for i in sorted(self.excited_b)) or "∅"
        return (
            f"states {self.state_a!r} and {self.state_b!r} share code "
            f"{self.code:0{sg.num_signals}b} but excite {{{names_a}}} vs {{{names_b}}}"
        )


def csc_report(sg: StateGraph) -> list[CscConflict]:
    """Structured CSC conflict report (empty when CSC holds).

    Shares one code-grouping traversal with
    :func:`repro.sg.properties.csc_violations` (via
    :func:`~repro.sg.properties.code_conflicts`): the conflict pairs,
    their codes, and both excitation sets all come from that single
    scan instead of being recomputed here.
    """
    return [
        CscConflict(c.state_a, c.state_b, c.code, c.excited_a, c.excited_b)
        for c in code_conflicts(sg)
        if c.csc
    ]


def insert_state_signal(
    sg: StateGraph,
    high_states: set[StateId],
    name: str | None = None,
) -> StateGraph:
    """Append one internal signal that is 1 exactly on ``high_states``.

    The new signal's transitions are inserted on every arc crossing the
    boundary of ``high_states``: an arc entering the set is split
    through an intermediate state where ``+z`` fires first; an arc
    leaving it is split so ``-z`` fires first.  The construction keeps
    the coding consistent and deterministic; it changes the concurrency
    (the new transitions are serialized on the crossing arcs), which is
    the standard simple insertion.

    Parameters
    ----------
    sg:
        The original state graph.
    high_states:
        States in which the new signal must read 1.  Must be closed in
        the sense that the initial state's membership defines the
        signal's initial value.
    name:
        Signal name; defaults to ``csc0``, ``csc1``, … as available.

    Returns
    -------
    StateGraph
        A new SG over ``signals + [name]`` whose projection onto the
        old signals is the original behaviour.
    """
    if name is None:
        k = 0
        while f"csc{k}" in sg.signals:
            k += 1
        name = f"csc{k}"
    if name in sg.signals:
        raise SGError(f"signal {name!r} already exists")
    new_idx = sg.num_signals
    out = StateGraph(list(sg.signals) + [name], sg.input_names)

    def new_code(s: StateId) -> int:
        z = 1 if s in high_states else 0
        return sg.code(s) | (z << new_idx)

    for s in sg.states():
        out.add_state(("s", s), new_code(s))
    for s in sg.states():
        s_in = s in high_states
        for t, d in sg.successors(s):
            d_in = d in high_states
            if s_in == d_in:
                out.add_arc(("s", s), t, ("s", d))
            elif not s_in and d_in:
                # boundary crossed upward: the crossing transition lands
                # in a mid state (z still 0) from which +z completes the
                # crossing.  The mid state is *shared per destination* so
                # concurrent crossing paths still close their diamonds.
                mid = ("mid", d)
                out.add_state(mid, sg.code(d))  # z = 0 in mid
                out.add_arc(("s", s), t, mid)
                out.add_arc(mid, Transition(new_idx, 1), ("s", d))
            else:
                mid = ("mid", d)
                out.add_state(mid, sg.code(d) | (1 << new_idx))  # z = 1 in mid
                out.add_arc(("s", s), t, mid)
                out.add_arc(mid, Transition(new_idx, -1), ("s", d))
    if sg.initial is not None:
        out.set_initial(("s", sg.initial))
    return out.restrict_to_reachable()
